//===- examples/affine_analysis.cpp - The polyhedral layer up close -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Walks through the paper's affine machinery on its own examples:
/// lifts the Sec. III-C QASM trace to macro-gates, prints the iteration
/// domains / access relations / schedules, builds the dependence relation
/// of the Fig. 1 circuit, computes its transitive closure, and evaluates
/// the dependence weights omega that drive the Qlosure cost function.
///
/// Build & run:  ./build/examples/affine_analysis
///
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "deps/DependenceAnalysis.h"
#include "deps/TransitiveWeights.h"
#include "presburger/Counting.h"
#include "presburger/TransitiveClosure.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::presburger;

int main() {
  // --- Part 1: the Sec. III-C lifting example. -------------------------
  //   CX q[0],q[1]; CX q[1],q[3]; CX q[2],q[5]; CX q[3],q[7];
  Circuit Trace(8, "sec3c");
  Trace.addCx(0, 1);
  Trace.addCx(1, 3);
  Trace.addCx(2, 5);
  Trace.addCx(3, 7);

  AffineCircuit Lifted = liftCircuit(Trace);
  std::printf("Sec. III-C trace lifts to %zu statement(s):\n",
              Lifted.numStatements());
  for (size_t S = 0; S < Lifted.numStatements(); ++S)
    std::printf("  %s\n", Lifted.statement(S).toString().c_str());
  std::printf("  (paper: q1 = [i] -> [i], q2 = [i] -> [2i + 1], "
              "domain 0 <= i <= 3)\n\n");

  // The polyhedral views.
  IntegerSet Domain = Lifted.iterationDomain(0);
  std::printf("iteration domain: %s, |D| = %lld\n",
              Domain.toString().c_str(), *countPoints(Domain));
  IntegerMap Use = Lifted.useMap(0);
  auto Image = Use.imageOfPoint({2});
  std::printf("use map at t=2 -> q[%lld], q[%lld]\n\n",
              (*Image)[0][0], (*Image)[0][1]);

  // --- Part 2: dependences + closure on the Fig. 1 circuit. ------------
  Circuit Fig1(6, "fig1");
  Fig1.addCx(0, 1); // G0
  Fig1.addCx(2, 3); // G1
  Fig1.addCx(1, 2); // G2
  Fig1.addCx(3, 5); // G3
  Fig1.addCx(0, 2); // G4
  Fig1.addCx(1, 5); // G5

  AffineCircuit Fig1Lifted = liftCircuit(Fig1);
  AffineDependences Deps(Fig1Lifted);
  IntegerMap TimeRel = Deps.globalTimeRelation(Fig1Lifted);
  std::printf("Fig. 1 direct dependences over trace time {t -> t'}:\n  ");
  auto Pairs = TimeRel.enumeratePairs();
  for (const auto &[In, Out] : *Pairs)
    std::printf("G%lld->G%lld ", In[0], Out[0]);
  std::printf("\n");

  ClosureResult Closure = transitiveClosure(TimeRel);
  std::printf("transitive closure (exact=%s) adds:\n  ",
              Closure.IsExact ? "yes" : "no");
  auto ClosedPairs = Closure.Closure.enumeratePairs();
  for (const auto &[In, Out] : *ClosedPairs)
    if (!TimeRel.contains(In, Out))
      std::printf("G%lld->G%lld ", In[0], Out[0]);
  std::printf("\n\n");

  // --- Part 3: the omega weights of Eq. 1. ------------------------------
  WeightOptions Exact;
  Exact.Engine = WeightEngine::Exact;
  WeightResult Omega = computeDependenceWeights(Fig1, Exact);
  std::printf("dependence weights omega (transitive dependents per "
              "gate):\n");
  for (size_t G = 0; G < Omega.Weights.size(); ++G)
    std::printf("  omega(G%zu) = %llu\n", G,
                static_cast<unsigned long long>(Omega.Weights[G]));
  std::printf("\nGates with large omega gate the critical path; Qlosure's "
              "cost (Eq. 2)\nweights look-ahead distances by omega to "
              "protect them when inserting SWAPs.\n");
  return 0;
}
