//===- examples/quickstart.cpp - Five-minute tour ----------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: parse an OpenQASM 2.0 program, route it onto IBM Sherbrooke
/// with the Qlosure mapper, verify the result, and emit the routed QASM.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "core/Qlosure.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/Verify.h"
#include "topology/Backends.h"

#include <cstdio>

using namespace qlosure;

int main() {
  // 1. An input program: a 6-qubit entangler whose long-range CNOTs are
  //    incompatible with nearest-neighbor hardware.
  const char *Source = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[6];
    h q[0];
    cx q[0], q[5];
    cx q[1], q[4];
    cx q[2], q[3];
    cx q[0], q[3];
    cx q[5], q[2];
    rz(pi/4) q[3];
    cx q[4], q[0];
  )";
  qasm::ImportResult Imported = qasm::importQasm(Source, "quickstart");
  if (!Imported.succeeded()) {
    std::fprintf(stderr, "parse error: %s\n", Imported.Error.c_str());
    return 1;
  }
  Circuit Logical = Imported.Circ->withoutNonUnitaries();
  std::printf("input: %u qubits, %zu gates, depth %zu\n",
              Logical.numQubits(), Logical.size(), Logical.depth());

  // 2. A target device: the 127-qubit heavy-hex IBM Sherbrooke.
  CouplingGraph Device = makeSherbrooke();
  std::printf("device: %s (%u qubits, %zu couplings, max degree %u)\n",
              Device.name().c_str(), Device.numQubits(), Device.numEdges(),
              Device.maxDegree());

  // 3. Route with Qlosure (dependence-driven mapping, Algorithm 1).
  QlosureRouter Router;
  RoutingResult Result = Router.routeWithIdentity(Logical, Device);
  std::printf("routed: %zu SWAPs inserted, depth %zu -> %zu, %.3f ms\n",
              Result.NumSwaps, Logical.depth(), Result.Routed.depth(),
              Result.MappingSeconds * 1000);

  // 4. Independently verify hardware adjacency + dependence preservation.
  VerifyResult Check = verifyRouting(Logical, Device, Result);
  std::printf("verification: %s\n",
              Check.Ok ? "OK" : Check.Message.c_str());

  // 5. Emit the routed circuit as OpenQASM.
  std::printf("\nrouted program:\n%s",
              qasm::printQasm(Result.Routed).c_str());
  return Check.Ok ? 0 : 1;
}
