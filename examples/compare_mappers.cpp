//===- examples/compare_mappers.cpp - Mapper shoot-out ------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routes one QFT circuit onto both of the paper's hardware backends with
/// all five mappers (SABRE, QMAP, Cirq, Pytket-style, Qlosure) and prints
/// the comparison — a miniature of the paper's Fig. 2.
///
/// Build & run:  ./build/examples/compare_mappers [num_qubits]
///
//===----------------------------------------------------------------------===//

#include "baselines/RouterRegistry.h"
#include "route/Verify.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <cstdio>
#include <cstdlib>

using namespace qlosure;

int main(int Argc, char **Argv) {
  unsigned NumQubits = 24;
  if (Argc > 1)
    NumQubits = static_cast<unsigned>(std::strtoul(Argv[1], nullptr, 10));
  Circuit Circ = makeQft(NumQubits);
  std::printf("circuit: %s — %zu gates (%zu two-qubit), depth %zu\n",
              Circ.name().c_str(), Circ.size(), Circ.numTwoQubitGates(),
              Circ.depth());

  for (const char *BackendName : {"sherbrooke", "ankaa3"}) {
    CouplingGraph Device = makeBackendByName(BackendName);
    std::printf("\non %s (%u qubits):\n", BackendName, Device.numQubits());
    Table T({"Mapper", "SWAPs", "Depth", "Delta depth", "Time (ms)",
             "Verified"});
    for (auto &Router : makePaperRouters()) {
      RoutingResult R = Router->routeWithIdentity(Circ, Device);
      VerifyResult V = verifyRouting(Circ, Device, R);
      T.addRow({Router->name(), formatString("%zu", R.NumSwaps),
                formatString("%zu", R.Routed.depth()),
                formatString("%zu", R.Routed.depth() - Circ.depth()),
                formatString("%.2f", R.MappingSeconds * 1000),
                V.Ok ? "yes" : "NO"});
    }
    std::fputs(T.render().c_str(), stdout);
  }
  return 0;
}
