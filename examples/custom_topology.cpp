//===- examples/custom_topology.cpp - Bring-your-own device -------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows how a downstream user targets their own QPU: build a custom
/// coupling graph (here a 12-qubit ring with two chords), synthesize a
/// QUEKO circuit with provably optimal depth *for that device*, route it
/// with Qlosure from the scrambled placement, and compare against the
/// known optimum.
///
/// Build & run:  ./build/examples/custom_topology
///
//===----------------------------------------------------------------------===//

#include "core/Qlosure.h"
#include "route/InitialMapping.h"
#include "route/Verify.h"
#include "topology/CouplingGraph.h"
#include "workloads/Queko.h"

#include <cstdio>

using namespace qlosure;

int main() {
  // 1. Describe the hardware: a ring with two stabilizing chords.
  CouplingGraph Device(12, "my-ring");
  for (unsigned Q = 0; Q < 12; ++Q)
    Device.addEdge(Q, (Q + 1) % 12);
  Device.addEdge(0, 6);
  Device.addEdge(3, 9);
  Device.computeDistances(); // Required before routing.
  std::printf("device '%s': %u qubits, %zu couplings, diameter %u\n",
              Device.name().c_str(), Device.numQubits(), Device.numEdges(),
              [&Device] {
                unsigned D = 0;
                for (unsigned A = 0; A < 12; ++A)
                  for (unsigned B = 0; B < 12; ++B)
                    D = std::max(D, Device.distance(A, B));
                return D;
              }());

  // 2. Synthesize a depth-40 QUEKO instance for this device: the optimal
  //    mapped depth is 40 by construction, but the circuit arrives with a
  //    scrambled qubit labeling.
  QuekoSpec Spec;
  Spec.Depth = 40;
  Spec.TwoQubitDensity = 0.5;
  Spec.Seed = 7;
  QuekoInstance Instance = generateQueko(Device, Spec);
  std::printf("workload: %zu gates (%zu two-qubit), optimal depth %u\n",
              Instance.Circ.size(), Instance.Circ.numTwoQubitGates(),
              Instance.OptimalDepth);

  // 3. Route from the identity placement, then with a bidirectional-pass
  //    initial placement (the paper's ablation variant d).
  QlosureRouter Router;
  RoutingResult Plain = Router.routeWithIdentity(Instance.Circ, Device);
  QubitMapping Derived =
      deriveBidirectionalMapping(Router, Instance.Circ, Device);
  RoutingResult Tuned = Router.route(Instance.Circ, Device, Derived);

  for (const auto *R : {&Plain, &Tuned}) {
    VerifyResult V = verifyRouting(Instance.Circ, Device, *R);
    std::printf("%s: %zu SWAPs, depth %zu (%.2fx optimal), verified=%s\n",
                R == &Plain ? "identity placement     "
                            : "bidirectional placement",
                R->NumSwaps, R->Routed.depth(),
                static_cast<double>(R->Routed.depth()) /
                    Instance.OptimalDepth,
                V.Ok ? "yes" : "NO");
  }
  return 0;
}
