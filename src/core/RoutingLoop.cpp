//===- core/RoutingLoop.cpp - The Qlosure routing kernel -----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The main loop runs out of the caller's RoutingScratch: the look-ahead
// window and the per-gate level map are epoch-stamped (O(1) reset per step
// instead of O(numGates) refills), the per-qubit touching-gate lists are
// cleared surgically via the touched-set, and every candidate/score array
// is a reused flat buffer. Only the gates hosted on the two swapped qubits
// contribute per-candidate term deltas (delta rescoring against the cached
// per-layer base sums); Eq. 2 is then evaluated element-wise over SoA
// candidate lanes (core/SimdScore.h — SIMD when enabled, bit-identical
// scalar fallback otherwise). The decision sequence is byte-identical to
// the pre-scratch implementation (bench_kernel_throughput asserts this).
//
// Replay hooks: every observable emission (program gate, SWAP, tie-break
// decision, look-ahead window) passes through the attached ReplayDriver
// when one is set. With no driver every hook is a single null check.
//
//===----------------------------------------------------------------------===//

#include "core/RoutingLoop.h"

#include "circuit/Dag.h"
#include "core/SimdScore.h"
#include "route/ReplayPlan.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace qlosure;
using qlosure::detail::RoutingLoop;

RoutingLoop::RoutingLoop(const QlosureOptions &Options,
                         const RoutingContext &Ctx,
                         const QubitMapping &Initial, RoutingScratch &Scratch,
                         const CancellationToken *Cancel)
    : Options(Options), Logical(Ctx.circuit()), Hw(Ctx.hardware()),
      Dag(Ctx.dag()), S(Scratch), Tracker(Ctx.dag(), Scratch), Phi(Initial),
      TieBreaker(Options.Seed), Cancel(Cancel) {
  S.ensurePhys(Hw.numQubits());
  S.Decay.assign(Logical.numQubits(), 1.0);
  LookaheadC = Options.LookaheadConstant ? Options.LookaheadConstant
                                         : Ctx.defaultLookahead();
  UseWeightedDistance = Options.ErrorAware && Hw.hasErrorModel();
  if (Options.UseDependencyWeights)
    Weights = &Ctx.dependenceWeights(); // Memoized in the context.
  // TouchingGates persists across route() calls; start from a clean
  // slate in case the previous user left entries behind.
  S.clearTouchingGates();
  Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
  Result.InitialMapping = Initial;
  Result.RouterName = "Qlosure";
}

RoutingResult RoutingLoop::run() {
  Timer Clock;
  // One span around the whole front-layer loop (never per-step: tracing
  // must stay off the hot path), recorded only when the serving layer
  // installed a sink.
  ScopedSpan LoopSpan(S.TraceSink, "front_layer_loop");
  while (!Tracker.allExecuted()) {
    // One cancellation poll + progress report per front-layer step: a
    // null token costs one branch and never perturbs the decisions.
    if (Cancel) {
      if (Cancel->cancelled()) {
        Result.Cancelled = true;
        break;
      }
      Cancel->reportProgress(Tracker.numExecuted(), Logical.size());
    }
    // Period boundary: the driver replays a recorded schedule (or starts
    // recording one) and returns true when it executed gates itself.
    if (Replay && Replay->maybeHandleBoundary(*this))
      continue;
    if (executeReadyGates())
      continue;
    routeOneSwap();
  }
  if (Replay)
    Replay->finalize();
  Result.FinalMapping = Phi;
  Result.MappingSeconds = Clock.elapsedSeconds();
  return std::move(Result);
}

/// Executes every currently feasible front gate. Returns true if at
/// least one gate was executed.
bool RoutingLoop::executeReadyGates() {
  bool Progress = false;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Snapshot: execute() mutates the front.
    S.Ready.clear();
    for (uint32_t G : Tracker.front())
      if (isExecutable(G))
        S.Ready.push_back(G);
    std::sort(S.Ready.begin(), S.Ready.end()); // Deterministic order.
    for (uint32_t G : S.Ready) {
      emitProgramGate(G);
      Tracker.execute(G);
      Changed = true;
      Progress = true;
    }
  }
  if (Progress) {
    // Algorithm 1 line 9: executing a gate resets the decay vector.
    std::fill(S.Decay.begin(), S.Decay.end(), 1.0);
    SwapsSinceProgress = 0;
  }
  return Progress;
}

bool RoutingLoop::isExecutable(uint32_t GateId) const {
  const Gate &G = Logical.gate(GateId);
  if (!G.isTwoQubit())
    return true;
  return Hw.areAdjacent(static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
                        static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
}

void RoutingLoop::emitProgramGate(uint32_t GateId) {
  const Gate &G = Logical.gate(GateId);
  Result.Routed.addGate(
      G.withMappedQubits([this](int32_t Q) { return Phi.physOf(Q); }));
  Result.InsertedSwapFlags.push_back(0);
  if (Replay)
    Replay->noteGateExecuted(GateId);
}

void RoutingLoop::emitSwap(unsigned P1, unsigned P2) {
  Result.Routed.addSwap(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
  Result.InsertedSwapFlags.push_back(1);
  ++Result.NumSwaps;
  // Decay penalizes the *logical* qubits that moved.
  int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
  int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
  Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
  if (L1 >= 0)
    S.Decay[static_cast<size_t>(L1)] += Options.DecayIncrement;
  if (L2 >= 0)
    S.Decay[static_cast<size_t>(L2)] += Options.DecayIncrement;
  if (Replay)
    Replay->noteSwapEmitted(P1, P2);
}

/// Builds the look-ahead window and its dependence-distance layers, then
/// applies the best-scoring candidate SWAP.
void RoutingLoop::routeOneSwap() {
  if (SwapsSinceProgress >= Options.MaxSwapsWithoutProgress) {
    forceResolveOldestGate();
    return;
  }

  buildWindowLayers();
  generateCandidates();
  assert(!S.Candidates.empty() && "no candidate SWAPs on a connected graph");

  scoreCandidates();
  double BestScore = std::numeric_limits<double>::infinity();
  for (size_t CI = 0; CI < S.Candidates.size(); ++CI)
    BestScore = std::min(BestScore, S.Scores[CI]);

  // Error-aware extension: among *exact* cost ties, prefer the
  // candidate on the least noisy coupler. Refining ties cannot perturb
  // the greedy descent of Eq. 2 at all (experiments with relaxed
  // margins, and with folding errors into the distance metric, both
  // ballooned swap counts on dense circuits — cost slack compounds over
  // thousands of decisions).
  double TieMargin = 0.0;
  S.BestIdx.clear();
  for (size_t CI = 0; CI < S.Candidates.size(); ++CI)
    if (S.Scores[CI] <= BestScore + TieMargin + 1e-12)
      S.BestIdx.push_back(CI);
  if (UseWeightedDistance && S.BestIdx.size() > 1) {
    double MinError = std::numeric_limits<double>::infinity();
    for (size_t CI : S.BestIdx)
      MinError = std::min(MinError, Hw.edgeError(S.Candidates[CI].first,
                                                 S.Candidates[CI].second));
    size_t Kept = 0;
    for (size_t CI : S.BestIdx)
      if (Hw.edgeError(S.Candidates[CI].first, S.Candidates[CI].second) <=
          MinError + 1e-12)
        S.BestIdx[Kept++] = CI;
    S.BestIdx.resize(Kept);
  }
  uint64_t Draw = TieBreaker.nextBounded(S.BestIdx.size());
  if (Replay)
    Replay->noteDecision(S.BestIdx.size(), Draw);
  size_t Pick = S.BestIdx[static_cast<size_t>(Draw)];
  emitSwap(S.Candidates[Pick].first, S.Candidates[Pick].second);
  ++SwapsSinceProgress;
}

/// Termination escape hatch: walk the oldest front 2Q gate's operands
/// together along a shortest path.
void RoutingLoop::forceResolveOldestGate() {
  uint32_t Oldest = UINT32_MAX;
  for (uint32_t G : Tracker.front())
    if (Logical.gate(G).isTwoQubit())
      Oldest = std::min(Oldest, G);
  assert(Oldest != UINT32_MAX && "stuck without a blocked 2Q gate");
  const Gate &G = Logical.gate(Oldest);
  unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
  unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
  std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
  // Move the first operand down the path until adjacent to the second.
  for (size_t I = 0; I + 2 < Path.size(); ++I)
    emitSwap(Path[I], Path[I + 1]);
  SwapsSinceProgress = 0;
}

/// Populates S.Window / S.GateLevel / the layer accumulators for the
/// current front.
void RoutingLoop::buildWindowLayers() {
  // n_f = distinct physical qubits hosting front-layer gate operands.
  S.PhysSeen.beginEpoch();
  unsigned NumFrontQubits = 0;
  for (uint32_t GI : Tracker.front()) {
    const Gate &G = Logical.gate(GI);
    unsigned N = G.numQubits();
    for (unsigned Q = 0; Q < N; ++Q) {
      unsigned P = static_cast<unsigned>(Phi.physOf(G.Qubits[Q]));
      if (!S.PhysSeen.fresh(P)) {
        S.PhysSeen.set(P, 1);
        ++NumFrontQubits;
      }
    }
  }

  // Dependence-distance levels within the window: level 1 for window
  // gates with no unexecuted predecessor inside the window, otherwise
  // the maximum predecessor level, incremented for two-qubit gates.
  // Single-qubit gates transmit their level without incrementing it —
  // only routable gates define dependence distance for Eq. 2. A stale
  // GateLevel entry reads 0 = "outside the window" (the pre-scratch
  // kernel zero-filled an O(numGates) array per step here).
  S.GateLevel.beginEpoch();
  unsigned MaxLevel = 0;
  if (!Options.UseLayerStructure) {
    // Distance-only / front-only variants: the window is just L_f.
    S.Window.assign(Tracker.front().begin(), Tracker.front().end());
    std::sort(S.Window.begin(), S.Window.end());
    for (uint32_t G : S.Window)
      S.GateLevel.set(G, 1);
    MaxLevel = 1;
  } else {
    size_t WindowSize = static_cast<size_t>(LookaheadC) * NumFrontQubits;
    // The budget counts two-qubit gates: they are the ones the cost
    // function scores, so sparse circuits with many interleaved 1Q
    // gates keep a comparable routing horizon.
    Tracker.topologicalWindow(std::max<size_t>(WindowSize, 1),
                              /*CountTwoQubitOnly=*/true); // Fills S.Window.
    for (uint32_t G : S.Window) {
      unsigned Level = 0;
      for (uint32_t Pred : Dag.predecessors(G))
        Level = std::max(Level, S.GateLevel.get(Pred)); // 0 if outside.
      bool IsTwoQubit = Logical.gate(G).isTwoQubit();
      unsigned GLevel = Level + (IsTwoQubit ? 1 : 0);
      if (!IsTwoQubit && GLevel == 0)
        GLevel = 1; // 1Q window roots sit in the front layer.
      S.GateLevel.set(G, GLevel);
      MaxLevel = std::max(MaxLevel, GLevel);
    }
  }

  // Per-layer 2Q-gate membership and base distance sums, plus the flat
  // per-scored-gate records (layer, endpoints, omega, cached base term)
  // the candidate delta pass reads — TouchingGates stores the scored
  // ordinal, so rescoring never goes back to the Gate objects. Per-qubit
  // touching lists are cleared surgically (only last step's touched
  // qubits), keeping their capacity.
  S.LayerGateCount.assign(MaxLevel + 1, 0);
  S.LayerBaseSum.assign(MaxLevel + 1, 0.0);
  S.WinLevel.clear();
  S.WinPA.clear();
  S.WinPB.clear();
  S.WinOmega.clear();
  S.WinBase.clear();
  S.clearTouchingGates();
  for (uint32_t G : S.Window) {
    const Gate &Gate2 = Logical.gate(G);
    if (!Gate2.isTwoQubit())
      continue;
    unsigned L = S.GateLevel.get(G);
    ++S.LayerGateCount[L];
    unsigned PA = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[0]));
    unsigned PB = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[1]));
    double Base = gateTerm(G, PA, PB);
    S.LayerBaseSum[L] += Base;
    uint32_t Ordinal = static_cast<uint32_t>(S.WinLevel.size());
    S.WinLevel.push_back(L);
    S.WinPA.push_back(PA);
    S.WinPB.push_back(PB);
    S.WinOmega.push_back(Options.UseDependencyWeights
                             ? static_cast<double>((*Weights)[G]) + 1.0
                             : 1.0);
    S.WinBase.push_back(Base);
    if (S.TouchingGates[PA].empty())
      S.TouchedPhys.push_back(PA);
    S.TouchingGates[PA].push_back(Ordinal);
    if (S.TouchingGates[PB].empty())
      S.TouchedPhys.push_back(PB);
    S.TouchingGates[PB].push_back(Ordinal);
  }

  if (Replay)
    Replay->noteWindow(S.Window);
}

/// The scored term of gate \p G when its operands sit on \p PA / \p PB:
/// omega_g * D(PA, PB) (omega forced to 1 without dependency weights).
/// D stays the hop metric even in error-aware mode — a weighted metric
/// has a per-edge error floor, so swaps toward true adjacency would not
/// reduce it and routing would stop converging; error-awareness instead
/// penalizes the candidate swap's own edge (see routeOneSwap).
double RoutingLoop::gateTerm(uint32_t G, unsigned PA, unsigned PB) const {
  double Omega = Options.UseDependencyWeights
                     ? static_cast<double>((*Weights)[G]) + 1.0
                     : 1.0;
  return Omega * static_cast<double>(Hw.distance(PA, PB));
}

/// Fills S.Candidates with the swaps on P_front edges.
void RoutingLoop::generateCandidates() {
  // P_front: physical qubits of blocked front-layer 2Q gates.
  S.PhysSeen.beginEpoch();
  S.PFront.clear();
  for (uint32_t GI : Tracker.front()) {
    const Gate &G = Logical.gate(GI);
    if (!G.isTwoQubit())
      continue;
    for (unsigned Q = 0; Q < 2; ++Q) {
      unsigned P = static_cast<unsigned>(Phi.physOf(G.Qubits[Q]));
      if (!S.PhysSeen.fresh(P)) {
        S.PhysSeen.set(P, 1);
        S.PFront.push_back(P);
      }
    }
  }
  std::sort(S.PFront.begin(), S.PFront.end());
  S.Candidates.clear();
  for (unsigned P1 : S.PFront) {
    for (unsigned P2 : Hw.neighbors(P1)) {
      unsigned Lo = std::min(P1, P2), Hi = std::max(P1, P2);
      bool Duplicate = false;
      for (const auto &C : S.Candidates)
        if (C.first == Lo && C.second == Hi) {
          Duplicate = true;
          break;
        }
      if (!Duplicate)
        S.Candidates.push_back({Lo, Hi});
    }
  }
}

/// Evaluates Eq. 2 for every candidate SWAP at once. Per candidate, only
/// the gates hosted on the swapped qubits contribute term deltas (delta
/// rescoring against the cached per-layer base sums); the deltas land in
/// layer-major SoA lanes and the layer combine + decay multiply then run
/// element-wise across candidates (SIMD when enabled — bit-identical to
/// the per-candidate scalar evaluation: each lane performs the same
/// operation sequence, and a gate on both swapped qubits has an exactly
/// zero delta, so skipping it never changes a bit).
void RoutingLoop::scoreCandidates() {
  const size_t NumCand = S.Candidates.size();
  const size_t NumLayers = S.LayerBaseSum.size();
  S.LaneAdjust.assign(NumLayers * NumCand, 0.0);
  S.LaneDecay.resize(NumCand);

  for (size_t CI = 0; CI < NumCand; ++CI) {
    auto [P1, P2] = S.Candidates[CI];
    auto adjustGatesOn = [&](unsigned P, unsigned Other) {
      for (uint32_t J : S.TouchingGates[P]) {
        unsigned PA = S.WinPA[J];
        unsigned PB = S.WinPB[J];
        if (PA == Other || PB == Other)
          continue; // Gate touches both swapped qubits: delta is zero.
        unsigned NewPA = PA == P1 ? P2 : (PA == P2 ? P1 : PA);
        unsigned NewPB = PB == P1 ? P2 : (PB == P2 ? P1 : PB);
        S.LaneAdjust[static_cast<size_t>(S.WinLevel[J]) * NumCand + CI] +=
            S.WinOmega[J] * static_cast<double>(Hw.distance(NewPA, NewPB)) -
            S.WinBase[J];
      }
    };
    adjustGatesOn(P1, P2);
    adjustGatesOn(P2, P1);

    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    double D1 = L1 >= 0 ? S.Decay[static_cast<size_t>(L1)] : 1.0;
    double D2 = L2 >= 0 ? S.Decay[static_cast<size_t>(L2)] : 1.0;
    S.LaneDecay[CI] = std::max(D1, D2);
  }

  S.Scores.assign(NumCand, 0.0);
  for (size_t L = 1; L < NumLayers; ++L) {
    if (S.LayerGateCount[L] == 0)
      continue;
    simd::qlosureLayerAccum(S.Scores.data(), S.LaneAdjust.data() + L * NumCand,
                            S.LayerBaseSum[L], static_cast<double>(L),
                            static_cast<double>(S.LayerGateCount[L]), NumCand);
  }
  simd::applyDecayLanes(S.Scores.data(), S.LaneDecay.data(), NumCand);
}

bool RoutingLoop::replayEmitGate(uint32_t GateId) {
  if (GateId >= Logical.size() || !Tracker.isInFront(GateId) ||
      !isExecutable(GateId))
    return false;
  emitProgramGate(GateId);
  Tracker.execute(GateId);
  return true;
}

void RoutingLoop::replayEmitSwap(unsigned P1, unsigned P2) {
  emitSwap(P1, P2);
}

void RoutingLoop::replayResetProgress() {
  std::fill(S.Decay.begin(), S.Decay.end(), 1.0);
  SwapsSinceProgress = 0;
}
