//===- core/SimdScore.h - Vector lanes for swap-candidate scoring -*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMD kernels behind the SoA score lanes: every mapper's candidate
/// scoring has been restructured from "one candidate at a time against
/// per-candidate distance arrays" into "one lane array per formula term
/// across all candidates" (RoutingScratch::Lane*), and the helpers here
/// evaluate the per-mapper formula over those lanes.
///
/// Byte-identity contract: every helper performs exactly the scalar
/// formula's operation sequence per lane — element-wise add/mul/div in the
/// same association order, no fused multiply-add, no reduction reordering —
/// so the vector path is bit-identical to the scalar fallback on every
/// input (IEEE-754 ops are correctly rounded per element; integer sums are
/// exact in double below 2^53). bench_kernel_throughput asserts this
/// against the frozen ReferenceKernel, and `--simd` compares both paths
/// gate-for-gate.
///
/// Gating: the `QLOSURE_SIMD` CMake option compiles the vector bodies in
/// or out; at runtime `setEnabled(false)` forces the scalar fallback in
/// the same binary (how the bench and the identity tests compare paths).
/// The baseline is SSE2 (guaranteed on x86-64); an AVX path widens to four
/// lanes when the compiler is allowed to emit it (-mavx / -march=...).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_CORE_SIMDSCORE_H
#define QLOSURE_CORE_SIMDSCORE_H

#include <cstddef>
#include <cstdint>

#ifndef QLOSURE_SIMD
#define QLOSURE_SIMD 1
#endif

#if QLOSURE_SIMD && (defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64))
#define QLOSURE_SIMD_COMPILED 1
#include <emmintrin.h>
#if defined(__AVX__)
#include <immintrin.h>
#endif
#else
#define QLOSURE_SIMD_COMPILED 0
#endif

namespace qlosure {
namespace simd {

/// True when the vector bodies were compiled in (QLOSURE_SIMD=ON on a
/// target with SSE2).
constexpr bool compiled() { return QLOSURE_SIMD_COMPILED != 0; }

/// Runtime toggle: when false (or when not compiled in) every helper runs
/// its scalar loop. Reads are relaxed-atomic; flip it only between route()
/// calls (the bench and tests do) — mid-route flips would still be
/// correct, just not meaningfully attributable to either path.
bool enabled();
void setEnabled(bool On);

/// "avx" / "sse2" / "scalar": the widest path the binary can take.
const char *isa();

//===----------------------------------------------------------------------===//
// Integer reductions (order-independent, exact — SIMD-safe by construction)
//===----------------------------------------------------------------------===//

/// Sum of \p N 32-bit distances, widened to 64 bits.
inline uint64_t sumU32(const unsigned *V, size_t N) {
  uint64_t Sum = 0;
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled() && N >= 8) {
    __m128i Acc = _mm_setzero_si128(); // Two u64 partial sums.
    const __m128i Zero = _mm_setzero_si128();
    for (; I + 4 <= N; I += 4) {
      __m128i L = _mm_loadu_si128(reinterpret_cast<const __m128i *>(V + I));
      Acc = _mm_add_epi64(Acc, _mm_unpacklo_epi32(L, Zero));
      Acc = _mm_add_epi64(Acc, _mm_unpackhi_epi32(L, Zero));
    }
    alignas(16) uint64_t Parts[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(Parts), Acc);
    Sum = Parts[0] + Parts[1];
  }
#endif
  for (; I < N; ++I)
    Sum += V[I];
  return Sum;
}

/// Maximum of \p N 32-bit distances (0 for an empty range).
inline unsigned maxU32(const unsigned *V, size_t N) {
  unsigned Max = 0;
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled() && N >= 8) {
    // Distances are tiny (far below 2^31), so signed epi32 max is exact.
    __m128i Acc = _mm_setzero_si128();
    for (; I + 4 <= N; I += 4) {
      __m128i L = _mm_loadu_si128(reinterpret_cast<const __m128i *>(V + I));
      __m128i Gt = _mm_cmpgt_epi32(L, Acc);
      Acc = _mm_or_si128(_mm_and_si128(Gt, L), _mm_andnot_si128(Gt, Acc));
    }
    alignas(16) unsigned Parts[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(Parts), Acc);
    for (unsigned P : Parts)
      Max = Max < P ? P : Max;
  }
#endif
  for (; I < N; ++I)
    Max = Max < V[I] ? V[I] : Max;
  return Max;
}

//===----------------------------------------------------------------------===//
// Per-mapper lane kernels. Each mirrors its scalar formula exactly.
//===----------------------------------------------------------------------===//

/// Qlosure Eq. 2, one layer's contribution across all candidates:
///   Sum[i] += ((Base + Adj[i]) / Layer) / Count
/// (the 1/l dependence-distance discount and the per-layer gate-count
/// normalization, accumulated layer-by-layer in ascending order).
inline void qlosureLayerAccum(double *Sum, const double *Adj, double Base,
                              double Layer, double Count, size_t N) {
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled()) {
#if defined(__AVX__)
    const __m256d B4 = _mm256_set1_pd(Base), L4 = _mm256_set1_pd(Layer),
                  C4 = _mm256_set1_pd(Count);
    for (; I + 4 <= N; I += 4) {
      __m256d T = _mm256_add_pd(B4, _mm256_loadu_pd(Adj + I));
      T = _mm256_div_pd(_mm256_div_pd(T, L4), C4);
      _mm256_storeu_pd(Sum + I, _mm256_add_pd(_mm256_loadu_pd(Sum + I), T));
    }
#endif
    const __m128d B2 = _mm_set1_pd(Base), L2 = _mm_set1_pd(Layer),
                  C2 = _mm_set1_pd(Count);
    for (; I + 2 <= N; I += 2) {
      __m128d T = _mm_add_pd(B2, _mm_loadu_pd(Adj + I));
      T = _mm_div_pd(_mm_div_pd(T, L2), C2);
      _mm_storeu_pd(Sum + I, _mm_add_pd(_mm_loadu_pd(Sum + I), T));
    }
  }
#endif
  for (; I < N; ++I)
    Sum[I] += ((Base + Adj[I]) / Layer) / Count;
}

/// Final decay application (Qlosure and SABRE): Out[i] = Decay[i] * Out[i].
inline void applyDecayLanes(double *Out, const double *Decay, size_t N) {
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled()) {
#if defined(__AVX__)
    for (; I + 4 <= N; I += 4)
      _mm256_storeu_pd(Out + I, _mm256_mul_pd(_mm256_loadu_pd(Decay + I),
                                              _mm256_loadu_pd(Out + I)));
#endif
    for (; I + 2 <= N; I += 2)
      _mm_storeu_pd(Out + I,
                    _mm_mul_pd(_mm_loadu_pd(Decay + I), _mm_loadu_pd(Out + I)));
  }
#endif
  for (; I < N; ++I)
    Out[I] = Decay[I] * Out[I];
}

/// SABRE: Out[i] = Decay[i] * (Front[i]/NF + (W*Ext[i])/NE); the extended
/// term is skipped (not added as zero) when the window is empty, exactly
/// like the scalar formula's branch.
inline void sabreScoreLanes(double *Out, const double *Front,
                            const double *Ext, const double *Decay, double NF,
                            double NE, double W, bool HasExt, size_t N) {
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled()) {
    const __m128d NF2 = _mm_set1_pd(NF), NE2 = _mm_set1_pd(NE),
                  W2 = _mm_set1_pd(W);
    for (; I + 2 <= N; I += 2) {
      __m128d S = _mm_div_pd(_mm_loadu_pd(Front + I), NF2);
      if (HasExt)
        S = _mm_add_pd(
            S, _mm_div_pd(_mm_mul_pd(W2, _mm_loadu_pd(Ext + I)), NE2));
      _mm_storeu_pd(Out + I, _mm_mul_pd(_mm_loadu_pd(Decay + I), S));
    }
  }
#endif
  for (; I < N; ++I) {
    double S = Front[I] / NF;
    if (HasExt)
      S += W * Ext[I] / NE;
    Out[I] = Decay[I] * S;
  }
}

/// Cirq greedy: Out[i] = Front[i] + W*Ext[i].
inline void cirqScoreLanes(double *Out, const double *Front, const double *Ext,
                           double W, size_t N) {
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled()) {
    const __m128d W2 = _mm_set1_pd(W);
    for (; I + 2 <= N; I += 2)
      _mm_storeu_pd(Out + I,
                    _mm_add_pd(_mm_loadu_pd(Front + I),
                               _mm_mul_pd(W2, _mm_loadu_pd(Ext + I))));
  }
#endif
  for (; I < N; ++I)
    Out[I] = Front[I] + W * Ext[I];
}

/// tket-style lexicographic fold: Out[i] = Max[i]*1e6 + Front[i] + W*Ext[i]
/// (left-associated, exactly the scalar expression).
inline void tketScoreLanes(double *Out, const double *Front, const double *Ext,
                           const double *Max, double W, size_t N) {
  size_t I = 0;
#if QLOSURE_SIMD_COMPILED
  if (enabled()) {
    const __m128d M6 = _mm_set1_pd(1e6), W2 = _mm_set1_pd(W);
    for (; I + 2 <= N; I += 2) {
      __m128d T = _mm_mul_pd(_mm_loadu_pd(Max + I), M6);
      T = _mm_add_pd(T, _mm_loadu_pd(Front + I));
      T = _mm_add_pd(T, _mm_mul_pd(W2, _mm_loadu_pd(Ext + I)));
      _mm_storeu_pd(Out + I, T);
    }
  }
#endif
  for (; I < N; ++I)
    Out[I] = Max[I] * 1e6 + Front[I] + W * Ext[I];
}

} // namespace simd
} // namespace qlosure

#endif // QLOSURE_CORE_SIMDSCORE_H
