//===- core/SimdScore.cpp - Runtime SIMD toggle ---------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/SimdScore.h"

#include <atomic>

namespace qlosure {
namespace simd {

namespace {
// On by default: every kernel is bit-identical either way, so the vector
// path is never a behavioral choice, only a speed one.
std::atomic<bool> Enabled{true};
} // namespace

bool enabled() {
#if QLOSURE_SIMD_COMPILED
  return Enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }

const char *isa() {
#if QLOSURE_SIMD_COMPILED
#if defined(__AVX__)
  return "avx";
#else
  return "sse2";
#endif
#else
  return "scalar";
#endif
}

} // namespace simd
} // namespace qlosure
