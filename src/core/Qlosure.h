//===- core/Qlosure.h - The Qlosure mapping algorithm -------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: the dependence-driven Qlosure qubit
/// mapper (Algorithm 1). The router maintains a front layer L_f, a dynamic
/// look-ahead window L_w of the k = c * n_f topologically earliest pending
/// gates organized into dependence-distance layers G_1..G_L, and scores
/// candidate SWAPs with the composite cost (Eq. 2)
///
///   M(s) = max(delta_q1, delta_q2) * sum_l Gamma_l / |G_l|,
///   Gamma_l = sum_{g in G_l} omega_g * D_phys(phi_s[g.q1], phi_s[g.q2]) / l
///
/// where omega is the transitive-dependence weight (deps/TransitiveWeights)
/// and delta the SABRE-style decay. The ablation knobs reproduce the four
/// variants of the paper's Fig. 8.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_CORE_QLOSURE_H
#define QLOSURE_CORE_QLOSURE_H

#include "deps/TransitiveWeights.h"
#include "route/Router.h"

#include <cstdint>

namespace qlosure {

/// Tuning and ablation options for the Qlosure router.
struct QlosureOptions {
  /// Weight look-ahead gates by their transitive-dependence count omega
  /// (Fig. 8 variant "Dependency-weighted"; false reduces omega to 1).
  bool UseDependencyWeights = true;

  /// Organize the look-ahead window into dependence-distance layers with
  /// the 1/l discount and 1/|G_l| normalization (Fig. 8 variant
  /// "Layer-adjusted"; false scores the front layer only, i.e. the
  /// "Distance-only" baseline when dependency weights are also off).
  bool UseLayerStructure = true;

  /// SABRE-style decay factor increment applied to swapped logical qubits.
  /// The paper quotes 0.001; 0.005 measured slightly better swap/depth
  /// trade-offs in this implementation and is the default.
  double DecayIncrement = 0.005;

  /// Look-ahead constant c in k = c * n_f. 0 picks 2 * maxDegree(R_hw) + 2,
  /// which satisfies the paper's "exceed the maximum degree" rule and
  /// measured best in our sweeps (see bench_fig8_ablation).
  unsigned LookaheadConstant = 0;

  /// omega computation engine (Auto = affine beyond a size threshold).
  WeightOptions Weights;

  /// Error-aware extension (the paper's future work): score look-ahead
  /// distances with the fidelity-weighted metric so SWAP traffic avoids
  /// noisy couplers. Requires an error model + weighted distances on the
  /// coupling graph (see applySyntheticErrorModel).
  bool ErrorAware = false;

  /// Affine fast path: when the context's period detector finds loop
  /// structure, route the loop body once and replay the recorded swap
  /// schedule (permutation-composed) for later iterations whose boundary
  /// state matches the recording anchor (see route/ReplayPlan.h). Any
  /// deviation falls back to the scalar kernel mid-period, so results are
  /// byte-identical to this flag being off. Most effective with
  /// UseDependencyWeights off — omega is generally aperiodic, and the
  /// replay engine refuses to replay across differing weight slices.
  bool AffineReplay = false;

  /// Random tie-breaking seed.
  uint64_t Seed = 0x5EED5EED5EEDULL;

  /// After this many SWAPs without executing any gate, force shortest-path
  /// resolution of the oldest front gate (termination guarantee).
  unsigned MaxSwapsWithoutProgress = 64;
};

/// The Qlosure qubit mapper.
class QlosureRouter : public Router {
public:
  explicit QlosureRouter(QlosureOptions Options = {});

  std::string name() const override;

  using Router::route;
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &Scratch,
                      const CancellationToken *Cancel) override;

  /// Forwards the omega engine choice so the 3-arg adapter builds
  /// contexts matching this router's configuration.
  RoutingContextOptions contextOptions() const override;

  const QlosureOptions &options() const { return Options; }

private:
  QlosureOptions Options;
};

} // namespace qlosure

#endif // QLOSURE_CORE_QLOSURE_H
