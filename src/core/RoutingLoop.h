//===- core/RoutingLoop.h - The Qlosure routing kernel ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scratch-backed main loop behind QlosureRouter::route, exposed as a
/// class so the affine replay driver (route/ReplayPlan.h) can observe its
/// emissions and drive it period-by-period. Without a driver attached the
/// loop *is* the former Qlosure.cpp-internal kernel: every hook is a null
/// check, and the decision sequence stays byte-identical to the driver-free
/// implementation (bench_kernel_throughput asserts this).
///
/// The look-ahead window and the per-gate level map are epoch-stamped
/// (O(1) reset per step instead of O(numGates) refills), the per-qubit
/// touching-gate lists are cleared surgically via the touched-set, and
/// every candidate/score array is a reused flat buffer. Only the gates
/// hosted on the two swapped qubits contribute per-candidate term deltas;
/// the deltas land in layer-major SoA lanes and Eq. 2 is then evaluated
/// element-wise across all candidates at once (core/SimdScore.h — SIMD
/// when enabled, bit-identical scalar fallback otherwise).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_CORE_ROUTINGLOOP_H
#define QLOSURE_CORE_ROUTINGLOOP_H

#include "core/Qlosure.h"
#include "route/FrontLayer.h"
#include "support/Random.h"

namespace qlosure {

class ReplayDriver;

namespace detail {

/// Routing state shared by the helper methods of the main loop. All
/// mutable buffers live in the caller's RoutingScratch.
class RoutingLoop {
public:
  RoutingLoop(const QlosureOptions &Options, const RoutingContext &Ctx,
              const QubitMapping &Initial, RoutingScratch &Scratch,
              const CancellationToken *Cancel);

  /// Attaches the affine replay driver for this run. Null (the default)
  /// is the plain scalar kernel; the observer hooks then cost one branch
  /// each and never perturb the decisions.
  void setReplayDriver(ReplayDriver *Driver) { Replay = Driver; }

  /// Routes to completion (or cancellation) and returns the result.
  RoutingResult run();

private:
  // The replay driver is the kernel's alter ego: it replays recorded
  // emission schedules through the private emit/execute primitives and
  // re-synchronizes the decision state (decay, progress counter, RNG)
  // exactly as the scalar loop would have evolved it.
  friend class qlosure::ReplayDriver;

  bool executeReadyGates();
  bool isExecutable(uint32_t GateId) const;
  void emitProgramGate(uint32_t GateId);
  void emitSwap(unsigned P1, unsigned P2);
  void routeOneSwap();
  void forceResolveOldestGate();
  void buildWindowLayers();
  double gateTerm(uint32_t G, unsigned PA, unsigned PB) const;
  void generateCandidates();
  void scoreCandidates();

  // --- Replay primitives (driver-only) ---------------------------------

  /// Emits trace gate \p GateId through the current mapping and executes
  /// it, or returns false when it is not currently executable (not in the
  /// front layer, or two-qubit operands not adjacent) — the replay must
  /// then stop and let the scalar loop resume from this exact state.
  bool replayEmitGate(uint32_t GateId);

  /// Re-applies a recorded SWAP (P1, P2 are physical indices).
  void replayEmitSwap(unsigned P1, unsigned P2);

  /// Restores the post-progress decision state (decay vector all ones,
  /// progress counter zero) — what executeReadyGates leaves behind after
  /// any pass that executed a gate.
  void replayResetProgress();

  const QlosureOptions &Options;
  const Circuit &Logical;
  const CouplingGraph &Hw;
  const CircuitDag &Dag;
  RoutingScratch &S;
  FrontLayerTracker Tracker;
  QubitMapping Phi;
  Rng TieBreaker;
  const CancellationToken *Cancel = nullptr;
  const std::vector<uint64_t> *Weights = nullptr;
  ReplayDriver *Replay = nullptr;
  unsigned LookaheadC = 0;
  unsigned SwapsSinceProgress = 0;
  bool UseWeightedDistance = false;

  RoutingResult Result;
};

} // namespace detail
} // namespace qlosure

#endif // QLOSURE_CORE_ROUTINGLOOP_H
