//===- core/Qlosure.cpp - The Qlosure mapping algorithm ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The router facade over the routing kernel (core/RoutingLoop.cpp). When
// the affine fast path is enabled and the context's period detector found
// loop structure, a ReplayDriver is attached so repeated loop bodies route
// by replaying the recorded swap schedule instead of re-scoring candidates
// (route/ReplayPlan.h documents the exactness contract).
//
//===----------------------------------------------------------------------===//

#include "core/Qlosure.h"

#include "core/RoutingLoop.h"
#include "route/ReplayPlan.h"
#include "support/Fingerprint.h"

#include <cstring>
#include <optional>

using namespace qlosure;

QlosureRouter::QlosureRouter(QlosureOptions OptionsIn)
    : Options(OptionsIn) {}

std::string QlosureRouter::name() const {
  if (Options.UseDependencyWeights && Options.UseLayerStructure)
    return "Qlosure";
  if (Options.UseLayerStructure)
    return "Qlosure(layer-only)";
  return "Qlosure(distance-only)";
}

RoutingContextOptions QlosureRouter::contextOptions() const {
  RoutingContextOptions CtxOptions;
  CtxOptions.Weights = Options.Weights;
  // Error-aware mode reads only per-edge error rates for tie-breaking
  // (see RoutingLoop::routeOneSwap); it never consults the weighted
  // distance matrix, so RequireWeightedDistances stays off.
  return CtxOptions;
}

namespace {

/// Folds every option that can influence a routing decision into the
/// replay anchor salt, so plans recorded under one configuration can never
/// match a boundary routed under another.
uint64_t replayConfigSalt(const QlosureOptions &O) {
  uint64_t DecayBits = 0;
  static_assert(sizeof(DecayBits) == sizeof(O.DecayIncrement), "");
  std::memcpy(&DecayBits, &O.DecayIncrement, sizeof(DecayBits));
  uint64_t Salt = 0x51AE17AFF1E0ULL;
  Salt = hashCombine(Salt, O.UseDependencyWeights ? 1 : 0);
  Salt = hashCombine(Salt, O.UseLayerStructure ? 1 : 0);
  Salt = hashCombine(Salt, DecayBits);
  Salt = hashCombine(Salt, O.LookaheadConstant);
  Salt = hashCombine(Salt, O.ErrorAware ? 1 : 0);
  Salt = hashCombine(Salt, O.Seed);
  Salt = hashCombine(Salt, O.MaxSwapsWithoutProgress);
  return Salt;
}

} // namespace

RoutingResult QlosureRouter::route(const RoutingContext &Ctx,
                                   const QubitMapping &Initial,
                                   RoutingScratch &Scratch,
                                   const CancellationToken *Cancel) {
  checkPreconditions(Ctx, Initial);
  detail::RoutingLoop Loop(Options, Ctx, Initial, Scratch, Cancel);
  std::optional<ReplayDriver> Driver;
  if (Options.AffineReplay) {
    if (const PeriodStructure *Period = Ctx.periodStructure()) {
      Driver.emplace(*Period, replayConfigSalt(Options),
                     Ctx.replayPlanCache());
      Driver->setTraceSink(Scratch.TraceSink);
      Loop.setReplayDriver(&*Driver);
    }
  }
  RoutingResult Result = Loop.run();
  if (Driver) {
    Result.AffineReplayedPeriods = Driver->replayedPeriods();
    Result.AffineFallbackPeriods = Driver->fallbackPeriods();
  }
  Result.RouterName = name();
  return Result;
}
