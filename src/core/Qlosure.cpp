//===- core/Qlosure.cpp - The Qlosure mapping algorithm ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Qlosure.h"

#include "circuit/Dag.h"
#include "route/FrontLayer.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace qlosure;

QlosureRouter::QlosureRouter(QlosureOptions OptionsIn)
    : Options(OptionsIn) {}

std::string QlosureRouter::name() const {
  if (Options.UseDependencyWeights && Options.UseLayerStructure)
    return "Qlosure";
  if (Options.UseLayerStructure)
    return "Qlosure(layer-only)";
  return "Qlosure(distance-only)";
}

namespace {

/// Routing state shared by the helper methods of the main loop.
class RoutingLoop {
public:
  RoutingLoop(const QlosureOptions &Options, const RoutingContext &Ctx,
              const QubitMapping &Initial)
      : Options(Options), Logical(Ctx.circuit()), Hw(Ctx.hardware()),
        Dag(Ctx.dag()), Tracker(Dag), Phi(Initial),
        TieBreaker(Options.Seed), Decay(Logical.numQubits(), 1.0) {
    LookaheadC = Options.LookaheadConstant ? Options.LookaheadConstant
                                           : Ctx.defaultLookahead();
    UseWeightedDistance = Options.ErrorAware && Hw.hasErrorModel();
    if (Options.UseDependencyWeights)
      Weights = &Ctx.dependenceWeights(); // Memoized in the context.
    Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
    Result.InitialMapping = Initial;
    Result.RouterName = "Qlosure";
  }

  RoutingResult run() {
    Timer Clock;
    while (!Tracker.allExecuted()) {
      if (executeReadyGates())
        continue;
      routeOneSwap();
    }
    Result.FinalMapping = Phi;
    Result.MappingSeconds = Clock.elapsedSeconds();
    return std::move(Result);
  }

private:
  /// Executes every currently feasible front gate. Returns true if at
  /// least one gate was executed.
  bool executeReadyGates() {
    bool Progress = false;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Copy: execute() mutates the front.
      std::vector<uint32_t> Ready;
      for (uint32_t G : Tracker.front())
        if (isExecutable(G))
          Ready.push_back(G);
      std::sort(Ready.begin(), Ready.end()); // Deterministic order.
      for (uint32_t G : Ready) {
        emitProgramGate(G);
        Tracker.execute(G);
        Changed = true;
        Progress = true;
      }
    }
    if (Progress) {
      // Algorithm 1 line 9: executing a gate resets the decay vector.
      std::fill(Decay.begin(), Decay.end(), 1.0);
      SwapsSinceProgress = 0;
    }
    return Progress;
  }

  bool isExecutable(uint32_t GateId) const {
    const Gate &G = Logical.gate(GateId);
    if (!G.isTwoQubit())
      return true;
    return Hw.areAdjacent(
        static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
        static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
  }

  void emitProgramGate(uint32_t GateId) {
    const Gate &G = Logical.gate(GateId);
    Result.Routed.addGate(G.withMappedQubits(
        [this](int32_t Q) { return Phi.physOf(Q); }));
    Result.InsertedSwapFlags.push_back(0);
  }

  void emitSwap(unsigned P1, unsigned P2) {
    Result.Routed.addSwap(static_cast<int32_t>(P1),
                          static_cast<int32_t>(P2));
    Result.InsertedSwapFlags.push_back(1);
    ++Result.NumSwaps;
    // Decay penalizes the *logical* qubits that moved.
    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    if (L1 >= 0)
      Decay[static_cast<size_t>(L1)] += Options.DecayIncrement;
    if (L2 >= 0)
      Decay[static_cast<size_t>(L2)] += Options.DecayIncrement;
  }

  /// Builds the look-ahead window and its dependence-distance layers, then
  /// applies the best-scoring candidate SWAP.
  void routeOneSwap() {
    if (SwapsSinceProgress >= Options.MaxSwapsWithoutProgress) {
      forceResolveOldestGate();
      return;
    }

    buildWindowLayers();
    std::vector<std::pair<unsigned, unsigned>> Candidates =
        generateCandidates();
    assert(!Candidates.empty() && "no candidate SWAPs on a connected graph");

    std::vector<double> Scores(Candidates.size());
    double BestScore = std::numeric_limits<double>::infinity();
    for (size_t CI = 0; CI < Candidates.size(); ++CI) {
      Scores[CI] = scoreSwap(Candidates[CI].first, Candidates[CI].second);
      BestScore = std::min(BestScore, Scores[CI]);
    }

    // Error-aware extension: among *exact* cost ties, prefer the
    // candidate on the least noisy coupler. Refining ties cannot perturb
    // the greedy descent of Eq. 2 at all (experiments with relaxed
    // margins, and with folding errors into the distance metric, both
    // ballooned swap counts on dense circuits — cost slack compounds over
    // thousands of decisions).
    double TieMargin = 0.0;
    std::vector<size_t> BestIndices;
    for (size_t CI = 0; CI < Candidates.size(); ++CI)
      if (Scores[CI] <= BestScore + TieMargin + 1e-12)
        BestIndices.push_back(CI);
    if (UseWeightedDistance && BestIndices.size() > 1) {
      double MinError = std::numeric_limits<double>::infinity();
      for (size_t CI : BestIndices)
        MinError = std::min(
            MinError, Hw.edgeError(Candidates[CI].first,
                                   Candidates[CI].second));
      std::vector<size_t> Cleanest;
      for (size_t CI : BestIndices)
        if (Hw.edgeError(Candidates[CI].first, Candidates[CI].second) <=
            MinError + 1e-12)
          Cleanest.push_back(CI);
      BestIndices = std::move(Cleanest);
    }
    size_t Pick = BestIndices[static_cast<size_t>(
        TieBreaker.nextBounded(BestIndices.size()))];
    emitSwap(Candidates[Pick].first, Candidates[Pick].second);
    ++SwapsSinceProgress;
  }

  /// Termination escape hatch: walk the oldest front 2Q gate's operands
  /// together along a shortest path.
  void forceResolveOldestGate() {
    uint32_t Oldest = UINT32_MAX;
    for (uint32_t G : Tracker.front())
      if (Logical.gate(G).isTwoQubit())
        Oldest = std::min(Oldest, G);
    assert(Oldest != UINT32_MAX && "stuck without a blocked 2Q gate");
    const Gate &G = Logical.gate(Oldest);
    unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
    unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
    std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
    // Move the first operand down the path until adjacent to the second.
    for (size_t I = 0; I + 2 < Path.size(); ++I)
      emitSwap(Path[I], Path[I + 1]);
    SwapsSinceProgress = 0;
  }

  /// Populates WindowGates / GateLayer / LayerData for the current front.
  void buildWindowLayers() {
    // n_f = distinct physical qubits hosting front-layer gate operands.
    std::vector<uint8_t> SeenPhys(Hw.numQubits(), 0);
    unsigned NumFrontQubits = 0;
    for (uint32_t GI : Tracker.front()) {
      const Gate &G = Logical.gate(GI);
      unsigned N = G.numQubits();
      for (unsigned Q = 0; Q < N; ++Q) {
        unsigned P = static_cast<unsigned>(Phi.physOf(G.Qubits[Q]));
        if (!SeenPhys[P]) {
          SeenPhys[P] = 1;
          ++NumFrontQubits;
        }
      }
    }
    size_t WindowSize = static_cast<size_t>(LookaheadC) * NumFrontQubits;
    // The budget counts two-qubit gates: they are the ones the cost
    // function scores, so sparse circuits with many interleaved 1Q gates
    // keep a comparable routing horizon.
    WindowGates = Tracker.topologicalWindow(std::max<size_t>(WindowSize, 1),
                                            /*CountTwoQubitOnly=*/true);

    // Dependence-distance levels within the window: level 1 for window
    // gates with no unexecuted predecessor inside the window, otherwise
    // the maximum predecessor level, incremented for two-qubit gates.
    // Single-qubit gates transmit their level without incrementing it —
    // only routable gates define dependence distance for Eq. 2.
    GateLevel.assign(Logical.size(), 0);
    unsigned MaxLevel = 0;
    if (!Options.UseLayerStructure) {
      // Distance-only / front-only variants: the window is just L_f.
      WindowGates.clear();
      for (uint32_t G : Tracker.front())
        WindowGates.push_back(G);
      std::sort(WindowGates.begin(), WindowGates.end());
      for (uint32_t G : WindowGates)
        GateLevel[G] = 1;
      MaxLevel = 1;
    } else {
      for (uint32_t G : WindowGates) {
        unsigned Level = 0;
        for (uint32_t Pred : Dag.predecessors(G))
          Level = std::max(Level, GateLevel[Pred]); // 0 if outside window.
        bool IsTwoQubit = Logical.gate(G).isTwoQubit();
        GateLevel[G] = Level + (IsTwoQubit ? 1 : 0);
        if (!IsTwoQubit && GateLevel[G] == 0)
          GateLevel[G] = 1; // 1Q window roots sit in the front layer.
        MaxLevel = std::max(MaxLevel, GateLevel[G]);
      }
    }

    // Per-layer 2Q-gate membership and base distance sums.
    LayerGateCount.assign(MaxLevel + 1, 0);
    LayerBaseSum.assign(MaxLevel + 1, 0.0);
    TouchingGates.clear();
    TouchingGates.resize(Hw.numQubits());
    for (uint32_t G : WindowGates) {
      const Gate &Gate2 = Logical.gate(G);
      if (!Gate2.isTwoQubit())
        continue;
      unsigned L = GateLevel[G];
      ++LayerGateCount[L];
      unsigned PA = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[0]));
      unsigned PB = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[1]));
      LayerBaseSum[L] += gateTerm(G, PA, PB);
      TouchingGates[PA].push_back(G);
      TouchingGates[PB].push_back(G);
    }
  }

  /// The scored term of gate \p G when its operands sit on \p PA / \p PB:
  /// omega_g * D(PA, PB) (omega forced to 1 without dependency weights).
  /// D stays the hop metric even in error-aware mode — a weighted metric
  /// has a per-edge error floor, so swaps toward true adjacency would not
  /// reduce it and routing would stop converging; error-awareness instead
  /// penalizes the candidate swap's own edge (see scoreSwap).
  double gateTerm(uint32_t G, unsigned PA, unsigned PB) const {
    double Omega = Options.UseDependencyWeights
                       ? static_cast<double>((*Weights)[G]) + 1.0
                       : 1.0;
    return Omega * static_cast<double>(Hw.distance(PA, PB));
  }

  std::vector<std::pair<unsigned, unsigned>> generateCandidates() const {
    // P_front: physical qubits of blocked front-layer 2Q gates.
    std::vector<uint8_t> InPFront(Hw.numQubits(), 0);
    std::vector<unsigned> PFront;
    for (uint32_t GI : Tracker.front()) {
      const Gate &G = Logical.gate(GI);
      if (!G.isTwoQubit())
        continue;
      for (unsigned Q = 0; Q < 2; ++Q) {
        unsigned P = static_cast<unsigned>(Phi.physOf(G.Qubits[Q]));
        if (!InPFront[P]) {
          InPFront[P] = 1;
          PFront.push_back(P);
        }
      }
    }
    std::sort(PFront.begin(), PFront.end());
    std::vector<std::pair<unsigned, unsigned>> Candidates;
    for (unsigned P1 : PFront) {
      for (unsigned P2 : Hw.neighbors(P1)) {
        unsigned Lo = std::min(P1, P2), Hi = std::max(P1, P2);
        bool Duplicate = false;
        for (const auto &C : Candidates)
          if (C.first == Lo && C.second == Hi) {
            Duplicate = true;
            break;
          }
        if (!Duplicate)
          Candidates.push_back({Lo, Hi});
      }
    }
    return Candidates;
  }

  /// Evaluates Eq. 2 for the candidate SWAP (P1, P2) by adjusting the
  /// cached per-layer base sums with the terms of affected gates only.
  double scoreSwap(unsigned P1, unsigned P2) {
    LayerAdjust.assign(LayerBaseSum.size(), 0.0);
    ++VisitEpoch;
    if (VisitStamp.size() < Logical.size())
      VisitStamp.assign(Logical.size(), 0);
    auto adjustGatesOn = [&](unsigned P) {
      for (uint32_t G : TouchingGates[P]) {
        if (VisitStamp[G] == VisitEpoch)
          continue; // Gate touches both swapped qubits: visit once.
        VisitStamp[G] = VisitEpoch;
        const Gate &Gate2 = Logical.gate(G);
        unsigned PA = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[0]));
        unsigned PB = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[1]));
        unsigned NewPA = PA == P1 ? P2 : (PA == P2 ? P1 : PA);
        unsigned NewPB = PB == P1 ? P2 : (PB == P2 ? P1 : PB);
        unsigned L = GateLevel[G];
        LayerAdjust[L] += gateTerm(G, NewPA, NewPB) - gateTerm(G, PA, PB);
      }
    };
    adjustGatesOn(P1);
    adjustGatesOn(P2);

    double Sum = 0;
    for (size_t L = 1; L < LayerBaseSum.size(); ++L) {
      if (LayerGateCount[L] == 0)
        continue;
      double Gamma = (LayerBaseSum[L] + LayerAdjust[L]) /
                     static_cast<double>(L); // 1/l layer discount.
      Sum += Gamma / static_cast<double>(LayerGateCount[L]);
    }

    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    double D1 = L1 >= 0 ? Decay[static_cast<size_t>(L1)] : 1.0;
    double D2 = L2 >= 0 ? Decay[static_cast<size_t>(L2)] : 1.0;
    return std::max(D1, D2) * Sum;
  }

  const QlosureOptions &Options;
  const Circuit &Logical;
  const CouplingGraph &Hw;
  const CircuitDag &Dag;
  FrontLayerTracker Tracker;
  QubitMapping Phi;
  Rng TieBreaker;
  std::vector<double> Decay;
  const std::vector<uint64_t> *Weights = nullptr;
  unsigned LookaheadC = 0;
  unsigned SwapsSinceProgress = 0;
  bool UseWeightedDistance = false;

  // Window scratch state, rebuilt before each swap decision.
  std::vector<uint32_t> WindowGates;
  std::vector<unsigned> GateLevel;
  std::vector<uint32_t> LayerGateCount;
  std::vector<double> LayerBaseSum;
  std::vector<double> LayerAdjust;
  std::vector<std::vector<uint32_t>> TouchingGates;
  std::vector<uint64_t> VisitStamp;
  uint64_t VisitEpoch = 0;

  RoutingResult Result;
};

} // namespace

RoutingContextOptions QlosureRouter::contextOptions() const {
  RoutingContextOptions CtxOptions;
  CtxOptions.Weights = Options.Weights;
  // Error-aware mode reads only per-edge error rates for tie-breaking
  // (see scoreSwap); it never consults the weighted distance matrix, so
  // RequireWeightedDistances stays off.
  return CtxOptions;
}

RoutingResult QlosureRouter::route(const RoutingContext &Ctx,
                                   const QubitMapping &Initial) {
  checkPreconditions(Ctx, Initial);
  RoutingLoop Loop(Options, Ctx, Initial);
  RoutingResult Result = Loop.run();
  Result.RouterName = name();
  return Result;
}
