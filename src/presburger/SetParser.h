//===- presburger/SetParser.h - ISL-style set/map notation --------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the ISL-style notation the paper (and the polyhedral
/// literature) writes sets and relations in:
///
///   parseIntegerSet("{ [i, j] : 0 <= i < 10 and j = 2i + 1 }")
///   parseIntegerMap("{ [i] -> [i + 3] : 0 <= i <= 9 }")
///
/// Supported syntax: one tuple (sets) or an input/output tuple pair
/// (maps); affine terms with integer coefficients ("2i", "3 * j", "-k");
/// chained comparisons ("0 <= i < n" is not supported — bounds must be
/// numeric); 'and' conjunctions; 'or' producing unions of disjuncts.
/// Existential quantifiers are not part of the surface syntax (build those
/// programmatically via BasicSet).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_SETPARSER_H
#define QLOSURE_PRESBURGER_SETPARSER_H

#include "presburger/IntegerMap.h"
#include "presburger/IntegerSet.h"

#include <optional>
#include <string>

namespace qlosure {
namespace presburger {

/// Outcome of a notation parse; exactly one of Set/Error is meaningful.
struct SetParseResult {
  std::optional<IntegerSet> Set;
  std::string Error;
  bool succeeded() const { return Set.has_value(); }
};

/// Outcome of a map parse.
struct MapParseResult {
  std::optional<IntegerMap> Map;
  std::string Error;
  bool succeeded() const { return Map.has_value(); }
};

/// Parses "{ [v0, v1, ...] : constraints }".
SetParseResult parseIntegerSet(const std::string &Text);

/// Parses "{ [in...] -> [out...] : constraints }". Output coordinates may
/// be affine expressions of the inputs ("[i] -> [i + 1, 2i]"), which
/// desugars to fresh output variables plus equality constraints.
MapParseResult parseIntegerMap(const std::string &Text);

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_SETPARSER_H
