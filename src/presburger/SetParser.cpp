//===- presburger/SetParser.cpp - ISL-style set/map notation ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/SetParser.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace qlosure;
using namespace qlosure::presburger;

namespace {

enum class TokKind : uint8_t {
  Identifier,
  Integer,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Colon,
  Arrow,
  Plus,
  Minus,
  Star,
  Le,
  Lt,
  Ge,
  Gt,
  Eq,
  KwAnd,
  KwOr,
  End,
  Bad
};

struct Tok {
  TokKind Kind = TokKind::Bad;
  std::string Text;
};

std::vector<Tok> lex(const std::string &Text, std::string &Error) {
  std::vector<Tok> Toks;
  size_t I = 0;
  auto push = [&Toks](TokKind Kind, std::string T = "") {
    Toks.push_back({Kind, std::move(T)});
  };
  while (I < Text.size()) {
    char C = Text[I];
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Word;
      while (I < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[I])) ||
              Text[I] == '_' || Text[I] == '\''))
        Word.push_back(Text[I++]);
      if (Word == "and")
        push(TokKind::KwAnd);
      else if (Word == "or")
        push(TokKind::KwOr);
      else
        push(TokKind::Identifier, std::move(Word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Num;
      while (I < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[I])))
        Num.push_back(Text[I++]);
      push(TokKind::Integer, std::move(Num));
      continue;
    }
    ++I;
    switch (C) {
    case '{':
      push(TokKind::LBrace);
      break;
    case '}':
      push(TokKind::RBrace);
      break;
    case '[':
      push(TokKind::LBracket);
      break;
    case ']':
      push(TokKind::RBracket);
      break;
    case ',':
      push(TokKind::Comma);
      break;
    case ':':
      push(TokKind::Colon);
      break;
    case '+':
      push(TokKind::Plus);
      break;
    case '*':
      push(TokKind::Star);
      break;
    case '-':
      if (I < Text.size() && Text[I] == '>') {
        ++I;
        push(TokKind::Arrow);
      } else {
        push(TokKind::Minus);
      }
      break;
    case '<':
      if (I < Text.size() && Text[I] == '=') {
        ++I;
        push(TokKind::Le);
      } else {
        push(TokKind::Lt);
      }
      break;
    case '>':
      if (I < Text.size() && Text[I] == '=') {
        ++I;
        push(TokKind::Ge);
      } else {
        push(TokKind::Gt);
      }
      break;
    case '=':
      if (I < Text.size() && Text[I] == '=')
        ++I; // '==' and '=' are synonyms.
      push(TokKind::Eq);
      break;
    default:
      Error = formatString("unexpected character '%c'", C);
      push(TokKind::Bad);
      return Toks;
    }
  }
  push(TokKind::End);
  return Toks;
}

/// Recursive-descent parser over the token stream.
class NotationParser {
public:
  NotationParser(std::vector<Tok> Toks) : Toks(std::move(Toks)) {}

  /// Parses either form; NumIn < 0 encodes "this was a set".
  bool run(bool ExpectMap) {
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    if (!parseTuple(/*IsOutput=*/false))
      return false;
    NumIn = static_cast<int>(Vars.size());
    if (ExpectMap) {
      if (!expect(TokKind::Arrow, "'->'"))
        return false;
      if (!parseTuple(/*IsOutput=*/true))
        return false;
    }
    if (peek().Kind == TokKind::Colon) {
      advance();
      if (!parseDisjunction())
        return false;
    } else {
      Disjuncts.push_back({}); // Universe.
    }
    return expect(TokKind::RBrace, "'}'") &&
           expect(TokKind::End, "end of input");
  }

  std::string ErrorMessage;
  std::vector<std::string> Vars; ///< Tuple variables, inputs then outputs.
  int NumIn = 0;
  /// Equality constraints from affine output-tuple entries; these join
  /// every disjunct.
  std::vector<Constraint> TupleEqs;
  std::vector<std::vector<Constraint>> Disjuncts;

  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }

private:
  const Tok &peek() const { return Toks[Pos]; }
  const Tok &advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  bool fail(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = Message;
    return false;
  }

  bool expect(TokKind Kind, const char *What) {
    if (peek().Kind == Kind) {
      advance();
      return true;
    }
    return fail(std::string("expected ") + What);
  }

  int varIndex(const std::string &Name) const {
    for (size_t I = 0; I < Vars.size(); ++I)
      if (Vars[I] == Name)
        return static_cast<int>(I);
    return -1;
  }

  /// Parses "[ entry, entry, ... ]". Input entries must be fresh
  /// identifiers. Output entries may be affine expressions of the inputs,
  /// which become fresh anonymous variables pinned by an equality.
  bool parseTuple(bool IsOutput) {
    if (!expect(TokKind::LBracket, "'['"))
      return false;
    if (peek().Kind == TokKind::RBracket) { // Zero-dimensional tuple.
      advance();
      return true;
    }
    for (;;) {
      if (!IsOutput) {
        if (peek().Kind != TokKind::Identifier)
          return fail("input tuple entries must be identifiers");
        std::string Name = advance().Text;
        if (varIndex(Name) >= 0)
          return fail("duplicate tuple variable '" + Name + "'");
        Vars.push_back(std::move(Name));
      } else {
        // A lone fresh identifier names the output variable; anything else
        // is an expression over already-bound variables.
        if (peek().Kind == TokKind::Identifier &&
            varIndex(peek().Text) < 0 &&
            (Toks[Pos + 1].Kind == TokKind::Comma ||
             Toks[Pos + 1].Kind == TokKind::RBracket)) {
          Vars.push_back(advance().Text);
        } else {
          // Parse the expression first over the current space, then widen.
          PendingExprs.push_back(Pos);
          // Skip tokens until ',' or ']' at bracket depth 0.
          int Depth = 0;
          while (!((peek().Kind == TokKind::Comma ||
                    peek().Kind == TokKind::RBracket) &&
                   Depth == 0)) {
            if (peek().Kind == TokKind::LBracket)
              ++Depth;
            if (peek().Kind == TokKind::RBracket)
              --Depth;
            if (peek().Kind == TokKind::End)
              return fail("unterminated output tuple");
            advance();
          }
          Vars.push_back(formatString("$out%zu", Vars.size()));
        }
      }
      if (peek().Kind == TokKind::Comma) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokKind::RBracket, "']'"))
      return false;
    if (IsOutput && !PendingExprs.empty()) {
      // Re-parse the recorded expressions now that the full space exists.
      size_t SavedPos = Pos;
      size_t OutVar = static_cast<size_t>(NumIn);
      // Walk output entries again in order; identifiers were bound
      // directly, expression entries recorded their token start.
      size_t ExprIdx = 0;
      for (size_t V = static_cast<size_t>(NumIn); V < Vars.size(); ++V) {
        if (Vars[V].rfind("$out", 0) != 0) {
          ++OutVar;
          continue;
        }
        Pos = PendingExprs[ExprIdx++];
        AffineExpr E(numVars());
        if (!parseAffine(E))
          return false;
        AffineExpr Var = AffineExpr::variable(numVars(), static_cast<unsigned>(V));
        TupleEqs.push_back(makeEqExpr(std::move(Var), std::move(E)));
        ++OutVar;
      }
      Pos = SavedPos;
    }
    return true;
  }

  bool parseDisjunction() {
    for (;;) {
      std::vector<Constraint> Conj;
      if (!parseConjunction(Conj))
        return false;
      Disjuncts.push_back(std::move(Conj));
      if (peek().Kind == TokKind::KwOr) {
        advance();
        continue;
      }
      return true;
    }
  }

  bool parseConjunction(std::vector<Constraint> &Out) {
    for (;;) {
      if (!parseComparisonChain(Out))
        return false;
      if (peek().Kind == TokKind::KwAnd) {
        advance();
        continue;
      }
      return true;
    }
  }

  /// affine (relop affine)+ with chaining: "0 <= i <= 9".
  bool parseComparisonChain(std::vector<Constraint> &Out) {
    AffineExpr Lhs(numVars());
    if (!parseAffine(Lhs))
      return false;
    bool AnyRelop = false;
    for (;;) {
      TokKind Kind = peek().Kind;
      if (Kind != TokKind::Le && Kind != TokKind::Lt && Kind != TokKind::Ge &&
          Kind != TokKind::Gt && Kind != TokKind::Eq)
        break;
      advance();
      AnyRelop = true;
      AffineExpr Rhs(numVars());
      if (!parseAffine(Rhs))
        return false;
      switch (Kind) {
      case TokKind::Le:
        Out.push_back(makeLe(Lhs, Rhs));
        break;
      case TokKind::Lt:
        Out.push_back(makeLe(Lhs + AffineExpr::constant(numVars(), 1), Rhs));
        break;
      case TokKind::Ge:
        Out.push_back(makeGe(Lhs, Rhs));
        break;
      case TokKind::Gt:
        Out.push_back(makeGe(Lhs, Rhs + AffineExpr::constant(numVars(), 1)));
        break;
      case TokKind::Eq:
        Out.push_back(makeEqExpr(Lhs, Rhs));
        break;
      default:
        break;
      }
      Lhs = std::move(Rhs);
    }
    if (!AnyRelop)
      return fail("expected a comparison");
    return true;
  }

  /// term (('+'|'-') term)*.
  bool parseAffine(AffineExpr &Out) {
    Out = AffineExpr(numVars());
    int64_t Sign = 1;
    if (peek().Kind == TokKind::Minus) {
      advance();
      Sign = -1;
    }
    if (!parseTerm(Out, Sign))
      return false;
    for (;;) {
      if (peek().Kind == TokKind::Plus) {
        advance();
        if (!parseTerm(Out, 1))
          return false;
      } else if (peek().Kind == TokKind::Minus) {
        advance();
        if (!parseTerm(Out, -1))
          return false;
      } else {
        return true;
      }
    }
  }

  /// INT | ID | INT ['*'] ID | INT '*' INT (folded).
  bool parseTerm(AffineExpr &Out, int64_t Sign) {
    if (peek().Kind == TokKind::Integer) {
      int64_t Value = std::strtoll(advance().Text.c_str(), nullptr, 10);
      // Optional juxtaposed or starred variable: "2i" / "2 * i".
      if (peek().Kind == TokKind::Star)
        advance();
      if (peek().Kind == TokKind::Identifier) {
        int Var = varIndex(peek().Text);
        if (Var < 0)
          return fail("unknown variable '" + peek().Text + "'");
        advance();
        Out.setCoefficient(static_cast<unsigned>(Var),
                           Out.coefficient(static_cast<unsigned>(Var)) +
                               Sign * Value);
        return true;
      }
      Out.setConstantTerm(Out.constantTerm() + Sign * Value);
      return true;
    }
    if (peek().Kind == TokKind::Identifier) {
      int Var = varIndex(peek().Text);
      if (Var < 0)
        return fail("unknown variable '" + peek().Text + "'");
      advance();
      // Optional "* INT" after the variable.
      int64_t Scale = 1;
      if (peek().Kind == TokKind::Star) {
        advance();
        if (peek().Kind != TokKind::Integer)
          return fail("expected an integer after '*'");
        Scale = std::strtoll(advance().Text.c_str(), nullptr, 10);
      }
      Out.setCoefficient(static_cast<unsigned>(Var),
                         Out.coefficient(static_cast<unsigned>(Var)) +
                             Sign * Scale);
      return true;
    }
    return fail("expected a term");
  }

  std::vector<Tok> Toks;
  size_t Pos = 0;
  std::vector<size_t> PendingExprs;
};

} // namespace

SetParseResult presburger::parseIntegerSet(const std::string &Text) {
  SetParseResult Result;
  std::string LexError;
  NotationParser P(lex(Text, LexError));
  if (!LexError.empty()) {
    Result.Error = LexError;
    return Result;
  }
  if (!P.run(/*ExpectMap=*/false)) {
    Result.Error = P.ErrorMessage;
    return Result;
  }
  IntegerSet Set(P.numVars());
  for (const auto &Conj : P.Disjuncts) {
    BasicSet Piece(P.numVars());
    for (const Constraint &C : Conj)
      Piece.addConstraint(C);
    Set.addPiece(std::move(Piece));
  }
  Result.Set = std::move(Set);
  return Result;
}

MapParseResult presburger::parseIntegerMap(const std::string &Text) {
  MapParseResult Result;
  std::string LexError;
  NotationParser P(lex(Text, LexError));
  if (!LexError.empty()) {
    Result.Error = LexError;
    return Result;
  }
  if (!P.run(/*ExpectMap=*/true)) {
    Result.Error = P.ErrorMessage;
    return Result;
  }
  unsigned NumIn = static_cast<unsigned>(P.NumIn);
  unsigned NumOut = P.numVars() - NumIn;
  IntegerMap Map(NumIn, NumOut);
  for (const auto &Conj : P.Disjuncts) {
    BasicSet Piece(P.numVars());
    for (const Constraint &C : P.TupleEqs)
      Piece.addConstraint(C);
    for (const Constraint &C : Conj)
      Piece.addConstraint(C);
    Map.addPiece(BasicMap(NumIn, NumOut, std::move(Piece)));
  }
  Result.Map = std::move(Map);
  return Result;
}
