//===- presburger/Permutation.cpp - Permutations from relations ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/Permutation.h"

using namespace qlosure;
using namespace qlosure::presburger;

std::optional<std::vector<int32_t>>
presburger::extractPermutation(const IntegerMap &Rel, unsigned NumQubits,
                               size_t MaxPairs) {
  if (Rel.numIn() != 1 || Rel.numOut() != 1)
    return std::nullopt;

  std::optional<std::vector<std::pair<Point, Point>>> Pairs =
      Rel.enumeratePairs(MaxPairs);
  if (!Pairs)
    return std::nullopt;

  std::vector<int32_t> To(NumQubits, -1);
  std::vector<uint8_t> Used(NumQubits, 0);
  for (const auto &[In, Out] : *Pairs) {
    int64_t Src = In[0], Dst = Out[0];
    if (Src < 0 || Src >= NumQubits || Dst < 0 || Dst >= NumQubits)
      return std::nullopt;
    if (To[Src] == Dst)
      continue; // Same pair contributed by several pieces.
    if (To[Src] != -1 || Used[Dst])
      return std::nullopt; // Not functional / not injective.
    To[Src] = static_cast<int32_t>(Dst);
    Used[Dst] = 1;
  }

  // Completion pass 1: a qubit the relation never mentions stays fixed.
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    if (To[Q] == -1 && !Used[Q]) {
      To[Q] = static_cast<int32_t>(Q);
      Used[Q] = 1;
    }
  // Completion pass 2: pair the leftover sources and images in ascending
  // order (both lists have equal length by counting).
  unsigned NextImage = 0;
  for (unsigned Q = 0; Q < NumQubits; ++Q) {
    if (To[Q] != -1)
      continue;
    while (NextImage < NumQubits && Used[NextImage])
      ++NextImage;
    To[Q] = static_cast<int32_t>(NextImage);
    Used[NextImage] = 1;
  }
  return To;
}
