//===- presburger/BasicSet.h - Conjunctive integer sets ----------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BasicSet is a conjunction of affine constraints over a space of visible
/// (set) variables plus trailing existentially quantified variables:
///
///   { [x1..xn] : exists e1..em . /\ constraints(x, e) }
///
/// Membership and enumeration are exact for bounded sets: candidate ranges
/// come from (rational) Fourier-Motzkin bounds and every candidate is checked
/// against the integer constraints, including a search over the existential
/// variables.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_BASICSET_H
#define QLOSURE_PRESBURGER_BASICSET_H

#include "presburger/AffineExpr.h"

#include <optional>
#include <string>
#include <vector>

namespace qlosure {
namespace presburger {

/// Inclusive variable bounds produced by Fourier-Motzkin projection.
struct VarBounds {
  int64_t Lower;
  int64_t Upper;
  bool HasLower = false;
  bool HasUpper = false;
};

/// A conjunction of affine constraints with optional existential variables.
class BasicSet {
public:
  BasicSet() = default;

  /// Creates the universe set over \p NumDims visible variables and
  /// \p NumExists existential variables.
  explicit BasicSet(unsigned NumDims, unsigned NumExists = 0)
      : NumDims(NumDims), NumExists(NumExists) {}

  unsigned numDims() const { return NumDims; }
  unsigned numExists() const { return NumExists; }
  unsigned numTotalVars() const { return NumDims + NumExists; }
  const std::vector<Constraint> &constraints() const { return Conss; }

  /// Appends \p C, which must range over numTotalVars() variables.
  void addConstraint(Constraint C);

  /// Convenience: adds Lower <= x_Var <= Upper.
  void addBounds(unsigned Var, int64_t Lower, int64_t Upper);

  /// Exact membership for a visible point (searches existentials if any).
  bool contains(const Point &P) const;

  /// True if the constraint system is syntactically contradictory after
  /// normalization (cheap check; may return false for deeper emptiness).
  bool isTriviallyEmpty() const;

  /// True if the set has no integer points. Requires the visible space to be
  /// bounded (asserts otherwise via enumeratePoints).
  bool isEmpty() const;

  /// Enumerates all visible integer points. Returns std::nullopt if a
  /// variable is unbounded or more than \p MaxPoints points were found.
  std::optional<std::vector<Point>>
  enumeratePoints(size_t MaxPoints = DefaultEnumerationBudget) const;

  /// Fourier-Motzkin bounds for the visible variable \p Var after rationally
  /// eliminating all other variables. A sound over-approximation: the true
  /// integer bounds are within the returned range.
  VarBounds boundsForVar(unsigned Var) const;

  /// Intersects with \p Other over the same visible space. Existential
  /// variables of both operands are concatenated.
  BasicSet intersect(const BasicSet &Other) const;

  /// Converts the last \p Count visible variables into existentials
  /// (i.e. projects them out of the visible space).
  BasicSet projectOutTrailing(unsigned Count) const;

  /// Reorders/renames visible variables: new visible var J is the old
  /// visible var Permutation[J]. Existentials are kept.
  BasicSet permuteDims(const std::vector<unsigned> &Permutation) const;

  /// Appends \p Count fresh unconstrained visible variables placed after the
  /// current visible variables (existentials stay last).
  BasicSet appendDims(unsigned Count) const;

  /// Substitutes visible variable \p Var := Value and removes the variable
  /// from the visible space.
  BasicSet fixAndRemoveDim(unsigned Var, int64_t Value) const;

  /// Normalizes constraints (GCD reduction, duplicate removal, constant
  /// folding). Returns false if a contradiction was detected.
  bool simplify();

  /// Renders like "{ [x0, x1] : x0 >= 0 and ... }" for debugging.
  std::string toString() const;

  static constexpr size_t DefaultEnumerationBudget = 4000000;

private:
  /// Searches existential assignments satisfying all constraints given fixed
  /// visible values. \p P has numTotalVars entries; entries [NumDims, end)
  /// are scratch.
  bool searchExistentials(Point &P, unsigned ExistIndex,
                          const std::vector<Constraint> &Remaining) const;

  unsigned NumDims = 0;
  unsigned NumExists = 0;
  std::vector<Constraint> Conss;
};

/// Rationally eliminates variable \p Var from \p Constraints (classic
/// Fourier-Motzkin combination of lower and upper bounds). The result is a
/// sound over-approximation of the integer projection and ranges over the
/// same variable space with \p Var's coefficients zeroed.
std::vector<Constraint>
fourierMotzkinEliminate(const std::vector<Constraint> &Constraints,
                        unsigned Var, unsigned NumVars);

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_BASICSET_H
