//===- presburger/IntegerSet.h - Unions of basic sets ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An IntegerSet is a finite union of BasicSets over a common visible space,
/// mirroring isl_set. Operations are exact on bounded sets.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_INTEGERSET_H
#define QLOSURE_PRESBURGER_INTEGERSET_H

#include "presburger/BasicSet.h"

#include <optional>
#include <string>
#include <vector>

namespace qlosure {
namespace presburger {

/// A union of conjunctive pieces over Z^n.
class IntegerSet {
public:
  IntegerSet() = default;

  /// Creates the empty set over \p NumDims variables.
  explicit IntegerSet(unsigned NumDims) : NumDims(NumDims) {}

  /// Creates a set holding a single disjunct.
  explicit IntegerSet(BasicSet Piece);

  /// The universe Z^NumDims.
  static IntegerSet universe(unsigned NumDims);

  /// The box [Lo_0, Hi_0] x ... (inclusive bounds).
  static IntegerSet box(const std::vector<std::pair<int64_t, int64_t>> &Bounds);

  unsigned numDims() const { return NumDims; }
  const std::vector<BasicSet> &pieces() const { return Pieces; }
  bool hasPieces() const { return !Pieces.empty(); }

  /// Adds a disjunct (must share the visible space).
  void addPiece(BasicSet Piece);

  /// Exact membership test.
  bool contains(const Point &P) const;

  /// Union with \p Other (shared visible space).
  IntegerSet unionWith(const IntegerSet &Other) const;

  /// Intersection with \p Other (pairwise piece intersection).
  IntegerSet intersect(const IntegerSet &Other) const;

  /// True when no piece has an integer point (requires boundedness).
  bool isEmpty() const;

  /// Enumerates distinct points of the union. std::nullopt when unbounded
  /// or when the budget is exceeded.
  std::optional<std::vector<Point>>
  enumeratePoints(size_t MaxPoints = BasicSet::DefaultEnumerationBudget) const;

  /// Exact number of distinct points (duplicates across pieces collapse).
  /// std::nullopt when unbounded / over budget.
  std::optional<int64_t>
  cardinality(size_t MaxPoints = BasicSet::DefaultEnumerationBudget) const;

  /// Drops trivially empty pieces.
  void simplify();

  std::string toString() const;

private:
  unsigned NumDims = 0;
  std::vector<BasicSet> Pieces;
};

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_INTEGERSET_H
