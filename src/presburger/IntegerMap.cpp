//===- presburger/IntegerMap.cpp - Integer relations -------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/IntegerMap.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace qlosure;
using namespace qlosure::presburger;

BasicMap::BasicMap(unsigned NumIn, unsigned NumOut, BasicSet SetIn)
    : NumIn(NumIn), NumOut(NumOut), Set(std::move(SetIn)) {
  assert(Set.numDims() == NumIn + NumOut && "wrapped set arity mismatch");
}

BasicMap BasicMap::universe(unsigned NumIn, unsigned NumOut) {
  return BasicMap(NumIn, NumOut, BasicSet(NumIn + NumOut));
}

BasicMap BasicMap::identity(const BasicSet &Domain) {
  unsigned N = Domain.numDims();
  BasicSet Set = Domain.appendDims(N);
  unsigned Total = Set.numTotalVars();
  for (unsigned V = 0; V < N; ++V)
    Set.addConstraint(makeEqExpr(AffineExpr::variable(Total, N + V),
                                 AffineExpr::variable(Total, V)));
  return BasicMap(N, N, std::move(Set));
}

BasicMap BasicMap::translation(const BasicSet &Domain,
                               const std::vector<int64_t> &Delta) {
  unsigned N = Domain.numDims();
  assert(Delta.size() == N && "delta arity mismatch");
  BasicSet Set = Domain.appendDims(N);
  unsigned Total = Set.numTotalVars();
  for (unsigned V = 0; V < N; ++V) {
    AffineExpr Rhs = AffineExpr::variable(Total, V) +
                     AffineExpr::constant(Total, Delta[V]);
    Set.addConstraint(
        makeEqExpr(AffineExpr::variable(Total, N + V), std::move(Rhs)));
  }
  return BasicMap(N, N, std::move(Set));
}

BasicMap BasicMap::singlePair(const Point &In, const Point &Out) {
  unsigned NumIn = static_cast<unsigned>(In.size());
  unsigned NumOut = static_cast<unsigned>(Out.size());
  BasicSet Set(NumIn + NumOut);
  unsigned Total = Set.numTotalVars();
  for (unsigned V = 0; V < NumIn; ++V)
    Set.addConstraint(makeEqExpr(AffineExpr::variable(Total, V),
                                 AffineExpr::constant(Total, In[V])));
  for (unsigned V = 0; V < NumOut; ++V)
    Set.addConstraint(makeEqExpr(AffineExpr::variable(Total, NumIn + V),
                                 AffineExpr::constant(Total, Out[V])));
  return BasicMap(NumIn, NumOut, std::move(Set));
}

bool BasicMap::contains(const Point &In, const Point &Out) const {
  assert(In.size() == NumIn && Out.size() == NumOut && "arity mismatch");
  Point Joint;
  Joint.reserve(NumIn + NumOut);
  Joint.insert(Joint.end(), In.begin(), In.end());
  Joint.insert(Joint.end(), Out.begin(), Out.end());
  return Set.contains(Joint);
}

BasicSet BasicMap::domain() const { return Set.projectOutTrailing(NumOut); }

BasicSet BasicMap::range() const {
  // Rotate outputs to the front, then project out the (now trailing) inputs.
  std::vector<unsigned> Perm(NumIn + NumOut);
  for (unsigned V = 0; V < NumOut; ++V)
    Perm[V] = NumIn + V;
  for (unsigned V = 0; V < NumIn; ++V)
    Perm[NumOut + V] = V;
  return Set.permuteDims(Perm).projectOutTrailing(NumIn);
}

BasicMap BasicMap::reverse() const {
  std::vector<unsigned> Perm(NumIn + NumOut);
  for (unsigned V = 0; V < NumOut; ++V)
    Perm[V] = NumIn + V;
  for (unsigned V = 0; V < NumIn; ++V)
    Perm[NumOut + V] = V;
  return BasicMap(NumOut, NumIn, Set.permuteDims(Perm));
}

BasicMap BasicMap::composeWith(const BasicMap &Next) const {
  assert(NumOut == Next.NumIn && "composition arity mismatch");
  unsigned Mid = NumOut;
  unsigned NewIn = NumIn;
  unsigned NewOut = Next.NumOut;
  unsigned NumExists = Mid + Set.numExists() + Next.set().numExists();
  BasicSet Joint(NewIn + NewOut, NumExists);
  unsigned Total = Joint.numTotalVars();

  // Variable layout of the result:
  //   [ in(NewIn) | out(NewOut) | mid(Mid) | exA | exB ]
  unsigned MidBase = NewIn + NewOut;
  unsigned ExABase = MidBase + Mid;
  unsigned ExBBase = ExABase + Set.numExists();

  // Remap this's constraints: in -> in, out -> mid, exists -> exA.
  {
    std::vector<unsigned> Map(Set.numTotalVars());
    for (unsigned V = 0; V < NumIn; ++V)
      Map[V] = V;
    for (unsigned V = 0; V < NumOut; ++V)
      Map[NumIn + V] = MidBase + V;
    for (unsigned X = 0; X < Set.numExists(); ++X)
      Map[NumIn + NumOut + X] = ExABase + X;
    for (const Constraint &C : Set.constraints())
      Joint.addConstraint(Constraint(C.Expr.remapVars(Map, Total), C.Kind));
  }
  // Remap Next's constraints: in -> mid, out -> out, exists -> exB.
  {
    const BasicSet &NextSet = Next.set();
    std::vector<unsigned> Map(NextSet.numTotalVars());
    for (unsigned V = 0; V < Next.NumIn; ++V)
      Map[V] = MidBase + V;
    for (unsigned V = 0; V < Next.NumOut; ++V)
      Map[Next.NumIn + V] = NewIn + V;
    for (unsigned X = 0; X < NextSet.numExists(); ++X)
      Map[Next.NumIn + Next.NumOut + X] = ExBBase + X;
    for (const Constraint &C : NextSet.constraints())
      Joint.addConstraint(Constraint(C.Expr.remapVars(Map, Total), C.Kind));
  }
  return BasicMap(NewIn, NewOut, std::move(Joint));
}

BasicMap BasicMap::intersectDomain(const BasicSet &Domain) const {
  assert(Domain.numDims() == NumIn && "domain arity mismatch");
  BasicSet Extended = Domain.appendDims(NumOut);
  return BasicMap(NumIn, NumOut, Set.intersect(Extended));
}

std::optional<std::vector<int64_t>> BasicMap::asTranslation() const {
  if (NumIn != NumOut)
    return std::nullopt;
  std::vector<int64_t> Delta(NumIn, 0);
  std::vector<bool> Found(NumIn, false);
  unsigned Total = Set.numTotalVars();
  for (const Constraint &C : Set.constraints()) {
    // Classify: does the constraint mention outputs or existentials?
    bool MentionsOut = false;
    bool MentionsExists = false;
    for (unsigned V = NumIn; V < NumIn + NumOut; ++V)
      if (C.Expr.coefficient(V) != 0)
        MentionsOut = true;
    for (unsigned X = NumIn + NumOut; X < Total; ++X)
      if (C.Expr.coefficient(X) != 0)
        MentionsExists = true;
    if (!MentionsOut && !MentionsExists)
      continue; // Pure domain constraint: fine.
    if (MentionsExists)
      return std::nullopt;
    // Must be out_j - in_j - d == 0 for some j.
    if (C.Kind != ConstraintKind::Equality)
      return std::nullopt;
    int OutVar = -1;
    for (unsigned V = NumIn; V < NumIn + NumOut; ++V) {
      if (C.Expr.coefficient(V) == 0)
        continue;
      if (OutVar != -1)
        return std::nullopt; // Mixes several outputs.
      OutVar = static_cast<int>(V);
    }
    unsigned J = static_cast<unsigned>(OutVar) - NumIn;
    int64_t CoefOut = C.Expr.coefficient(static_cast<unsigned>(OutVar));
    int64_t CoefIn = C.Expr.coefficient(J);
    if (CoefOut + CoefIn != 0 || (CoefOut != 1 && CoefOut != -1))
      return std::nullopt;
    for (unsigned V = 0; V < NumIn; ++V)
      if (V != J && C.Expr.coefficient(V) != 0)
        return std::nullopt;
    if (Found[J])
      return std::nullopt; // Conflicting definitions.
    Found[J] = true;
    // CoefOut*(out - in) + K == 0  =>  out = in - K/CoefOut.
    Delta[J] = -C.Expr.constantTerm() / CoefOut;
    if (-C.Expr.constantTerm() % CoefOut != 0)
      return std::nullopt;
  }
  for (bool F : Found)
    if (!F)
      return std::nullopt;
  return Delta;
}

std::string BasicMap::toString() const {
  return "{ in:" + std::to_string(NumIn) + " -> out:" + std::to_string(NumOut) +
         " | " + Set.toString() + " }";
}

//===----------------------------------------------------------------------===//
// IntegerMap
//===----------------------------------------------------------------------===//

IntegerMap::IntegerMap(BasicMap Piece)
    : NumIn(Piece.numIn()), NumOut(Piece.numOut()) {
  Pieces.push_back(std::move(Piece));
}

void IntegerMap::addPiece(BasicMap Piece) {
  assert(Piece.numIn() == NumIn && Piece.numOut() == NumOut &&
         "arity mismatch");
  Pieces.push_back(std::move(Piece));
}

bool IntegerMap::contains(const Point &In, const Point &Out) const {
  for (const BasicMap &Piece : Pieces)
    if (Piece.contains(In, Out))
      return true;
  return false;
}

std::optional<std::vector<Point>>
IntegerMap::imageOfPoint(const Point &In, size_t MaxPoints) const {
  assert(In.size() == NumIn && "arity mismatch");
  std::set<Point> Seen;
  for (const BasicMap &Piece : Pieces) {
    // Fix the input coordinates, leaving a set over the outputs.
    BasicSet OutSet = Piece.set();
    for (unsigned V = 0; V < NumIn; ++V)
      OutSet = OutSet.fixAndRemoveDim(0, In[V]);
    auto Points = OutSet.enumeratePoints(MaxPoints);
    if (!Points)
      return std::nullopt;
    for (Point &P : *Points)
      Seen.insert(std::move(P));
    if (Seen.size() > MaxPoints)
      return std::nullopt;
  }
  return std::vector<Point>(Seen.begin(), Seen.end());
}

IntegerMap IntegerMap::unionWith(const IntegerMap &Other) const {
  assert(NumIn == Other.NumIn && NumOut == Other.NumOut && "arity mismatch");
  IntegerMap Result = *this;
  for (const BasicMap &Piece : Other.Pieces)
    Result.Pieces.push_back(Piece);
  return Result;
}

IntegerMap IntegerMap::composeWith(const IntegerMap &Next) const {
  assert(NumOut == Next.NumIn && "composition arity mismatch");
  IntegerMap Result(NumIn, Next.NumOut);
  for (const BasicMap &A : Pieces)
    for (const BasicMap &B : Next.Pieces) {
      BasicMap Piece = A.composeWith(B);
      if (!Piece.set().isTriviallyEmpty())
        Result.Pieces.push_back(std::move(Piece));
    }
  return Result;
}

IntegerMap IntegerMap::reverse() const {
  IntegerMap Result(NumOut, NumIn);
  for (const BasicMap &Piece : Pieces)
    Result.Pieces.push_back(Piece.reverse());
  return Result;
}

IntegerSet IntegerMap::domain() const {
  IntegerSet Result(NumIn);
  for (const BasicMap &Piece : Pieces)
    Result.addPiece(Piece.domain());
  return Result;
}

IntegerSet IntegerMap::range() const {
  IntegerSet Result(NumOut);
  for (const BasicMap &Piece : Pieces)
    Result.addPiece(Piece.range());
  return Result;
}

std::optional<std::vector<std::pair<Point, Point>>>
IntegerMap::enumeratePairs(size_t MaxPairs) const {
  std::set<std::pair<Point, Point>> Seen;
  for (const BasicMap &Piece : Pieces) {
    auto Joint = Piece.set().enumeratePoints(MaxPairs);
    if (!Joint)
      return std::nullopt;
    for (const Point &P : *Joint) {
      Point In(P.begin(), P.begin() + NumIn);
      Point Out(P.begin() + NumIn, P.end());
      Seen.insert({std::move(In), std::move(Out)});
      if (Seen.size() > MaxPairs)
        return std::nullopt;
    }
  }
  return std::vector<std::pair<Point, Point>>(Seen.begin(), Seen.end());
}

std::optional<int64_t> IntegerMap::cardinality(size_t MaxPairs) const {
  auto Pairs = enumeratePairs(MaxPairs);
  if (!Pairs)
    return std::nullopt;
  return static_cast<int64_t>(Pairs->size());
}

void IntegerMap::simplify() {
  std::vector<BasicMap> Kept;
  for (BasicMap &Piece : Pieces) {
    if (Piece.set().simplify())
      Kept.push_back(std::move(Piece));
  }
  Pieces = std::move(Kept);
}

std::string IntegerMap::toString() const {
  if (Pieces.empty())
    return "{ -> }";
  std::string Out;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I)
      Out += " u ";
    Out += Pieces[I].toString();
  }
  return Out;
}
