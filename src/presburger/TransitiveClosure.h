//===- presburger/TransitiveClosure.h - Closure of relations -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transitive closure R+ of integer relations, mirroring
/// isl_map_transitive_closure (Verdoolaege et al., SAS 2011). Three tiers:
///
///  1. Exact closed form for a single convex translation piece
///     { x -> x + d : x in D }: R+ = { x -> x + l*d : l >= 1, x in D,
///     x + (l-1)*d in D }, which is exact because intermediate points lie on
///     the segment between two points of the convex domain.
///  2. Exact finite closure by enumeration when the relation is small.
///  3. A sound over-approximation domain(R) x range(R) combined with the
///     union of per-piece closures otherwise (flagged inexact), matching
///     ISL's "may over-approximate" contract.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_TRANSITIVECLOSURE_H
#define QLOSURE_PRESBURGER_TRANSITIVECLOSURE_H

#include "presburger/IntegerMap.h"

namespace qlosure {
namespace presburger {

/// Result of a transitive-closure computation.
struct ClosureResult {
  IntegerMap Closure;
  /// True when Closure is exactly R+; false when it is a (sound) superset.
  bool IsExact = false;
};

/// Options controlling the closure computation.
struct ClosureOptions {
  /// Budget for the exact finite-enumeration fallback (number of pairs).
  size_t FiniteBudget = 50000;
  /// Skip the finite fallback entirely (used to test the symbolic tiers).
  bool AllowFiniteFallback = true;
};

/// Computes R+ (the non-reflexive transitive closure).
ClosureResult transitiveClosure(const IntegerMap &Relation,
                                const ClosureOptions &Options = {});

/// Builds the exact closure piece for a convex translation map
/// { x -> x + Delta : x in Domain } (Domain must have no existentials).
/// Exposed for direct use by the affine dependence engine and for tests.
BasicMap translationClosure(const BasicSet &Domain,
                            const std::vector<int64_t> &Delta);

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_TRANSITIVECLOSURE_H
