//===- presburger/IntegerMap.h - Integer relations ----------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integer relations (mirroring isl_map): finite unions of BasicMaps, where
/// a BasicMap is a BasicSet over the concatenated [in, out] space. Supports
/// the operations the dependence analysis needs: apply, compose, reverse,
/// domain/range, union, intersection, and point images.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_INTEGERMAP_H
#define QLOSURE_PRESBURGER_INTEGERMAP_H

#include "presburger/IntegerSet.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace qlosure {
namespace presburger {

/// A conjunctive relation { [in] -> [out] : constraints }.
class BasicMap {
public:
  BasicMap() = default;

  /// Wraps \p Set (over NumIn + NumOut visible dims) as a relation.
  BasicMap(unsigned NumIn, unsigned NumOut, BasicSet Set);

  /// The universal relation Z^NumIn x Z^NumOut.
  static BasicMap universe(unsigned NumIn, unsigned NumOut);

  /// The identity relation restricted to \p Domain.
  static BasicMap identity(const BasicSet &Domain);

  /// A translation map { x -> x + Delta : x in Domain }.
  static BasicMap translation(const BasicSet &Domain,
                              const std::vector<int64_t> &Delta);

  /// A single-pair relation { In -> Out }.
  static BasicMap singlePair(const Point &In, const Point &Out);

  unsigned numIn() const { return NumIn; }
  unsigned numOut() const { return NumOut; }
  const BasicSet &set() const { return Set; }
  BasicSet &set() { return Set; }

  /// True if (In, Out) is in the relation.
  bool contains(const Point &In, const Point &Out) const;

  /// The domain { in : exists out . (in, out) in R }.
  BasicSet domain() const;

  /// The range { out : exists in . (in, out) in R }.
  BasicSet range() const;

  /// Swaps input and output roles.
  BasicMap reverse() const;

  /// Relation composition: returns { in -> out : exists mid . (in, mid) in
  /// this and (mid, out) in Next }. Mid variables become existentials.
  BasicMap composeWith(const BasicMap &Next) const;

  /// Restricts the domain to \p Domain (same dimensionality as numIn()).
  BasicMap intersectDomain(const BasicSet &Domain) const;

  /// If this relation is a pure translation { x -> x + d : P(x) } (i.e. it
  /// has equalities out_j == in_j + d_j and all remaining constraints only
  /// mention inputs), returns the delta vector.
  std::optional<std::vector<int64_t>> asTranslation() const;

  std::string toString() const;

private:
  unsigned NumIn = 0;
  unsigned NumOut = 0;
  BasicSet Set; // Visible space: [in0..in_{NumIn-1}, out0..out_{NumOut-1}].
};

/// A finite union of BasicMaps, i.e. an arbitrary Presburger relation.
class IntegerMap {
public:
  IntegerMap() = default;

  /// Empty relation with the given arities.
  IntegerMap(unsigned NumIn, unsigned NumOut) : NumIn(NumIn), NumOut(NumOut) {}

  explicit IntegerMap(BasicMap Piece);

  unsigned numIn() const { return NumIn; }
  unsigned numOut() const { return NumOut; }
  const std::vector<BasicMap> &pieces() const { return Pieces; }
  bool isEmptyUnion() const { return Pieces.empty(); }

  void addPiece(BasicMap Piece);

  bool contains(const Point &In, const Point &Out) const;

  /// All images of \p In. std::nullopt if the image is unbounded.
  std::optional<std::vector<Point>>
  imageOfPoint(const Point &In,
               size_t MaxPoints = BasicSet::DefaultEnumerationBudget) const;

  /// Union (arities must match).
  IntegerMap unionWith(const IntegerMap &Other) const;

  /// Composition: apply this first, then \p Next.
  IntegerMap composeWith(const IntegerMap &Next) const;

  IntegerMap reverse() const;

  IntegerSet domain() const;
  IntegerSet range() const;

  /// Enumerates the relation as explicit pairs. std::nullopt when unbounded
  /// or over budget.
  std::optional<std::vector<std::pair<Point, Point>>>
  enumeratePairs(size_t MaxPairs = BasicSet::DefaultEnumerationBudget) const;

  /// Exact number of distinct pairs, when enumerable.
  std::optional<int64_t>
  cardinality(size_t MaxPairs = BasicSet::DefaultEnumerationBudget) const;

  void simplify();

  std::string toString() const;

private:
  unsigned NumIn = 0;
  unsigned NumOut = 0;
  std::vector<BasicMap> Pieces;
};

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_INTEGERMAP_H
