//===- presburger/AffineExpr.h - Affine expressions --------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine (linear + constant) expressions over a fixed-size variable space.
/// These are the atoms of the Presburger substrate: constraints, access
/// relations and schedules are all built from them. The variable space is
/// positional; the enclosing set or map assigns meaning to each position.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_AFFINEEXPR_H
#define QLOSURE_PRESBURGER_AFFINEEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {
namespace presburger {

/// A point in Z^n.
using Point = std::vector<int64_t>;

/// An affine expression c0 + c1*x1 + ... + cn*xn over \p numVars variables.
class AffineExpr {
public:
  AffineExpr() = default;

  /// Creates the zero expression over \p NumVars variables.
  explicit AffineExpr(unsigned NumVars)
      : Coefficients(NumVars, 0), ConstantTerm(0) {}

  /// Creates an expression from explicit coefficients and constant.
  AffineExpr(std::vector<int64_t> Coefficients, int64_t ConstantTerm)
      : Coefficients(std::move(Coefficients)), ConstantTerm(ConstantTerm) {}

  /// Returns the constant expression \p Value over \p NumVars variables.
  static AffineExpr constant(unsigned NumVars, int64_t Value);

  /// Returns the expression "x_Var" over \p NumVars variables.
  static AffineExpr variable(unsigned NumVars, unsigned Var);

  unsigned numVars() const {
    return static_cast<unsigned>(Coefficients.size());
  }

  int64_t coefficient(unsigned Var) const;
  void setCoefficient(unsigned Var, int64_t Value);
  int64_t constantTerm() const { return ConstantTerm; }
  void setConstantTerm(int64_t Value) { ConstantTerm = Value; }

  /// Evaluates the expression at \p Values (one value per variable).
  int64_t evaluate(const Point &Values) const;

  /// Returns true if every coefficient is zero.
  bool isConstant() const;

  /// Returns true if exactly one coefficient is nonzero and it is +/-1.
  bool isUnitVariable() const;

  AffineExpr operator+(const AffineExpr &Other) const;
  AffineExpr operator-(const AffineExpr &Other) const;
  AffineExpr operator-() const;
  AffineExpr operator*(int64_t Scale) const;

  bool operator==(const AffineExpr &Other) const {
    return Coefficients == Other.Coefficients &&
           ConstantTerm == Other.ConstantTerm;
  }

  /// Substitutes variable \p Var with the affine expression \p Replacement
  /// (which must be over the same variable space).
  AffineExpr substitute(unsigned Var, const AffineExpr &Replacement) const;

  /// Returns a copy extended with \p Count fresh trailing variables whose
  /// coefficients are zero.
  AffineExpr extend(unsigned Count) const;

  /// Returns a copy over a new space of \p NewNumVars variables where the
  /// old variable I maps to position Mapping[I].
  AffineExpr remapVars(const std::vector<unsigned> &Mapping,
                       unsigned NewNumVars) const;

  /// Divides all coefficients and the constant by their positive GCD.
  /// Returns the GCD (1 if the expression is zero).
  int64_t normalizeGcd();

  /// Renders e.g. "2*x0 - x2 + 3" for debugging and tests.
  std::string toString() const;

private:
  std::vector<int64_t> Coefficients;
  int64_t ConstantTerm = 0;
};

/// The two constraint kinds of a Presburger formula in normal form.
enum class ConstraintKind : uint8_t {
  Equality,  ///< Expr == 0
  Inequality ///< Expr >= 0
};

/// A single affine constraint: Expr ==/>= 0.
struct Constraint {
  AffineExpr Expr;
  ConstraintKind Kind;

  Constraint() : Kind(ConstraintKind::Inequality) {}
  Constraint(AffineExpr Expr, ConstraintKind Kind)
      : Expr(std::move(Expr)), Kind(Kind) {}

  /// True if \p Values satisfies the constraint.
  bool isSatisfied(const Point &Values) const {
    int64_t V = Expr.evaluate(Values);
    return Kind == ConstraintKind::Equality ? V == 0 : V >= 0;
  }

  bool operator==(const Constraint &Other) const {
    return Kind == Other.Kind && Expr == Other.Expr;
  }

  std::string toString() const;
};

/// Convenience builders for the common constraint shapes.
Constraint makeEq(AffineExpr Expr);
Constraint makeGe(AffineExpr Lhs, AffineExpr Rhs);   ///< Lhs >= Rhs
Constraint makeLe(AffineExpr Lhs, AffineExpr Rhs);   ///< Lhs <= Rhs
Constraint makeEqExpr(AffineExpr Lhs, AffineExpr Rhs); ///< Lhs == Rhs

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_AFFINEEXPR_H
