//===- presburger/Counting.cpp - Point counting (Barvinok-lite) --------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/Counting.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;
using namespace qlosure::presburger;

static int64_t floorDiv(int64_t Num, int64_t Den) {
  assert(Den != 0 && "division by zero");
  int64_t Q = Num / Den;
  if ((Num % Den != 0) && ((Num < 0) != (Den < 0)))
    --Q;
  return Q;
}

void PiecewiseQuasiAffine::addPiece(Piece P) {
  assert(P.Div > 0 && "divisor must be positive");
  assert(P.Lo <= P.Hi && "empty piece interval");
#ifndef NDEBUG
  for (const Piece &Existing : Pieces)
    assert((P.Hi < Existing.Lo || P.Lo > Existing.Hi) &&
           "overlapping pieces");
#endif
  Pieces.push_back(P);
}

int64_t PiecewiseQuasiAffine::evaluate(int64_t I) const {
  for (const Piece &P : Pieces)
    if (I >= P.Lo && I <= P.Hi)
      return floorDiv(P.C0 + P.C1 * I, P.Div);
  return 0;
}

int64_t PiecewiseQuasiAffine::sumOver(int64_t Lo, int64_t Hi) const {
  int64_t Sum = 0;
  for (const Piece &P : Pieces) {
    int64_t From = std::max(Lo, P.Lo);
    int64_t To = std::min(Hi, P.Hi);
    for (int64_t I = From; I <= To; ++I)
      Sum += floorDiv(P.C0 + P.C1 * I, P.Div);
  }
  return Sum;
}

std::string PiecewiseQuasiAffine::toString() const {
  std::string Out = "{";
  for (size_t I = 0; I < Pieces.size(); ++I) {
    const Piece &P = Pieces[I];
    if (I)
      Out += "; ";
    Out += formatString(" [%lld,%lld] -> floor((%lld + %lld*i)/%lld)",
                        static_cast<long long>(P.Lo),
                        static_cast<long long>(P.Hi),
                        static_cast<long long>(P.C0),
                        static_cast<long long>(P.C1),
                        static_cast<long long>(P.Div));
  }
  Out += " }";
  return Out;
}

std::optional<int64_t> presburger::countPoints(const IntegerSet &Set,
                                               size_t Budget) {
  return Set.cardinality(Budget);
}

std::optional<int64_t> presburger::countImage(const IntegerMap &Map,
                                              const Point &In, size_t Budget) {
  auto Image = Map.imageOfPoint(In, Budget);
  if (!Image)
    return std::nullopt;
  return static_cast<int64_t>(Image->size());
}

PiecewiseQuasiAffine presburger::closureImageCount1D(int64_t Lo, int64_t Hi,
                                                     int64_t Stride) {
  assert(Stride != 0 && "stride must be nonzero");
  PiecewiseQuasiAffine F;
  if (Lo > Hi)
    return F;
  if (Stride > 0) {
    // count(i) = floor((Hi - i) / Stride) for i in [Lo, Hi - Stride].
    if (Hi - Stride >= Lo)
      F.addPiece({Lo, Hi - Stride, Hi, -1, Stride});
    return F;
  }
  // Stride < 0: count(i) = floor((i - Lo) / -Stride) for i in [Lo - Stride,
  // Hi] (i.e. large enough that one step stays above Lo).
  int64_t Neg = -Stride;
  if (Lo + Neg <= Hi)
    F.addPiece({Lo + Neg, Hi, -Lo, 1, Neg});
  return F;
}
