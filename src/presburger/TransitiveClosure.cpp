//===- presburger/TransitiveClosure.cpp - Closure of relations ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/TransitiveClosure.h"

#include <cassert>
#include <map>
#include <vector>

using namespace qlosure;
using namespace qlosure::presburger;

BasicMap presburger::translationClosure(const BasicSet &Domain,
                                        const std::vector<int64_t> &Delta) {
  unsigned N = Domain.numDims();
  assert(Delta.size() == N && "delta arity mismatch");
  assert(Domain.numExists() == 0 &&
         "translation closure requires a convex (existential-free) domain");

  // Space layout: [x(N) | y(N) | l(1 existential)].
  BasicSet Set(2 * N, 1);
  unsigned Total = Set.numTotalVars();
  unsigned LVar = 2 * N;

  // l >= 1.
  Set.addConstraint(makeGe(AffineExpr::variable(Total, LVar),
                           AffineExpr::constant(Total, 1)));
  // y_j == x_j + l * d_j.
  for (unsigned J = 0; J < N; ++J) {
    AffineExpr E = AffineExpr::variable(Total, N + J) -
                   AffineExpr::variable(Total, J) -
                   AffineExpr::variable(Total, LVar) * Delta[J];
    Set.addConstraint(makeEq(std::move(E)));
  }
  // x in Domain, and (y - d) in Domain: substitute into the domain
  // constraints. A domain constraint c(x) ? 0 over N vars is remapped twice.
  for (const Constraint &C : Domain.constraints()) {
    // Over x.
    {
      AffineExpr E(Total);
      for (unsigned V = 0; V < N; ++V)
        E.setCoefficient(V, C.Expr.coefficient(V));
      E.setConstantTerm(C.Expr.constantTerm());
      Set.addConstraint(Constraint(std::move(E), C.Kind));
    }
    // Over y - d: substitute x_j := y_j - d_j.
    {
      AffineExpr E(Total);
      int64_t K = C.Expr.constantTerm();
      for (unsigned V = 0; V < N; ++V) {
        E.setCoefficient(N + V, C.Expr.coefficient(V));
        K -= C.Expr.coefficient(V) * Delta[V];
      }
      E.setConstantTerm(K);
      Set.addConstraint(Constraint(std::move(E), C.Kind));
    }
  }
  return BasicMap(N, N, std::move(Set));
}

/// If \p Piece is a translation over a convex (existential-free) domain,
/// extracts (domain over inputs, delta). Exact: asTranslation() guarantees
/// every constraint mentioning outputs is one of the translation
/// equalities, so the remaining constraints mention inputs only.
static std::optional<std::pair<BasicSet, std::vector<int64_t>>>
asConvexTranslation(const BasicMap &Piece) {
  if (Piece.set().numExists() != 0)
    return std::nullopt;
  auto Delta = Piece.asTranslation();
  if (!Delta)
    return std::nullopt;
  unsigned N = Piece.numIn();
  BasicSet Domain(N);
  for (const Constraint &C : Piece.set().constraints()) {
    bool MentionsOut = false;
    for (unsigned V = N; V < 2 * N; ++V)
      if (C.Expr.coefficient(V) != 0)
        MentionsOut = true;
    if (MentionsOut)
      continue; // One of the translation equalities.
    AffineExpr E(N);
    for (unsigned V = 0; V < N; ++V)
      E.setCoefficient(V, C.Expr.coefficient(V));
    E.setConstantTerm(C.Expr.constantTerm());
    Domain.addConstraint(Constraint(std::move(E), C.Kind));
  }
  return std::make_pair(std::move(Domain), std::move(*Delta));
}

/// Exact finite closure: enumerate the relation, close it over the discovered
/// points, and return one single-pair piece per closed edge.
static std::optional<IntegerMap> finiteClosure(const IntegerMap &Relation,
                                               size_t Budget) {
  auto Pairs = Relation.enumeratePairs(Budget);
  if (!Pairs)
    return std::nullopt;

  // Index points.
  std::map<Point, unsigned> Index;
  std::vector<Point> Nodes;
  auto internPoint = [&](const Point &P) {
    auto [It, Inserted] = Index.try_emplace(P, Nodes.size());
    if (Inserted)
      Nodes.push_back(P);
    return It->second;
  };
  std::vector<std::vector<unsigned>> Succ;
  for (const auto &[In, Out] : *Pairs) {
    unsigned A = internPoint(In);
    unsigned B = internPoint(Out);
    if (Succ.size() < Nodes.size())
      Succ.resize(Nodes.size());
    Succ[A].push_back(B);
  }
  Succ.resize(Nodes.size());

  // Reachability per node via iterative DFS; the relation may have cycles
  // in general even though schedules are acyclic, so use a visited set.
  IntegerMap Closure(Relation.numIn(), Relation.numOut());
  size_t EmittedPairs = 0;
  std::vector<unsigned> Stack;
  std::vector<bool> Visited(Nodes.size());
  for (unsigned Start = 0; Start < Nodes.size(); ++Start) {
    std::fill(Visited.begin(), Visited.end(), false);
    Stack = Succ[Start];
    for (unsigned S : Stack)
      Visited[S] = true;
    while (!Stack.empty()) {
      unsigned Node = Stack.back();
      Stack.pop_back();
      Closure.addPiece(BasicMap::singlePair(Nodes[Start], Nodes[Node]));
      if (++EmittedPairs > Budget)
        return std::nullopt;
      for (unsigned Next : Succ[Node]) {
        if (!Visited[Next]) {
          Visited[Next] = true;
          Stack.push_back(Next);
        }
      }
    }
  }
  return Closure;
}

ClosureResult presburger::transitiveClosure(const IntegerMap &Relation,
                                            const ClosureOptions &Options) {
  ClosureResult Result;
  if (Relation.isEmptyUnion()) {
    Result.Closure = IntegerMap(Relation.numIn(), Relation.numOut());
    Result.IsExact = true;
    return Result;
  }
  assert(Relation.numIn() == Relation.numOut() &&
         "transitive closure requires an endomorphic relation");

  // Tier 1: one convex translation piece -> exact closed form.
  if (Relation.pieces().size() == 1) {
    if (auto DomDelta = asConvexTranslation(Relation.pieces().front())) {
      Result.Closure = IntegerMap(
          translationClosure(DomDelta->first, DomDelta->second));
      Result.IsExact = true;
      return Result;
    }
  }

  // Tier 2: exact finite closure by enumeration.
  if (Options.AllowFiniteFallback) {
    if (auto Finite = finiteClosure(Relation, Options.FiniteBudget)) {
      Result.Closure = std::move(*Finite);
      Result.IsExact = true;
      return Result;
    }
  }

  // Tier 3: sound over-approximation. Union of the per-piece translation
  // closures (each exact on its own) plus cross-piece reachability
  // approximated by domain x range.
  IntegerMap Approx(Relation.numIn(), Relation.numOut());
  for (const BasicMap &Piece : Relation.pieces()) {
    if (auto DomDelta = asConvexTranslation(Piece)) {
      Approx.addPiece(translationClosure(DomDelta->first, DomDelta->second));
      continue;
    }
    Approx.addPiece(Piece);
  }
  if (Relation.pieces().size() > 1) {
    // Cross-piece paths: any domain point may reach any range point.
    for (const BasicMap &A : Relation.pieces())
      for (const BasicMap &B : Relation.pieces()) {
        if (&A == &B)
          continue;
        BasicSet Dom = A.domain();
        BasicSet Ran = B.range();
        // Build { x -> y : x in Dom, y in Ran }.
        unsigned N = Relation.numIn();
        BasicSet Set(2 * N, Dom.numExists() + Ran.numExists());
        unsigned Total = Set.numTotalVars();
        std::vector<unsigned> MapDom(Dom.numTotalVars());
        for (unsigned V = 0; V < N; ++V)
          MapDom[V] = V;
        for (unsigned X = 0; X < Dom.numExists(); ++X)
          MapDom[N + X] = 2 * N + X;
        for (const Constraint &C : Dom.constraints())
          Set.addConstraint(Constraint(C.Expr.remapVars(MapDom, Total), C.Kind));
        std::vector<unsigned> MapRan(Ran.numTotalVars());
        for (unsigned V = 0; V < N; ++V)
          MapRan[V] = N + V;
        for (unsigned X = 0; X < Ran.numExists(); ++X)
          MapRan[N + X] = 2 * N + Dom.numExists() + X;
        for (const Constraint &C : Ran.constraints())
          Set.addConstraint(Constraint(C.Expr.remapVars(MapRan, Total), C.Kind));
        Approx.addPiece(BasicMap(N, N, std::move(Set)));
      }
  }
  Result.Closure = std::move(Approx);
  Result.IsExact = false;
  return Result;
}
