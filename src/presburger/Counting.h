//===- presburger/Counting.h - Point counting (Barvinok-lite) ----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Point-counting utilities standing in for the Barvinok library. The paper
/// uses Barvinok to evaluate the dependence weight
///   omega(g) = card({ h : (g, h) in R+ })
/// once per gate. On the affine class produced by the lifter (1-D iteration
/// domains, strided-translation dependences) the counts are piecewise
/// quasi-affine functions of the iteration index; this header provides that
/// closed form plus exact enumeration-based counting for everything else.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_COUNTING_H
#define QLOSURE_PRESBURGER_COUNTING_H

#include "presburger/IntegerMap.h"

#include <optional>
#include <string>
#include <vector>

namespace qlosure {
namespace presburger {

/// A piecewise quasi-affine function of one integer variable: each piece is
///   f(i) = floorDiv(C0 + C1 * i, Div)   for i in [Lo, Hi],
/// and f(i) = 0 outside all pieces. Pieces must not overlap.
class PiecewiseQuasiAffine {
public:
  struct Piece {
    int64_t Lo;
    int64_t Hi;
    int64_t C0;
    int64_t C1;
    int64_t Div; ///< Strictly positive divisor.
  };

  PiecewiseQuasiAffine() = default;

  /// Appends a piece; asserts it does not overlap existing pieces.
  void addPiece(Piece P);

  /// Evaluates the function at \p I (0 outside all pieces).
  int64_t evaluate(int64_t I) const;

  /// Sum of f(i) over [Lo, Hi].
  int64_t sumOver(int64_t Lo, int64_t Hi) const;

  const std::vector<Piece> &pieces() const { return Pieces; }

  std::string toString() const;

private:
  std::vector<Piece> Pieces;
};

/// Number of points in \p Set (exact, enumeration-based). std::nullopt when
/// the set is unbounded or exceeds \p Budget points.
std::optional<int64_t>
countPoints(const IntegerSet &Set,
            size_t Budget = BasicSet::DefaultEnumerationBudget);

/// Size of the image of \p In under \p Map (exact). std::nullopt when
/// unbounded / over budget.
std::optional<int64_t>
countImage(const IntegerMap &Map, const Point &In,
           size_t Budget = BasicSet::DefaultEnumerationBudget);

/// Closed-form image count for the closure of a 1-D translation map with
/// stride \p Stride over the domain [Lo, Hi]:
///   count(i) = |{ l >= 1 : Lo <= i + l*Stride <= Hi }|
/// as a piecewise quasi-affine function of i. \p Stride must be nonzero.
PiecewiseQuasiAffine closureImageCount1D(int64_t Lo, int64_t Hi,
                                         int64_t Stride);

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_COUNTING_H
