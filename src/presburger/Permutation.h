//===- presburger/Permutation.h - Permutations from relations ----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of qubit permutations from presburger relations. The affine
/// fast path composes the access relations of corresponding statements in
/// consecutive loop iterations (reverse(A_S) . A_S') to obtain the relation
/// "qubit q of iteration j becomes qubit q' of iteration j+1"; when that
/// relation is a partial injection over the qubit range it extends to a
/// total permutation the replay engine can compose per iteration.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_PRESBURGER_PERMUTATION_H
#define QLOSURE_PRESBURGER_PERMUTATION_H

#include "presburger/IntegerMap.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace qlosure {
namespace presburger {

/// Interprets \p Rel — a 1-D -> 1-D relation — as a (partial) qubit
/// permutation over [0, NumQubits) and completes it to a total one.
///
/// Fails (nullopt) when the relation is unbounded or over the enumeration
/// budget, mentions qubits outside [0, NumQubits), or is not a partial
/// injection (two images for one source, or two sources for one image).
/// Unconstrained qubits are completed deterministically: a qubit that is
/// neither a source nor an image stays fixed; the remaining unmatched
/// sources and images are paired in ascending order.
std::optional<std::vector<int32_t>>
extractPermutation(const IntegerMap &Rel, unsigned NumQubits,
                   size_t MaxPairs = 1 << 16);

} // namespace presburger
} // namespace qlosure

#endif // QLOSURE_PRESBURGER_PERMUTATION_H
