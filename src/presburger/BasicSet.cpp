//===- presburger/BasicSet.cpp - Conjunctive integer sets -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/BasicSet.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace qlosure;
using namespace qlosure::presburger;

/// Floor division with sign-correct rounding toward negative infinity.
static int64_t floorDiv(int64_t Num, int64_t Den) {
  assert(Den != 0 && "division by zero");
  int64_t Q = Num / Den;
  if ((Num % Den != 0) && ((Num < 0) != (Den < 0)))
    --Q;
  return Q;
}

/// Ceiling division with sign-correct rounding toward positive infinity.
static int64_t ceilDiv(int64_t Num, int64_t Den) {
  assert(Den != 0 && "division by zero");
  int64_t Q = Num / Den;
  if ((Num % Den != 0) && ((Num < 0) == (Den < 0)))
    ++Q;
  return Q;
}

static int64_t checkedNarrow(__int128 Value) {
  if (Value > INT64_MAX || Value < INT64_MIN)
    reportFatalError("coefficient overflow in Fourier-Motzkin elimination");
  return static_cast<int64_t>(Value);
}

/// Combines a lower bound (positive coefficient on Var) with an upper bound
/// (negative coefficient) eliminating Var: (-CU)*L + CL*U >= 0.
static Constraint combineBounds(const Constraint &LowerC,
                                const Constraint &UpperC, unsigned Var,
                                unsigned NumVars) {
  int64_t CL = LowerC.Expr.coefficient(Var);
  int64_t CU = UpperC.Expr.coefficient(Var);
  assert(CL > 0 && CU < 0 && "bad bound orientation");
  AffineExpr Result(NumVars);
  for (unsigned V = 0; V < NumVars; ++V) {
    __int128 Value = static_cast<__int128>(-CU) * LowerC.Expr.coefficient(V) +
                     static_cast<__int128>(CL) * UpperC.Expr.coefficient(V);
    Result.setCoefficient(V, checkedNarrow(Value));
  }
  __int128 K = static_cast<__int128>(-CU) * LowerC.Expr.constantTerm() +
               static_cast<__int128>(CL) * UpperC.Expr.constantTerm();
  Result.setConstantTerm(checkedNarrow(K));
  assert(Result.coefficient(Var) == 0 && "elimination failed");
  Constraint Out(std::move(Result), ConstraintKind::Inequality);
  Out.Expr.normalizeGcd();
  return Out;
}

std::vector<Constraint>
presburger::fourierMotzkinEliminate(const std::vector<Constraint> &Constraints,
                                    unsigned Var, unsigned NumVars) {
  // First look for an equality with a unit coefficient on Var: substituting
  // it is exact and avoids the quadratic blowup of the general combination.
  for (const Constraint &C : Constraints) {
    if (C.Kind != ConstraintKind::Equality)
      continue;
    int64_t Coef = C.Expr.coefficient(Var);
    if (Coef != 1 && Coef != -1)
      continue;
    // Var == Replacement where Replacement = -(Expr - Coef*Var)/Coef.
    AffineExpr Rest = C.Expr;
    Rest.setCoefficient(Var, 0);
    AffineExpr Replacement = (Coef == 1) ? -Rest : Rest;
    std::vector<Constraint> Out;
    Out.reserve(Constraints.size() - 1);
    for (const Constraint &Other : Constraints) {
      if (&Other == &C)
        continue;
      Constraint Sub(Other.Expr.substitute(Var, Replacement), Other.Kind);
      Sub.Expr.normalizeGcd();
      Out.push_back(std::move(Sub));
    }
    return Out;
  }

  std::vector<Constraint> Lower, Upper, Rest;
  for (const Constraint &C : Constraints) {
    int64_t Coef = C.Expr.coefficient(Var);
    if (Coef == 0) {
      Rest.push_back(C);
      continue;
    }
    if (C.Kind == ConstraintKind::Equality) {
      // Split a non-unit equality into a pair of inequalities (rational
      // over-approximation of the integer projection).
      Constraint Ge(C.Expr, ConstraintKind::Inequality);
      Constraint Le(-C.Expr, ConstraintKind::Inequality);
      (Ge.Expr.coefficient(Var) > 0 ? Lower : Upper).push_back(Ge);
      (Le.Expr.coefficient(Var) > 0 ? Lower : Upper).push_back(Le);
      continue;
    }
    (Coef > 0 ? Lower : Upper).push_back(C);
  }

  for (const Constraint &L : Lower)
    for (const Constraint &U : Upper)
      Rest.push_back(combineBounds(L, U, Var, NumVars));
  return Rest;
}

void BasicSet::addConstraint(Constraint C) {
  assert(C.Expr.numVars() == numTotalVars() &&
         "constraint variable space mismatch");
  Conss.push_back(std::move(C));
}

void BasicSet::addBounds(unsigned Var, int64_t Lower, int64_t Upper) {
  assert(Var < NumDims && "bounds are for visible variables");
  AffineExpr V = AffineExpr::variable(numTotalVars(), Var);
  addConstraint(makeGe(V, AffineExpr::constant(numTotalVars(), Lower)));
  addConstraint(makeLe(V, AffineExpr::constant(numTotalVars(), Upper)));
}

bool BasicSet::contains(const Point &P) const {
  assert(P.size() == NumDims && "point dimensionality mismatch");
  // Substitute the visible values, producing constraints over existentials.
  std::vector<Constraint> Reduced;
  Reduced.reserve(Conss.size());
  for (const Constraint &C : Conss) {
    AffineExpr E(NumExists);
    int64_t K = C.Expr.constantTerm();
    for (unsigned V = 0; V < NumDims; ++V)
      K += C.Expr.coefficient(V) * P[V];
    for (unsigned X = 0; X < NumExists; ++X)
      E.setCoefficient(X, C.Expr.coefficient(NumDims + X));
    E.setConstantTerm(K);
    if (NumExists == 0 || E.isConstant()) {
      int64_t Value = E.constantTerm();
      bool Ok = C.Kind == ConstraintKind::Equality ? Value == 0 : Value >= 0;
      if (!Ok)
        return false;
      continue;
    }
    Reduced.push_back(Constraint(std::move(E), C.Kind));
  }
  if (NumExists == 0 || Reduced.empty())
    return true;

  // Depth-first search over existential assignments with FM-derived bounds.
  Point Assignment(NumExists, 0);
  return searchExistentials(Assignment, 0, Reduced);
}

bool BasicSet::searchExistentials(
    Point &P, unsigned ExistIndex,
    const std::vector<Constraint> &Remaining) const {
  if (ExistIndex == NumExists) {
    for (const Constraint &C : Remaining)
      if (!C.isSatisfied(P))
        return false;
    return true;
  }

  // Bound existential ExistIndex by eliminating all later existentials.
  std::vector<Constraint> Projected = Remaining;
  for (unsigned X = NumExists; X-- > ExistIndex + 1;)
    Projected = fourierMotzkinEliminate(Projected, X, NumExists);

  int64_t Lower = 0, Upper = 0;
  bool HasLower = false, HasUpper = false;
  for (const Constraint &C : Projected) {
    int64_t Coef = C.Expr.coefficient(ExistIndex);
    int64_t K = C.Expr.constantTerm();
    for (unsigned V = 0; V < ExistIndex; ++V)
      K += C.Expr.coefficient(V) * P[V];
    if (Coef == 0) {
      bool Ok = C.Kind == ConstraintKind::Equality ? K == 0 : K >= 0;
      if (!Ok)
        return false;
      continue;
    }
    // Coef*x + K >= 0 (or == 0).
    if (C.Kind == ConstraintKind::Equality) {
      if (K % Coef != 0)
        return false;
      int64_t Value = -K / Coef;
      if ((!HasLower || Value >= Lower) && (!HasUpper || Value <= Upper)) {
        Lower = Upper = Value;
        HasLower = HasUpper = true;
      } else {
        return false;
      }
      continue;
    }
    if (Coef > 0) {
      int64_t Bound = ceilDiv(-K, Coef);
      if (!HasLower || Bound > Lower)
        Lower = Bound;
      HasLower = true;
    } else {
      int64_t Bound = floorDiv(K, -Coef);
      if (!HasUpper || Bound < Upper)
        Upper = Bound;
      HasUpper = true;
    }
  }
  if (!HasLower || !HasUpper)
    reportFatalError("existential variable is unbounded; BasicSet membership "
                     "requires bounded existentials");
  for (int64_t Value = Lower; Value <= Upper; ++Value) {
    P[ExistIndex] = Value;
    if (searchExistentials(P, ExistIndex + 1, Remaining))
      return true;
  }
  return false;
}

bool BasicSet::isTriviallyEmpty() const {
  BasicSet Copy = *this;
  return !Copy.simplify();
}

bool BasicSet::isEmpty() const {
  if (isTriviallyEmpty())
    return true;
  auto Points = enumeratePoints();
  if (!Points)
    reportFatalError("isEmpty() requires a bounded set");
  return Points->empty();
}

VarBounds BasicSet::boundsForVar(unsigned Var) const {
  assert(Var < numTotalVars() && "variable index out of range");
  std::vector<Constraint> Projected = Conss;
  for (unsigned V = numTotalVars(); V-- > 0;) {
    if (V == Var)
      continue;
    Projected = fourierMotzkinEliminate(Projected, V, numTotalVars());
  }

  VarBounds Bounds;
  for (const Constraint &C : Projected) {
    int64_t Coef = C.Expr.coefficient(Var);
    int64_t K = C.Expr.constantTerm();
    if (Coef == 0) {
      bool Ok = C.Kind == ConstraintKind::Equality ? K == 0 : K >= 0;
      if (!Ok) { // Contradiction: empty range.
        Bounds.Lower = 1;
        Bounds.Upper = 0;
        Bounds.HasLower = Bounds.HasUpper = true;
        return Bounds;
      }
      continue;
    }
    auto tightenLower = [&](int64_t Value) {
      if (!Bounds.HasLower || Value > Bounds.Lower)
        Bounds.Lower = Value;
      Bounds.HasLower = true;
    };
    auto tightenUpper = [&](int64_t Value) {
      if (!Bounds.HasUpper || Value < Bounds.Upper)
        Bounds.Upper = Value;
      Bounds.HasUpper = true;
    };
    if (C.Kind == ConstraintKind::Equality) {
      // Coef*x + K == 0 pins x to -K/Coef; when not divisible the integer
      // range collapses to empty (Lo > Hi).
      tightenLower(ceilDiv(-K, Coef));
      tightenUpper(floorDiv(-K, Coef));
      continue;
    }
    if (Coef > 0)
      tightenLower(ceilDiv(-K, Coef));
    else
      tightenUpper(floorDiv(K, -Coef));
  }
  return Bounds;
}

std::optional<std::vector<Point>>
BasicSet::enumeratePoints(size_t MaxPoints) const {
  std::vector<Point> Result;
  BasicSet Simplified = *this;
  if (!Simplified.simplify())
    return Result; // Trivially empty.

  // Recursively fix visible dimensions in order. We re-derive bounds after
  // each fixing so nested ranges shrink with the prefix.
  struct Enumerator {
    size_t MaxPoints;
    std::vector<Point> &Result;
    bool Overflow = false;
    bool Unbounded = false;
    Point Prefix;

    void run(const BasicSet &Set) {
      if (Overflow || Unbounded)
        return;
      if (Set.numDims() == 0) {
        // All visible variables fixed; check existential satisfiability.
        if (Set.contains(Point{})) {
          if (Result.size() >= MaxPoints) {
            Overflow = true;
            return;
          }
          Result.push_back(Prefix);
        }
        return;
      }
      VarBounds Bounds = Set.boundsForVar(0);
      if (!Bounds.HasLower || !Bounds.HasUpper) {
        Unbounded = true;
        return;
      }
      for (int64_t V = Bounds.Lower; V <= Bounds.Upper; ++V) {
        BasicSet Fixed = Set.fixAndRemoveDim(0, V);
        if (Fixed.isTriviallyEmpty())
          continue;
        Prefix.push_back(V);
        run(Fixed);
        Prefix.pop_back();
        if (Overflow || Unbounded)
          return;
      }
    }
  };

  Enumerator E{MaxPoints, Result, false, false, {}};
  E.run(Simplified);
  if (E.Overflow || E.Unbounded)
    return std::nullopt;
  return Result;
}

BasicSet BasicSet::intersect(const BasicSet &Other) const {
  assert(NumDims == Other.NumDims && "visible space mismatch");
  BasicSet Result(NumDims, NumExists + Other.NumExists);
  unsigned Total = Result.numTotalVars();

  // This set's variables keep their positions.
  std::vector<unsigned> MapThis(numTotalVars());
  for (unsigned V = 0; V < numTotalVars(); ++V)
    MapThis[V] = V;
  for (const Constraint &C : Conss)
    Result.addConstraint(Constraint(C.Expr.remapVars(MapThis, Total), C.Kind));

  // Other's existentials shift past ours.
  std::vector<unsigned> MapOther(Other.numTotalVars());
  for (unsigned V = 0; V < Other.NumDims; ++V)
    MapOther[V] = V;
  for (unsigned X = 0; X < Other.NumExists; ++X)
    MapOther[Other.NumDims + X] = NumDims + NumExists + X;
  for (const Constraint &C : Other.Conss)
    Result.addConstraint(Constraint(C.Expr.remapVars(MapOther, Total), C.Kind));
  return Result;
}

BasicSet BasicSet::projectOutTrailing(unsigned Count) const {
  assert(Count <= NumDims && "cannot project more dims than available");
  BasicSet Result = *this;
  Result.NumDims = NumDims - Count;
  Result.NumExists = NumExists + Count;
  return Result;
}

BasicSet BasicSet::permuteDims(const std::vector<unsigned> &Permutation) const {
  assert(Permutation.size() == NumDims && "permutation size mismatch");
  std::vector<unsigned> Mapping(numTotalVars());
  // Old visible var Permutation[J] lands at new position J.
  for (unsigned J = 0; J < NumDims; ++J) {
    assert(Permutation[J] < NumDims && "permutation entry out of range");
    Mapping[Permutation[J]] = J;
  }
  for (unsigned X = 0; X < NumExists; ++X)
    Mapping[NumDims + X] = NumDims + X;
  BasicSet Result(NumDims, NumExists);
  for (const Constraint &C : Conss)
    Result.addConstraint(
        Constraint(C.Expr.remapVars(Mapping, numTotalVars()), C.Kind));
  return Result;
}

BasicSet BasicSet::appendDims(unsigned Count) const {
  BasicSet Result(NumDims + Count, NumExists);
  std::vector<unsigned> Mapping(numTotalVars());
  for (unsigned V = 0; V < NumDims; ++V)
    Mapping[V] = V;
  for (unsigned X = 0; X < NumExists; ++X)
    Mapping[NumDims + X] = NumDims + Count + X;
  for (const Constraint &C : Conss)
    Result.addConstraint(
        Constraint(C.Expr.remapVars(Mapping, Result.numTotalVars()), C.Kind));
  return Result;
}

BasicSet BasicSet::fixAndRemoveDim(unsigned Var, int64_t Value) const {
  assert(Var < NumDims && "can only fix visible variables");
  BasicSet Result(NumDims - 1, NumExists);
  unsigned NewTotal = Result.numTotalVars();
  std::vector<unsigned> Mapping(numTotalVars());
  for (unsigned V = 0, New = 0; V < numTotalVars(); ++V) {
    if (V == Var) {
      Mapping[V] = 0; // Unused; coefficient gets folded below.
      continue;
    }
    Mapping[V] = New++;
  }
  for (const Constraint &C : Conss) {
    int64_t Coef = C.Expr.coefficient(Var);
    AffineExpr Folded = C.Expr;
    Folded.setCoefficient(Var, 0);
    Folded.setConstantTerm(Folded.constantTerm() + Coef * Value);
    Result.addConstraint(
        Constraint(Folded.remapVars(Mapping, NewTotal), C.Kind));
  }
  return Result;
}

bool BasicSet::simplify() {
  std::vector<Constraint> Kept;
  Kept.reserve(Conss.size());
  for (Constraint &C : Conss) {
    if (C.Expr.isConstant()) {
      int64_t K = C.Expr.constantTerm();
      bool Ok = C.Kind == ConstraintKind::Equality ? K == 0 : K >= 0;
      if (!Ok)
        return false;
      continue; // Tautology.
    }
    // Normalize by the GCD of the variable coefficients.
    int64_t Gcd = 0;
    for (unsigned V = 0; V < C.Expr.numVars(); ++V)
      Gcd = std::gcd(Gcd, std::abs(C.Expr.coefficient(V)));
    if (Gcd > 1) {
      int64_t K = C.Expr.constantTerm();
      if (C.Kind == ConstraintKind::Equality && K % Gcd != 0)
        return false; // No integer solutions.
      for (unsigned V = 0; V < C.Expr.numVars(); ++V)
        C.Expr.setCoefficient(V, C.Expr.coefficient(V) / Gcd);
      // floor is exact for >=0 constraints over integers.
      C.Expr.setConstantTerm(C.Kind == ConstraintKind::Equality
                                 ? K / Gcd
                                 : floorDiv(K, Gcd));
    }
    Kept.push_back(std::move(C));
  }

  // Drop duplicates (stable order otherwise).
  std::vector<Constraint> Unique;
  for (Constraint &C : Kept) {
    bool Seen = false;
    for (const Constraint &U : Unique)
      if (U == C) {
        Seen = true;
        break;
      }
    if (!Seen)
      Unique.push_back(std::move(C));
  }
  Conss = std::move(Unique);
  return true;
}

std::string BasicSet::toString() const {
  std::string Out = "{ [";
  for (unsigned V = 0; V < NumDims; ++V) {
    if (V)
      Out += ", ";
    Out += "x" + std::to_string(V);
  }
  Out += "]";
  if (NumExists)
    Out += " : exists " + std::to_string(NumExists) + " vars";
  Out += " : ";
  for (size_t I = 0; I < Conss.size(); ++I) {
    if (I)
      Out += " and ";
    Out += Conss[I].toString();
  }
  if (Conss.empty())
    Out += "true";
  Out += " }";
  return Out;
}
