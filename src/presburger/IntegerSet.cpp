//===- presburger/IntegerSet.cpp - Unions of basic sets ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/IntegerSet.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace qlosure;
using namespace qlosure::presburger;

IntegerSet::IntegerSet(BasicSet Piece) : NumDims(Piece.numDims()) {
  Pieces.push_back(std::move(Piece));
}

IntegerSet IntegerSet::universe(unsigned NumDims) {
  IntegerSet Set(NumDims);
  Set.Pieces.push_back(BasicSet(NumDims));
  return Set;
}

IntegerSet
IntegerSet::box(const std::vector<std::pair<int64_t, int64_t>> &Bounds) {
  unsigned NumDims = static_cast<unsigned>(Bounds.size());
  BasicSet Piece(NumDims);
  for (unsigned V = 0; V < NumDims; ++V)
    Piece.addBounds(V, Bounds[V].first, Bounds[V].second);
  return IntegerSet(std::move(Piece));
}

void IntegerSet::addPiece(BasicSet Piece) {
  assert(Piece.numDims() == NumDims && "visible space mismatch");
  Pieces.push_back(std::move(Piece));
}

bool IntegerSet::contains(const Point &P) const {
  for (const BasicSet &Piece : Pieces)
    if (Piece.contains(P))
      return true;
  return false;
}

IntegerSet IntegerSet::unionWith(const IntegerSet &Other) const {
  assert(NumDims == Other.NumDims && "visible space mismatch");
  IntegerSet Result = *this;
  for (const BasicSet &Piece : Other.Pieces)
    Result.Pieces.push_back(Piece);
  return Result;
}

IntegerSet IntegerSet::intersect(const IntegerSet &Other) const {
  assert(NumDims == Other.NumDims && "visible space mismatch");
  IntegerSet Result(NumDims);
  for (const BasicSet &A : Pieces)
    for (const BasicSet &B : Other.Pieces) {
      BasicSet Piece = A.intersect(B);
      if (!Piece.isTriviallyEmpty())
        Result.Pieces.push_back(std::move(Piece));
    }
  return Result;
}

bool IntegerSet::isEmpty() const {
  for (const BasicSet &Piece : Pieces)
    if (!Piece.isEmpty())
      return false;
  return true;
}

std::optional<std::vector<Point>>
IntegerSet::enumeratePoints(size_t MaxPoints) const {
  std::set<Point> Seen;
  for (const BasicSet &Piece : Pieces) {
    auto Points = Piece.enumeratePoints(MaxPoints);
    if (!Points)
      return std::nullopt;
    for (Point &P : *Points) {
      Seen.insert(std::move(P));
      if (Seen.size() > MaxPoints)
        return std::nullopt;
    }
  }
  return std::vector<Point>(Seen.begin(), Seen.end());
}

std::optional<int64_t> IntegerSet::cardinality(size_t MaxPoints) const {
  auto Points = enumeratePoints(MaxPoints);
  if (!Points)
    return std::nullopt;
  return static_cast<int64_t>(Points->size());
}

void IntegerSet::simplify() {
  std::vector<BasicSet> Kept;
  for (BasicSet &Piece : Pieces) {
    if (Piece.simplify())
      Kept.push_back(std::move(Piece));
  }
  Pieces = std::move(Kept);
}

std::string IntegerSet::toString() const {
  if (Pieces.empty())
    return "{ }";
  std::string Out;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I)
      Out += " u ";
    Out += Pieces[I].toString();
  }
  return Out;
}
