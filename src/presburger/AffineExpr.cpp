//===- presburger/AffineExpr.cpp - Affine expressions -----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/AffineExpr.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdlib>
#include <numeric>

using namespace qlosure;
using namespace qlosure::presburger;

AffineExpr AffineExpr::constant(unsigned NumVars, int64_t Value) {
  AffineExpr E(NumVars);
  E.ConstantTerm = Value;
  return E;
}

AffineExpr AffineExpr::variable(unsigned NumVars, unsigned Var) {
  assert(Var < NumVars && "variable index out of range");
  AffineExpr E(NumVars);
  E.Coefficients[Var] = 1;
  return E;
}

int64_t AffineExpr::coefficient(unsigned Var) const {
  assert(Var < numVars() && "variable index out of range");
  return Coefficients[Var];
}

void AffineExpr::setCoefficient(unsigned Var, int64_t Value) {
  assert(Var < numVars() && "variable index out of range");
  Coefficients[Var] = Value;
}

int64_t AffineExpr::evaluate(const Point &Values) const {
  assert(Values.size() == Coefficients.size() &&
         "point dimensionality mismatch");
  int64_t Sum = ConstantTerm;
  for (size_t I = 0, E = Coefficients.size(); I != E; ++I)
    Sum += Coefficients[I] * Values[I];
  return Sum;
}

bool AffineExpr::isConstant() const {
  for (int64_t C : Coefficients)
    if (C != 0)
      return false;
  return true;
}

bool AffineExpr::isUnitVariable() const {
  unsigned NumNonZero = 0;
  for (int64_t C : Coefficients) {
    if (C == 0)
      continue;
    if (C != 1 && C != -1)
      return false;
    ++NumNonZero;
  }
  return NumNonZero == 1;
}

AffineExpr AffineExpr::operator+(const AffineExpr &Other) const {
  assert(numVars() == Other.numVars() && "variable space mismatch");
  AffineExpr Result = *this;
  for (size_t I = 0, E = Coefficients.size(); I != E; ++I)
    Result.Coefficients[I] += Other.Coefficients[I];
  Result.ConstantTerm += Other.ConstantTerm;
  return Result;
}

AffineExpr AffineExpr::operator-(const AffineExpr &Other) const {
  return *this + (-Other);
}

AffineExpr AffineExpr::operator-() const { return *this * -1; }

AffineExpr AffineExpr::operator*(int64_t Scale) const {
  AffineExpr Result = *this;
  for (int64_t &C : Result.Coefficients)
    C *= Scale;
  Result.ConstantTerm *= Scale;
  return Result;
}

AffineExpr AffineExpr::substitute(unsigned Var,
                                  const AffineExpr &Replacement) const {
  assert(Var < numVars() && "variable index out of range");
  assert(Replacement.numVars() == numVars() && "variable space mismatch");
  assert(Replacement.coefficient(Var) == 0 &&
         "replacement must not mention the substituted variable");
  int64_t Coef = Coefficients[Var];
  AffineExpr Result = *this;
  Result.Coefficients[Var] = 0;
  return Result + Replacement * Coef;
}

AffineExpr AffineExpr::extend(unsigned Count) const {
  AffineExpr Result = *this;
  Result.Coefficients.resize(Coefficients.size() + Count, 0);
  return Result;
}

AffineExpr AffineExpr::remapVars(const std::vector<unsigned> &Mapping,
                                 unsigned NewNumVars) const {
  assert(Mapping.size() == Coefficients.size() && "mapping size mismatch");
  AffineExpr Result(NewNumVars);
  Result.ConstantTerm = ConstantTerm;
  for (size_t I = 0, E = Coefficients.size(); I != E; ++I) {
    if (Coefficients[I] == 0)
      continue; // Dropped variables may carry a dummy mapping entry.
    assert(Mapping[I] < NewNumVars && "mapped variable out of range");
    Result.Coefficients[Mapping[I]] += Coefficients[I];
  }
  return Result;
}

int64_t AffineExpr::normalizeGcd() {
  int64_t Gcd = std::abs(ConstantTerm);
  for (int64_t C : Coefficients)
    Gcd = std::gcd(Gcd, std::abs(C));
  if (Gcd <= 1)
    return 1;
  for (int64_t &C : Coefficients)
    C /= Gcd;
  ConstantTerm /= Gcd;
  return Gcd;
}

std::string AffineExpr::toString() const {
  std::string Out;
  bool First = true;
  for (size_t I = 0, E = Coefficients.size(); I != E; ++I) {
    int64_t C = Coefficients[I];
    if (C == 0)
      continue;
    if (!First)
      Out += C > 0 ? " + " : " - ";
    else if (C < 0)
      Out += "-";
    int64_t Abs = std::abs(C);
    if (Abs != 1)
      Out += formatString("%lld*", static_cast<long long>(Abs));
    Out += formatString("x%zu", I);
    First = false;
  }
  if (First)
    return formatString("%lld", static_cast<long long>(ConstantTerm));
  if (ConstantTerm > 0)
    Out += formatString(" + %lld", static_cast<long long>(ConstantTerm));
  else if (ConstantTerm < 0)
    Out += formatString(" - %lld", static_cast<long long>(-ConstantTerm));
  return Out;
}

std::string Constraint::toString() const {
  return Expr.toString() +
         (Kind == ConstraintKind::Equality ? " == 0" : " >= 0");
}

Constraint presburger::makeEq(AffineExpr Expr) {
  return Constraint(std::move(Expr), ConstraintKind::Equality);
}

Constraint presburger::makeGe(AffineExpr Lhs, AffineExpr Rhs) {
  return Constraint(Lhs - Rhs, ConstraintKind::Inequality);
}

Constraint presburger::makeLe(AffineExpr Lhs, AffineExpr Rhs) {
  return Constraint(Rhs - Lhs, ConstraintKind::Inequality);
}

Constraint presburger::makeEqExpr(AffineExpr Lhs, AffineExpr Rhs) {
  return Constraint(Lhs - Rhs, ConstraintKind::Equality);
}
