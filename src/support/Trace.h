//===- support/Trace.h - Request-scoped span recorder -------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight, request-scoped span recorder for end-to-end tracing.
///
/// One Trace instance belongs to one request; it is not thread-safe and is
/// threaded by pointer through the layers a request visits (server handler,
/// scheduler worker, routing kernel). A null Trace* everywhere means
/// "tracing off": every instrumentation site is a single pointer test, the
/// hot loop allocates nothing, and routed output is byte-identical.
///
/// Spans are stored in one flat pooled vector of (name, start, duration,
/// depth) records relative to a per-request epoch. Names must be string
/// literals (the recorder stores the pointer, never copies). Nesting is
/// tracked with an explicit open-span stack so the depth of each span is
/// known without building a tree; consumers reconstruct the hierarchy from
/// (start, duration, depth). Spans whose clock reads happened elsewhere
/// (e.g. queue wait measured between submit and worker pickup) are added
/// after the fact with explicit offsets.
///
/// The span pool is capped; once full, further begins are counted as
/// dropped instead of recorded, so a pathological caller cannot balloon a
/// response.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_TRACE_H
#define QLOSURE_SUPPORT_TRACE_H

#include "support/Json.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

class Trace {
public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    const char *Name = "";
    int64_t StartNs = 0;
    int64_t DurNs = -1; ///< -1 while open.
    int Depth = 0;
  };

  /// Hard cap on recorded spans per request.
  static constexpr size_t MaxSpans = 4096;

  Trace() { Spans.reserve(64); }

  /// Rearms the recorder for a new request. \p TraceId is the request's
  /// wire-visible correlation id; \p Epoch anchors all offsets.
  void reset(std::string TraceId, Clock::time_point Epoch = Clock::now()) {
    Id = std::move(TraceId);
    Base = Epoch;
    Spans.clear();
    OpenStack.clear();
    Dropped = 0;
  }

  Clock::time_point epoch() const { return Base; }
  const std::string &traceId() const { return Id; }

  /// Opens a nested span. \p Name must be a string literal (the pointer is
  /// stored). Returns the span index to pass to end(), or -1 if the pool
  /// is full (end(-1) is a no-op).
  int begin(const char *Name) {
    if (Spans.size() >= MaxSpans) {
      ++Dropped;
      return -1;
    }
    Span S;
    S.Name = Name;
    S.StartNs = sinceEpochNs(Clock::now());
    S.Depth = static_cast<int>(OpenStack.size());
    int Idx = static_cast<int>(Spans.size());
    Spans.push_back(S);
    OpenStack.push_back(Idx);
    return Idx;
  }

  /// Closes the span returned by begin(). Out-of-order ends close every
  /// span opened after it as well (they share the end timestamp), so a
  /// missed end() deeper in the stack cannot corrupt later nesting.
  void end(int Idx) {
    if (Idx < 0)
      return;
    int64_t Now = sinceEpochNs(Clock::now());
    while (!OpenStack.empty()) {
      int Open = OpenStack.back();
      OpenStack.pop_back();
      if (Spans[Open].DurNs < 0)
        Spans[Open].DurNs = Now - Spans[Open].StartNs;
      if (Open == Idx)
        break;
    }
  }

  /// Records a span whose endpoints were measured elsewhere. Nested under
  /// the currently open span, if any.
  void add(const char *Name, Clock::time_point Start, Clock::time_point End) {
    addNs(Name, sinceEpochNs(Start), sinceEpochNs(End) - sinceEpochNs(Start));
  }

  /// Same, with raw epoch-relative offsets (used when merging a remote
  /// trace whose clock is not ours).
  void addNs(const char *Name, int64_t StartNs, int64_t DurNs) {
    if (Spans.size() >= MaxSpans) {
      ++Dropped;
      return;
    }
    Span S;
    S.Name = Name;
    S.StartNs = StartNs;
    S.DurNs = DurNs < 0 ? 0 : DurNs;
    S.Depth = static_cast<int>(OpenStack.size());
    Spans.push_back(S);
  }

  const std::vector<Span> &spans() const { return Spans; }
  size_t dropped() const { return Dropped; }

  int64_t sinceEpochNs(Clock::time_point T) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(T - Base)
        .count();
  }

  /// Serializes the trace for the wire:
  ///   {"trace_id":"...","spans":[{"name","start_us","dur_us","depth"},...]}
  /// Open spans are closed at \p Now first so a trace snapshot taken
  /// mid-request is still well-formed.
  json::Value toJson(Clock::time_point Now = Clock::now()) const;

private:
  std::string Id;
  Clock::time_point Base{};
  std::vector<Span> Spans;
  std::vector<int> OpenStack;
  size_t Dropped = 0;
};

/// RAII span. Null-safe: a null Trace* makes construction and destruction
/// a pointer test each.
class ScopedSpan {
public:
  ScopedSpan(Trace *T, const char *Name) : T(T) {
    if (T)
      Idx = T->begin(Name);
  }
  ~ScopedSpan() {
    if (T)
      T->end(Idx);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  /// Ends the span early (idempotent).
  void done() {
    if (T)
      T->end(Idx);
    T = nullptr;
  }

private:
  Trace *T = nullptr;
  int Idx = -1;
};

/// Generates a 16-hex-digit request trace id from a process-wide counter
/// mixed with the clock; unique enough for log correlation, not
/// cryptographic.
std::string generateTraceId();

} // namespace qlosure

#endif // QLOSURE_SUPPORT_TRACE_H
