//===- support/Statistics.cpp - Summary statistics -------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace qlosure;

double qlosure::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double qlosure::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double qlosure::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double qlosure::median(std::vector<double> Values) {
  if (Values.empty())
    return 0;
  std::sort(Values.begin(), Values.end());
  size_t N = Values.size();
  if (N % 2)
    return Values[N / 2];
  return 0.5 * (Values[N / 2 - 1] + Values[N / 2]);
}

double qlosure::minOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  return *std::min_element(Values.begin(), Values.end());
}

double qlosure::maxOf(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  return *std::max_element(Values.begin(), Values.end());
}

void RunningStat::add(double Value) {
  if (Count == 0) {
    Min = Max = Value;
  } else {
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
  }
  Sum += Value;
  ++Count;
}
