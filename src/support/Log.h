//===- support/Log.h - Leveled structured JSON logging ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide structured logging: one JSON object per line, leveled,
/// mutex-serialized, written to stderr or a file. Built on support/Json so
/// every value is correctly escaped and every emitted line is parseable.
///
///   log::configure(log::Level::Info, "/var/log/qlosured.jsonl");
///   if (log::enabled(log::Level::Warn))
///     log::Event(log::Level::Warn, "queue_full")
///         .str("endpoint", Addr).num("depth", Depth);
///
/// An Event gathers fields builder-style and emits itself on destruction
/// (a single write under the sink mutex, so concurrent lines never
/// interleave). Events below the configured level cost one atomic load
/// and build nothing. The default level is Off: a process that never
/// calls configure() logs nothing, so library code can log
/// unconditionally.
///
/// Line schema: {"ts":<unix seconds>,"level":"info","msg":"...",<fields>}
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_LOG_H
#define QLOSURE_SUPPORT_LOG_H

#include "support/Json.h"

#include <string>

namespace qlosure {
namespace log {

enum class Level : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Installs the process-wide sink. \p FilePath empty means stderr; a
/// nonempty path is opened in append mode. Returns false (and leaves the
/// previous sink in place) when the file cannot be opened.
bool configure(Level Threshold, const std::string &FilePath = "");

/// Current threshold; Events below it are discarded at construction.
Level threshold();
inline bool enabled(Level L) {
  return static_cast<int>(L) >= static_cast<int>(threshold()) &&
         threshold() != Level::Off;
}

/// Parses "debug"/"info"/"warn"/"error"/"off". Returns false on anything
/// else and leaves \p Out untouched.
bool parseLevel(const std::string &Text, Level &Out);
const char *levelName(Level L);

/// Flushes the sink (used by tests reading the log file back).
void flush();

/// One structured log line. Fields are appended in call order after the
/// fixed ts/level/msg prefix; the line is emitted on destruction.
class Event {
public:
  Event(Level L, const char *Msg);
  ~Event();
  Event(const Event &) = delete;
  Event &operator=(const Event &) = delete;

  Event &str(const char *Key, const std::string &V);
  Event &num(const char *Key, double V);
  Event &boolean(const char *Key, bool V);
  /// Attaches a pre-built JSON subtree (e.g. a request trace).
  Event &json(const char *Key, json::Value V);

private:
  bool Active;
  json::Value Doc;
};

} // namespace log
} // namespace qlosure

#endif // QLOSURE_SUPPORT_LOG_H
