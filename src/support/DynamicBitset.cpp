//===- support/DynamicBitset.cpp - Resizable bit vector -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DynamicBitset.h"

using namespace qlosure;

void DynamicBitset::resize(size_t NewNumBits) {
  NumBits = NewNumBits;
  Words.resize((NumBits + 63) / 64, 0);
  clearUnusedBits();
}

void DynamicBitset::clearAll() {
  for (uint64_t &Word : Words)
    Word = 0;
}

void DynamicBitset::setAll() {
  for (uint64_t &Word : Words)
    Word = ~uint64_t(0);
  clearUnusedBits();
}

size_t DynamicBitset::count() const {
  size_t Total = 0;
  for (uint64_t Word : Words)
    Total += static_cast<size_t>(__builtin_popcountll(Word));
  return Total;
}

DynamicBitset &DynamicBitset::operator|=(const DynamicBitset &Other) {
  assert(NumBits == Other.NumBits && "universe size mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] |= Other.Words[I];
  return *this;
}

DynamicBitset &DynamicBitset::operator&=(const DynamicBitset &Other) {
  assert(NumBits == Other.NumBits && "universe size mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    Words[I] &= Other.Words[I];
  return *this;
}

bool DynamicBitset::any() const {
  for (uint64_t Word : Words)
    if (Word)
      return true;
  return false;
}

bool DynamicBitset::intersects(const DynamicBitset &Other) const {
  assert(NumBits == Other.NumBits && "universe size mismatch");
  for (size_t I = 0, E = Words.size(); I != E; ++I)
    if (Words[I] & Other.Words[I])
      return true;
  return false;
}

size_t DynamicBitset::findFirst() const {
  for (size_t W = 0; W < Words.size(); ++W)
    if (Words[W])
      return W * 64 + static_cast<size_t>(__builtin_ctzll(Words[W]));
  return NumBits;
}

size_t DynamicBitset::findNext(size_t Bit) const {
  if (Bit + 1 >= NumBits)
    return NumBits;
  size_t Start = Bit + 1;
  size_t W = Start >> 6;
  uint64_t Word = Words[W] & (~uint64_t(0) << (Start & 63));
  for (;;) {
    if (Word)
      return W * 64 + static_cast<size_t>(__builtin_ctzll(Word));
    if (++W == Words.size())
      return NumBits;
    Word = Words[W];
  }
}

void DynamicBitset::clearUnusedBits() {
  if (NumBits & 63)
    Words.back() &= (uint64_t(1) << (NumBits & 63)) - 1;
}
