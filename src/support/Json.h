//===- support/Json.h - Minimal JSON value, parser, writer -------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free JSON library backing the qlosured wire protocol
/// and the machine-readable stats outputs (`qlosure-route --json`, the
/// bench JSON reports). Design points:
///
///  * Objects preserve insertion order, so serialized output is
///    deterministic and diffs/byte-comparisons in tests are stable.
///  * Numbers are doubles; integral values within the exactly representable
///    range serialize without a decimal point ("42", not "42.0").
///  * The parser is defensive: depth-limited recursion, positioned error
///    messages, strict about trailing garbage. Malformed input can never
///    abort the process — exactly what a daemon parsing untrusted request
///    lines needs.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_JSON_H
#define QLOSURE_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace qlosure {
namespace json {

/// A JSON value: null, bool, number, string, array, or object.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Value() : TheKind(Kind::Null) {}
  Value(bool B) : TheKind(Kind::Bool), BoolValue(B) {}
  Value(double N) : TheKind(Kind::Number), NumberValue(N) {}
  Value(int N) : TheKind(Kind::Number), NumberValue(N) {}
  Value(unsigned N) : TheKind(Kind::Number), NumberValue(N) {}
  Value(int64_t N)
      : TheKind(Kind::Number), NumberValue(static_cast<double>(N)) {}
  Value(uint64_t N)
      : TheKind(Kind::Number), NumberValue(static_cast<double>(N)) {}
  Value(std::string S) : TheKind(Kind::String), StringValue(std::move(S)) {}
  Value(const char *S) : TheKind(Kind::String), StringValue(S) {}

  static Value array() {
    Value V;
    V.TheKind = Kind::Array;
    return V;
  }
  static Value object() {
    Value V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isNumber() const { return TheKind == Kind::Number; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  /// Typed accessors; calling the wrong one returns a zero value rather
  /// than aborting (protocol code always kind-checks first anyway).
  bool asBool() const { return isBool() && BoolValue; }
  double asNumber() const { return isNumber() ? NumberValue : 0.0; }
  const std::string &asString() const { return StringValue; }

  /// Array elements (empty unless isArray()).
  const std::vector<Value> &items() const { return Items; }
  void push(Value V) { Items.push_back(std::move(V)); }

  /// Object members in insertion order (empty unless isObject()).
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Sets \p Key to \p V, replacing an existing member of the same name.
  void set(const std::string &Key, Value V);

  /// Pointer to the member named \p Key, or nullptr when absent (or when
  /// this value is not an object).
  const Value *get(const std::string &Key) const;

  /// Compact serialization (no whitespace), RFC 8259 escaping. The output
  /// never contains a raw newline, so any dumped value is a valid line of
  /// a newline-delimited protocol stream.
  std::string dump() const;

private:
  Kind TheKind;
  bool BoolValue = false;
  double NumberValue = 0;
  std::string StringValue;
  std::vector<Value> Items;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parse outcome: Ok == true and V meaningful, or Ok == false and Error
/// holding a positioned message ("offset 17: expected ':'").
struct ParseResult {
  bool Ok = false;
  Value V;
  std::string Error;
};

/// Parses one JSON document from \p Text (leading/trailing whitespace
/// allowed, anything else after the document is an error). Recursion is
/// depth-limited; pathological nesting fails cleanly instead of
/// overflowing the stack.
ParseResult parse(const std::string &Text);

/// Appends \p Text to \p Out with JSON string escaping (no surrounding
/// quotes). Exposed for stream-style writers that bypass Value.
void escapeString(const std::string &Text, std::string &Out);

} // namespace json
} // namespace qlosure

#endif // QLOSURE_SUPPORT_JSON_H
