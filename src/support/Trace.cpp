//===- support/Trace.cpp - Request-scoped span recorder -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <atomic>
#include <cstdio>

namespace qlosure {

json::Value Trace::toJson(Clock::time_point Now) const {
  json::Value Doc = json::Value::object();
  Doc.set("trace_id", json::Value(Id));
  int64_t NowNs = sinceEpochNs(Now);
  json::Value Arr = json::Value::array();
  for (const Span &S : Spans) {
    json::Value J = json::Value::object();
    J.set("name", json::Value(std::string(S.Name)));
    J.set("start_us", json::Value(static_cast<double>(S.StartNs / 1000)));
    int64_t Dur = S.DurNs >= 0 ? S.DurNs : NowNs - S.StartNs;
    if (Dur < 0)
      Dur = 0;
    J.set("dur_us", json::Value(static_cast<double>(Dur / 1000)));
    J.set("depth", json::Value(static_cast<double>(S.Depth)));
    Arr.push(std::move(J));
  }
  Doc.set("spans", std::move(Arr));
  if (Dropped > 0)
    Doc.set("dropped_spans", json::Value(static_cast<double>(Dropped)));
  return Doc;
}

std::string generateTraceId() {
  static std::atomic<uint64_t> Counter{0};
  uint64_t C = Counter.fetch_add(1, std::memory_order_relaxed);
  uint64_t T = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  // splitmix64 over the combined word: well-distributed ids without
  // carrying RNG state (and without touching any routing RNG).
  uint64_t X = T + 0x9e3779b97f4a7c15ull * (C + 1);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(X));
  return std::string(Buf, 16);
}

} // namespace qlosure
