//===- support/Fingerprint.h - Content hashes for cache keys -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit content fingerprints used as cache keys by the qlosured service
/// layer: two circuits (or coupling graphs) with equal fingerprints are
/// treated as interchangeable for mapping purposes, so the hash folds in
/// exactly the state the routers read — gate kinds, operands and
/// parameters, qubit counts, edges, and the installed edge-error model —
/// and nothing derived from it (distance matrices, DAGs) or cosmetic
/// (names). Collisions are possible in principle at 64 bits; at service
/// cache sizes (thousands of entries) the birthday bound keeps the
/// probability negligible, and a collision only yields a stale-but-valid
/// routed answer for the colliding circuit, never memory unsafety.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_FINGERPRINT_H
#define QLOSURE_SUPPORT_FINGERPRINT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace qlosure {

class Circuit;
class CouplingGraph;
struct RoutingContextOptions;

/// FNV-1a over \p Size raw bytes, seeded with \p Seed (chain calls by
/// passing the previous result as the seed).
uint64_t hashBytes(const void *Data, size_t Size,
                   uint64_t Seed = 0xCBF29CE484222325ULL);

/// Order-dependent combination of two 64-bit hashes (boost-style mix).
uint64_t hashCombine(uint64_t Seed, uint64_t Value);

/// Content hash of \p Text.
uint64_t fingerprintString(const std::string &Text);

/// Content hash of a circuit: qubit count plus every gate's kind, operands
/// and parameter bit patterns, in trace order. The circuit name is
/// excluded (renaming a circuit must not defeat the cache).
uint64_t fingerprint(const Circuit &Circ);

/// Content hash of a coupling graph: qubit count, the sorted edge set, and
/// the edge-error model when one is installed (so two calibrations of the
/// same topology key different cache entries). Derived state (distance
/// matrices) and the name are excluded.
uint64_t fingerprint(const CouplingGraph &Graph);

/// Content hash of context-construction options (omega engine knobs,
/// weighted-distance requirement): contexts built with different options
/// are not interchangeable and must key different cache entries.
uint64_t fingerprint(const RoutingContextOptions &Options);

} // namespace qlosure

#endif // QLOSURE_SUPPORT_FINGERPRINT_H
