//===- support/Fingerprint.cpp - Content hashes for cache keys -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Fingerprint.h"

#include "circuit/Circuit.h"
#include "route/RoutingContext.h"
#include "topology/CouplingGraph.h"

#include <algorithm>
#include <cstring>

using namespace qlosure;

uint64_t qlosure::hashBytes(const void *Data, size_t Size, uint64_t Seed) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  uint64_t Hash = Seed;
  for (size_t I = 0; I < Size; ++I) {
    Hash ^= Bytes[I];
    Hash *= 0x100000001B3ULL; // FNV-1a prime.
  }
  return Hash;
}

uint64_t qlosure::hashCombine(uint64_t Seed, uint64_t Value) {
  // 64-bit variant of boost::hash_combine (golden-ratio constant).
  return Seed ^ (Value + 0x9E3779B97F4A7C15ULL + (Seed << 12) + (Seed >> 4));
}

uint64_t qlosure::fingerprintString(const std::string &Text) {
  return hashBytes(Text.data(), Text.size());
}

namespace {

uint64_t hashU64(uint64_t Seed, uint64_t V) {
  return hashBytes(&V, sizeof(V), Seed);
}

uint64_t hashDouble(uint64_t Seed, double V) {
  // Bit-pattern hash: distinguishes -0.0 from 0.0 and every NaN payload,
  // which errs toward cache misses, never toward wrong hits.
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return hashU64(Seed, Bits);
}

} // namespace

uint64_t qlosure::fingerprint(const Circuit &Circ) {
  uint64_t Hash = hashU64(0x51C0DE5EEDULL, Circ.numQubits());
  Hash = hashU64(Hash, Circ.size());
  for (const Gate &G : Circ.gates()) {
    Hash = hashU64(Hash, static_cast<uint64_t>(G.Kind));
    unsigned NQ = G.numQubits();
    for (unsigned I = 0; I < NQ; ++I)
      Hash = hashU64(Hash, static_cast<uint64_t>(
                               static_cast<int64_t>(G.Qubits[I])));
    unsigned NP = G.numParams();
    for (unsigned I = 0; I < NP; ++I)
      Hash = hashDouble(Hash, G.Params[I]);
  }
  return Hash;
}

uint64_t qlosure::fingerprint(const CouplingGraph &Graph) {
  uint64_t Hash = hashU64(0x70B0106BULL, Graph.numQubits());
  // edges() enumerates adjacency lists whose order depends on insertion
  // history; sort so equal edge *sets* hash equal however they were built.
  std::vector<std::pair<unsigned, unsigned>> Edges = Graph.edges();
  std::sort(Edges.begin(), Edges.end());
  Hash = hashU64(Hash, Edges.size());
  for (const auto &[A, B] : Edges) {
    Hash = hashU64(Hash, A);
    Hash = hashU64(Hash, B);
    if (Graph.hasErrorModel())
      Hash = hashDouble(Hash, Graph.edgeError(A, B));
  }
  Hash = hashU64(Hash, Graph.hasErrorModel() ? 1 : 0);
  return Hash;
}

uint64_t qlosure::fingerprint(const RoutingContextOptions &Options) {
  uint64_t Hash = hashU64(0xC0F1605EEDULL,
                          static_cast<uint64_t>(Options.Weights.Engine));
  Hash = hashU64(Hash, Options.Weights.ExactGateLimit);
  Hash = hashU64(Hash, Options.Weights.SaturationStatementLimit);
  Hash = hashU64(Hash, Options.RequireWeightedDistances ? 1 : 0);
  return Hash;
}
