//===- support/Log.cpp - Leveled structured JSON logging ------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace qlosure {
namespace log {

namespace {

struct Sink {
  std::mutex Mu;
  std::FILE *File = nullptr; ///< nullptr means stderr.

  ~Sink() {
    if (File)
      std::fclose(File);
  }
};

Sink &sink() {
  static Sink S;
  return S;
}

std::atomic<int> CurrentLevel{static_cast<int>(Level::Off)};

} // namespace

bool configure(Level Threshold, const std::string &FilePath) {
  Sink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (!FilePath.empty()) {
    std::FILE *F = std::fopen(FilePath.c_str(), "a");
    if (!F)
      return false;
    if (S.File)
      std::fclose(S.File);
    S.File = F;
  } else if (S.File) {
    std::fclose(S.File);
    S.File = nullptr;
  }
  CurrentLevel.store(static_cast<int>(Threshold), std::memory_order_relaxed);
  return true;
}

Level threshold() {
  return static_cast<Level>(CurrentLevel.load(std::memory_order_relaxed));
}

bool parseLevel(const std::string &Text, Level &Out) {
  if (Text == "debug")
    Out = Level::Debug;
  else if (Text == "info")
    Out = Level::Info;
  else if (Text == "warn")
    Out = Level::Warn;
  else if (Text == "error")
    Out = Level::Error;
  else if (Text == "off")
    Out = Level::Off;
  else
    return false;
  return true;
}

const char *levelName(Level L) {
  switch (L) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  case Level::Off:
    return "off";
  }
  return "off";
}

void flush() {
  Sink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  std::fflush(S.File ? S.File : stderr);
}

Event::Event(Level L, const char *Msg) : Active(enabled(L)) {
  if (!Active)
    return;
  Doc = json::Value::object();
  double Ts = std::chrono::duration_cast<std::chrono::duration<double>>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
  Doc.set("ts", json::Value(Ts));
  Doc.set("level", json::Value(std::string(levelName(L))));
  Doc.set("msg", json::Value(std::string(Msg)));
}

Event::~Event() {
  if (!Active)
    return;
  std::string Line = Doc.dump();
  Line.push_back('\n');
  Sink &S = sink();
  std::lock_guard<std::mutex> Lock(S.Mu);
  std::FILE *F = S.File ? S.File : stderr;
  std::fwrite(Line.data(), 1, Line.size(), F);
  std::fflush(F);
}

Event &Event::str(const char *Key, const std::string &V) {
  if (Active)
    Doc.set(Key, json::Value(V));
  return *this;
}

Event &Event::num(const char *Key, double V) {
  if (Active)
    Doc.set(Key, json::Value(V));
  return *this;
}

Event &Event::boolean(const char *Key, bool V) {
  if (Active)
    Doc.set(Key, json::Value(V));
  return *this;
}

Event &Event::json(const char *Key, json::Value V) {
  if (Active)
    Doc.set(Key, std::move(V));
  return *this;
}

} // namespace log
} // namespace qlosure
