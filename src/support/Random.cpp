//===- support/Random.cpp - Deterministic random number generation --------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

using namespace qlosure;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9E3779B97F4A7C15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
  // A pathological all-zero state would make xoshiro emit only zeros.
  if (!(State[0] | State[1] | State[2] | State[3]))
    State[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::nextBounded(uint64_t Bound) {
  assert(Bound != 0 && "nextBounded requires a nonzero bound");
  // Rejection sampling over the largest multiple of Bound.
  uint64_t Threshold = (0ULL - Bound) % Bound;
  for (;;) {
    uint64_t Value = next();
    if (Value >= Threshold)
      return Value % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBounded(Span));
}

double Rng::nextDouble() {
  // 53 uniformly random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}
