//===- support/Table.h - ASCII table printer --------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small ASCII table builder used by the benchmark binaries to print the
/// paper's tables (Tables II-VI) in a readable, diffable form.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_TABLE_H
#define QLOSURE_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace qlosure {

/// Collects rows of string cells and renders them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a data row; its width must match the header.
  void addRow(std::vector<std::string> Row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table. Column widths fit the widest cell; the first column
  /// is left-aligned and all others right-aligned (numeric convention).
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  // A row with the sentinel single cell "\x01" renders as a separator.
  std::vector<std::vector<std::string>> Rows;
};

} // namespace qlosure

#endif // QLOSURE_SUPPORT_TABLE_H
