//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting and splitting helpers shared by the QASM frontend,
/// the table printer and the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_STRINGUTILS_H
#define QLOSURE_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace qlosure {

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits \p Text on \p Separator; empty fields are kept.
std::vector<std::string> splitString(const std::string &Text, char Separator);

/// Removes leading and trailing ASCII whitespace.
std::string trimString(const std::string &Text);

/// Returns true if \p Text starts with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Formats a double with \p Precision decimals, trimming trailing zeros is
/// intentionally NOT done so that tables align.
std::string formatDouble(double Value, int Precision);

} // namespace qlosure

#endif // QLOSURE_SUPPORT_STRINGUTILS_H
