//===- support/Json.cpp - Minimal JSON value, parser, writer -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace qlosure;
using namespace qlosure::json;

void Value::set(const std::string &Key, Value V) {
  TheKind = Kind::Object;
  for (auto &Member : Members) {
    if (Member.first == Key) {
      Member.second = std::move(V);
      return;
    }
  }
  Members.emplace_back(Key, std::move(V));
}

const Value *Value::get(const std::string &Key) const {
  for (const auto &Member : Members)
    if (Member.first == Key)
      return &Member.second;
  return nullptr;
}

void json::escapeString(const std::string &Text, std::string &Out) {
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += static_cast<char>(C);
    }
  }
}

namespace {

void dumpNumber(double N, std::string &Out) {
  if (std::isnan(N) || std::isinf(N)) {
    // JSON has no NaN/Inf; emit null (stats code never produces these).
    Out += "null";
    return;
  }
  double Integral;
  if (std::modf(N, &Integral) == 0.0 && std::fabs(N) < 1e15) {
    Out += formatString("%lld", static_cast<long long>(N));
    return;
  }
  Out += formatString("%.17g", N);
}

void dumpValue(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::Kind::Null:
    Out += "null";
    return;
  case Value::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case Value::Kind::Number:
    dumpNumber(V.asNumber(), Out);
    return;
  case Value::Kind::String:
    Out += '"';
    escapeString(V.asString(), Out);
    Out += '"';
    return;
  case Value::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const Value &Item : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      dumpValue(Item, Out);
    }
    Out += ']';
    return;
  }
  case Value::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &Member : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      escapeString(Member.first, Out);
      Out += "\":";
      dumpValue(Member.second, Out);
    }
    Out += '}';
    return;
  }
  }
}

/// Recursive-descent parser over a raw character range.
class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  ParseResult run() {
    ParseResult Result;
    skipWhitespace();
    if (!parseValue(Result.V, 0)) {
      Result.Error = Error;
      return Result;
    }
    skipWhitespace();
    if (Pos != Text.size()) {
      Result.Error = positioned("trailing characters after JSON document");
      return Result;
    }
    Result.Ok = true;
    return Result;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  std::string positioned(const std::string &Message) const {
    return formatString("offset %zu: %s", Pos, Message.c_str());
  }

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = positioned(Message);
    return false;
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseLiteral(const char *Literal, Value V, Value &Out) {
    size_t Len = std::char_traits<char>::length(Literal);
    if (Text.compare(Pos, Len, Literal) != 0)
      return fail(formatString("expected '%s'", Literal));
    Pos += Len;
    Out = std::move(V);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      unsigned char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        // Combine a surrogate pair when one follows; otherwise encode the
        // unit as-is (lone surrogates become replacement-like bytes, which
        // is fine for a protocol that only ships ASCII QASM).
        if (Code >= 0xD800 && Code <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Saved = Pos;
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low >= 0xDC00 && Low <= 0xDFFF)
            Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
          else
            Pos = Saved; // Not a pair; re-read later as its own escape.
        }
        appendUtf8(Code, Out);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= C - '0';
      else if (C >= 'a' && C <= 'f')
        Out |= C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        Out |= C - 'A' + 10;
      else
        return fail("invalid \\u escape digit");
    }
    return true;
  }

  static void appendUtf8(unsigned Code, std::string &Out) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double N = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size())
      return fail("malformed number");
    Out = Value(N);
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n')
      return parseLiteral("null", Value(), Out);
    if (C == 't')
      return parseLiteral("true", Value(true), Out);
    if (C == 'f')
      return parseLiteral("false", Value(false), Out);
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Value(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out = Value::array();
      skipWhitespace();
      if (consume(']'))
        return true;
      while (true) {
        Value Item;
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.push(std::move(Item));
        skipWhitespace();
        if (consume(']'))
          return true;
        if (!consume(','))
          return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = Value::object();
      skipWhitespace();
      if (consume('}'))
        return true;
      while (true) {
        skipWhitespace();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWhitespace();
        if (!consume(':'))
          return fail("expected ':'");
        Value Member;
        if (!parseValue(Member, Depth + 1))
          return false;
        Out.set(Key, std::move(Member));
        skipWhitespace();
        if (consume('}'))
          return true;
        if (!consume(','))
          return fail("expected ',' or '}'");
      }
    }
    return parseNumber(Out);
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

std::string Value::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

ParseResult json::parse(const std::string &Text) { return Parser(Text).run(); }
