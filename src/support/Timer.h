//===- support/Timer.h - Wall-clock timing -----------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock stopwatch used to report mapping times in the
/// evaluation harness (Table IV / Fig. 5 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_TIMER_H
#define QLOSURE_SUPPORT_TIMER_H

#include <chrono>

namespace qlosure {

/// A stopwatch that starts at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last reset().
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed wall-clock milliseconds.
  double elapsedMilliseconds() const { return elapsedSeconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace qlosure

#endif // QLOSURE_SUPPORT_TIMER_H
