//===- support/Error.cpp - Fatal error reporting --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace qlosure;

void qlosure::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "qlosure fatal error: %s\n", Message.c_str());
  std::abort();
}

void qlosure::reportFatalError(const Status &S) {
  reportFatalError(S.ok() ? std::string("fatal error with OK status")
                          : S.message());
}

void qlosure::unreachableInternal(const char *Message, const char *File,
                                  unsigned Line) {
  std::fprintf(stderr, "qlosure unreachable at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}
