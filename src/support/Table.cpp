//===- support/Table.cpp - ASCII table printer ------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;

static const char *SeparatorSentinel = "\x01";

Table::Table(std::vector<std::string> HeaderCells)
    : Header(std::move(HeaderCells)) {
  assert(!Header.empty() && "a table needs at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row width must match header");
  Rows.push_back(std::move(Row));
}

void Table::addSeparator() { Rows.push_back({SeparatorSentinel}); }

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows) {
    if (Row.size() == 1 && Row[0] == SeparatorSentinel)
      continue;
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());
  }

  auto renderCell = [&](const std::string &Cell, size_t C) {
    std::string Out;
    size_t Pad = Widths[C] - Cell.size();
    if (C == 0) { // Left align the label column.
      Out = Cell + std::string(Pad, ' ');
    } else {
      Out = std::string(Pad, ' ') + Cell;
    }
    return Out;
  };

  auto renderLine = [&](const std::vector<std::string> &Cells) {
    std::string Line = "|";
    for (size_t C = 0; C < Cells.size(); ++C)
      Line += " " + renderCell(Cells[C], C) + " |";
    Line += "\n";
    return Line;
  };

  std::string Rule = "+";
  for (size_t W : Widths)
    Rule += std::string(W + 2, '-') + "+";
  Rule += "\n";

  std::string Out = Rule + renderLine(Header) + Rule;
  for (const auto &Row : Rows) {
    if (Row.size() == 1 && Row[0] == SeparatorSentinel)
      Out += Rule;
    else
      Out += renderLine(Row);
  }
  Out += Rule;
  return Out;
}
