//===- support/Statistics.h - Summary statistics ----------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small summary-statistics helpers used by the evaluation harness when
/// aggregating depth factors, SWAP ratios and mapping times.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_STATISTICS_H
#define QLOSURE_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace qlosure {

/// Arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Geometric mean of \p Values (all must be positive); 0 for an empty vector.
double geometricMean(const std::vector<double> &Values);

/// Sample standard deviation (Bessel-corrected, N-1 denominator); 0 for
/// fewer than two samples. The harness aggregates *samples* of workload
/// populations (a handful of QUEKO seeds per depth), so the unbiased
/// sample estimator is the consistent choice — the previous implementation
/// special-cased N < 2 like a sample estimator but then divided by N.
double stddev(const std::vector<double> &Values);

/// Median (average of the two middle elements for even sizes).
double median(std::vector<double> Values);

/// Minimum; 0 for an empty vector.
double minOf(const std::vector<double> &Values);

/// Maximum; 0 for an empty vector.
double maxOf(const std::vector<double> &Values);

/// Incremental accumulator for mean/min/max without storing samples.
class RunningStat {
public:
  void add(double Value);
  size_t count() const { return Count; }
  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }
  double min() const { return Count ? Min : 0; }
  double max() const { return Count ? Max : 0; }
  double sum() const { return Sum; }

private:
  size_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

} // namespace qlosure

#endif // QLOSURE_SUPPORT_STATISTICS_H
