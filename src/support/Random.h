//===- support/Random.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation. All stochastic choices
/// in the library (tie-breaking, workload generation) flow through Rng so
/// that every experiment is reproducible from a printed seed.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_RANDOM_H
#define QLOSURE_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qlosure {

/// xoshiro256** generator seeded via SplitMix64. Fast, high quality and
/// fully deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed using SplitMix64 expansion.
  void reseed(uint64_t Seed);

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed integer in [0, Bound). \p Bound must be
  /// nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t nextBounded(uint64_t Bound);

  /// Returns a uniformly distributed integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble();

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBernoulli(double P);

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    if (Values.size() < 2)
      return;
    for (size_t I = Values.size() - 1; I > 0; --I) {
      size_t J = static_cast<size_t>(nextBounded(I + 1));
      std::swap(Values[I], Values[J]);
    }
  }

  /// Picks a uniformly random element of \p Values (must be nonempty).
  template <typename T> const T &pick(const std::vector<T> &Values) {
    assert(!Values.empty() && "cannot pick from an empty vector");
    return Values[static_cast<size_t>(nextBounded(Values.size()))];
  }

private:
  uint64_t State[4];
};

} // namespace qlosure

#endif // QLOSURE_SUPPORT_RANDOM_H
