//===- support/DynamicBitset.h - Resizable bit vector -----------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact resizable bit vector with fast bulk OR/AND, used by the exact
/// transitive-closure engine where each gate carries the set of its
/// transitive successors.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_DYNAMICBITSET_H
#define QLOSURE_SUPPORT_DYNAMICBITSET_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qlosure {

/// Fixed-universe bit vector. The universe size is set at construction (or
/// via resize) and all operations assert compatible sizes.
class DynamicBitset {
public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t NumBits) { resize(NumBits); }

  /// Resizes the universe to \p NumBits, clearing any newly exposed bits.
  void resize(size_t NumBits);

  size_t size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  void set(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit >> 6] |= (uint64_t(1) << (Bit & 63));
  }

  void reset(size_t Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit >> 6] &= ~(uint64_t(1) << (Bit & 63));
  }

  bool test(size_t Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[Bit >> 6] >> (Bit & 63)) & 1;
  }

  /// Clears all bits, keeping the universe size.
  void clearAll();

  /// Sets all bits in the universe.
  void setAll();

  /// Number of set bits.
  size_t count() const;

  /// Bitwise OR-assign; universes must match.
  DynamicBitset &operator|=(const DynamicBitset &Other);

  /// Bitwise AND-assign; universes must match.
  DynamicBitset &operator&=(const DynamicBitset &Other);

  /// Returns true if any bit is set.
  bool any() const;

  /// Returns true if this and \p Other share at least one set bit.
  bool intersects(const DynamicBitset &Other) const;

  bool operator==(const DynamicBitset &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  /// Index of the first set bit, or size() when none is set.
  size_t findFirst() const;

  /// Index of the first set bit strictly after \p Bit, or size().
  size_t findNext(size_t Bit) const;

  /// Invokes \p Fn(Index) for every set bit in increasing order.
  template <typename FnT> void forEachSetBit(FnT Fn) const {
    for (size_t W = 0; W < Words.size(); ++W) {
      uint64_t Word = Words[W];
      while (Word) {
        unsigned Offset = static_cast<unsigned>(__builtin_ctzll(Word));
        Fn(W * 64 + Offset);
        Word &= Word - 1;
      }
    }
  }

private:
  /// Zeroes the bits beyond NumBits in the last word so count() stays exact.
  void clearUnusedBits();

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace qlosure

#endif // QLOSURE_SUPPORT_DYNAMICBITSET_H
