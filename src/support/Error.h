//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the Qlosure project, an open-source reproduction of the CGO 2026
// paper "Dependence-Driven, Scalable Quantum Circuit Mapping with Affine
// Abstractions". Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error-reporting helpers used across the library. Library code never throws
/// exceptions; invariant violations abort with a message and recoverable
/// conditions are surfaced via return values.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_ERROR_H
#define QLOSURE_SUPPORT_ERROR_H

#include <string>

namespace qlosure {

/// Prints \p Message to stderr and aborts. Used for unrecoverable violations
/// of library invariants (never for malformed user input).
[[noreturn]] void reportFatalError(const std::string &Message);

/// Marks a point in the code that must never be reached.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace qlosure

#define QLOSURE_UNREACHABLE(MSG)                                               \
  ::qlosure::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // QLOSURE_SUPPORT_ERROR_H
