//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the Qlosure project, an open-source reproduction of the CGO 2026
// paper "Dependence-Driven, Scalable Quantum Circuit Mapping with Affine
// Abstractions". Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error-reporting helpers used across the library. Library code never throws
/// exceptions; invariant violations abort with a message and recoverable
/// conditions are surfaced via return values.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SUPPORT_ERROR_H
#define QLOSURE_SUPPORT_ERROR_H

#include <string>
#include <utility>

namespace qlosure {

/// Outcome of a recoverable operation: success, or an error message the
/// caller can surface (to a batch record, a CLI diagnostic, ...) without
/// aborting the process. Malformed *user input* flows through Status;
/// violated *library invariants* still go through reportFatalError.
class Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status success() { return Status(); }

  static Status error(std::string Message) {
    Status S;
    S.Failed = true;
    S.Msg = std::move(Message);
    return S;
  }

  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Error description; empty on success.
  const std::string &message() const { return Msg; }

private:
  bool Failed = false;
  std::string Msg;
};

/// Prints \p Message to stderr and aborts. Used for unrecoverable violations
/// of library invariants (never for malformed user input).
[[noreturn]] void reportFatalError(const std::string &Message);

/// Aborts with \p S's message; \p S must be an error.
[[noreturn]] void reportFatalError(const Status &S);

/// Marks a point in the code that must never be reached.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace qlosure

#define QLOSURE_UNREACHABLE(MSG)                                               \
  ::qlosure::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // QLOSURE_SUPPORT_ERROR_H
