//===- support/StringUtils.cpp - String helpers ----------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace qlosure;

std::string qlosure::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::vector<std::string> qlosure::splitString(const std::string &Text,
                                              char Separator) {
  std::vector<std::string> Fields;
  std::string Current;
  for (char C : Text) {
    if (C == Separator) {
      Fields.push_back(Current);
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  Fields.push_back(Current);
  return Fields;
}

std::string qlosure::trimString(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool qlosure::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string qlosure::formatDouble(double Value, int Precision) {
  return formatString("%.*f", Precision, Value);
}
