//===- deps/DependenceAnalysis.h - Affine dependence analysis -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence analysis over the lifted affine IR. For every ordered pair of
/// statements (S, T) sharing a qubit, the instance-wise dependence relation
///
///   R_dep(S,T) = { [i] -> [j] : q_S,k(i) == q_T,l(j) for some operands
///                  k, l, and time_S(i) < time_T(j) }
///
/// is built as a presburger BasicMap. The statement-level quotient graph
/// and its transitive closure drive the scalable omega (dependence weight)
/// computation in TransitiveWeights.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_DEPS_DEPENDENCEANALYSIS_H
#define QLOSURE_DEPS_DEPENDENCEANALYSIS_H

#include "affine/AffineCircuit.h"
#include "presburger/IntegerMap.h"

#include <vector>

namespace qlosure {

/// One statement-to-statement dependence with its instance-wise relation.
struct StatementDependence {
  uint32_t From;
  uint32_t To;
  presburger::IntegerMap Relation; ///< 1-D to 1-D instance relation.
};

/// The full affine dependence structure of a lifted circuit.
class AffineDependences {
public:
  /// Analyzes \p AC, building all pairwise statement dependences. Cost is
  /// O(numStatements^2) relation constructions with cheap feasibility
  /// pruning — this is where lifting pays off versus gate-granular analysis.
  explicit AffineDependences(const AffineCircuit &AC);

  const std::vector<StatementDependence> &dependences() const {
    return Deps;
  }

  size_t numStatements() const { return NumStatements; }

  /// Statement-level adjacency: successors()[S] lists statements T with a
  /// dependence S -> T (deduplicated).
  const std::vector<std::vector<uint32_t>> &successors() const {
    return Succ;
  }

  /// Statement-level reachability closure: reachable()[S] lists every
  /// statement reachable from S through one or more dependences (excluding
  /// S unless S has a self-dependence or a cycle through others).
  const std::vector<std::vector<uint32_t>> &reachable() const {
    return Reach;
  }

  /// True if statement \p S has a self-dependence (instance-to-instance).
  bool hasSelfDependence(uint32_t S) const { return SelfDep[S]; }

  /// The union of all instance-wise dependence relations, expressed over
  /// the global trace-time space { [t] -> [t'] } (the paper's R_dep mapped
  /// through the schedule). Intended for small circuits and tests.
  presburger::IntegerMap globalTimeRelation(const AffineCircuit &AC) const;

private:
  size_t NumStatements = 0;
  std::vector<StatementDependence> Deps;
  std::vector<std::vector<uint32_t>> Succ;
  std::vector<std::vector<uint32_t>> Reach;
  std::vector<bool> SelfDep;
};

/// Builds the instance-wise dependence relation between statements \p S and
/// \p T of \p AC (empty union if none). Exposed for unit tests.
presburger::IntegerMap buildPairDependence(const AffineCircuit &AC,
                                           uint32_t S, uint32_t T);

} // namespace qlosure

#endif // QLOSURE_DEPS_DEPENDENCEANALYSIS_H
