//===- deps/DependenceAnalysis.cpp - Affine dependence analysis ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/DependenceAnalysis.h"

#include "support/DynamicBitset.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace qlosure;
using namespace qlosure::presburger;

/// Inclusive range of qubit indices operand \p K of \p M can touch.
static std::pair<int64_t, int64_t> operandQubitRange(const MacroGate &M,
                                                     unsigned K) {
  int64_t First = M.Offset[K];
  int64_t Last = M.Offset[K] + M.Scale[K] * (M.TripCount - 1);
  return {std::min(First, Last), std::max(First, Last)};
}

IntegerMap qlosure::buildPairDependence(const AffineCircuit &AC, uint32_t S,
                                        uint32_t T) {
  const MacroGate &A = AC.statement(S);
  const MacroGate &B = AC.statement(T);
  IntegerMap Result(1, 1);

  // Prune: T's last instance must execute strictly after A's first one.
  if (B.Start + B.TripCount - 1 <= A.Start)
    return Result;

  for (unsigned K = 0; K < A.NumOperands; ++K) {
    auto [ALo, AHi] = operandQubitRange(A, K);
    for (unsigned L = 0; L < B.NumOperands; ++L) {
      auto [BLo, BHi] = operandQubitRange(B, L);
      if (AHi < BLo || BHi < ALo)
        continue; // Qubit ranges disjoint.
      // Integer solvability precheck for Scale_A*i - Scale_B*j == Off_B -
      // Off_A: the gcd of the scales must divide the offset difference.
      int64_t G = std::gcd(std::abs(A.Scale[K]), std::abs(B.Scale[L]));
      int64_t Rhs = B.Offset[L] - A.Offset[K];
      if (G != 0 && Rhs % G != 0)
        continue;
      if (G == 0 && Rhs != 0)
        continue; // Both constant accesses on different qubits.

      // Space: [i, j].
      BasicSet Set(2);
      AffineExpr I = AffineExpr::variable(2, 0);
      AffineExpr J = AffineExpr::variable(2, 1);
      // Same qubit.
      Set.addConstraint(makeEqExpr(I * A.Scale[K] +
                                       AffineExpr::constant(2, A.Offset[K]),
                                   J * B.Scale[L] +
                                       AffineExpr::constant(2, B.Offset[L])));
      // Domains.
      Set.addConstraint(makeGe(I, AffineExpr::constant(2, 0)));
      Set.addConstraint(makeLe(I, AffineExpr::constant(2, A.TripCount - 1)));
      Set.addConstraint(makeGe(J, AffineExpr::constant(2, 0)));
      Set.addConstraint(makeLe(J, AffineExpr::constant(2, B.TripCount - 1)));
      // Strict time order: Start_A + i < Start_B + j.
      Set.addConstraint(makeGe(J + AffineExpr::constant(2, B.Start),
                               I + AffineExpr::constant(2, A.Start + 1)));

      BasicMap Piece(1, 1, std::move(Set));
      // Cheap emptiness filter: rational bounds on i must be nonempty.
      VarBounds Bounds = Piece.set().boundsForVar(0);
      if (Bounds.HasLower && Bounds.HasUpper && Bounds.Lower > Bounds.Upper)
        continue;
      if (!Piece.set().simplify())
        continue;
      Result.addPiece(std::move(Piece));
    }
  }
  return Result;
}

AffineDependences::AffineDependences(const AffineCircuit &AC) {
  NumStatements = AC.numStatements();
  Succ.resize(NumStatements);
  SelfDep.assign(NumStatements, false);

  // Per-statement qubit interval for O(1) pair pruning before the detailed
  // operand-pair construction.
  std::vector<std::pair<int64_t, int64_t>> StmtRange(NumStatements);
  for (size_t S = 0; S < NumStatements; ++S) {
    const MacroGate &M = AC.statement(S);
    int64_t Lo = INT64_MAX, Hi = INT64_MIN;
    for (unsigned K = 0; K < M.NumOperands; ++K) {
      auto [L, H] = operandQubitRange(M, K);
      Lo = std::min(Lo, L);
      Hi = std::max(Hi, H);
    }
    StmtRange[S] = {Lo, Hi};
  }

  for (uint32_t S = 0; S < NumStatements; ++S) {
    for (uint32_t T = S; T < NumStatements; ++T) {
      // Statements are in increasing Start order, so dependences only go
      // from S to T >= S (time must strictly increase).
      if (StmtRange[S].second < StmtRange[T].first ||
          StmtRange[T].second < StmtRange[S].first)
        continue;
      IntegerMap Rel = buildPairDependence(AC, S, T);
      if (Rel.isEmptyUnion())
        continue;
      Deps.push_back({S, T, std::move(Rel)});
      if (S == T) {
        SelfDep[S] = true;
      } else {
        Succ[S].push_back(T);
      }
    }
  }

  // Reachability over the statement DAG (edges strictly forward except
  // self-loops): reverse sweep accumulating bitsets.
  std::vector<DynamicBitset> ReachBits(NumStatements);
  Reach.resize(NumStatements);
  for (size_t S = NumStatements; S-- > 0;) {
    DynamicBitset &Bits = ReachBits[S];
    Bits.resize(NumStatements);
    for (uint32_t T : Succ[S]) {
      Bits.set(T);
      Bits |= ReachBits[T];
    }
    if (SelfDep[S])
      Bits.set(static_cast<size_t>(S));
    Bits.forEachSetBit([&](size_t T) {
      Reach[S].push_back(static_cast<uint32_t>(T));
    });
  }
}

IntegerMap
AffineDependences::globalTimeRelation(const AffineCircuit &AC) const {
  IntegerMap Result(1, 1);
  for (const StatementDependence &D : Deps) {
    // time = schedule(S)^-1 applied before, schedule(T) applied after:
    //   { [t] -> [t'] } = schedS^-1 . Rel . schedT
    IntegerMap SchedS = AC.schedule(D.From);
    IntegerMap SchedT = AC.schedule(D.To);
    IntegerMap TimeRel =
        SchedS.reverse().composeWith(D.Relation).composeWith(SchedT);
    Result = Result.unionWith(TimeRel);
  }
  return Result;
}
