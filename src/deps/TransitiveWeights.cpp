//===- deps/TransitiveWeights.cpp - Dependence weight omega --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "deps/TransitiveWeights.h"

#include "affine/Lifter.h"
#include "circuit/Dag.h"
#include "deps/DependenceAnalysis.h"
#include "presburger/Counting.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;
using namespace qlosure::presburger;

static WeightResult computeExact(const Circuit &Circ) {
  WeightResult Result;
  CircuitDag Dag(Circ);
  Result.Weights = Dag.exactTransitiveSuccessorCounts();
  Result.UsedEngine = WeightEngine::Exact;
  Result.IsExact = true;
  return Result;
}

/// If the self-dependence relation of a statement is a single translation
/// piece with stride d > 0, returns d; std::nullopt otherwise.
static std::optional<int64_t>
uniformSelfStride(const AffineDependences &Deps, uint32_t S) {
  const StatementDependence *Self = nullptr;
  for (const StatementDependence &D : Deps.dependences()) {
    if (D.From == S && D.To == S) {
      Self = &D;
      break;
    }
  }
  if (!Self || Self->Relation.pieces().size() != 1)
    return std::nullopt;
  auto Delta = Self->Relation.pieces().front().asTranslation();
  if (!Delta || (*Delta)[0] <= 0)
    return std::nullopt;
  return (*Delta)[0];
}

static WeightResult computeAffine(const Circuit &Circ,
                                  const WeightOptions &Options) {
  WeightResult Result;
  Result.UsedEngine = WeightEngine::Affine;
  Result.IsExact = false;

  AffineCircuit AC = liftCircuit(Circ);
  Result.CompressionRatio = AC.compressionRatio();

  // Saturation guard: when the lifter finds no regularity the statement
  // graph is as large as the gate list and its closure would cost
  // quadratic memory. Fall back to the trivially sound upper bound
  // "every later gate depends on g" (tight on dense QUEKO-style traces).
  if (AC.numStatements() > Options.SaturationStatementLimit) {
    size_t NumGates = static_cast<size_t>(AC.numGates());
    Result.Weights.resize(NumGates);
    for (size_t T = 0; T < NumGates; ++T)
      Result.Weights[T] = static_cast<uint64_t>(NumGates - 1 - T);
    return Result;
  }

  AffineDependences Deps(AC);

  size_t NumGates = static_cast<size_t>(AC.numGates());
  Result.Weights.assign(NumGates, 0);

  size_t NumStatements = AC.numStatements();
  for (uint32_t S = 0; S < NumStatements; ++S) {
    const MacroGate &M = AC.statement(S);

    // Count of downstream gates in every reachable statement T != S is a
    // piecewise-linear function of the gate time t. We evaluate it with an
    // event sweep over the statement's time window [Start, Start + Trip).
    //
    // countAfter(T, t) = clamp(TripT - max(0, t + 1 - StartT), 0, TripT)
    // decreases by one exactly when t + 1 lands inside T's time window.
    int64_t WindowLo = M.Start;
    int64_t WindowLen = M.TripCount;

    // Base value at t = WindowLo and derivative events.
    int64_t Base = 0;
    std::vector<int64_t> DecrEvents(static_cast<size_t>(WindowLen), 0);
    auto addStatementCounts = [&](const MacroGate &T) {
      int64_t CutAtBase = std::clamp<int64_t>(
          T.TripCount - std::max<int64_t>(0, WindowLo + 1 - T.Start), 0,
          T.TripCount);
      Base += CutAtBase;
      // For instance index i >= 1 (time t = WindowLo + i), the count drops
      // by one whenever WindowLo + i + 1 - T.Start is in [1, TripT], i.e.
      // i in [T.Start - WindowLo, T.Start - WindowLo + TripT - 1], and the
      // count is still positive. Clip against the positivity boundary:
      // count hits zero at t + 1 - T.Start == TripT.
      int64_t FirstDrop = std::max<int64_t>(1, T.Start - WindowLo);
      int64_t LastDrop = T.Start - WindowLo + T.TripCount - 1;
      LastDrop = std::min<int64_t>(LastDrop, WindowLen - 1);
      for (int64_t I = FirstDrop; I <= LastDrop; ++I)
        ++DecrEvents[static_cast<size_t>(I)];
    };

    bool SelfReachable = false;
    for (uint32_t T : Deps.reachable()[S]) {
      if (T == S) {
        SelfReachable = true;
        continue;
      }
      addStatementCounts(AC.statement(T));
    }

    // Self contribution: exact closed form for a single uniform stride
    // (Barvinok-style count of the translation closure image), otherwise
    // the sound upper bound "all later instances".
    std::optional<int64_t> SelfStride;
    PiecewiseQuasiAffine SelfCount;
    if (SelfReachable) {
      SelfStride = uniformSelfStride(Deps, S);
      if (SelfStride)
        SelfCount = closureImageCount1D(0, M.TripCount - 1, *SelfStride);
    }

    int64_t Running = Base;
    for (int64_t I = 0; I < M.TripCount; ++I) {
      if (I > 0)
        Running -= DecrEvents[static_cast<size_t>(I)];
      assert(Running >= 0 && "event sweep went negative");
      int64_t Self = 0;
      if (SelfReachable)
        Self = SelfStride ? SelfCount.evaluate(I) : (M.TripCount - 1 - I);
      Result.Weights[static_cast<size_t>(M.Start + I)] =
          static_cast<uint64_t>(Running + Self);
    }
  }
  return Result;
}

WeightResult qlosure::computeDependenceWeights(const Circuit &Circ,
                                               const WeightOptions &Options) {
  for (const Gate &G : Circ.gates())
    assert(G.Kind != GateKind::Barrier && G.Kind != GateKind::Measure &&
           "omega is defined over unitary gates only");

  switch (Options.Engine) {
  case WeightEngine::Exact:
    return computeExact(Circ);
  case WeightEngine::Affine:
    return computeAffine(Circ, Options);
  case WeightEngine::Auto:
    if (Circ.size() <= Options.ExactGateLimit)
      return computeExact(Circ);
    return computeAffine(Circ, Options);
  }
  return computeExact(Circ);
}
