//===- deps/TransitiveWeights.h - Dependence weight omega ---------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence-weight function omega of the paper (Eq. 1):
///
///   omega(g) = card({ h : (g, h) in R_dep+ })
///
/// i.e. the number of transitive dependents of each gate. Two engines:
///
///  * Exact: reverse-topological bitset closure over the gate-level DAG.
///    Ground truth, O(V^2/64) memory — fine up to a few thousand gates.
///  * Affine: the paper's scalable path. The circuit is lifted to
///    macro-gates, the statement-level dependence graph is closed, and
///    per-gate counts are evaluated in O(1) amortized from piecewise-affine
///    instance counts (exact single-stride self-dependences use the
///    closed-form closure count). Produces a sound upper bound of the
///    exact weights, exact on purely uniform traces.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_DEPS_TRANSITIVEWEIGHTS_H
#define QLOSURE_DEPS_TRANSITIVEWEIGHTS_H

#include "circuit/Circuit.h"

#include <cstdint>
#include <vector>

namespace qlosure {

/// Which omega engine to run.
enum class WeightEngine : uint8_t {
  Exact,  ///< Gate-level bitset closure (ground truth).
  Affine, ///< Statement-level closure over the lifted IR (scalable).
  Auto    ///< Affine beyond ExactGateLimit gates, Exact below.
};

/// Result of a weight computation.
struct WeightResult {
  std::vector<uint64_t> Weights; ///< One entry per gate (trace order).
  WeightEngine UsedEngine = WeightEngine::Exact;
  /// True when Weights are exactly omega; false for the affine upper bound.
  bool IsExact = true;
  /// Gates per statement achieved by the lifter (Affine engine only).
  double CompressionRatio = 1.0;
};

/// Options for computeDependenceWeights.
struct WeightOptions {
  WeightEngine Engine = WeightEngine::Auto;
  /// Auto switches to the affine engine above this many gates. The exact
  /// engine costs O(V^2/64) words of memory (~120 MB at 30k gates).
  size_t ExactGateLimit = 30000;
  /// When lifting finds more statements than this (irregular circuits
  /// where macro-gates degenerate to singletons), the affine engine
  /// saturates: it returns the trivially sound bound "all later gates"
  /// instead of materializing a quadratic statement-reachability relation.
  size_t SaturationStatementLimit = 2500;
};

/// Computes omega for every gate of \p Circ (which must contain unitary
/// gates only).
WeightResult computeDependenceWeights(const Circuit &Circ,
                                      const WeightOptions &Options = {});

} // namespace qlosure

#endif // QLOSURE_DEPS_TRANSITIVEWEIGHTS_H
