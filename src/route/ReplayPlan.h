//===- route/ReplayPlan.h - Symbolic swap-schedule replay ---------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The affine fast path: when the period detector finds loop structure
/// (affine/PeriodDetector.h), the routing kernel routes the loop body
/// *once* while a ReplayDriver records every emission — program gates,
/// SWAPs, and the tie-break draw behind each scored SWAP — as a ReplayPlan
/// keyed by an anchor that captures the complete decision-relevant state at
/// the period boundary. Later periods (and later route() calls over the
/// same cached context) whose boundary state matches an anchor replay the
/// recorded schedule through the kernel's own emission primitives instead
/// of re-scoring thousands of candidate SWAPs.
///
/// Exactness contract. A replayed prefix is byte-identical to what the
/// scalar kernel would have emitted, because every free input of the
/// decision procedure is pinned:
///
///  - The anchor records the physical position of every logical qubit
///    (relabeled through pi^j, so corresponding gates of matching periods
///    sit on identical *physical* qubits), the set of gates already
///    executed ahead of the boundary, and a salt over every routing option.
///  - Periodicity of the trace (verified gate-by-gate by the detector)
///    plus the recorded maximum look-ahead reach guarantee the window,
///    candidate set and scores evolve identically — provided the replayed
///    span stays inside the periodic region and the dependence-weight
///    slices match (checked; omega is generally aperiodic, so the weighted
///    profile usually falls back while the unweighted profile replays).
///  - The decay vector and progress counter are deterministic at every
///    boundary (gate execution resets them) and are re-evolved through the
///    real emitSwap during replay.
///  - The one nondeterministic input — the tie-break RNG — is handled
///    speculatively: each scored SWAP op stores the draw it consumed; the
///    replay draws from the live RNG and commits only on an equal value,
///    otherwise it restores the RNG and stops. A stopped replay leaves
///    *exactly* the state the scalar kernel would have had at that point,
///    so the kernel resumes mid-period and the final result is still
///    byte-identical to a never-replayed run.
///
/// Degradation is therefore graceful by construction: any deviation —
/// tie draw, front-layer shape, weight slice, region overrun — downgrades
/// that period to the scalar kernel, never to a wrong result.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_REPLAYPLAN_H
#define QLOSURE_ROUTE_REPLAYPLAN_H

#include "affine/PeriodDetector.h"
#include "support/Trace.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace qlosure {

namespace detail {
class RoutingLoop;
}

/// The boundary state a plan was recorded under. Plans apply only where
/// the full Data vector matches: the config salt, the physical position of
/// every (pi^j-relabeled) logical qubit, and the trace offsets of gates
/// already executed ahead of the boundary.
struct AnchorKey {
  std::vector<int64_t> Data;
  uint64_t Hash = 0;

  bool operator==(const AnchorKey &O) const { return Data == O.Data; }
};

/// One recorded kernel emission.
struct ReplayOp {
  enum class Kind : uint8_t {
    Gate,       ///< Program gate; A = trace offset from the period base.
    ScoredSwap, ///< Tie-broken SWAP; A/B = physical pair, Bound/Pick = draw.
    ForcedSwap, ///< Shortest-path escape SWAP; A/B = physical pair.
  };
  Kind K = Kind::Gate;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t Bound = 0; ///< ScoredSwap: tie-set size at the decision.
  uint32_t Pick = 0;  ///< ScoredSwap: the draw the kernel consumed.
};

/// An immutable recorded schedule for one period. Published to the
/// context's ReplayPlanCache once the period completes, then shared
/// freely across threads and route() calls.
struct ReplayPlan {
  AnchorKey Key;
  int64_t RecordBase = 0; ///< Trace base the recording ran at.
  int64_t MaxReach = 0;   ///< Max trace offset the look-ahead touched.
  std::vector<ReplayOp> Ops;
};

/// Anchor-keyed plan store, shared via RoutingContext by every route()
/// call over the same (circuit, backend) pair. Thread-safe; first
/// publisher of an anchor wins (plans for equal anchors are equivalent).
class ReplayPlanCache {
public:
  std::shared_ptr<const ReplayPlan> lookup(const AnchorKey &Key) const;
  void publish(std::shared_ptr<const ReplayPlan> Plan);

  /// Number of distinct plans currently published (diagnostic).
  size_t size() const;

private:
  mutable std::mutex Mu;
  std::unordered_map<uint64_t,
                     std::vector<std::shared_ptr<const ReplayPlan>>>
      ByHash;
};

/// Per-route() driver attached to the routing kernel. Observes emissions
/// through the kernel's hooks, maintains the period bookkeeping
/// (boundaries, pre-executed gates, the accumulated permutation power
/// pi^j), records plans, and replays them at matching boundaries.
class ReplayDriver {
public:
  /// \p Structure must outlive the driver (it lives on the context);
  /// \p Cache is the context's shared plan store.
  ReplayDriver(const PeriodStructure &Structure, uint64_t ConfigSalt,
               ReplayPlanCache &Cache);

  // --- Kernel hooks (cheap; called on every emission) -------------------
  void noteGateExecuted(uint32_t GateId);
  void noteSwapEmitted(unsigned P1, unsigned P2);
  void noteDecision(size_t Bound, uint64_t Draw);
  void noteWindow(const std::vector<uint32_t> &Window);

  /// Called at the top of the kernel loop. When the trace position sits on
  /// a period boundary, closes any open recording, then either replays a
  /// cached plan (possibly chaining across several periods) or starts
  /// recording the period about to be routed. Returns true when gates
  /// were executed by replay (the kernel then restarts its loop).
  bool maybeHandleBoundary(detail::RoutingLoop &Loop);

  /// Called once after the kernel loop exits; publishes the final
  /// period's recording when it completed.
  void finalize();

  size_t replayedPeriods() const { return Replayed; }
  size_t fallbackPeriods() const { return Fallback; }

  /// Optional request trace: replayed periods record "replay_period"
  /// spans, recorded-then-published periods record "scalar_period" spans
  /// covering the scalar routing of the recording window. Null = off.
  void setTraceSink(Trace *T) { TraceSink = T; }

private:
  enum class ReplayStatus { Completed, Stopped };

  AnchorKey computeAnchor(const detail::RoutingLoop &Loop,
                          int64_t Base) const;
  bool replayAllowed(const ReplayPlan &Plan, int64_t Base,
                     const detail::RoutingLoop &Loop) const;
  ReplayStatus executeReplay(detail::RoutingLoop &Loop,
                             const ReplayPlan &Plan, int64_t Base);
  void startRecording(int64_t Base, AnchorKey Key);
  void closeRecording();
  void advancePeriod();

  const PeriodStructure &P;
  uint64_t ConfigSalt = 0;
  ReplayPlanCache &Cache;

  // Trace-position bookkeeping.
  int64_t NextBoundary = 0;   ///< Base of the period about to start.
  int64_t ExecutedBelow = 0;  ///< Executed gates with id < NextBoundary.
  int64_t PeriodIdx = 0;      ///< Index of the period about to start.
  std::vector<int64_t> PreExec; ///< Executed gate ids >= NextBoundary.
  std::vector<int32_t> PermPow; ///< pi^PeriodIdx.
  bool Done = false;

  Trace *TraceSink = nullptr;
  Trace::Clock::time_point RecordStart{}; ///< Only set when tracing.

  // Recording state.
  bool Recording = false;
  int64_t RecordBase = 0;
  int64_t MaxReach = 0;
  AnchorKey RecordKey;
  std::vector<ReplayOp> Ops;
  bool HavePendingDecision = false;
  uint32_t PendingBound = 0;
  uint32_t PendingPick = 0;

  size_t Replayed = 0;
  size_t Fallback = 0;
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_REPLAYPLAN_H
