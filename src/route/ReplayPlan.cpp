//===- route/ReplayPlan.cpp - Symbolic swap-schedule replay --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/ReplayPlan.h"

#include "core/RoutingLoop.h"
#include "support/Fingerprint.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;
using qlosure::detail::RoutingLoop;

//===----------------------------------------------------------------------===//
// ReplayPlanCache
//===----------------------------------------------------------------------===//

std::shared_ptr<const ReplayPlan>
ReplayPlanCache::lookup(const AnchorKey &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = ByHash.find(Key.Hash);
  if (It == ByHash.end())
    return nullptr;
  for (const auto &Plan : It->second)
    if (Plan->Key == Key)
      return Plan;
  return nullptr;
}

void ReplayPlanCache::publish(std::shared_ptr<const ReplayPlan> Plan) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto &Bucket = ByHash[Plan->Key.Hash];
  for (const auto &Existing : Bucket)
    if (Existing->Key == Plan->Key)
      return; // First publisher wins; equal anchors record equal schedules.
  Bucket.push_back(std::move(Plan));
}

size_t ReplayPlanCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &Entry : ByHash)
    N += Entry.second.size();
  return N;
}

//===----------------------------------------------------------------------===//
// ReplayDriver
//===----------------------------------------------------------------------===//

ReplayDriver::ReplayDriver(const PeriodStructure &Structure,
                           uint64_t ConfigSalt, ReplayPlanCache &Cache)
    : P(Structure), ConfigSalt(ConfigSalt), Cache(Cache),
      NextBoundary(Structure.RegionStart) {
  PermPow.resize(Structure.Perm.size());
  for (size_t Q = 0; Q < PermPow.size(); ++Q)
    PermPow[Q] = static_cast<int32_t>(Q);
}

void ReplayDriver::noteGateExecuted(uint32_t GateId) {
  int64_t T = static_cast<int64_t>(GateId);
  if (T < NextBoundary)
    ++ExecutedBelow;
  else
    PreExec.push_back(T);
  if (Recording) {
    if (T < RecordBase) {
      // Cannot happen while the boundary invariant holds (everything below
      // the base was executed before recording began); abandon defensively.
      Recording = false;
      Ops.clear();
      return;
    }
    Ops.push_back(
        {ReplayOp::Kind::Gate, static_cast<uint32_t>(T - RecordBase), 0, 0, 0});
    MaxReach = std::max(MaxReach, T - RecordBase);
  }
}

void ReplayDriver::noteSwapEmitted(unsigned P1, unsigned P2) {
  if (!Recording) {
    HavePendingDecision = false;
    return;
  }
  if (HavePendingDecision) {
    Ops.push_back({ReplayOp::Kind::ScoredSwap, P1, P2, PendingBound,
                   PendingPick});
    HavePendingDecision = false;
  } else {
    // No decision preceded this swap: a forced shortest-path escape.
    Ops.push_back({ReplayOp::Kind::ForcedSwap, P1, P2, 0, 0});
  }
}

void ReplayDriver::noteDecision(size_t Bound, uint64_t Draw) {
  if (!Recording)
    return;
  HavePendingDecision = true;
  PendingBound = static_cast<uint32_t>(Bound);
  PendingPick = static_cast<uint32_t>(Draw);
}

void ReplayDriver::noteWindow(const std::vector<uint32_t> &Window) {
  if (!Recording)
    return;
  for (uint32_t G : Window)
    MaxReach = std::max(MaxReach, static_cast<int64_t>(G) - RecordBase);
}

AnchorKey ReplayDriver::computeAnchor(const RoutingLoop &Loop,
                                      int64_t Base) const {
  AnchorKey Key;
  Key.Data.reserve(PermPow.size() + PreExec.size() + 2);
  Key.Data.push_back(static_cast<int64_t>(ConfigSalt));
  // Physical position of every logical qubit, relabeled through pi^j so
  // that matching anchors place *corresponding* period gates on identical
  // physical qubits.
  for (int32_t Q : PermPow)
    Key.Data.push_back(Loop.Phi.physOf(Q));
  Key.Data.push_back(-2); // Separator (never a valid physical index).
  // Gates already executed ahead of the boundary, as period-relative
  // offsets: they are missing from any recorded schedule, so the missing
  // sets must match exactly.
  size_t Mark = Key.Data.size();
  for (int64_t T : PreExec)
    Key.Data.push_back(T - Base);
  std::sort(Key.Data.begin() + static_cast<ptrdiff_t>(Mark), Key.Data.end());
  Key.Hash = hashBytes(Key.Data.data(), Key.Data.size() * sizeof(int64_t));
  return Key;
}

bool ReplayDriver::replayAllowed(const ReplayPlan &Plan, int64_t Base,
                                 const RoutingLoop &Loop) const {
  // Every trace index the replay touches — executed gates and look-ahead
  // reads alike — must stay inside the verified periodic region.
  if (Base + std::max(Plan.MaxReach + 1, P.BodyGates) > P.regionEnd())
    return false;
  // Dependence weights enter the scores and are generally aperiodic
  // (omega counts *remaining* dependents); replay only where the slices
  // the window can read are exactly equal.
  if (Loop.Weights) {
    const std::vector<uint64_t> &W = *Loop.Weights;
    for (int64_t D = 0; D <= Plan.MaxReach; ++D)
      if (W[static_cast<size_t>(Plan.RecordBase + D)] !=
          W[static_cast<size_t>(Base + D)])
        return false;
  }
  return true;
}

ReplayDriver::ReplayStatus
ReplayDriver::executeReplay(RoutingLoop &Loop, const ReplayPlan &Plan,
                            int64_t Base) {
  bool PrevWasGate = false;
  size_t OpsSincePoll = 0;
  for (const ReplayOp &Op : Plan.Ops) {
    if (++OpsSincePoll >= 256) {
      OpsSincePoll = 0;
      if (Loop.Cancel) {
        if (Loop.Cancel->cancelled())
          return ReplayStatus::Stopped;
        Loop.Cancel->reportProgress(Loop.Tracker.numExecuted(),
                                    Loop.Logical.size());
      }
    }
    switch (Op.K) {
    case ReplayOp::Kind::Gate:
      if (!Loop.replayEmitGate(static_cast<uint32_t>(Base + Op.A)))
        return ReplayStatus::Stopped; // Front deviated from the prediction.
      PrevWasGate = true;
      break;
    case ReplayOp::Kind::ScoredSwap: {
      if (PrevWasGate) {
        // The scalar kernel resets decay/progress after every pass that
        // executed gates, before scoring the next swap.
        Loop.replayResetProgress();
        PrevWasGate = false;
      }
      // Speculative tie peek: draw from the live RNG; commit only when the
      // value matches the recorded draw, otherwise restore the generator
      // and stop — the emitted prefix is then exactly the scalar prefix.
      Rng Saved = Loop.TieBreaker;
      uint64_t Draw = Loop.TieBreaker.nextBounded(Op.Bound);
      if (Draw != Op.Pick) {
        Loop.TieBreaker = Saved;
        return ReplayStatus::Stopped;
      }
      Loop.replayEmitSwap(Op.A, Op.B);
      ++Loop.SwapsSinceProgress;
      break;
    }
    case ReplayOp::Kind::ForcedSwap:
      if (PrevWasGate) {
        Loop.replayResetProgress();
        PrevWasGate = false;
      }
      Loop.replayEmitSwap(Op.A, Op.B);
      Loop.SwapsSinceProgress = 0;
      break;
    }
  }
  if (PrevWasGate)
    Loop.replayResetProgress();
  return ReplayStatus::Completed;
}

void ReplayDriver::startRecording(int64_t Base, AnchorKey Key) {
  if (TraceSink)
    RecordStart = Trace::Clock::now();
  Recording = true;
  RecordBase = Base;
  MaxReach = 0;
  RecordKey = std::move(Key);
  Ops.clear();
  HavePendingDecision = false;
}

void ReplayDriver::closeRecording() {
  if (!Recording)
    return;
  if (TraceSink)
    TraceSink->add("scalar_period", RecordStart, Trace::Clock::now());
  Recording = false;
  HavePendingDecision = false;
  ++Fallback; // The recorded period itself was routed by the scalar kernel.
  // Publish only when the look-ahead never read past the periodic region:
  // a window that peeked into the aperiodic tail may have influenced the
  // recorded decisions, and such a schedule must not be transplanted.
  if (RecordBase + std::max(MaxReach + 1, P.BodyGates) <= P.regionEnd()) {
    auto Plan = std::make_shared<ReplayPlan>();
    Plan->Key = std::move(RecordKey);
    Plan->RecordBase = RecordBase;
    Plan->MaxReach = MaxReach;
    Plan->Ops = std::move(Ops);
    Cache.publish(std::move(Plan));
  }
  Ops.clear();
}

void ReplayDriver::advancePeriod() {
  ++PeriodIdx;
  NextBoundary += P.BodyGates;
  size_t Kept = 0;
  for (int64_t T : PreExec) {
    if (T < NextBoundary)
      ++ExecutedBelow;
    else
      PreExec[Kept++] = T;
  }
  PreExec.resize(Kept);
  // pi^(j+1)(q) = pi(pi^j(q)): element-wise, so composing in place is safe.
  for (size_t Q = 0; Q < PermPow.size(); ++Q)
    PermPow[Q] = P.Perm[static_cast<size_t>(PermPow[Q])];
}

bool ReplayDriver::maybeHandleBoundary(RoutingLoop &Loop) {
  if (Done)
    return false;
  bool DidWork = false;
  while (!Done && ExecutedBelow == NextBoundary) {
    closeRecording();
    if (PeriodIdx >= P.NumPeriods) {
      Done = true;
      break;
    }
    int64_t Base = NextBoundary;
    AnchorKey Key = computeAnchor(Loop, Base);
    std::shared_ptr<const ReplayPlan> Plan = Cache.lookup(Key);
    if (Plan && replayAllowed(*Plan, Base, Loop)) {
      // Count the period's gates directly against the advanced boundary
      // while the replay executes them.
      advancePeriod();
      ReplayStatus St;
      {
        ScopedSpan Span(TraceSink, "replay_period");
        St = executeReplay(Loop, *Plan, Base);
      }
      DidWork = true;
      if (St == ReplayStatus::Completed) {
        ++Replayed;
        continue; // A chained boundary may be reachable immediately.
      }
      ++Fallback; // Scalar kernel resumes mid-period from exact state.
      break;
    }
    startRecording(Base, std::move(Key));
    advancePeriod();
    break;
  }
  return DidWork;
}

void ReplayDriver::finalize() {
  // The kernel loop exits without a final boundary check when the trace
  // ends exactly at a period boundary; publish that last recording if it
  // completed (a cancelled run leaves it incomplete — drop it silently).
  if (Recording && ExecutedBelow == NextBoundary)
    closeRecording();
}
