//===- route/FrontLayer.h - Ready-gate tracking -------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintains the front layer L_f — the set of gates whose dependence
/// predecessors have all executed — over a CircuitDag, plus a look-ahead
/// iterator yielding the topologically earliest unexecuted gates. Shared by
/// Qlosure and all baseline routers. All mutable state lives in a
/// caller-provided RoutingScratch, so constructing a tracker for every
/// route() call reuses the previous call's buffer capacity and the
/// per-step look-ahead window allocates nothing at all.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_FRONTLAYER_H
#define QLOSURE_ROUTE_FRONTLAYER_H

#include "circuit/Dag.h"
#include "route/RoutingScratch.h"

#include <cstdint>
#include <vector>

namespace qlosure {

/// Incremental front-layer tracker. Holds references to the DAG and the
/// scratch; at most one tracker may use a given scratch at a time (a new
/// tracker on the same scratch invalidates the previous one).
class FrontLayerTracker {
public:
  FrontLayerTracker(const CircuitDag &Dag, RoutingScratch &Scratch);

  /// Gates currently ready (unordered).
  const std::vector<uint32_t> &front() const { return S.Front; }

  bool allExecuted() const { return NumExecuted == Dag.numGates(); }
  size_t numExecuted() const { return NumExecuted; }

  /// Marks \p GateId (which must be in the front) as executed, releasing
  /// its successors into the front when their last dependence clears. O(1)
  /// plus successor release: the front is position-indexed, so no scan.
  void execute(uint32_t GateId);

  /// True if \p GateId is ready but not yet executed.
  bool isInFront(uint32_t GateId) const {
    return S.FrontPos[GateId] != RoutingScratch::NotInFront;
  }

  /// Collects unexecuted gates in topological order starting from the
  /// front (the paper's look-ahead window candidates, before layer
  /// formation), until \p MaxGates gates have been gathered. When
  /// \p CountTwoQubitOnly is set, only two-qubit gates count toward the
  /// budget (single-qubit gates are still traversed and returned so layer
  /// construction sees the full dependence structure); the total is then
  /// capped at 8x MaxGates as a safety bound.
  ///
  /// The returned reference aliases scratch storage: it is valid until the
  /// next topologicalWindow call on the same scratch, and allocates
  /// nothing once the scratch is warm (epoch-stamped predecessor counts +
  /// a reused BFS ring).
  const std::vector<uint32_t> &
  topologicalWindow(size_t MaxGates, bool CountTwoQubitOnly = false) const;

private:
  const CircuitDag &Dag;
  RoutingScratch &S;
  size_t NumExecuted = 0;
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_FRONTLAYER_H
