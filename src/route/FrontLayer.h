//===- route/FrontLayer.h - Ready-gate tracking -------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maintains the front layer L_f — the set of gates whose dependence
/// predecessors have all executed — over a CircuitDag, plus a look-ahead
/// iterator yielding the topologically earliest unexecuted gates. Shared by
/// Qlosure and all baseline routers.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_FRONTLAYER_H
#define QLOSURE_ROUTE_FRONTLAYER_H

#include "circuit/Dag.h"

#include <cstdint>
#include <vector>

namespace qlosure {

/// Incremental front-layer tracker.
class FrontLayerTracker {
public:
  explicit FrontLayerTracker(const CircuitDag &Dag);

  /// Gates currently ready (unordered).
  const std::vector<uint32_t> &front() const { return Front; }

  bool allExecuted() const { return NumExecuted == Dag.numGates(); }
  size_t numExecuted() const { return NumExecuted; }

  /// Marks \p GateId (which must be in the front) as executed, releasing
  /// its successors into the front when their last dependence clears.
  void execute(uint32_t GateId);

  /// True if \p GateId is ready but not yet executed.
  bool isInFront(uint32_t GateId) const { return InFront[GateId]; }

  /// Collects unexecuted gates in topological order starting from the
  /// front (the paper's look-ahead window candidates, before layer
  /// formation), until \p MaxGates gates have been gathered. When
  /// \p CountTwoQubitOnly is set, only two-qubit gates count toward the
  /// budget (single-qubit gates are still traversed and returned so layer
  /// construction sees the full dependence structure); the total is then
  /// capped at 8x MaxGates as a safety bound.
  std::vector<uint32_t> topologicalWindow(size_t MaxGates,
                                          bool CountTwoQubitOnly = false)
      const;

private:
  const CircuitDag &Dag;
  std::vector<uint32_t> PendingPreds; ///< Unexecuted predecessor counts.
  std::vector<uint8_t> Executed;
  std::vector<uint8_t> InFront;
  std::vector<uint32_t> Front;
  size_t NumExecuted = 0;
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_FRONTLAYER_H
