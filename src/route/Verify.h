//===- route/Verify.h - Routed circuit verification ---------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent correctness checker for routing results: (1) every 2-qubit
/// gate in the routed circuit acts on adjacent physical qubits; (2) when
/// the routed circuit is replayed and inserted SWAPs are folded back into
/// the tracked mapping, the recovered logical circuit preserves the input's
/// per-wire gate sequences (the dependence-preservation criterion: equal
/// per-wire sequences imply the two circuits are equal as partial orders).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_VERIFY_H
#define QLOSURE_ROUTE_VERIFY_H

#include "route/Router.h"

#include <string>

namespace qlosure {

/// Verification outcome; Ok == true means the routing is valid.
struct VerifyResult {
  bool Ok = true;
  std::string Message;
};

/// Verifies \p Result against the original \p Logical circuit and \p Hw.
VerifyResult verifyRouting(const Circuit &Logical, const CouplingGraph &Hw,
                           const RoutingResult &Result);

} // namespace qlosure

#endif // QLOSURE_ROUTE_VERIFY_H
