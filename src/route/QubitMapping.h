//===- route/QubitMapping.h - Logical/physical qubit mapping ------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mapping phi : Q_logical -> Q_phys maintained by every router, with
/// its inverse. SWAPs act on physical qubits and exchange whatever logical
/// states they currently host.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_QUBITMAPPING_H
#define QLOSURE_ROUTE_QUBITMAPPING_H

#include <cstdint>
#include <vector>

namespace qlosure {

class Rng;

/// An injective mapping of logical qubits onto physical qubits.
class QubitMapping {
public:
  QubitMapping() = default;

  /// The identity placement: logical i on physical i.
  static QubitMapping identity(unsigned NumLogical, unsigned NumPhysical);

  /// A uniformly random injective placement.
  static QubitMapping random(unsigned NumLogical, unsigned NumPhysical,
                             Rng &Generator);

  unsigned numLogical() const {
    return static_cast<unsigned>(LogToPhys.size());
  }
  unsigned numPhysical() const {
    return static_cast<unsigned>(PhysToLog.size());
  }

  /// Physical qubit hosting logical \p Logical.
  int32_t physOf(int32_t Logical) const { return LogToPhys[Logical]; }

  /// Logical qubit hosted on physical \p Phys, or -1 when free.
  int32_t logOf(int32_t Phys) const { return PhysToLog[Phys]; }

  /// Applies a SWAP on physical qubits \p P1 and \p P2 (phi := phi . s).
  void swapPhysical(int32_t P1, int32_t P2);

  bool operator==(const QubitMapping &Other) const {
    return LogToPhys == Other.LogToPhys && PhysToLog == Other.PhysToLog;
  }

  /// True when the forward and inverse tables agree and the mapping is
  /// injective (the recoverable form of verifyConsistency()).
  bool isConsistent() const;

  /// Checks injectivity and inverse consistency (aborts on violation).
  void verifyConsistency() const;

private:
  std::vector<int32_t> LogToPhys;
  std::vector<int32_t> PhysToLog;
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_QUBITMAPPING_H
