//===- route/FrontLayer.cpp - Ready-gate tracking --------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/FrontLayer.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace qlosure;

FrontLayerTracker::FrontLayerTracker(const CircuitDag &DagIn) : Dag(DagIn) {
  size_t N = Dag.numGates();
  PendingPreds.resize(N);
  Executed.assign(N, 0);
  InFront.assign(N, 0);
  for (size_t G = 0; G < N; ++G)
    PendingPreds[G] = Dag.inDegree(G);
  for (uint32_t Root : Dag.roots()) {
    Front.push_back(Root);
    InFront[Root] = 1;
  }
}

void FrontLayerTracker::execute(uint32_t GateId) {
  assert(InFront[GateId] && "executing a gate that is not ready");
  assert(!Executed[GateId] && "double execution");
  Executed[GateId] = 1;
  InFront[GateId] = 0;
  ++NumExecuted;
  auto It = std::find(Front.begin(), Front.end(), GateId);
  assert(It != Front.end() && "front bookkeeping out of sync");
  *It = Front.back();
  Front.pop_back();
  for (uint32_t Succ : Dag.successors(GateId)) {
    assert(PendingPreds[Succ] > 0 && "predecessor count underflow");
    if (--PendingPreds[Succ] == 0) {
      Front.push_back(Succ);
      InFront[Succ] = 1;
    }
  }
}

std::vector<uint32_t>
FrontLayerTracker::topologicalWindow(size_t MaxGates,
                                     bool CountTwoQubitOnly) const {
  std::vector<uint32_t> Window;
  if (MaxGates == 0)
    return Window;
  size_t TotalCap = CountTwoQubitOnly ? 8 * MaxGates : MaxGates;
  size_t Counted = 0;
  // BFS from the front through unexecuted gates, releasing a gate once all
  // its unexecuted predecessors have been visited. This yields gates in
  // topological order of the residual DAG.
  std::vector<uint32_t> Needed(Dag.numGates(), 0);
  std::vector<uint8_t> Touched(Dag.numGates(), 0);
  std::deque<uint32_t> Queue(Front.begin(), Front.end());
  // Sort the seeds for determinism (Front order depends on history).
  std::sort(Queue.begin(), Queue.end());
  while (!Queue.empty() && Counted < MaxGates &&
         Window.size() < TotalCap) {
    uint32_t G = Queue.front();
    Queue.pop_front();
    Window.push_back(G);
    if (!CountTwoQubitOnly || Dag.isTwoQubitGate(G))
      ++Counted;
    for (uint32_t Succ : Dag.successors(G)) {
      // Count unexecuted predecessors lazily on first touch.
      if (!Touched[Succ]) {
        Touched[Succ] = 1;
        uint32_t Pending = 0;
        for (uint32_t Pred : Dag.predecessors(Succ))
          if (!Executed[Pred])
            ++Pending;
        Needed[Succ] = Pending;
      }
      assert(Needed[Succ] > 0 && "successor released twice");
      if (--Needed[Succ] == 0)
        Queue.push_back(Succ);
    }
  }
  return Window;
}
