//===- route/FrontLayer.cpp - Ready-gate tracking --------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/FrontLayer.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;

FrontLayerTracker::FrontLayerTracker(const CircuitDag &DagIn,
                                     RoutingScratch &Scratch)
    : Dag(DagIn), S(Scratch) {
  size_t N = Dag.numGates();
  S.ensureGates(N);
  // One O(N) refill per route() call (unavoidable: predecessor counts are
  // per-run state); the capacity itself is reused across calls.
  for (size_t G = 0; G < N; ++G)
    S.PendingPreds[G] = Dag.inDegree(G);
  std::fill_n(S.Executed.begin(), N, static_cast<uint8_t>(0));
  std::fill_n(S.FrontPos.begin(), N, RoutingScratch::NotInFront);
  S.Front.clear();
  for (uint32_t Root : Dag.roots()) {
    S.FrontPos[Root] = static_cast<uint32_t>(S.Front.size());
    S.Front.push_back(Root);
  }
}

void FrontLayerTracker::execute(uint32_t GateId) {
  assert(S.FrontPos[GateId] != RoutingScratch::NotInFront &&
         "executing a gate that is not ready");
  assert(!S.Executed[GateId] && "double execution");
  S.Executed[GateId] = 1;
  ++NumExecuted;
  // Swap-with-back removal at the recorded position (replaces the old
  // O(|front|) std::find).
  uint32_t Pos = S.FrontPos[GateId];
  uint32_t Back = S.Front.back();
  S.Front[Pos] = Back;
  S.FrontPos[Back] = Pos;
  S.Front.pop_back();
  S.FrontPos[GateId] = RoutingScratch::NotInFront;
  for (uint32_t Succ : Dag.successors(GateId)) {
    assert(S.PendingPreds[Succ] > 0 && "predecessor count underflow");
    if (--S.PendingPreds[Succ] == 0) {
      S.FrontPos[Succ] = static_cast<uint32_t>(S.Front.size());
      S.Front.push_back(Succ);
    }
  }
}

const std::vector<uint32_t> &
FrontLayerTracker::topologicalWindow(size_t MaxGates,
                                     bool CountTwoQubitOnly) const {
  std::vector<uint32_t> &Window = S.Window;
  Window.clear();
  if (MaxGates == 0)
    return Window;
  size_t TotalCap = CountTwoQubitOnly ? 8 * MaxGates : MaxGates;
  size_t Counted = 0;
  // BFS from the front through unexecuted gates, releasing a gate once all
  // its unexecuted predecessors have been visited. This yields gates in
  // topological order of the residual DAG. Predecessor counts are lazily
  // initialized under an epoch stamp (no O(numGates) refill per call), and
  // the FIFO is a head cursor over a reused flat vector — each gate is
  // enqueued at most once, so no wraparound is needed.
  S.WindowNeeded.beginEpoch();
  std::vector<uint32_t> &Queue = S.BfsQueue;
  Queue.assign(S.Front.begin(), S.Front.end());
  // Sort the seeds for determinism (Front order depends on history).
  std::sort(Queue.begin(), Queue.end());
  size_t Head = 0;
  while (Head < Queue.size() && Counted < MaxGates &&
         Window.size() < TotalCap) {
    uint32_t G = Queue[Head++];
    Window.push_back(G);
    if (!CountTwoQubitOnly || Dag.isTwoQubitGate(G))
      ++Counted;
    for (uint32_t Succ : Dag.successors(G)) {
      // Count unexecuted predecessors lazily on first touch.
      if (!S.WindowNeeded.fresh(Succ)) {
        uint32_t Pending = 0;
        for (uint32_t Pred : Dag.predecessors(Succ))
          if (!S.Executed[Pred])
            ++Pending;
        S.WindowNeeded.set(Succ, Pending);
      }
      assert(S.WindowNeeded.ref(Succ) > 0 && "successor released twice");
      if (--S.WindowNeeded.ref(Succ) == 0)
        Queue.push_back(Succ);
    }
  }
  return Window;
}
