//===- route/Fidelity.cpp - Success-probability estimation ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/Fidelity.h"

#include <cmath>

using namespace qlosure;

double qlosure::estimateSuccessProbability(const Circuit &Routed,
                                           const CouplingGraph &Hw) {
  // Accumulate in log space for numerical stability on long circuits.
  double LogSuccess = 0;
  for (const Gate &G : Routed.gates()) {
    if (!G.isTwoQubit())
      continue;
    double Rate = Hw.edgeError(static_cast<unsigned>(G.Qubits[0]),
                               static_cast<unsigned>(G.Qubits[1]));
    if (Rate <= 0)
      continue;
    unsigned Applications = G.isSwap() ? 3 : 1; // SWAP = 3 CX on hardware.
    LogSuccess += Applications * std::log1p(-Rate);
  }
  return std::exp(LogSuccess);
}
