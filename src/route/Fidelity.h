//===- route/Fidelity.h - Success-probability estimation ----------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// NISQ quality proxy for routed circuits: the expected success
/// probability under an independent-error model, i.e. the product of
/// (1 - errorRate(edge)) over every two-qubit gate application (SWAPs
/// charged as three CX). Used by the error-aware mapping extension
/// (the paper's stated future work) to quantify fidelity gains.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_FIDELITY_H
#define QLOSURE_ROUTE_FIDELITY_H

#include "circuit/Circuit.h"
#include "topology/CouplingGraph.h"

namespace qlosure {

/// Expected success probability of the *physical* circuit \p Routed on
/// \p Hw under its installed edge-error model. Gates on edges without a
/// recorded rate contribute no error. Returns a value in (0, 1].
double estimateSuccessProbability(const Circuit &Routed,
                                  const CouplingGraph &Hw);

} // namespace qlosure

#endif // QLOSURE_ROUTE_FIDELITY_H
