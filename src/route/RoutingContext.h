//===- route/RoutingContext.h - Shared per-run precomputation ----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The immutable, shareable precomputation bundle behind every routing run:
/// one RoutingContext owns (or references) everything derivable from a
/// (circuit, backend) pair alone — the coupling graph with its all-pairs
/// distance matrices, the gate dependence DAG, the transitive-dependence
/// weights omega, and the device constants (max degree, default look-ahead).
/// Build it once, then route with any number of mappers, from any number of
/// threads, without re-deriving any of it: this is the memoization layer
/// that keeps batch sweeps and repeated routings of the same circuit from
/// paying the O(V^2) precomputation cost per call.
///
/// Threading/ownership contract: after build() returns, every accessor
/// is safe to call concurrently from any number of threads; nothing here
/// is ever mutated again (share by const reference). The one lazily
/// computed member (dependenceWeights) is guarded by std::call_once, so
/// mappers that never read omega never pay for it and concurrent first
/// readers race safely. The context *references* the circuit and graph
/// it was built from — the caller keeps both alive for the context's
/// lifetime (service/ContextCache bundles copies for exactly this
/// reason).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_ROUTINGCONTEXT_H
#define QLOSURE_ROUTE_ROUTINGCONTEXT_H

#include "circuit/Circuit.h"
#include "circuit/Dag.h"
#include "deps/TransitiveWeights.h"
#include "route/QubitMapping.h"
#include "support/Error.h"
#include "topology/CouplingGraph.h"

#include <memory>
#include <mutex>
#include <vector>

namespace qlosure {

struct PeriodStructure;
class ReplayPlanCache;
class Trace;

/// Knobs for context construction.
struct RoutingContextOptions {
  /// omega engine used when a mapper asks for dependenceWeights().
  WeightOptions Weights;

  /// Eagerly materialize the fidelity-weighted distance matrix (required
  /// by error-aware mappers when the graph carries an error model).
  bool RequireWeightedDistances = false;
};

/// Immutable per-(circuit, backend) routing state. Movable, not copyable;
/// share by const reference.
class RoutingContext {
public:
  /// Builds a context for routing \p Logical onto \p Hw. Both referents
  /// must outlive the context. When \p Hw is missing a distance matrix the
  /// context computes one on a private copy of the graph (the caller's
  /// graph is never mutated); graphs from topology/Backends arrive with
  /// distances precomputed and are referenced directly.
  ///
  /// Malformed inputs (more circuit qubits than device qubits,
  /// disconnected device, gates of arity > 2, barriers/measures) do not
  /// abort: the returned context carries an error status() and must not be
  /// routed with.
  ///
  /// When a request trace \p T is supplied, the expensive construction
  /// phases record spans (ctx_distances — the O(V^2) APSP derivation when
  /// the graph arrives without matrices — and ctx_dag).
  static RoutingContext build(const Circuit &Logical, const CouplingGraph &Hw,
                              RoutingContextOptions Options = {},
                              Trace *T = nullptr);

  RoutingContext(RoutingContext &&) = default;
  RoutingContext &operator=(RoutingContext &&) = default;
  RoutingContext(const RoutingContext &) = delete;
  RoutingContext &operator=(const RoutingContext &) = delete;

  /// Success, or why this (circuit, backend) pair cannot be routed.
  const Status &status() const { return BuildStatus; }
  bool valid() const { return BuildStatus.ok(); }

  const Circuit &circuit() const { return *Logical; }
  const CouplingGraph &hardware() const { return *Hw; }
  const CircuitDag &dag() const { return *Dag; }

  /// Cached CouplingGraph::maxDegree().
  unsigned maxDegree() const { return MaxDegree; }

  /// The paper's default look-ahead constant c = 2 * maxDegree + 2
  /// (strictly exceeds the maximum degree, as Sec. IV requires).
  unsigned defaultLookahead() const { return 2 * MaxDegree + 2; }

  /// Transitive-dependence weights omega, one per gate, computed on first
  /// use with the options the context was built with and memoized for
  /// every later reader (any mapper, any thread).
  const std::vector<uint64_t> &dependenceWeights() const;

  /// Engine metadata of the memoized omega computation (valid only after
  /// the first dependenceWeights() call).
  const WeightResult &dependenceWeightResult() const;

  /// Detected loop structure of the circuit (affine/PeriodDetector.h), or
  /// null when the trace has none. Lifted and detected on first use,
  /// memoized for every later reader — service-cached contexts pay for
  /// detection once per circuit fingerprint.
  const PeriodStructure *periodStructure() const;

  /// The context's shared replay-plan store (route/ReplayPlan.h): swap
  /// schedules recorded by one route() call replay in any later call over
  /// this context with a matching configuration, from any thread.
  ReplayPlanCache &replayPlanCache() const;

  /// Identity placement over this context's circuit and device.
  QubitMapping identityMapping() const {
    return QubitMapping::identity(Logical->numQubits(), Hw->numQubits());
  }

private:
  RoutingContext() = default;

  /// Lazily computed members live behind a stable heap address so the
  /// context stays movable despite std::once_flag being pinned.
  struct LazyState {
    std::once_flag WeightsOnce;
    WeightResult Weights;
    std::once_flag AffineOnce;
    /// Null after detection when the circuit has no loop structure.
    /// shared_ptr so the header needs only a forward declaration.
    std::shared_ptr<PeriodStructure> Affine;
    std::once_flag PlansOnce;
    std::shared_ptr<ReplayPlanCache> Plans;
  };

  const Circuit *Logical = nullptr;
  const CouplingGraph *Hw = nullptr;
  /// Set when build() had to derive distance matrices itself; Hw then
  /// points here instead of at the caller's graph.
  std::unique_ptr<CouplingGraph> OwnedHw;
  std::unique_ptr<CircuitDag> Dag;
  std::unique_ptr<LazyState> Lazy;
  RoutingContextOptions Options;
  unsigned MaxDegree = 0;
  Status BuildStatus;
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_ROUTINGCONTEXT_H
