//===- route/RoutingContext.cpp - Shared per-run precomputation ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/RoutingContext.h"

#include "affine/PeriodDetector.h"
#include "route/ReplayPlan.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

using namespace qlosure;

RoutingContext RoutingContext::build(const Circuit &Logical,
                                     const CouplingGraph &Hw,
                                     RoutingContextOptions Options, Trace *T) {
  RoutingContext Ctx;
  Ctx.Logical = &Logical;
  Ctx.Hw = &Hw;
  Ctx.Options = Options;
  Ctx.Lazy = std::make_unique<LazyState>();

  // Recoverable input validation: a bad (circuit, backend) pair yields an
  // error-status context a batch sweep can record and skip.
  if (Logical.numQubits() > Hw.numQubits()) {
    Ctx.BuildStatus = Status::error(formatString(
        "circuit %s has %u qubits but device %s only has %u",
        Logical.name().c_str(), Logical.numQubits(), Hw.name().c_str(),
        Hw.numQubits()));
    return Ctx;
  }
  if (!Hw.isConnected()) {
    Ctx.BuildStatus = Status::error(
        formatString("device %s is disconnected; routing requires every "
                     "qubit pair to be reachable",
                     Hw.name().c_str()));
    return Ctx;
  }
  for (const Gate &G : Logical.gates()) {
    if (G.Kind == GateKind::Barrier || G.Kind == GateKind::Measure) {
      Ctx.BuildStatus = Status::error(formatString(
          "circuit %s contains barriers/measures; strip them before "
          "routing (Circuit::withoutNonUnitaries)",
          Logical.name().c_str()));
      return Ctx;
    }
    if (G.numQubits() > 2) {
      Ctx.BuildStatus = Status::error(formatString(
          "circuit %s contains a %u-qubit gate; decompose to arity <= 2 "
          "before routing (Circuit::decomposeThreeQubitGates)",
          Logical.name().c_str(), G.numQubits()));
      return Ctx;
    }
  }

  // Distance matrices: reference the caller's graph when it is already
  // complete; otherwise derive the missing matrices once on a private
  // copy. Either way no later route() call recomputes them.
  bool NeedWeighted = Options.RequireWeightedDistances && Hw.hasErrorModel();
  if (!Hw.hasDistances() || (NeedWeighted && !Hw.hasWeightedDistances())) {
    ScopedSpan Span(T, "ctx_distances");
    Ctx.OwnedHw = std::make_unique<CouplingGraph>(Hw);
    Ctx.OwnedHw->computeDistances();
    if (NeedWeighted)
      Ctx.OwnedHw->computeWeightedDistances();
    Ctx.Hw = Ctx.OwnedHw.get();
  }

  Ctx.MaxDegree = Ctx.Hw->maxDegree();
  {
    ScopedSpan Span(T, "ctx_dag");
    Ctx.Dag = std::make_unique<CircuitDag>(Logical);
  }
  return Ctx;
}

const std::vector<uint64_t> &RoutingContext::dependenceWeights() const {
  std::call_once(Lazy->WeightsOnce, [this] {
    Lazy->Weights = computeDependenceWeights(*Logical, Options.Weights);
  });
  return Lazy->Weights.Weights;
}

const WeightResult &RoutingContext::dependenceWeightResult() const {
  dependenceWeights(); // Ensure the memoized computation ran.
  return Lazy->Weights;
}

const PeriodStructure *RoutingContext::periodStructure() const {
  std::call_once(Lazy->AffineOnce, [this] {
    if (std::optional<PeriodStructure> Found = detectPeriod(*Logical))
      Lazy->Affine = std::make_shared<PeriodStructure>(std::move(*Found));
  });
  return Lazy->Affine.get();
}

ReplayPlanCache &RoutingContext::replayPlanCache() const {
  std::call_once(Lazy->PlansOnce,
                 [this] { Lazy->Plans = std::make_shared<ReplayPlanCache>(); });
  return *Lazy->Plans;
}
