//===- route/Router.h - Router interface --------------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface implemented by Qlosure and the four baseline
/// mappers, plus the RoutingResult bundle the evaluation harness consumes.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_ROUTER_H
#define QLOSURE_ROUTE_ROUTER_H

#include "circuit/Circuit.h"
#include "route/QubitMapping.h"
#include "route/RoutingContext.h"
#include "route/RoutingScratch.h"
#include "support/Error.h"
#include "topology/CouplingGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// Everything a routing run produces.
struct RoutingResult {
  /// The physical circuit: original gates rewritten to physical operands,
  /// interleaved with inserted SWAPs, in execution order.
  Circuit Routed;

  /// Flags aligned with Routed.gates(): true for router-inserted SWAPs
  /// (original program SWAPs stay false).
  std::vector<uint8_t> InsertedSwapFlags;

  QubitMapping InitialMapping;
  QubitMapping FinalMapping;

  size_t NumSwaps = 0;        ///< Inserted SWAPs only.
  double MappingSeconds = 0;  ///< Wall-clock routing time.
  /// Set by budgeted routers (QMAP-style) whose search exceeded its
  /// wall-clock budget and fell back to greedy completion.
  bool TimedOut = false;
  std::string RouterName;

  /// Depth of the routed circuit under \p Model.
  size_t routedDepth(SwapCostModel Model = SwapCostModel::SwapAsOneGate) const {
    return Routed.depth(Model);
  }
};

/// Abstract qubit mapper. Implementations must accept any connected
/// coupling graph and any circuit whose gates are unitary with arity <= 2
/// and numQubits() <= Hw.numQubits().
///
/// Implementations are *stateless* with respect to routing: route() never
/// mutates the router (options are fixed at construction, per-run RNG
/// state is local to the call), so one instance may route many contexts
/// from many threads concurrently.
class Router {
public:
  virtual ~Router();

  /// Human-readable mapper name (used in result tables).
  virtual std::string name() const = 0;

  /// The primary entry point: routes \p Ctx's circuit onto \p Ctx's
  /// device starting from \p Initial, reusing every precomputed structure
  /// the context carries and every buffer \p Scratch carries. \p Ctx must
  /// be valid(); \p Scratch must not be in use by a concurrent route()
  /// call (one scratch per thread — see RoutingScratch.h). Routing many
  /// circuits through one scratch keeps the inner loop allocation-free.
  virtual RoutingResult route(const RoutingContext &Ctx,
                              const QubitMapping &Initial,
                              RoutingScratch &Scratch) = 0;

  /// Convenience adapter for one-shot callers: routes through a local
  /// scratch (buffer reuse within the run, none across runs). Prefer the
  /// scratch overload in sweeps and batch drivers.
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial);

  /// Thin adapter for one-shot callers: builds a context internally
  /// (using contextOptions()) and routes through it. Prefer building one
  /// RoutingContext and reusing it when routing the same (circuit,
  /// backend) pair more than once.
  RoutingResult route(const Circuit &Logical, const CouplingGraph &Hw,
                      const QubitMapping &Initial);

  /// Convenience overloads starting from the identity placement (the
  /// paper's default for all mapper comparisons).
  RoutingResult routeWithIdentity(const Circuit &Logical,
                                  const CouplingGraph &Hw);
  RoutingResult routeWithIdentity(const RoutingContext &Ctx);
  RoutingResult routeWithIdentity(const RoutingContext &Ctx,
                                  RoutingScratch &Scratch);

  /// Recoverable precondition check: combines the context's build status
  /// with the initial-mapping arity/consistency checks. Batch drivers call
  /// this before route() to report bad inputs instead of aborting.
  static Status validate(const RoutingContext &Ctx,
                         const QubitMapping &Initial);

  /// Context construction options this router wants when the 3-arg
  /// adapter builds a context on its behalf (e.g. Qlosure forwards its
  /// omega engine choice and error-aware flag).
  virtual RoutingContextOptions contextOptions() const { return {}; }

protected:
  /// Fatal wrapper over validate() for direct route() calls, where a
  /// violated precondition is a caller bug.
  static void checkPreconditions(const RoutingContext &Ctx,
                                 const QubitMapping &Initial);
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_ROUTER_H
