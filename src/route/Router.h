//===- route/Router.h - Router interface --------------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface implemented by Qlosure and the four baseline
/// mappers, plus the RoutingResult bundle the evaluation harness consumes.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_ROUTER_H
#define QLOSURE_ROUTE_ROUTER_H

#include "circuit/Circuit.h"
#include "route/QubitMapping.h"
#include "topology/CouplingGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// Everything a routing run produces.
struct RoutingResult {
  /// The physical circuit: original gates rewritten to physical operands,
  /// interleaved with inserted SWAPs, in execution order.
  Circuit Routed;

  /// Flags aligned with Routed.gates(): true for router-inserted SWAPs
  /// (original program SWAPs stay false).
  std::vector<uint8_t> InsertedSwapFlags;

  QubitMapping InitialMapping;
  QubitMapping FinalMapping;

  size_t NumSwaps = 0;        ///< Inserted SWAPs only.
  double MappingSeconds = 0;  ///< Wall-clock routing time.
  /// Set by budgeted routers (QMAP-style) whose search exceeded its
  /// wall-clock budget and fell back to greedy completion.
  bool TimedOut = false;
  std::string RouterName;

  /// Depth of the routed circuit under \p Model.
  size_t routedDepth(SwapCostModel Model = SwapCostModel::SwapAsOneGate) const {
    return Routed.depth(Model);
  }
};

/// Abstract qubit mapper. Implementations must accept any connected
/// coupling graph and any circuit whose gates are unitary with arity <= 2
/// and numQubits() <= Hw.numQubits().
class Router {
public:
  virtual ~Router();

  /// Human-readable mapper name (used in result tables).
  virtual std::string name() const = 0;

  /// Routes \p Logical onto \p Hw starting from \p Initial.
  virtual RoutingResult route(const Circuit &Logical, const CouplingGraph &Hw,
                              const QubitMapping &Initial) = 0;

  /// Convenience overload starting from the identity placement (the
  /// paper's default for all mapper comparisons).
  RoutingResult routeWithIdentity(const Circuit &Logical,
                                  const CouplingGraph &Hw);

protected:
  /// Validates the routing preconditions (asserts on violation).
  static void checkPreconditions(const Circuit &Logical,
                                 const CouplingGraph &Hw,
                                 const QubitMapping &Initial);
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_ROUTER_H
