//===- route/Router.h - Router interface --------------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common interface implemented by Qlosure and the four baseline
/// mappers, plus the RoutingResult bundle the evaluation harness consumes.
///
/// Threading/ownership contract: Router instances are stateless with
/// respect to routing — one instance may serve concurrent route() calls
/// from many threads. Each concurrent call needs its own RoutingScratch
/// (single-threaded, see RoutingScratch.h) and may share one immutable
/// RoutingContext (thread-safe after build, see RoutingContext.h). The
/// optional CancellationToken is the only channel through which another
/// thread may influence a route in flight: its owner keeps it alive for
/// the duration of the call and may cancel() from any thread; routers
/// only poll it and never retain it.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_ROUTER_H
#define QLOSURE_ROUTE_ROUTER_H

#include "circuit/Circuit.h"
#include "route/Cancellation.h"
#include "route/QubitMapping.h"
#include "route/RoutingContext.h"
#include "route/RoutingScratch.h"
#include "support/Error.h"
#include "topology/CouplingGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// Everything a routing run produces.
struct RoutingResult {
  /// The physical circuit: original gates rewritten to physical operands,
  /// interleaved with inserted SWAPs, in execution order.
  Circuit Routed;

  /// Flags aligned with Routed.gates(): true for router-inserted SWAPs
  /// (original program SWAPs stay false).
  std::vector<uint8_t> InsertedSwapFlags;

  QubitMapping InitialMapping;
  QubitMapping FinalMapping;

  size_t NumSwaps = 0;        ///< Inserted SWAPs only.
  double MappingSeconds = 0;  ///< Wall-clock routing time.
  /// Set by budgeted routers (QMAP-style) whose search exceeded its
  /// wall-clock budget and fell back to greedy completion.
  bool TimedOut = false;
  /// Set when the route aborted because its CancellationToken fired
  /// (explicit cancel or deadline). Routed then holds only the prefix
  /// emitted before the abort: a syntactically valid circuit, but NOT a
  /// complete routing of the input — never verify, cache, or execute it.
  /// Consult the token's reason() to distinguish the two causes.
  bool Cancelled = false;
  std::string RouterName;

  /// Affine fast-path accounting (Qlosure with AffineReplay only; zero
  /// everywhere else). Periods of the detected loop region routed by
  /// replaying a recorded swap schedule vs. by the scalar kernel; the two
  /// sum to at most the region's period count (prologue and tail gates
  /// are outside either bucket).
  size_t AffineReplayedPeriods = 0;
  size_t AffineFallbackPeriods = 0;

  /// Depth of the routed circuit under \p Model.
  size_t routedDepth(SwapCostModel Model = SwapCostModel::SwapAsOneGate) const {
    return Routed.depth(Model);
  }
};

/// Abstract qubit mapper. Implementations must accept any connected
/// coupling graph and any circuit whose gates are unitary with arity <= 2
/// and numQubits() <= Hw.numQubits().
///
/// Implementations are *stateless* with respect to routing: route() never
/// mutates the router (options are fixed at construction, per-run RNG
/// state is local to the call), so one instance may route many contexts
/// from many threads concurrently.
class Router {
public:
  virtual ~Router();

  /// Human-readable mapper name (used in result tables).
  virtual std::string name() const = 0;

  /// The primary entry point: routes \p Ctx's circuit onto \p Ctx's
  /// device starting from \p Initial, reusing every precomputed structure
  /// the context carries and every buffer \p Scratch carries. \p Ctx must
  /// be valid(); \p Scratch must not be in use by a concurrent route()
  /// call (one scratch per thread — see RoutingScratch.h). Routing many
  /// circuits through one scratch keeps the inner loop allocation-free.
  ///
  /// \p Cancel (nullable) is the cooperative cancellation token:
  /// implementations poll it once per front-layer step (and every few A*
  /// expansions) and, when it fires, return immediately with
  /// RoutingResult::Cancelled set and only the already-emitted prefix in
  /// Routed. A null token costs nothing and never alters the decision
  /// sequence — cancelled-free runs are byte-identical with and without
  /// one. Implementations also forward execution progress to the token
  /// (reportProgress), which is a no-op unless the caller installed a
  /// sink.
  virtual RoutingResult route(const RoutingContext &Ctx,
                              const QubitMapping &Initial,
                              RoutingScratch &Scratch,
                              const CancellationToken *Cancel) = 0;

  /// Non-cancellable adapter: the pre-cancellation scratch entry point.
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &Scratch) {
    return route(Ctx, Initial, Scratch, nullptr);
  }

  /// Convenience adapter for one-shot callers: routes through a local
  /// scratch (buffer reuse within the run, none across runs). Prefer the
  /// scratch overload in sweeps and batch drivers.
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial);

  /// Thin adapter for one-shot callers: builds a context internally
  /// (using contextOptions()) and routes through it. Prefer building one
  /// RoutingContext and reusing it when routing the same (circuit,
  /// backend) pair more than once.
  RoutingResult route(const Circuit &Logical, const CouplingGraph &Hw,
                      const QubitMapping &Initial);

  /// Convenience overloads starting from the identity placement (the
  /// paper's default for all mapper comparisons).
  RoutingResult routeWithIdentity(const Circuit &Logical,
                                  const CouplingGraph &Hw);
  RoutingResult routeWithIdentity(const RoutingContext &Ctx);
  RoutingResult routeWithIdentity(const RoutingContext &Ctx,
                                  RoutingScratch &Scratch);

  /// Recoverable precondition check: combines the context's build status
  /// with the initial-mapping arity/consistency checks. Batch drivers call
  /// this before route() to report bad inputs instead of aborting.
  static Status validate(const RoutingContext &Ctx,
                         const QubitMapping &Initial);

  /// Context construction options this router wants when the 3-arg
  /// adapter builds a context on its behalf (e.g. Qlosure forwards its
  /// omega engine choice and error-aware flag).
  virtual RoutingContextOptions contextOptions() const { return {}; }

protected:
  /// Fatal wrapper over validate() for direct route() calls, where a
  /// violated precondition is a caller bug.
  static void checkPreconditions(const RoutingContext &Ctx,
                                 const QubitMapping &Initial);
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_ROUTER_H
