//===- route/InitialMapping.cpp - Initial placement strategies -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/InitialMapping.h"

using namespace qlosure;

Circuit qlosure::reverseCircuit(const Circuit &Circ) {
  Circuit Result(Circ.numQubits(), Circ.name() + ".rev");
  for (size_t GI = Circ.size(); GI-- > 0;)
    Result.addGate(Circ.gate(GI));
  return Result;
}

QubitMapping qlosure::deriveBidirectionalMapping(Router &R,
                                                 const Circuit &Circ,
                                                 const CouplingGraph &Hw,
                                                 unsigned NumPasses) {
  QubitMapping Mapping =
      QubitMapping::identity(Circ.numQubits(), Hw.numQubits());
  Circuit Reversed = reverseCircuit(Circ);
  for (unsigned Pass = 0; Pass < NumPasses; ++Pass) {
    RoutingResult Forward = R.route(Circ, Hw, Mapping);
    RoutingResult Backward = R.route(Reversed, Hw, Forward.FinalMapping);
    Mapping = Backward.FinalMapping;
  }
  return Mapping;
}
