//===- route/InitialMapping.cpp - Initial placement strategies -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/InitialMapping.h"

using namespace qlosure;

Circuit qlosure::reverseCircuit(const Circuit &Circ) {
  Circuit Result(Circ.numQubits(), Circ.name() + ".rev");
  for (size_t GI = Circ.size(); GI-- > 0;)
    Result.addGate(Circ.gate(GI));
  return Result;
}

QubitMapping qlosure::deriveBidirectionalMapping(Router &R,
                                                 const Circuit &Circ,
                                                 const CouplingGraph &Hw,
                                                 unsigned NumPasses) {
  RoutingContext Ctx = RoutingContext::build(Circ, Hw, R.contextOptions());
  return deriveBidirectionalMapping(R, Ctx, NumPasses);
}

QubitMapping qlosure::deriveBidirectionalMapping(Router &R,
                                                 const RoutingContext &Ctx,
                                                 unsigned NumPasses,
                                                 RoutingScratch *Scratch,
                                                 const CancellationToken
                                                     *Cancel) {
  QubitMapping Mapping = Ctx.identityMapping();
  Circuit Reversed = reverseCircuit(Ctx.circuit());
  RoutingContext ReversedCtx = RoutingContext::build(
      Reversed, Ctx.hardware(), R.contextOptions());
  RoutingScratch Local;
  RoutingScratch &S = Scratch ? *Scratch : Local;
  for (unsigned Pass = 0; Pass < NumPasses; ++Pass) {
    RoutingResult Forward = R.route(Ctx, Mapping, S, Cancel);
    if (Forward.Cancelled)
      break;
    RoutingResult Backward =
        R.route(ReversedCtx, Forward.FinalMapping, S, Cancel);
    if (Backward.Cancelled)
      break;
    Mapping = Backward.FinalMapping;
  }
  return Mapping;
}
