//===- route/Verify.cpp - Routed circuit verification ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/Verify.h"

#include "support/StringUtils.h"

#include <cmath>
#include <vector>

using namespace qlosure;

namespace {

/// One per-wire event: the gate kind, this wire's operand position, the
/// logical partner (or -1), and the first parameter (rounded).
struct WireEvent {
  GateKind Kind;
  uint8_t OperandPos;
  int32_t Partner;
  int64_t ParamKey;

  bool operator==(const WireEvent &O) const {
    return Kind == O.Kind && OperandPos == O.OperandPos &&
           Partner == O.Partner && ParamKey == O.ParamKey;
  }
};

int64_t paramKey(const Gate &G) {
  // Quantize to avoid spurious float-identity issues across rebuilds.
  return static_cast<int64_t>(std::llround(G.Params[0] * 1e9));
}

void appendWireEvents(std::vector<std::vector<WireEvent>> &Wires,
                      const Gate &G) {
  unsigned N = G.numQubits();
  for (unsigned I = 0; I < N; ++I) {
    WireEvent E;
    E.Kind = G.Kind;
    E.OperandPos = static_cast<uint8_t>(I);
    E.Partner = N == 2 ? G.Qubits[1 - I] : -1;
    E.ParamKey = paramKey(G);
    Wires[static_cast<size_t>(G.Qubits[I])].push_back(E);
  }
}

} // namespace

VerifyResult qlosure::verifyRouting(const Circuit &Logical,
                                    const CouplingGraph &Hw,
                                    const RoutingResult &Result) {
  VerifyResult V;
  auto fail = [&V](std::string Message) {
    V.Ok = false;
    V.Message = std::move(Message);
    return V;
  };

  const Circuit &Routed = Result.Routed;
  if (Result.InsertedSwapFlags.size() != Routed.size())
    return fail("InsertedSwapFlags length does not match routed circuit");

  // Replay with the initial mapping, recovering the logical circuit.
  QubitMapping Phi = Result.InitialMapping;
  Circuit Recovered(Logical.numQubits(), Logical.name());
  size_t InsertedSwaps = 0;
  for (size_t GI = 0; GI < Routed.size(); ++GI) {
    const Gate &G = Routed.gate(GI);
    // Adjacency of every two-qubit gate on hardware.
    if (G.isTwoQubit() &&
        !Hw.areAdjacent(static_cast<unsigned>(G.Qubits[0]),
                        static_cast<unsigned>(G.Qubits[1])))
      return fail(formatString(
          "gate %zu (%s) acts on non-adjacent physical qubits", GI,
          G.toString().c_str()));

    if (Result.InsertedSwapFlags[GI]) {
      if (!G.isSwap())
        return fail(formatString("gate %zu flagged as inserted SWAP is %s",
                                 GI, G.toString().c_str()));
      Phi.swapPhysical(G.Qubits[0], G.Qubits[1]);
      ++InsertedSwaps;
      continue;
    }
    // A program gate: translate back to logical operands.
    Gate LogicalGate = G;
    unsigned N = G.numQubits();
    for (unsigned I = 0; I < N; ++I) {
      int32_t L = Phi.logOf(G.Qubits[I]);
      if (L < 0)
        return fail(formatString(
            "gate %zu reads physical qubit %d which hosts no logical qubit",
            GI, G.Qubits[I]));
      LogicalGate.Qubits[I] = L;
    }
    Recovered.addGate(LogicalGate);
  }

  if (InsertedSwaps != Result.NumSwaps)
    return fail(formatString("NumSwaps=%zu but %zu inserted SWAPs found",
                             Result.NumSwaps, InsertedSwaps));
  if (!(Phi == Result.FinalMapping))
    return fail("final mapping does not match the replayed mapping");
  if (Recovered.size() != Logical.size())
    return fail(formatString("recovered %zu program gates, expected %zu",
                             Recovered.size(), Logical.size()));

  // Per-wire sequence equality.
  std::vector<std::vector<WireEvent>> WantWires(Logical.numQubits());
  std::vector<std::vector<WireEvent>> GotWires(Logical.numQubits());
  for (const Gate &G : Logical.gates())
    appendWireEvents(WantWires, G);
  for (const Gate &G : Recovered.gates())
    appendWireEvents(GotWires, G);
  for (unsigned Q = 0; Q < Logical.numQubits(); ++Q) {
    if (WantWires[Q].size() != GotWires[Q].size())
      return fail(formatString(
          "wire q[%u]: %zu gates expected, %zu recovered", Q,
          WantWires[Q].size(), GotWires[Q].size()));
    for (size_t I = 0; I < WantWires[Q].size(); ++I)
      if (!(WantWires[Q][I] == GotWires[Q][I]))
        return fail(formatString(
            "wire q[%u]: gate sequence diverges at position %zu", Q, I));
  }
  return V;
}
