//===- route/RoutingScratch.h - Reusable per-step routing buffers -*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutable counterpart of RoutingContext: one RoutingScratch owns every
/// per-step buffer the routing kernels need — the front-layer state, the
/// look-ahead BFS queue, candidate/score arrays, the Qlosure layer
/// accumulators and the QMAP A* node pools. All of them are sized lazily
/// and reused across steps *and* across route() calls, so after the first
/// routing step of the first circuit the inner loop performs no heap
/// allocation at all. Per-gate marker arrays are epoch-stamped
/// (EpochArray): "clearing" them is a generation-counter bump, not an
/// O(numGates) refill, which removes the quadratic allocation/refill
/// traffic the pre-PR-3 kernel paid on QUEKO-scale circuits.
///
/// Threading/ownership contract: none — a scratch is single-threaded by
/// design; no member may be touched from two threads, even at different
/// times without synchronization in between. Use one scratch per worker
/// thread (BatchRunner and the qlosured Scheduler pool exactly that,
/// each worker owning its scratch for its whole lifetime) and never
/// share one across concurrent route() calls. Routers never retain a
/// reference beyond the call, so a scratch may serve any sequence of
/// mappers, circuits and backends.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_ROUTINGSCRATCH_H
#define QLOSURE_ROUTE_ROUTINGSCRATCH_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qlosure {

class Trace;

/// A lazily sized array whose entries are "cleared" in O(1) by bumping a
/// generation counter: an entry is *fresh* (written this epoch) when its
/// stamp matches the current epoch, otherwise it reads as value-initialized
/// T(). The 32-bit epoch wraps after ~4 billion generations; the wrap is
/// handled by one full stamp refill, preserving correctness.
template <typename T> class EpochArray {
public:
  /// Grows to at least \p N entries (never shrinks); new entries are stale.
  void ensure(size_t N) {
    if (Payload.size() < N) {
      Payload.resize(N, T());
      Stamp.resize(N, 0);
    }
  }

  size_t size() const { return Payload.size(); }

  /// O(1) clear: every entry becomes stale (reads as T()).
  void beginEpoch() {
    if (++Epoch == 0) { // Wrap: invalidate all stamps the slow way, once.
      std::fill(Stamp.begin(), Stamp.end(), 0);
      Epoch = 1;
    }
  }

  /// True if entry \p I was written during the current epoch.
  bool fresh(size_t I) const { return Stamp[I] == Epoch; }

  /// Writes \p Value to entry \p I, stamping it fresh.
  T &set(size_t I, T Value) {
    Stamp[I] = Epoch;
    Payload[I] = std::move(Value);
    return Payload[I];
  }

  /// Mutable reference to a fresh entry (entry \p I must be fresh).
  T &ref(size_t I) { return Payload[I]; }

  /// Value of entry \p I: the stored payload when fresh, T() when stale.
  T get(size_t I) const { return Stamp[I] == Epoch ? Payload[I] : T(); }

private:
  std::vector<T> Payload;
  std::vector<uint32_t> Stamp;
  // Starts at 1 so zero-initialized stamps read as stale even before the
  // first beginEpoch().
  uint32_t Epoch = 1;
};

/// Epoch-stamped open-addressing set of 64-bit keys (the QMAP A* closed
/// list). Clearing is O(1) — a generation bump, like EpochArray — so the
/// thousands of per-chunk searches of a deep circuit never pay a refill
/// or an allocation once the table is warm. Membership semantics are
/// exactly std::unordered_set<uint64_t>'s (same keys in, same answers
/// out), only the storage differs: linear probing over a flat power-of-two
/// table instead of one heap node per insert.
class FlatHashSet64 {
  /// Key and stamp share one 16-byte slot so a probe touches a single
  /// cache line (split key/stamp arrays cost two).
  struct Slot {
    uint64_t Key;
    uint32_t Stamp;
  };

public:
  /// O(1): every slot becomes stale. Sizes the table on first use.
  void clear() {
    if (Slots.empty())
      rehash(1024);
    if (++Epoch == 0) { // Wrap: invalidate stamps the slow way, once.
      for (Slot &S : Slots)
        S.Stamp = 0;
      Epoch = 1;
    }
    Live = 0;
  }

  bool contains(uint64_t Key) const {
    size_t Idx = static_cast<size_t>(Key) & Mask;
    while (Slots[Idx].Stamp == Epoch) {
      if (Slots[Idx].Key == Key)
        return true;
      Idx = (Idx + 1) & Mask;
    }
    return false;
  }

  /// True when \p Key was newly inserted (false: already present).
  bool insert(uint64_t Key) {
    if ((Live + 1) * 2 >= Slots.size()) // Keep load factor under 0.5.
      grow();
    size_t Idx = static_cast<size_t>(Key) & Mask;
    while (Slots[Idx].Stamp == Epoch) {
      if (Slots[Idx].Key == Key)
        return false;
      Idx = (Idx + 1) & Mask;
    }
    Slots[Idx] = {Key, Epoch};
    ++Live;
    return true;
  }

  size_t size() const { return Live; }

private:
  void rehash(size_t NewCap) {
    Slots.assign(NewCap, {0, 0});
    Mask = NewCap - 1;
    Epoch = 1;
    Live = 0;
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    uint32_t OldEpoch = Epoch;
    rehash(Old.empty() ? 1024 : Old.size() * 2);
    for (const Slot &S : Old) {
      if (S.Stamp != OldEpoch)
        continue;
      size_t Idx = static_cast<size_t>(S.Key) & Mask;
      while (Slots[Idx].Stamp == Epoch)
        Idx = (Idx + 1) & Mask;
      Slots[Idx] = {S.Key, Epoch};
      ++Live;
    }
  }

  std::vector<Slot> Slots;
  size_t Mask = 0;
  size_t Live = 0;
  uint32_t Epoch = 1;
};

/// All mutable per-step state of the routing kernels. Buffers are grouped
/// by owner; distinct owners never run interleaved on one scratch (one
/// route() call at a time), so reuse across groups is safe.
class RoutingScratch {
public:
  /// Front[FrontPos[G]] == G; this sentinel marks "not in the front".
  static constexpr uint32_t NotInFront = UINT32_MAX;

  RoutingScratch() = default;
  RoutingScratch(RoutingScratch &&) = default;
  RoutingScratch &operator=(RoutingScratch &&) = default;
  RoutingScratch(const RoutingScratch &) = delete;
  RoutingScratch &operator=(const RoutingScratch &) = delete;

  /// Grows every per-gate buffer to at least \p NumGates entries.
  void ensureGates(size_t NumGates);

  /// Grows every per-physical-qubit buffer to at least \p NumPhys entries.
  void ensurePhys(unsigned NumPhys);

  /// Empties every non-empty TouchingGates bucket (TouchedPhys lists
  /// exactly those) and resets TouchedPhys — the surgical O(touched)
  /// clear every user of the pair must perform before repopulating.
  void clearTouchingGates() {
    for (unsigned P : TouchedPhys)
      TouchingGates[P].clear();
    TouchedPhys.clear();
  }

  /// Request-scoped trace sink, or null when tracing is off (the default).
  /// The scratch is the natural carrier: it already rides through the
  /// virtual Router::route signature into every mapper, and it is strictly
  /// per-thread so the single-threaded Trace is safe here. Mappers record
  /// coarse phase spans only (loop boundaries, never per-step), so a null
  /// check is the entire cost when tracing is off. Installed by the
  /// serving layer around route(); never owned.
  Trace *TraceSink = nullptr;

  //===--------------------------------------------------------------------===//
  // Front layer (owned state of FrontLayerTracker)
  //===--------------------------------------------------------------------===//

  std::vector<uint32_t> PendingPreds; ///< Unexecuted predecessor counts.
  std::vector<uint8_t> Executed;
  std::vector<uint32_t> FrontPos; ///< Index into Front, or NotInFront.
  std::vector<uint32_t> Front;    ///< Ready, unexecuted gates (unordered).

  //===--------------------------------------------------------------------===//
  // Topological look-ahead window (FrontLayerTracker::topologicalWindow)
  //===--------------------------------------------------------------------===//

  /// Remaining-unvisited-predecessor counts, lazily initialized per call
  /// via the epoch stamp (the pre-PR-3 kernel refilled an O(numGates)
  /// array here on every routing step).
  EpochArray<uint32_t> WindowNeeded;
  /// Flat FIFO for the window BFS. Each gate is enqueued at most once, so
  /// a head cursor over a plain vector replaces the old per-call deque.
  std::vector<uint32_t> BfsQueue;
  std::vector<uint32_t> Window; ///< The produced window (topological order).

  //===--------------------------------------------------------------------===//
  // Greedy step buffers (GreedyRouterBase and Qlosure)
  //===--------------------------------------------------------------------===//

  std::vector<uint32_t> Ready;     ///< Executable front gates this pass.
  std::vector<uint32_t> FrontTwoQ; ///< Blocked front 2Q gates, sorted.
  std::vector<uint32_t> Extended;  ///< Extended-window 2Q gates.
  std::vector<unsigned> PFront;    ///< Physical qubits under front gates.
  EpochArray<uint8_t> PhysSeen;    ///< Per-phys dedup marker.
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  std::vector<double> Scores;
  std::vector<size_t> BestIdx;
  std::vector<double> Decay; ///< Per-logical-qubit SABRE decay.
  /// Delta-rescoring state of GreedyRouterBase: per scored gate (front
  /// then extended, one combined index space) the current physical
  /// endpoints and the pre-swap base distance. Candidates only recompute
  /// the gates listed under their two swapped qubits in TouchingGates;
  /// everything else rides on the cached base sums.
  std::vector<unsigned> GreedyEndA;
  std::vector<unsigned> GreedyEndB;
  std::vector<unsigned> GreedyBaseDists;

  //===--------------------------------------------------------------------===//
  // SoA score lanes (core/SimdScore.h kernels; one entry per candidate)
  //===--------------------------------------------------------------------===//

  /// Per-candidate formula terms, filled by integer delta-accumulation
  /// against the per-step base sums and consumed as flat vector lanes:
  /// scoring is "evaluate the mapper's formula element-wise over these
  /// arrays" instead of "walk per-candidate distance vectors".
  std::vector<double> LaneFrontSum; ///< Post-swap front distance sums.
  std::vector<double> LaneExtSum;   ///< Post-swap extended-window sums.
  std::vector<double> LaneFrontMax; ///< tket: post-swap max front distance.
  std::vector<double> LaneDecay;    ///< max(decay) of the swapped qubits.
  /// Qlosure Eq. 2 term deltas, layer-major: entry [L * NumCand + C] is
  /// candidate C's adjustment to layer L's base sum.
  std::vector<double> LaneAdjust;
  /// tket front-distance histogram: the post-swap maximum is found by
  /// patching touched entries and scanning down from the base maximum.
  std::vector<uint32_t> DistHist;
  std::vector<uint32_t> TouchedOldD; ///< Patched front dists (old values).
  std::vector<uint32_t> TouchedNewD; ///< Patched front dists (new values).

  //===--------------------------------------------------------------------===//
  // Qlosure layer structure (core/Qlosure.cpp)
  //===--------------------------------------------------------------------===//

  /// Dependence-distance level per gate; stale entries read 0 = "outside
  /// the window", replacing the old per-step O(numGates) zero-fill.
  EpochArray<unsigned> GateLevel;
  std::vector<uint32_t> LayerGateCount;
  std::vector<double> LayerBaseSum;
  /// Scored window 2Q gates of the current step, flat by scored ordinal
  /// (the index TouchingGates stores): dependence layer, physical
  /// endpoints, omega weight and the cached base term omega * D(PA, PB) —
  /// so per-candidate deltas recompute only the post-swap distance.
  std::vector<uint32_t> WinLevel;
  std::vector<unsigned> WinPA;
  std::vector<unsigned> WinPB;
  std::vector<double> WinOmega;
  std::vector<double> WinBase;
  /// Window 2Q gates indexed by hosting physical qubit. Persistent across
  /// steps; only the entries named in TouchedPhys are cleared (keeping
  /// inner capacity), never the outer vector.
  std::vector<std::vector<uint32_t>> TouchingGates;
  std::vector<unsigned> TouchedPhys;

  //===--------------------------------------------------------------------===//
  // QMAP layered A* (baselines/QmapAstar.cpp)
  //===--------------------------------------------------------------------===//

  /// One A* node: parent link + the single swap taken from the parent.
  /// Deliberately tiny (12 bytes): the vast majority of generated nodes
  /// are never popped, so costs live packed in the open-list key and
  /// tracked-qubit positions are materialized lazily — only nodes that
  /// actually get expanded receive an AstarPositions arena slot (recorded
  /// in Slot; UINT32_MAX until then), rebuilt from the parent's slot plus
  /// this node's one swap.
  struct AstarNode {
    uint32_t Parent = UINT32_MAX;
    uint32_t Slot = UINT32_MAX;
    uint16_t SwapFrom = 0;
    uint16_t SwapTo = 0;
  };

  /// Open-list entry: the (f, g) heap priority packed into one key —
  /// lower f first, deeper g first among equal f — plus the node id. The
  /// packing makes heap sifts compare one integer instead of loading two
  /// nodes, while inducing exactly the reference comparator's order.
  struct AstarHeapEntry {
    uint64_t Key = 0;
    uint32_t Id = 0;
  };

  std::vector<AstarNode> AstarNodes;
  std::vector<unsigned> AstarPositions; ///< Arena: expanded nodes only,
                                        ///< K positions at [Slot, Slot+K).
  std::vector<AstarHeapEntry> AstarHeap; ///< Open list (binary heap).
  FlatHashSet64 AstarClosed;
  std::vector<std::pair<unsigned, unsigned>> AstarPath; ///< Rebuilt swaps.
  std::vector<int32_t> AstarTracked;
  std::vector<std::pair<unsigned, unsigned>> AstarGatePairs;
  /// FNV-1a prefix states of the node being expanded: HashPref[j] is the
  /// hash after absorbing the first j positions, so a successor's key is
  /// re-derived from the first changed ordinal instead of from scratch.
  std::vector<uint64_t> AstarHashPref;
  /// Physical qubit -> tracked ordinal occupying it in the node being
  /// expanded (UINT32_MAX = untracked); O(1) swap-occupant lookup.
  std::vector<uint32_t> AstarInvPos;
  /// Tracked ordinal -> index of its (unique) gate pair. Chunk gates come
  /// from one time-slice layer, so they are qubit-disjoint.
  std::vector<unsigned> AstarPairOf;
  std::vector<uint32_t> QmapLayerBounds; ///< Layer k = gates [B[k], B[k+1]).
  std::vector<uint8_t> QmapBusy;         ///< Per-logical-qubit layer marker.
  std::vector<uint32_t> QmapTwoQ;        ///< 2Q gates of the current layer.
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_ROUTINGSCRATCH_H
