//===- route/RoutingScratch.h - Reusable per-step routing buffers -*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutable counterpart of RoutingContext: one RoutingScratch owns every
/// per-step buffer the routing kernels need — the front-layer state, the
/// look-ahead BFS queue, candidate/score arrays, the Qlosure layer
/// accumulators and the QMAP A* node pools. All of them are sized lazily
/// and reused across steps *and* across route() calls, so after the first
/// routing step of the first circuit the inner loop performs no heap
/// allocation at all. Per-gate marker arrays are epoch-stamped
/// (EpochArray): "clearing" them is a generation-counter bump, not an
/// O(numGates) refill, which removes the quadratic allocation/refill
/// traffic the pre-PR-3 kernel paid on QUEKO-scale circuits.
///
/// Threading/ownership contract: none — a scratch is single-threaded by
/// design; no member may be touched from two threads, even at different
/// times without synchronization in between. Use one scratch per worker
/// thread (BatchRunner and the qlosured Scheduler pool exactly that,
/// each worker owning its scratch for its whole lifetime) and never
/// share one across concurrent route() calls. Routers never retain a
/// reference beyond the call, so a scratch may serve any sequence of
/// mappers, circuits and backends.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_ROUTINGSCRATCH_H
#define QLOSURE_ROUTE_ROUTINGSCRATCH_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace qlosure {

/// A lazily sized array whose entries are "cleared" in O(1) by bumping a
/// generation counter: an entry is *fresh* (written this epoch) when its
/// stamp matches the current epoch, otherwise it reads as value-initialized
/// T(). The 32-bit epoch wraps after ~4 billion generations; the wrap is
/// handled by one full stamp refill, preserving correctness.
template <typename T> class EpochArray {
public:
  /// Grows to at least \p N entries (never shrinks); new entries are stale.
  void ensure(size_t N) {
    if (Payload.size() < N) {
      Payload.resize(N, T());
      Stamp.resize(N, 0);
    }
  }

  size_t size() const { return Payload.size(); }

  /// O(1) clear: every entry becomes stale (reads as T()).
  void beginEpoch() {
    if (++Epoch == 0) { // Wrap: invalidate all stamps the slow way, once.
      std::fill(Stamp.begin(), Stamp.end(), 0);
      Epoch = 1;
    }
  }

  /// True if entry \p I was written during the current epoch.
  bool fresh(size_t I) const { return Stamp[I] == Epoch; }

  /// Writes \p Value to entry \p I, stamping it fresh.
  T &set(size_t I, T Value) {
    Stamp[I] = Epoch;
    Payload[I] = std::move(Value);
    return Payload[I];
  }

  /// Mutable reference to a fresh entry (entry \p I must be fresh).
  T &ref(size_t I) { return Payload[I]; }

  /// Value of entry \p I: the stored payload when fresh, T() when stale.
  T get(size_t I) const { return Stamp[I] == Epoch ? Payload[I] : T(); }

private:
  std::vector<T> Payload;
  std::vector<uint32_t> Stamp;
  // Starts at 1 so zero-initialized stamps read as stale even before the
  // first beginEpoch().
  uint32_t Epoch = 1;
};

/// All mutable per-step state of the routing kernels. Buffers are grouped
/// by owner; distinct owners never run interleaved on one scratch (one
/// route() call at a time), so reuse across groups is safe.
class RoutingScratch {
public:
  /// Front[FrontPos[G]] == G; this sentinel marks "not in the front".
  static constexpr uint32_t NotInFront = UINT32_MAX;

  RoutingScratch() = default;
  RoutingScratch(RoutingScratch &&) = default;
  RoutingScratch &operator=(RoutingScratch &&) = default;
  RoutingScratch(const RoutingScratch &) = delete;
  RoutingScratch &operator=(const RoutingScratch &) = delete;

  /// Grows every per-gate buffer to at least \p NumGates entries.
  void ensureGates(size_t NumGates);

  /// Grows every per-physical-qubit buffer to at least \p NumPhys entries.
  void ensurePhys(unsigned NumPhys);

  /// Empties every non-empty TouchingGates bucket (TouchedPhys lists
  /// exactly those) and resets TouchedPhys — the surgical O(touched)
  /// clear every user of the pair must perform before repopulating.
  void clearTouchingGates() {
    for (unsigned P : TouchedPhys)
      TouchingGates[P].clear();
    TouchedPhys.clear();
  }

  //===--------------------------------------------------------------------===//
  // Front layer (owned state of FrontLayerTracker)
  //===--------------------------------------------------------------------===//

  std::vector<uint32_t> PendingPreds; ///< Unexecuted predecessor counts.
  std::vector<uint8_t> Executed;
  std::vector<uint32_t> FrontPos; ///< Index into Front, or NotInFront.
  std::vector<uint32_t> Front;    ///< Ready, unexecuted gates (unordered).

  //===--------------------------------------------------------------------===//
  // Topological look-ahead window (FrontLayerTracker::topologicalWindow)
  //===--------------------------------------------------------------------===//

  /// Remaining-unvisited-predecessor counts, lazily initialized per call
  /// via the epoch stamp (the pre-PR-3 kernel refilled an O(numGates)
  /// array here on every routing step).
  EpochArray<uint32_t> WindowNeeded;
  /// Flat FIFO for the window BFS. Each gate is enqueued at most once, so
  /// a head cursor over a plain vector replaces the old per-call deque.
  std::vector<uint32_t> BfsQueue;
  std::vector<uint32_t> Window; ///< The produced window (topological order).

  //===--------------------------------------------------------------------===//
  // Greedy step buffers (GreedyRouterBase and Qlosure)
  //===--------------------------------------------------------------------===//

  std::vector<uint32_t> Ready;     ///< Executable front gates this pass.
  std::vector<uint32_t> FrontTwoQ; ///< Blocked front 2Q gates, sorted.
  std::vector<uint32_t> Extended;  ///< Extended-window 2Q gates.
  std::vector<unsigned> PFront;    ///< Physical qubits under front gates.
  EpochArray<uint8_t> PhysSeen;    ///< Per-phys dedup marker.
  std::vector<std::pair<unsigned, unsigned>> Candidates;
  std::vector<unsigned> FrontDists;
  std::vector<unsigned> ExtDists;
  std::vector<double> Scores;
  std::vector<size_t> BestIdx;
  std::vector<double> Decay; ///< Per-logical-qubit SABRE decay.
  /// Delta-rescoring state of GreedyRouterBase: per scored gate (front
  /// then extended, one combined index space) the current physical
  /// endpoints and the pre-swap base distance. Candidates only recompute
  /// the gates listed under their two swapped qubits in TouchingGates;
  /// everything else is a straight copy of GreedyBaseDists.
  std::vector<unsigned> GreedyEndA;
  std::vector<unsigned> GreedyEndB;
  std::vector<unsigned> GreedyBaseDists;

  //===--------------------------------------------------------------------===//
  // Qlosure layer structure (core/Qlosure.cpp)
  //===--------------------------------------------------------------------===//

  /// Dependence-distance level per gate; stale entries read 0 = "outside
  /// the window", replacing the old per-step O(numGates) zero-fill.
  EpochArray<unsigned> GateLevel;
  /// Per-gate visit marker for delta rescoring (visit each touched gate
  /// once per candidate even when both swapped qubits host it).
  EpochArray<uint8_t> GateVisited;
  std::vector<uint32_t> LayerGateCount;
  std::vector<double> LayerBaseSum;
  std::vector<double> LayerAdjust;
  /// Window 2Q gates indexed by hosting physical qubit. Persistent across
  /// steps; only the entries named in TouchedPhys are cleared (keeping
  /// inner capacity), never the outer vector.
  std::vector<std::vector<uint32_t>> TouchingGates;
  std::vector<unsigned> TouchedPhys;

  //===--------------------------------------------------------------------===//
  // QMAP layered A* (baselines/QmapAstar.cpp)
  //===--------------------------------------------------------------------===//

  /// One A* node: parent link + the single swap taken from the parent.
  /// Positions live in the flat AstarPositions arena (K per node), so
  /// expanding a node copies K unsigneds instead of allocating two vectors.
  struct AstarNode {
    uint32_t Parent = UINT32_MAX;
    unsigned SwapFrom = 0;
    unsigned SwapTo = 0;
    uint32_t CostG = 0;
    uint32_t CostH = 0;
    uint32_t costF() const { return CostG + CostH; }
  };

  std::vector<AstarNode> AstarNodes;
  std::vector<unsigned> AstarPositions; ///< Arena: node I at [I*K, I*K+K).
  std::vector<unsigned> AstarTmpPos;    ///< Candidate positions (K entries).
  std::vector<uint32_t> AstarHeap;      ///< Open list (binary heap of ids).
  std::unordered_set<uint64_t> AstarClosed;
  std::vector<std::pair<unsigned, unsigned>> AstarPath; ///< Rebuilt swaps.
  std::vector<int32_t> AstarTracked;
  std::vector<std::pair<unsigned, unsigned>> AstarGatePairs;
  std::vector<uint32_t> QmapLayerBounds; ///< Layer k = gates [B[k], B[k+1]).
  std::vector<uint8_t> QmapBusy;         ///< Per-logical-qubit layer marker.
  std::vector<uint32_t> QmapTwoQ;        ///< 2Q gates of the current layer.
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_ROUTINGSCRATCH_H
