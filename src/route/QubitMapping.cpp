//===- route/QubitMapping.cpp - Logical/physical qubit mapping -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/QubitMapping.h"

#include "support/Error.h"
#include "support/Random.h"

#include <cassert>
#include <numeric>

using namespace qlosure;

QubitMapping QubitMapping::identity(unsigned NumLogical,
                                    unsigned NumPhysical) {
  assert(NumLogical <= NumPhysical &&
         "more logical than physical qubits");
  QubitMapping M;
  M.LogToPhys.resize(NumLogical);
  M.PhysToLog.assign(NumPhysical, -1);
  for (unsigned Q = 0; Q < NumLogical; ++Q) {
    M.LogToPhys[Q] = static_cast<int32_t>(Q);
    M.PhysToLog[Q] = static_cast<int32_t>(Q);
  }
  return M;
}

QubitMapping QubitMapping::random(unsigned NumLogical, unsigned NumPhysical,
                                  Rng &Generator) {
  assert(NumLogical <= NumPhysical &&
         "more logical than physical qubits");
  std::vector<int32_t> Slots(NumPhysical);
  std::iota(Slots.begin(), Slots.end(), 0);
  Generator.shuffle(Slots);
  QubitMapping M;
  M.LogToPhys.resize(NumLogical);
  M.PhysToLog.assign(NumPhysical, -1);
  for (unsigned Q = 0; Q < NumLogical; ++Q) {
    M.LogToPhys[Q] = Slots[Q];
    M.PhysToLog[Slots[Q]] = static_cast<int32_t>(Q);
  }
  return M;
}

void QubitMapping::swapPhysical(int32_t P1, int32_t P2) {
  assert(P1 >= 0 && P2 >= 0 && P1 != P2 && "bad physical swap operands");
  assert(static_cast<size_t>(P1) < PhysToLog.size() &&
         static_cast<size_t>(P2) < PhysToLog.size() &&
         "physical qubit out of range");
  int32_t L1 = PhysToLog[P1];
  int32_t L2 = PhysToLog[P2];
  PhysToLog[P1] = L2;
  PhysToLog[P2] = L1;
  if (L1 >= 0)
    LogToPhys[L1] = P2;
  if (L2 >= 0)
    LogToPhys[L2] = P1;
}

bool QubitMapping::isConsistent() const {
  for (size_t L = 0; L < LogToPhys.size(); ++L) {
    int32_t P = LogToPhys[L];
    if (P < 0 || static_cast<size_t>(P) >= PhysToLog.size() ||
        PhysToLog[P] != static_cast<int32_t>(L))
      return false;
  }
  for (size_t P = 0; P < PhysToLog.size(); ++P) {
    int32_t L = PhysToLog[P];
    if (L >= 0 && LogToPhys[static_cast<size_t>(L)] != static_cast<int32_t>(P))
      return false;
  }
  return true;
}

void QubitMapping::verifyConsistency() const {
  if (!isConsistent())
    reportFatalError("qubit mapping inconsistency detected");
}
