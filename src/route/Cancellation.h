//===- route/Cancellation.h - Cooperative route cancellation ------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CancellationToken: the cooperative cancellation + deadline + progress
/// channel between a routing request's owner (the qlosured scheduler, a
/// batch driver, a test) and the routing kernels. Routers poll
/// `cancelled()` once per front-layer step (and every few A* expansions),
/// so a multi-minute route aborts within one step of the flag being set or
/// the deadline passing — this is how qlosured enforces per-request
/// deadlines *during* routing and implements the protocol's `cancel` op.
///
/// Threading/ownership contract:
///  * `cancel()` may be called from any thread, any number of times.
///  * `setDeadline()` and `enableProgress()` must be called before the
///    token is handed to the routing thread (the scheduler arms the
///    deadline at submission; the worker installs the progress sink before
///    invoking the router). They are not thread-safe against a concurrent
///    `cancelled()` poll.
///  * `cancelled()` / `reportProgress()` are called by the routing thread;
///    `reportProgress()` invokes the progress sink on that same thread.
///  * The token's owner must keep it alive for the whole route() call;
///    routers never retain a reference beyond the call.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_CANCELLATION_H
#define QLOSURE_ROUTE_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>

namespace qlosure {

/// One cancellation scope: an atomic flag, an optional deadline, and an
/// optional throttled progress sink.
class CancellationToken {
public:
  /// Why cancelled() returned true.
  enum class Reason : uint8_t { None, Cancelled, DeadlineExceeded };

  /// Invoked by reportProgress() at most once per MinStep executed gates.
  using ProgressFn = std::function<void(size_t Done, size_t Total)>;

  CancellationToken() = default;
  CancellationToken(const CancellationToken &) = delete;
  CancellationToken &operator=(const CancellationToken &) = delete;

  /// Requests cancellation (idempotent, any thread).
  void cancel() { CancelFlag.store(true, std::memory_order_relaxed); }

  /// Arms the deadline. Call before sharing the token with the routing
  /// thread; the default (time_point::max()) means "no deadline".
  void setDeadline(std::chrono::steady_clock::time_point D) { Deadline = D; }

  /// True once cancel() was called or the deadline passed. The flag check
  /// is one relaxed atomic load; the clock is consulted only while a
  /// deadline is armed and not yet known to have passed, so polling every
  /// routing step is cheap.
  bool cancelled() const {
    if (CancelFlag.load(std::memory_order_relaxed))
      return true;
    if (DeadlineHit.load(std::memory_order_relaxed))
      return true;
    if (Deadline != std::chrono::steady_clock::time_point::max() &&
        std::chrono::steady_clock::now() >= Deadline) {
      DeadlineHit.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Distinguishes the `cancelled` error code from `deadline_exceeded`.
  /// An explicit cancel() wins when both apply.
  Reason reason() const {
    if (CancelFlag.load(std::memory_order_relaxed))
      return Reason::Cancelled;
    // cancelled() is false-flag here, so true can only mean the deadline.
    return cancelled() ? Reason::DeadlineExceeded : Reason::None;
  }

  /// Installs \p Fn as the progress sink, invoked by reportProgress() when
  /// at least \p MinStep more gates completed since the last invocation.
  /// Call before routing starts (same thread that will route, or before
  /// the token is shared).
  void enableProgress(ProgressFn Fn, size_t MinStep) {
    Progress = std::move(Fn);
    Step = MinStep > 0 ? MinStep : 1;
    LastDone = 0;
  }

  /// Routing-thread hook: reports \p Done of \p Total gates executed.
  /// No-op without a sink; throttled to one sink call per Step gates.
  void reportProgress(size_t Done, size_t Total) const {
    if (!Progress || Done < LastDone + Step)
      return;
    LastDone = Done;
    Progress(Done, Total);
  }

private:
  std::atomic<bool> CancelFlag{false};
  /// Latches the first observed deadline expiry so reason() stays stable
  /// and later cancelled() polls skip the clock.
  mutable std::atomic<bool> DeadlineHit{false};
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
  ProgressFn Progress;
  size_t Step = 1;
  /// Throttle state; touched only by the routing thread.
  mutable size_t LastDone = 0;
};

} // namespace qlosure

#endif // QLOSURE_ROUTE_CANCELLATION_H
