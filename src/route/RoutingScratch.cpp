//===- route/RoutingScratch.cpp - Reusable per-step routing buffers --------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/RoutingScratch.h"

using namespace qlosure;

void RoutingScratch::ensureGates(size_t NumGates) {
  if (PendingPreds.size() < NumGates) {
    PendingPreds.resize(NumGates);
    Executed.resize(NumGates);
    FrontPos.resize(NumGates);
  }
  WindowNeeded.ensure(NumGates);
  GateLevel.ensure(NumGates);
}

void RoutingScratch::ensurePhys(unsigned NumPhys) {
  PhysSeen.ensure(NumPhys);
  if (TouchingGates.size() < NumPhys)
    TouchingGates.resize(NumPhys);
}
