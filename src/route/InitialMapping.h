//===- route/InitialMapping.h - Initial placement strategies ------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Initial logical-to-physical placement strategies. The paper uses the
/// identity placement for all mapper comparisons and explores a SABRE-style
/// bidirectional refinement in the ablation study (Sec. VI-E): route the
/// circuit forward, route its reverse starting from the produced final
/// mapping, and use the mapping that pass ends with as the initial
/// placement of the final forward run.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_ROUTE_INITIALMAPPING_H
#define QLOSURE_ROUTE_INITIALMAPPING_H

#include "route/Router.h"

namespace qlosure {

/// Returns a copy of \p Circ with its gate order reversed (the adjoint
/// structure is irrelevant for mapping; only qubit traffic matters).
Circuit reverseCircuit(const Circuit &Circ);

/// Derives an initial mapping by \p NumPasses forward/backward routing
/// passes with \p R (Li et al. ASPLOS'19). One pass = forward + backward.
QubitMapping deriveBidirectionalMapping(Router &R, const Circuit &Circ,
                                        const CouplingGraph &Hw,
                                        unsigned NumPasses = 1);

/// Context-reusing variant: forward passes route through \p Ctx; the
/// reversed circuit gets one context of its own, shared across passes, so
/// no precomputation repeats per pass. \p Scratch (nullable) reuses the
/// caller's kernel buffers; \p Cancel (nullable) aborts the derivation
/// between (and cooperatively within) passes — the returned mapping is
/// then whatever the last completed pass produced, which is always a
/// consistent placement, and the caller is expected to notice the fired
/// token before using it for a full route.
QubitMapping deriveBidirectionalMapping(Router &R, const RoutingContext &Ctx,
                                        unsigned NumPasses = 1,
                                        RoutingScratch *Scratch = nullptr,
                                        const CancellationToken *Cancel =
                                            nullptr);

} // namespace qlosure

#endif // QLOSURE_ROUTE_INITIALMAPPING_H
