//===- route/Router.cpp - Router interface --------------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/Router.h"

#include "support/Error.h"
#include "support/StringUtils.h"

using namespace qlosure;

Router::~Router() = default;

RoutingResult Router::route(const RoutingContext &Ctx,
                            const QubitMapping &Initial) {
  RoutingScratch Scratch;
  return route(Ctx, Initial, Scratch);
}

RoutingResult Router::route(const Circuit &Logical, const CouplingGraph &Hw,
                            const QubitMapping &Initial) {
  RoutingContext Ctx = RoutingContext::build(Logical, Hw, contextOptions());
  return route(Ctx, Initial);
}

RoutingResult Router::routeWithIdentity(const Circuit &Logical,
                                        const CouplingGraph &Hw) {
  RoutingContext Ctx = RoutingContext::build(Logical, Hw, contextOptions());
  return routeWithIdentity(Ctx);
}

RoutingResult Router::routeWithIdentity(const RoutingContext &Ctx) {
  return route(Ctx, Ctx.identityMapping());
}

RoutingResult Router::routeWithIdentity(const RoutingContext &Ctx,
                                        RoutingScratch &Scratch) {
  return route(Ctx, Ctx.identityMapping(), Scratch);
}

Status Router::validate(const RoutingContext &Ctx,
                        const QubitMapping &Initial) {
  if (!Ctx.valid())
    return Ctx.status();
  if (Initial.numLogical() != Ctx.circuit().numQubits() ||
      Initial.numPhysical() != Ctx.hardware().numQubits())
    return Status::error(formatString(
        "initial mapping arity mismatch: mapping is %u -> %u but circuit "
        "%s has %u qubits on device %s with %u",
        Initial.numLogical(), Initial.numPhysical(),
        Ctx.circuit().name().c_str(), Ctx.circuit().numQubits(),
        Ctx.hardware().name().c_str(), Ctx.hardware().numQubits()));
  if (!Initial.isConsistent())
    return Status::error("initial mapping is not a consistent injective "
                         "placement");
  return Status::success();
}

void Router::checkPreconditions(const RoutingContext &Ctx,
                                const QubitMapping &Initial) {
  Status S = validate(Ctx, Initial);
  if (!S.ok())
    reportFatalError(S);
}
