//===- route/Router.cpp - Router interface --------------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/Router.h"

#include "support/Error.h"

#include <cassert>

using namespace qlosure;

Router::~Router() = default;

RoutingResult Router::routeWithIdentity(const Circuit &Logical,
                                        const CouplingGraph &Hw) {
  QubitMapping Initial =
      QubitMapping::identity(Logical.numQubits(), Hw.numQubits());
  return route(Logical, Hw, Initial);
}

void Router::checkPreconditions(const Circuit &Logical,
                                const CouplingGraph &Hw,
                                const QubitMapping &Initial) {
  if (Logical.numQubits() > Hw.numQubits())
    reportFatalError("circuit has more qubits than the device");
  if (!Hw.hasDistances())
    reportFatalError("coupling graph is missing the APSP matrix; call "
                     "computeDistances()");
  if (Initial.numLogical() != Logical.numQubits() ||
      Initial.numPhysical() != Hw.numQubits())
    reportFatalError("initial mapping arity mismatch");
  Initial.verifyConsistency();
  for (const Gate &G : Logical.gates()) {
    if (G.Kind == GateKind::Barrier || G.Kind == GateKind::Measure)
      reportFatalError("strip barriers/measures before routing");
    if (G.numQubits() > 2)
      reportFatalError("decompose 3-qubit gates before routing");
  }
}
