//===- qasm/Parser.cpp - OpenQASM 2.0 parser ----------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "qasm/Parser.h"

#include "qasm/Lexer.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace qlosure;
using namespace qlosure::qasm;

namespace {

class ParserImpl {
public:
  explicit ParserImpl(std::vector<Token> Tokens) : Tokens(std::move(Tokens)) {}

  ParseResult run() {
    Program Prog;
    if (!parseHeader(Prog))
      return fail();
    while (!peek().is(TokenKind::EndOfFile)) {
      if (peek().is(TokenKind::Error))
        return error(peek(), peek().Text), fail();
      if (!parseStatement(Prog))
        return fail();
    }
    ParseResult Result;
    Result.Prog = std::move(Prog);
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token plumbing
  //===--------------------------------------------------------------------===//

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool expect(TokenKind Kind, const char *What) {
    if (peek().is(Kind)) {
      advance();
      return true;
    }
    return error(peek(), std::string("expected ") + What);
  }

  bool error(const Token &At, const std::string &Message) {
    if (ErrorMessage.empty()) {
      // A lexical Error token carries its own diagnostic (e.g. "malformed
      // real literal"); surface that instead of the parser's expectation,
      // which would otherwise mask the real problem mid-statement.
      const std::string &Shown =
          At.is(TokenKind::Error) && !At.Text.empty() ? At.Text : Message;
      ErrorMessage = formatString("line %u, column %u: %s", At.Line,
                                  At.Column, Shown.c_str());
    }
    return false;
  }

  ParseResult fail() {
    ParseResult Result;
    Result.Error =
        ErrorMessage.empty() ? "unknown parse error" : ErrorMessage;
    return Result;
  }

  //===--------------------------------------------------------------------===//
  // Grammar
  //===--------------------------------------------------------------------===//

  bool parseHeader(Program &Prog) {
    // Optional "OPENQASM <real>;"
    if (peek().isIdentifier("OPENQASM")) {
      advance();
      if (!peek().is(TokenKind::Real) && !peek().is(TokenKind::Integer))
        return error(peek(), "expected version number after OPENQASM");
      Prog.Version = advance().Text;
      if (!expect(TokenKind::Semicolon, "';' after version"))
        return false;
    }
    return true;
  }

  bool parseStatement(Program &Prog) {
    const Token &T = peek();
    if (T.isIdentifier("include"))
      return parseInclude(Prog);
    if (T.isIdentifier("qreg") || T.isIdentifier("creg"))
      return parseRegDecl(Prog);
    if (T.isIdentifier("gate"))
      return parseGateDef(Prog, /*IsOpaque=*/false);
    if (T.isIdentifier("opaque"))
      return parseGateDef(Prog, /*IsOpaque=*/true);
    if (T.isIdentifier("measure"))
      return parseMeasure(Prog);
    if (T.isIdentifier("barrier"))
      return parseBarrier(Prog);
    if (T.isIdentifier("reset"))
      return parseReset(Prog);
    if (T.isIdentifier("if"))
      return error(T, "classical control ('if') is not supported");
    if (T.is(TokenKind::Identifier))
      return parseGateCall(Prog);
    return error(T, "expected a statement");
  }

  bool parseInclude(Program &Prog) {
    advance(); // include
    if (!peek().is(TokenKind::StringLiteral))
      return error(peek(), "expected a string after include");
    Prog.Includes.push_back(advance().Text);
    return expect(TokenKind::Semicolon, "';' after include");
  }

  bool parseRegDecl(Program &Prog) {
    bool IsQuantum = peek().isIdentifier("qreg");
    advance();
    if (!peek().is(TokenKind::Identifier))
      return error(peek(), "expected register name");
    Statement Stmt;
    Stmt.StmtKind = Statement::Kind::Reg;
    Stmt.Reg.IsQuantum = IsQuantum;
    Stmt.Reg.Name = advance().Text;
    if (!expect(TokenKind::LBracket, "'['"))
      return false;
    if (!peek().is(TokenKind::Integer))
      return error(peek(), "expected register size");
    Stmt.Reg.Size = static_cast<unsigned>(std::strtoul(
        advance().Text.c_str(), nullptr, 10));
    if (!expect(TokenKind::RBracket, "']'") ||
        !expect(TokenKind::Semicolon, "';'"))
      return false;
    Prog.Statements.push_back(std::move(Stmt));
    return true;
  }

  bool parseGateDef(Program &Prog, bool IsOpaque) {
    advance(); // gate / opaque
    if (!peek().is(TokenKind::Identifier))
      return error(peek(), "expected gate name");
    Statement Stmt;
    Stmt.StmtKind = Statement::Kind::Gate;
    Stmt.Gate.Name = advance().Text;
    Stmt.Gate.IsOpaque = IsOpaque;

    if (peek().is(TokenKind::LParen)) {
      advance();
      while (!peek().is(TokenKind::RParen)) {
        if (!peek().is(TokenKind::Identifier))
          return error(peek(), "expected parameter name");
        Stmt.Gate.ParamNames.push_back(advance().Text);
        if (peek().is(TokenKind::Comma))
          advance();
      }
      advance(); // ')'
    }
    // Qubit formal names.
    for (;;) {
      if (!peek().is(TokenKind::Identifier))
        return error(peek(), "expected qubit parameter name");
      Stmt.Gate.QubitNames.push_back(advance().Text);
      if (peek().is(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (IsOpaque) {
      if (!expect(TokenKind::Semicolon, "';' after opaque declaration"))
        return false;
      Prog.Statements.push_back(std::move(Stmt));
      return true;
    }
    if (!expect(TokenKind::LBrace, "'{'"))
      return false;
    while (!peek().is(TokenKind::RBrace)) {
      if (peek().is(TokenKind::EndOfFile))
        return error(peek(), "unterminated gate body");
      if (peek().isIdentifier("barrier")) {
        // Barriers inside bodies do not affect unitary semantics; skip.
        while (!peek().is(TokenKind::Semicolon) &&
               !peek().is(TokenKind::EndOfFile))
          advance();
        if (!expect(TokenKind::Semicolon, "';'"))
          return false;
        continue;
      }
      GateCall Call;
      if (!parseCallInto(Call))
        return false;
      Stmt.Gate.Body.push_back(std::move(Call));
    }
    advance(); // '}'
    Prog.Statements.push_back(std::move(Stmt));
    return true;
  }

  bool parseMeasure(Program &Prog) {
    advance(); // measure
    Statement Stmt;
    Stmt.StmtKind = Statement::Kind::Measure;
    if (!parseArgument(Stmt.Measure.Src))
      return false;
    if (!expect(TokenKind::Arrow, "'->' in measure"))
      return false;
    if (!parseArgument(Stmt.Measure.Dst))
      return false;
    if (!expect(TokenKind::Semicolon, "';'"))
      return false;
    Prog.Statements.push_back(std::move(Stmt));
    return true;
  }

  bool parseBarrier(Program &Prog) {
    advance(); // barrier
    Statement Stmt;
    Stmt.StmtKind = Statement::Kind::Barrier;
    for (;;) {
      Argument Arg;
      if (!parseArgument(Arg))
        return false;
      Stmt.Barrier.Args.push_back(std::move(Arg));
      if (peek().is(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    if (!expect(TokenKind::Semicolon, "';'"))
      return false;
    Prog.Statements.push_back(std::move(Stmt));
    return true;
  }

  bool parseReset(Program &Prog) {
    advance(); // reset
    Statement Stmt;
    Stmt.StmtKind = Statement::Kind::Reset;
    if (!parseArgument(Stmt.ResetArg))
      return false;
    if (!expect(TokenKind::Semicolon, "';'"))
      return false;
    Prog.Statements.push_back(std::move(Stmt));
    return true;
  }

  bool parseGateCall(Program &Prog) {
    Statement Stmt;
    Stmt.StmtKind = Statement::Kind::Call;
    if (!parseCallInto(Stmt.Call))
      return false;
    Prog.Statements.push_back(std::move(Stmt));
    return true;
  }

  bool parseCallInto(GateCall &Call) {
    if (!peek().is(TokenKind::Identifier))
      return error(peek(), "expected gate name");
    Call.Line = peek().Line;
    Call.Name = advance().Text;
    if (peek().is(TokenKind::LParen)) {
      advance();
      if (!peek().is(TokenKind::RParen)) {
        for (;;) {
          auto E = parseExpr();
          if (!E)
            return false;
          Call.Params.push_back(std::move(E));
          if (peek().is(TokenKind::Comma)) {
            advance();
            continue;
          }
          break;
        }
      }
      if (!expect(TokenKind::RParen, "')'"))
        return false;
    }
    for (;;) {
      Argument Arg;
      if (!parseArgument(Arg))
        return false;
      Call.Args.push_back(std::move(Arg));
      if (peek().is(TokenKind::Comma)) {
        advance();
        continue;
      }
      break;
    }
    return expect(TokenKind::Semicolon, "';'");
  }

  bool parseArgument(Argument &Arg) {
    if (!peek().is(TokenKind::Identifier))
      return error(peek(), "expected register reference");
    Arg.Reg = advance().Text;
    if (peek().is(TokenKind::LBracket)) {
      advance();
      if (!peek().is(TokenKind::Integer))
        return error(peek(), "expected index");
      Arg.Index = static_cast<unsigned>(
          std::strtoul(advance().Text.c_str(), nullptr, 10));
      if (!expect(TokenKind::RBracket, "']'"))
        return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Expressions (precedence climbing)
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Expr> parseExpr() { return parseAdditive(); }

  std::unique_ptr<Expr> parseAdditive() {
    auto Lhs = parseMultiplicative();
    if (!Lhs)
      return nullptr;
    while (peek().is(TokenKind::Plus) || peek().is(TokenKind::Minus)) {
      std::string Op = advance().Text;
      auto Rhs = parseMultiplicative();
      if (!Rhs)
        return nullptr;
      auto Node = std::make_unique<Expr>();
      Node->NodeKind = Expr::Kind::Binary;
      Node->Name = Op;
      Node->Lhs = std::move(Lhs);
      Node->Rhs = std::move(Rhs);
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  std::unique_ptr<Expr> parseMultiplicative() {
    auto Lhs = parseUnary();
    if (!Lhs)
      return nullptr;
    while (peek().is(TokenKind::Star) || peek().is(TokenKind::Slash)) {
      std::string Op = advance().Text;
      auto Rhs = parseUnary();
      if (!Rhs)
        return nullptr;
      auto Node = std::make_unique<Expr>();
      Node->NodeKind = Expr::Kind::Binary;
      Node->Name = Op;
      Node->Lhs = std::move(Lhs);
      Node->Rhs = std::move(Rhs);
      Lhs = std::move(Node);
    }
    return Lhs;
  }

  // Unary minus binds looser than '^' (so "-2^2" is -(2^2)), matching the
  // usual mathematical convention.
  std::unique_ptr<Expr> parseUnary() {
    if (peek().is(TokenKind::Minus)) {
      advance();
      auto Sub = parseUnary();
      if (!Sub)
        return nullptr;
      auto Node = std::make_unique<Expr>();
      Node->NodeKind = Expr::Kind::Unary;
      Node->Name = "-";
      Node->Lhs = std::move(Sub);
      return Node;
    }
    return parsePower();
  }

  std::unique_ptr<Expr> parsePower() {
    auto Lhs = parsePrimary();
    if (!Lhs)
      return nullptr;
    if (peek().is(TokenKind::Caret)) {
      advance();
      auto Rhs = parseUnary(); // Right associative; permits "2^-3".
      if (!Rhs)
        return nullptr;
      auto Node = std::make_unique<Expr>();
      Node->NodeKind = Expr::Kind::Binary;
      Node->Name = "^";
      Node->Lhs = std::move(Lhs);
      Node->Rhs = std::move(Rhs);
      return Node;
    }
    return Lhs;
  }

  std::unique_ptr<Expr> parsePrimary() {
    const Token &T = peek();
    if (T.is(TokenKind::Integer) || T.is(TokenKind::Real)) {
      auto Node = std::make_unique<Expr>();
      Node->NodeKind = Expr::Kind::Number;
      Node->Number = std::strtod(advance().Text.c_str(), nullptr);
      return Node;
    }
    if (T.is(TokenKind::LParen)) {
      advance();
      auto Inner = parseExpr();
      if (!Inner)
        return nullptr;
      if (!expect(TokenKind::RParen, "')'"))
        return nullptr;
      return Inner;
    }
    if (T.is(TokenKind::Identifier)) {
      std::string Name = advance().Text;
      if (Name == "pi") {
        auto Node = std::make_unique<Expr>();
        Node->NodeKind = Expr::Kind::Pi;
        return Node;
      }
      static const char *Functions[] = {"sin", "cos", "tan",
                                        "exp", "ln",  "sqrt"};
      for (const char *Fn : Functions) {
        if (Name == Fn) {
          if (!expect(TokenKind::LParen, "'(' after function name"))
            return nullptr;
          auto ArgExpr = parseExpr();
          if (!ArgExpr)
            return nullptr;
          if (!expect(TokenKind::RParen, "')'"))
            return nullptr;
          auto Node = std::make_unique<Expr>();
          Node->NodeKind = Expr::Kind::Unary;
          Node->Name = Name;
          Node->Lhs = std::move(ArgExpr);
          return Node;
        }
      }
      // A formal parameter reference (resolved during import).
      auto Node = std::make_unique<Expr>();
      Node->NodeKind = Expr::Kind::Param;
      Node->Name = std::move(Name);
      return Node;
    }
    error(T, "expected an expression");
    return nullptr;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::string ErrorMessage;
};

} // namespace

ParseResult qasm::parseQasm(const std::string &Source) {
  return ParserImpl(tokenize(Source)).run();
}
