//===- qasm/Lexer.cpp - OpenQASM 2.0 lexer -----------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "qasm/Lexer.h"

#include <cctype>

using namespace qlosure;
using namespace qlosure::qasm;

namespace {

class LexerImpl {
public:
  explicit LexerImpl(const std::string &Source) : Source(Source) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    for (;;) {
      Token T = next();
      bool Done = T.is(TokenKind::EndOfFile) || T.is(TokenKind::Error);
      Tokens.push_back(std::move(T));
      if (Done)
        break;
    }
    return Tokens;
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (peek() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        advance();
        advance();
        while (peek() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (peek()) {
          advance();
          advance();
        }
        continue;
      }
      return;
    }
  }

  Token make(TokenKind Kind, std::string Text, unsigned L, unsigned C) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Line = L;
    T.Column = C;
    return T;
  }

  Token next() {
    skipTrivia();
    unsigned L = Line, C = Column;
    if (Pos >= Source.size())
      return make(TokenKind::EndOfFile, "", L, C);

    char Ch = peek();
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      std::string Text;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        Text.push_back(advance());
      return make(TokenKind::Identifier, std::move(Text), L, C);
    }
    if (std::isdigit(static_cast<unsigned char>(Ch)) ||
        (Ch == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::string Text;
      bool IsReal = false;
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Text.push_back(advance());
      if (peek() == '.') {
        IsReal = true;
        Text.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text.push_back(advance());
      }
      if (peek() == 'e' || peek() == 'E') {
        IsReal = true;
        Text.push_back(advance());
        if (peek() == '+' || peek() == '-')
          Text.push_back(advance());
        // An exponent marker with no digits ("1e", "1e+", "2.5E-") is not
        // a number std::stod can parse downstream; reject it here with a
        // position instead of letting the parser throw.
        if (!std::isdigit(static_cast<unsigned char>(peek())))
          return make(TokenKind::Error,
                      "malformed real literal '" + Text +
                          "': exponent has no digits",
                      L, C);
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Text.push_back(advance());
      }
      return make(IsReal ? TokenKind::Real : TokenKind::Integer,
                  std::move(Text), L, C);
    }
    if (Ch == '"') {
      advance();
      std::string Text;
      while (peek() && peek() != '"')
        Text.push_back(advance());
      if (!peek())
        return make(TokenKind::Error, "unterminated string literal", L, C);
      advance();
      return make(TokenKind::StringLiteral, std::move(Text), L, C);
    }

    advance();
    switch (Ch) {
    case '(':
      return make(TokenKind::LParen, "(", L, C);
    case ')':
      return make(TokenKind::RParen, ")", L, C);
    case '[':
      return make(TokenKind::LBracket, "[", L, C);
    case ']':
      return make(TokenKind::RBracket, "]", L, C);
    case '{':
      return make(TokenKind::LBrace, "{", L, C);
    case '}':
      return make(TokenKind::RBrace, "}", L, C);
    case ';':
      return make(TokenKind::Semicolon, ";", L, C);
    case ',':
      return make(TokenKind::Comma, ",", L, C);
    case '+':
      return make(TokenKind::Plus, "+", L, C);
    case '*':
      return make(TokenKind::Star, "*", L, C);
    case '/':
      return make(TokenKind::Slash, "/", L, C);
    case '^':
      return make(TokenKind::Caret, "^", L, C);
    case '-':
      if (peek() == '>') {
        advance();
        return make(TokenKind::Arrow, "->", L, C);
      }
      return make(TokenKind::Minus, "-", L, C);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokenKind::Equals, "==", L, C);
      }
      return make(TokenKind::Error, "stray '='", L, C);
    default:
      return make(TokenKind::Error,
                  std::string("unexpected character '") + Ch + "'", L, C);
    }
  }

  const std::string &Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

} // namespace

std::vector<Token> qasm::tokenize(const std::string &Source) {
  return LexerImpl(Source).run();
}
