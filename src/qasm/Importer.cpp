//===- qasm/Importer.cpp - AST to circuit IR conversion ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "qasm/Importer.h"

#include "qasm/Parser.h"
#include "support/StringUtils.h"

#include <map>

using namespace qlosure;
using namespace qlosure::qasm;

namespace {

/// A builtin (qelib1) gate descriptor.
struct BuiltinGate {
  GateKind Kind;
  unsigned NumParams;
  unsigned NumQubits;
};

const std::map<std::string, BuiltinGate> &builtinGates() {
  static const std::map<std::string, BuiltinGate> Table = {
      {"id", {GateKind::I, 0, 1}},      {"x", {GateKind::X, 0, 1}},
      {"y", {GateKind::Y, 0, 1}},       {"z", {GateKind::Z, 0, 1}},
      {"h", {GateKind::H, 0, 1}},       {"s", {GateKind::S, 0, 1}},
      {"sdg", {GateKind::Sdg, 0, 1}},   {"t", {GateKind::T, 0, 1}},
      {"tdg", {GateKind::Tdg, 0, 1}},   {"sx", {GateKind::SX, 0, 1}},
      {"rx", {GateKind::RX, 1, 1}},     {"ry", {GateKind::RY, 1, 1}},
      {"rz", {GateKind::RZ, 1, 1}},     {"p", {GateKind::P, 1, 1}},
      {"u1", {GateKind::U1, 1, 1}},     {"u2", {GateKind::U2, 2, 1}},
      {"u3", {GateKind::U3, 3, 1}},     {"u", {GateKind::U3, 3, 1}},
      {"cx", {GateKind::CX, 0, 2}},     {"CX", {GateKind::CX, 0, 2}},
      {"cz", {GateKind::CZ, 0, 2}},     {"cp", {GateKind::CP, 1, 2}},
      {"cu1", {GateKind::CP, 1, 2}},    {"crz", {GateKind::CRZ, 1, 2}},
      {"rzz", {GateKind::RZZ, 1, 2}},   {"ch", {GateKind::CH, 0, 2}},
      {"cy", {GateKind::CY, 0, 2}},     {"swap", {GateKind::Swap, 0, 2}},
      {"ccx", {GateKind::CCX, 0, 3}},   {"cswap", {GateKind::CSwap, 0, 3}},
  };
  return Table;
}

class ImporterImpl {
public:
  explicit ImporterImpl(const Program &Prog) : Prog(Prog) {}

  ImportResult run(const std::string &Name) {
    // Pass 1: collect registers and user gate definitions.
    unsigned NextQubit = 0;
    for (const Statement &Stmt : Prog.Statements) {
      if (Stmt.StmtKind == Statement::Kind::Reg) {
        if (Stmt.Reg.IsQuantum) {
          if (QregBase.count(Stmt.Reg.Name))
            return fail("duplicate qreg '" + Stmt.Reg.Name + "'");
          QregBase[Stmt.Reg.Name] = NextQubit;
          QregSize[Stmt.Reg.Name] = Stmt.Reg.Size;
          NextQubit += Stmt.Reg.Size;
        }
        continue;
      }
      if (Stmt.StmtKind == Statement::Kind::Gate) {
        if (Stmt.Gate.IsOpaque)
          return fail("opaque gate '" + Stmt.Gate.Name +
                      "' has no definition to inline");
        UserGates[Stmt.Gate.Name] = &Stmt.Gate;
      }
    }

    Circuit Circ(NextQubit, Name);

    // Pass 2: lower statements in order.
    for (const Statement &Stmt : Prog.Statements) {
      switch (Stmt.StmtKind) {
      case Statement::Kind::Reg:
      case Statement::Kind::Gate:
        break;
      case Statement::Kind::Call:
        if (!lowerCall(Circ, Stmt.Call, {}, {}))
          return fail(ErrorMessage);
        break;
      case Statement::Kind::Measure: {
        auto Qubits = resolveArg(Stmt.Measure.Src);
        if (!Qubits)
          return fail(ErrorMessage);
        for (int32_t Q : *Qubits)
          Circ.addGate(Gate(GateKind::Measure, Q));
        break;
      }
      case Statement::Kind::Barrier: {
        for (const Argument &Arg : Stmt.Barrier.Args) {
          auto Qubits = resolveArg(Arg);
          if (!Qubits)
            return fail(ErrorMessage);
          for (int32_t Q : *Qubits)
            Circ.addGate(Gate(GateKind::Barrier, Q));
        }
        break;
      }
      case Statement::Kind::Reset:
        // Reset is non-unitary; for mapping purposes it behaves like a
        // single-qubit op, but we simply ignore it (QASMBench circuits do
        // not depend on it for routing).
        break;
      }
    }

    ImportResult Result;
    Result.Circ = std::move(Circ);
    return Result;
  }

private:
  ImportResult fail(const std::string &Message) {
    ImportResult Result;
    Result.Error = Message;
    return Result;
  }

  bool setError(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = Message;
    return false;
  }

  /// Resolves a top-level argument to flat qubit indices (1 for q[i],
  /// register-size many for a bare register).
  std::optional<std::vector<int32_t>> resolveArg(const Argument &Arg) {
    auto BaseIt = QregBase.find(Arg.Reg);
    if (BaseIt == QregBase.end()) {
      setError("unknown quantum register '" + Arg.Reg + "'");
      return std::nullopt;
    }
    unsigned Base = BaseIt->second;
    unsigned Size = QregSize[Arg.Reg];
    std::vector<int32_t> Qubits;
    if (Arg.Index) {
      if (*Arg.Index >= Size) {
        setError(formatString("index %u out of range for register %s[%u]",
                              *Arg.Index, Arg.Reg.c_str(), Size));
        return std::nullopt;
      }
      Qubits.push_back(static_cast<int32_t>(Base + *Arg.Index));
    } else {
      for (unsigned I = 0; I < Size; ++I)
        Qubits.push_back(static_cast<int32_t>(Base + I));
    }
    return Qubits;
  }

  /// Lowers one gate call. Inside user-gate bodies, \p FormalQubits binds
  /// formal qubit names to flat indices and \p ParamValues binds formal
  /// parameters.
  bool lowerCall(Circuit &Circ, const GateCall &Call,
                 const std::map<std::string, int32_t> &FormalQubits,
                 const std::map<std::string, double> &ParamValues,
                 unsigned Depth = 0) {
    if (Depth > 64)
      return setError("user gate expansion too deep (recursive definition?)");

    // Evaluate parameters once.
    std::vector<double> Params;
    Params.reserve(Call.Params.size());
    for (const auto &E : Call.Params) {
      auto V = E->evaluate(ParamValues);
      if (!V)
        return setError(formatString(
            "line %u: cannot evaluate parameter of '%s'", Call.Line,
            Call.Name.c_str()));
      Params.push_back(*V);
    }

    // Resolve each argument to one or more flat qubits (broadcasting).
    std::vector<std::vector<int32_t>> ArgQubits;
    size_t BroadcastWidth = 1;
    for (const Argument &Arg : Call.Args) {
      // Inside a body, bare identifiers are formals.
      if (!FormalQubits.empty() && !Arg.Index) {
        auto It = FormalQubits.find(Arg.Reg);
        if (It == FormalQubits.end())
          return setError("unknown formal qubit '" + Arg.Reg + "' in gate '" +
                          Call.Name + "'");
        ArgQubits.push_back({It->second});
        continue;
      }
      auto Qubits = resolveArg(Arg);
      if (!Qubits)
        return false;
      if (Qubits->size() > 1) {
        if (BroadcastWidth != 1 && BroadcastWidth != Qubits->size())
          return setError(formatString(
              "line %u: mismatched broadcast widths in '%s'", Call.Line,
              Call.Name.c_str()));
        BroadcastWidth = Qubits->size();
      }
      ArgQubits.push_back(std::move(*Qubits));
    }

    for (size_t B = 0; B < BroadcastWidth; ++B) {
      std::vector<int32_t> Operands;
      Operands.reserve(ArgQubits.size());
      for (const auto &Qubits : ArgQubits)
        Operands.push_back(Qubits.size() == 1 ? Qubits[0] : Qubits[B]);
      if (!emitOne(Circ, Call, Params, Operands, Depth))
        return false;
    }
    return true;
  }

  bool emitOne(Circuit &Circ, const GateCall &Call,
               const std::vector<double> &Params,
               const std::vector<int32_t> &Operands, unsigned Depth) {
    auto BI = builtinGates().find(Call.Name);
    if (BI != builtinGates().end()) {
      const BuiltinGate &B = BI->second;
      if (Operands.size() != B.NumQubits)
        return setError(formatString("line %u: '%s' expects %u qubits, got %zu",
                                     Call.Line, Call.Name.c_str(), B.NumQubits,
                                     Operands.size()));
      if (Params.size() != B.NumParams)
        return setError(formatString(
            "line %u: '%s' expects %u parameters, got %zu", Call.Line,
            Call.Name.c_str(), B.NumParams, Params.size()));
      Gate G;
      G.Kind = B.Kind;
      for (size_t I = 0; I < Operands.size(); ++I)
        G.Qubits[I] = Operands[I];
      for (size_t I = 0; I < Params.size(); ++I)
        G.Params[I] = Params[I];
      // Distinct-operand check: delegate to the circuit's assertions but
      // produce a recoverable error for user input.
      for (size_t I = 0; I < Operands.size(); ++I)
        for (size_t J = I + 1; J < Operands.size(); ++J)
          if (Operands[I] == Operands[J])
            return setError(formatString(
                "line %u: repeated qubit operand in '%s'", Call.Line,
                Call.Name.c_str()));
      Circ.addGate(G);
      return true;
    }

    auto UI = UserGates.find(Call.Name);
    if (UI == UserGates.end())
      return setError(formatString("line %u: unknown gate '%s'", Call.Line,
                                   Call.Name.c_str()));
    const GateDef &Def = *UI->second;
    if (Operands.size() != Def.QubitNames.size())
      return setError(formatString("line %u: '%s' expects %zu qubits, got %zu",
                                   Call.Line, Call.Name.c_str(),
                                   Def.QubitNames.size(), Operands.size()));
    if (Params.size() != Def.ParamNames.size())
      return setError(formatString(
          "line %u: '%s' expects %zu parameters, got %zu", Call.Line,
          Call.Name.c_str(), Def.ParamNames.size(), Params.size()));

    std::map<std::string, int32_t> BodyQubits;
    for (size_t I = 0; I < Operands.size(); ++I)
      BodyQubits[Def.QubitNames[I]] = Operands[I];
    std::map<std::string, double> BodyParams;
    for (size_t I = 0; I < Params.size(); ++I)
      BodyParams[Def.ParamNames[I]] = Params[I];

    for (const GateCall &Inner : Def.Body)
      if (!lowerCall(Circ, Inner, BodyQubits, BodyParams, Depth + 1))
        return false;
    return true;
  }

  const Program &Prog;
  std::map<std::string, unsigned> QregBase;
  std::map<std::string, unsigned> QregSize;
  std::map<std::string, const GateDef *> UserGates;
  std::string ErrorMessage;
};

} // namespace

ImportResult qasm::importProgram(const Program &Prog,
                                 const std::string &Name) {
  return ImporterImpl(Prog).run(Name);
}

ImportResult qasm::importQasm(const std::string &Source,
                              const std::string &Name) {
  ParseResult Parsed = parseQasm(Source);
  if (!Parsed.succeeded()) {
    ImportResult Result;
    Result.Error = Parsed.Error;
    return Result;
  }
  return importProgram(*Parsed.Prog, Name);
}
