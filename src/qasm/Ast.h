//===- qasm/Ast.h - OpenQASM 2.0 abstract syntax tree ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenQASM 2.0 AST. Parameter expressions are small trees supporting
/// the qelib1 operator set (+, -, *, /, ^, unary minus, pi, and the
/// standard unary math functions).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_QASM_AST_H
#define QLOSURE_QASM_AST_H

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace qlosure {
namespace qasm {

/// A parameter expression node.
struct Expr {
  enum class Kind : uint8_t {
    Number,   ///< Literal value.
    Pi,       ///< The constant pi.
    Param,    ///< A formal gate parameter (only inside gate bodies).
    Unary,    ///< Op in {"-", "sin", "cos", "tan", "exp", "ln", "sqrt"}.
    Binary    ///< Op in {"+", "-", "*", "/", "^"}.
  };

  Kind NodeKind = Kind::Number;
  double Number = 0;
  std::string Name; ///< Param name or operator spelling.
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;

  /// Evaluates with \p ParamValues bound to formal parameters. Returns
  /// std::nullopt on an unbound parameter or an unknown function.
  std::optional<double>
  evaluate(const std::map<std::string, double> &ParamValues) const;

  std::unique_ptr<Expr> clone() const;
};

/// A register reference: whole register ("q") or one element ("q[3]").
struct Argument {
  std::string Reg;
  std::optional<unsigned> Index;
};

/// One quantum or classical register declaration.
struct RegDecl {
  bool IsQuantum = true;
  std::string Name;
  unsigned Size = 0;
};

/// A gate application (builtin or user-defined).
struct GateCall {
  std::string Name;
  std::vector<std::unique_ptr<Expr>> Params;
  std::vector<Argument> Args;
  unsigned Line = 0;
};

/// A user gate definition; its body may only contain gate calls (and
/// barriers, which we ignore inside bodies).
struct GateDef {
  std::string Name;
  std::vector<std::string> ParamNames;
  std::vector<std::string> QubitNames;
  std::vector<GateCall> Body;
  bool IsOpaque = false;
};

/// measure src -> dst.
struct MeasureStmt {
  Argument Src;
  Argument Dst;
};

/// barrier over a list of arguments.
struct BarrierStmt {
  std::vector<Argument> Args;
};

/// One top-level statement.
struct Statement {
  enum class Kind : uint8_t { Reg, Gate, Call, Measure, Barrier, Reset };
  Kind StmtKind = Kind::Call;
  RegDecl Reg;
  GateDef Gate;
  GateCall Call;
  MeasureStmt Measure;
  BarrierStmt Barrier;
  Argument ResetArg;
};

/// A parsed OpenQASM 2.0 program.
struct Program {
  std::string Version = "2.0";
  std::vector<std::string> Includes;
  std::vector<Statement> Statements;
};

} // namespace qasm
} // namespace qlosure

#endif // QLOSURE_QASM_AST_H
