//===- qasm/Ast.cpp - OpenQASM 2.0 abstract syntax tree ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "qasm/Ast.h"

#include <cmath>

using namespace qlosure;
using namespace qlosure::qasm;

std::optional<double>
Expr::evaluate(const std::map<std::string, double> &ParamValues) const {
  switch (NodeKind) {
  case Kind::Number:
    return Number;
  case Kind::Pi:
    return M_PI;
  case Kind::Param: {
    auto It = ParamValues.find(Name);
    if (It == ParamValues.end())
      return std::nullopt;
    return It->second;
  }
  case Kind::Unary: {
    auto V = Lhs->evaluate(ParamValues);
    if (!V)
      return std::nullopt;
    if (Name == "-")
      return -*V;
    if (Name == "sin")
      return std::sin(*V);
    if (Name == "cos")
      return std::cos(*V);
    if (Name == "tan")
      return std::tan(*V);
    if (Name == "exp")
      return std::exp(*V);
    if (Name == "ln")
      return std::log(*V);
    if (Name == "sqrt")
      return std::sqrt(*V);
    return std::nullopt;
  }
  case Kind::Binary: {
    auto L = Lhs->evaluate(ParamValues);
    auto R = Rhs->evaluate(ParamValues);
    if (!L || !R)
      return std::nullopt;
    if (Name == "+")
      return *L + *R;
    if (Name == "-")
      return *L - *R;
    if (Name == "*")
      return *L * *R;
    if (Name == "/")
      return *L / *R;
    if (Name == "^")
      return std::pow(*L, *R);
    return std::nullopt;
  }
  }
  return std::nullopt;
}

std::unique_ptr<Expr> Expr::clone() const {
  auto Copy = std::make_unique<Expr>();
  Copy->NodeKind = NodeKind;
  Copy->Number = Number;
  Copy->Name = Name;
  if (Lhs)
    Copy->Lhs = Lhs->clone();
  if (Rhs)
    Copy->Rhs = Rhs->clone();
  return Copy;
}
