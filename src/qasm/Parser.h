//===- qasm/Parser.h - OpenQASM 2.0 parser -----------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for OpenQASM 2.0. Returns either a Program or a
/// diagnostic with source position; the library never throws.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_QASM_PARSER_H
#define QLOSURE_QASM_PARSER_H

#include "qasm/Ast.h"

#include <string>

namespace qlosure {
namespace qasm {

/// Outcome of a parse: exactly one of Program/Error is meaningful.
struct ParseResult {
  std::optional<Program> Prog;
  std::string Error;

  bool succeeded() const { return Prog.has_value(); }
};

/// Parses OpenQASM 2.0 source text. `include "qelib1.inc";` is recognized
/// and recorded; the standard gates are built in, so no file access occurs.
ParseResult parseQasm(const std::string &Source);

} // namespace qasm
} // namespace qlosure

#endif // QLOSURE_QASM_PARSER_H
