//===- qasm/Importer.h - AST to circuit IR conversion ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed OpenQASM 2.0 program to the flat Circuit IR: flattens
/// quantum registers into one index space, resolves the qelib1 builtin
/// gates, inlines user-defined gates recursively, applies whole-register
/// broadcasting, and evaluates parameter expressions.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_QASM_IMPORTER_H
#define QLOSURE_QASM_IMPORTER_H

#include "circuit/Circuit.h"
#include "qasm/Ast.h"

#include <optional>
#include <string>

namespace qlosure {
namespace qasm {

/// Outcome of an import: exactly one of Circ/Error is meaningful.
struct ImportResult {
  std::optional<Circuit> Circ;
  std::string Error;

  bool succeeded() const { return Circ.has_value(); }
};

/// Lowers \p Prog to a Circuit named \p Name.
ImportResult importProgram(const Program &Prog, const std::string &Name = "");

/// Convenience: parse + import in one step.
ImportResult importQasm(const std::string &Source,
                        const std::string &Name = "");

} // namespace qasm
} // namespace qlosure

#endif // QLOSURE_QASM_IMPORTER_H
