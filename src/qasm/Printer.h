//===- qasm/Printer.h - Circuit to OpenQASM 2.0 export ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes a Circuit back to OpenQASM 2.0 text, used to emit routed
/// circuits and in round-trip tests of the frontend.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_QASM_PRINTER_H
#define QLOSURE_QASM_PRINTER_H

#include "circuit/Circuit.h"

#include <string>

namespace qlosure {
namespace qasm {

/// Renders \p Circ as an OpenQASM 2.0 program over a single register "q".
/// Measures print with a matching classical register "c".
std::string printQasm(const Circuit &Circ);

} // namespace qasm
} // namespace qlosure

#endif // QLOSURE_QASM_PRINTER_H
