//===- qasm/Lexer.h - OpenQASM 2.0 lexer -------------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for OpenQASM 2.0 source. Produces a flat token stream with
/// line/column positions for diagnostics; comments are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_QASM_LEXER_H
#define QLOSURE_QASM_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {
namespace qasm {

enum class TokenKind : uint8_t {
  Identifier, ///< Includes keywords; the parser distinguishes them.
  Integer,
  Real,
  StringLiteral,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Semicolon,
  Comma,
  Arrow, ///< "->"
  Equals, ///< "=="
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
  EndOfFile,
  Error
};

struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;
  unsigned Line = 0;
  unsigned Column = 0;

  bool is(TokenKind K) const { return Kind == K; }
  bool isIdentifier(const char *Name) const {
    return Kind == TokenKind::Identifier && Text == Name;
  }
};

/// Tokenizes \p Source. On a lexical error the stream ends with an Error
/// token whose Text holds the message; otherwise it ends with EndOfFile.
std::vector<Token> tokenize(const std::string &Source);

} // namespace qasm
} // namespace qlosure

#endif // QLOSURE_QASM_LEXER_H
