//===- qasm/Printer.cpp - Circuit to OpenQASM 2.0 export ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "qasm/Printer.h"

#include "support/StringUtils.h"

using namespace qlosure;
using namespace qlosure::qasm;

std::string qasm::printQasm(const Circuit &Circ) {
  std::string Out;
  Out += "OPENQASM 2.0;\n";
  Out += "include \"qelib1.inc\";\n";
  Out += formatString("qreg q[%u];\n", Circ.numQubits());

  bool HasMeasure = false;
  for (const Gate &G : Circ.gates())
    if (G.Kind == GateKind::Measure)
      HasMeasure = true;
  if (HasMeasure)
    Out += formatString("creg c[%u];\n", Circ.numQubits());

  for (const Gate &G : Circ.gates()) {
    if (G.Kind == GateKind::Measure) {
      Out += formatString("measure q[%d] -> c[%d];\n", G.Qubits[0],
                          G.Qubits[0]);
      continue;
    }
    if (G.Kind == GateKind::Barrier) {
      Out += formatString("barrier q[%d];\n", G.Qubits[0]);
      continue;
    }
    Out += gateName(G.Kind);
    unsigned NP = G.numParams();
    if (NP) {
      Out += "(";
      for (unsigned I = 0; I < NP; ++I) {
        if (I)
          Out += ",";
        Out += formatString("%.17g", G.Params[I]);
      }
      Out += ")";
    }
    Out += " ";
    unsigned NQ = G.numQubits();
    for (unsigned I = 0; I < NQ; ++I) {
      if (I)
        Out += ",";
      Out += formatString("q[%d]", G.Qubits[I]);
    }
    Out += ";\n";
  }
  return Out;
}
