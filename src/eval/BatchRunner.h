//===- eval/BatchRunner.h - Parallel batch routing engine ---------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fans a list of (mapper, context) routing jobs across a std::thread pool
/// and aggregates the RunRecords deterministically in insertion order:
/// Records[i] always belongs to Jobs[i], whatever the thread count or
/// completion order, so a 1-thread and an N-thread run of the same job
/// list are byte-identical. Determinism holds because every stochastic
/// choice is derived from per-job state (the router's fixed seed, the
/// workload generator's per-instance seed computed from the run index) —
/// never from RNG state shared across jobs. The one caveat is wall-clock
/// budgeted mappers (QMAP): whether their budget trips depends on machine
/// load — under any thread count, including 1 — so their records are
/// reproducible only while the budget is comfortably clear.
///
/// A job with an invalid context (or an inconsistent initial mapping)
/// produces a RunRecord with Failed set and the diagnostic in Error; the
/// rest of the batch is unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_EVAL_BATCHRUNNER_H
#define QLOSURE_EVAL_BATCHRUNNER_H

#include "eval/Harness.h"
#include "route/RoutingContext.h"

#include <vector>

namespace qlosure {

/// One (mapper, circuit-on-backend) routing job. The context and mapper
/// must outlive the batch run; one context is typically shared by the five
/// jobs routing the same circuit with different mappers, and one mapper by
/// every job using it — both are safe because contexts are immutable and
/// routers stateless. A shared context carries one set of
/// RoutingContextOptions for everyone: mappers configured with a
/// non-default omega engine need their own context (built from their
/// contextOptions()) to see those weights.
struct BatchJob {
  Router *Mapper = nullptr;
  const RoutingContext *Ctx = nullptr;
  /// Depth-factor denominator (QUEKO optimal depth, or the circuit's own
  /// depth for QASMBench-style runs).
  size_t BaselineDepth = 0;
  EvalConfig Eval;
};

/// Batch execution options.
struct BatchOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (at
  /// least 1). 1 runs inline without spawning.
  unsigned Threads = 0;
};

/// The parallel batch engine.
class BatchRunner {
public:
  explicit BatchRunner(BatchOptions Options = {}) : Options(Options) {}

  /// Runs every job and returns Records with Records[i] <-> Jobs[i].
  std::vector<RunRecord> run(const std::vector<BatchJob> &Jobs) const;

  /// Threads run() will actually use for \p NumJobs jobs.
  unsigned effectiveThreads(size_t NumJobs) const;

private:
  BatchOptions Options;
};

/// Convenience wrapper: one-off batch with \p Threads workers.
std::vector<RunRecord> runBatch(const std::vector<BatchJob> &Jobs,
                                unsigned Threads = 0);

} // namespace qlosure

#endif // QLOSURE_EVAL_BATCHRUNNER_H
