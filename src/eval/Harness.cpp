//===- eval/Harness.cpp - Evaluation harness --------------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"

#include "route/Verify.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

using namespace qlosure;

RunRecord qlosure::runOnce(Router &Mapper, const Circuit &Circ,
                           const CouplingGraph &Backend,
                           size_t BaselineDepth, const EvalConfig &Config) {
  RoutingResult Result = Mapper.routeWithIdentity(Circ, Backend);
  if (Config.Verify) {
    VerifyResult V = verifyRouting(Circ, Backend, Result);
    if (!V.Ok)
      reportFatalError(formatString(
          "routing verification failed (%s on %s, circuit %s): %s",
          Mapper.name().c_str(), Backend.name().c_str(),
          Circ.name().c_str(), V.Message.c_str()));
  }
  RunRecord Record;
  Record.Mapper = Mapper.name();
  Record.Backend = Backend.name();
  Record.Workload = Circ.name();
  Record.CircuitQubits = Circ.numQubits();
  Record.QuantumOps = Circ.numQuantumOps();
  Record.TwoQubitGates = Circ.numTwoQubitGates();
  Record.BaselineDepth = BaselineDepth;
  Record.RoutedDepth = Result.Routed.depth(Config.DepthModel);
  Record.Swaps = Result.NumSwaps;
  Record.Seconds = Result.MappingSeconds;
  Record.TimedOut = Result.TimedOut;
  Record.Verified = Config.Verify;
  return Record;
}

std::vector<RunRecord>
qlosure::runQuekoSweep(const CouplingGraph &GenDevice,
                       const CouplingGraph &Backend,
                       const std::vector<Router *> &Mappers,
                       const QuekoSweepConfig &Config) {
  std::vector<RunRecord> Records;
  for (unsigned Depth : Config.Depths) {
    for (unsigned Instance = 0; Instance < Config.CircuitsPerDepth;
         ++Instance) {
      QuekoSpec Spec;
      Spec.Depth = Depth;
      Spec.TwoQubitDensity = Config.TwoQubitDensity;
      Spec.OneQubitDensity = Config.OneQubitDensity;
      Spec.Seed = Config.SeedBase + Depth * 97 + Instance;
      QuekoInstance Queko = generateQueko(GenDevice, Spec);
      Queko.Circ.setName(formatString("queko-%uq-d%u-i%u",
                                      GenDevice.numQubits(), Depth,
                                      Instance));
      for (Router *Mapper : Mappers) {
        Records.push_back(runOnce(*Mapper, Queko.Circ, Backend,
                                  Queko.OptimalDepth, Config.Eval));
      }
    }
  }
  return Records;
}

namespace {

/// Groups records by mapper and feeds (value, isLarge, timedOut) samples.
template <typename ValueFn>
std::map<std::string, MediumLargeSummary>
aggregate(const std::vector<RunRecord> &Records, size_t SplitDepth,
          ValueFn Value) {
  struct Buckets {
    std::vector<double> Medium, Large;
    bool MediumTimedOut = false, LargeTimedOut = false;
  };
  std::map<std::string, Buckets> ByMapper;
  for (const RunRecord &R : Records) {
    Buckets &B = ByMapper[R.Mapper];
    bool Large = R.BaselineDepth >= SplitDepth;
    if (R.TimedOut) {
      (Large ? B.LargeTimedOut : B.MediumTimedOut) = true;
      continue;
    }
    (Large ? B.Large : B.Medium).push_back(Value(R));
  }
  std::map<std::string, MediumLargeSummary> Out;
  for (auto &[Mapper, B] : ByMapper) {
    MediumLargeSummary S;
    S.Medium = mean(B.Medium);
    S.Large = mean(B.Large);
    S.MediumTimedOut = B.MediumTimedOut;
    S.LargeTimedOut = B.LargeTimedOut;
    Out[Mapper] = S;
  }
  return Out;
}

} // namespace

std::map<std::string, MediumLargeSummary>
qlosure::depthFactorSummary(const std::vector<RunRecord> &Records,
                            size_t SplitDepth) {
  return aggregate(Records, SplitDepth,
                   [](const RunRecord &R) { return R.depthFactor(); });
}

std::map<std::string, MediumLargeSummary>
qlosure::swapRatioSummary(const std::vector<RunRecord> &Records,
                          const std::string &ReferenceMapper,
                          size_t SplitDepth) {
  // Index the reference mapper's swap counts per workload instance.
  std::map<std::string, double> ReferenceSwaps;
  for (const RunRecord &R : Records)
    if (R.Mapper == ReferenceMapper && !R.TimedOut)
      ReferenceSwaps[R.Workload + "@" + R.Backend] =
          static_cast<double>(R.Swaps);

  std::vector<RunRecord> Ratioed;
  for (const RunRecord &R : Records) {
    if (R.Mapper == ReferenceMapper)
      continue;
    auto It = ReferenceSwaps.find(R.Workload + "@" + R.Backend);
    if (It == ReferenceSwaps.end() || It->second == 0)
      continue;
    Ratioed.push_back(R);
  }
  return aggregate(Ratioed, SplitDepth, [&](const RunRecord &R) {
    double Ref = ReferenceSwaps[R.Workload + "@" + R.Backend];
    return static_cast<double>(R.Swaps) / Ref;
  });
}

std::map<std::string, MediumLargeSummary>
qlosure::mappingTimeSummary(const std::vector<RunRecord> &Records,
                            size_t SplitDepth) {
  return aggregate(Records, SplitDepth,
                   [](const RunRecord &R) { return R.Seconds; });
}
