//===- eval/Harness.cpp - Evaluation harness --------------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Harness.h"

#include "eval/BatchRunner.h"
#include "route/Verify.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"

#include <memory>

using namespace qlosure;

RunRecord qlosure::runOnce(Router &Mapper, const RoutingContext &Ctx,
                           size_t BaselineDepth, const EvalConfig &Config) {
  RoutingScratch Scratch;
  return runOnce(Mapper, Ctx, BaselineDepth, Config, Scratch);
}

RunRecord qlosure::runOnce(Router &Mapper, const RoutingContext &Ctx,
                           size_t BaselineDepth, const EvalConfig &Config,
                           RoutingScratch &Scratch) {
  RunRecord Record;
  Record.Mapper = Mapper.name();
  Record.BaselineDepth = BaselineDepth;
  // Circuit/backend identity is set even on invalid contexts (build()
  // binds both before validating), so Failed records name their input.
  Record.Backend = Ctx.hardware().name();
  Record.Workload = Ctx.circuit().name();
  Record.CircuitQubits = Ctx.circuit().numQubits();
  Record.QuantumOps = Ctx.circuit().numQuantumOps();
  Record.TwoQubitGates = Ctx.circuit().numTwoQubitGates();

  // Recoverable rejection: a bad (circuit, backend) input marks this
  // record Failed and leaves the rest of a batch untouched. The identity
  // mapping derived from a valid context cannot itself be inconsistent,
  // so the context status is the only live check here.
  if (!Ctx.valid()) {
    Record.Failed = true;
    Record.Error = Ctx.status().message();
    return Record;
  }

  RoutingResult Result = Mapper.routeWithIdentity(Ctx, Scratch);
  if (Config.Verify) {
    // Verification failure is a router bug, not a bad input: abort so no
    // table is ever built from an invalid routing.
    VerifyResult V = verifyRouting(Ctx.circuit(), Ctx.hardware(), Result);
    if (!V.Ok)
      reportFatalError(formatString(
          "routing verification failed (%s on %s, circuit %s): %s",
          Mapper.name().c_str(), Ctx.hardware().name().c_str(),
          Ctx.circuit().name().c_str(), V.Message.c_str()));
  }
  Record.RoutedDepth = Result.Routed.depth(Config.DepthModel);
  Record.Swaps = Result.NumSwaps;
  Record.Seconds = Result.MappingSeconds;
  Record.TimedOut = Result.TimedOut;
  Record.Verified = Config.Verify;
  return Record;
}

RunRecord qlosure::runOnce(Router &Mapper, const Circuit &Circ,
                           const CouplingGraph &Backend,
                           size_t BaselineDepth, const EvalConfig &Config) {
  RoutingContext Ctx =
      RoutingContext::build(Circ, Backend, Mapper.contextOptions());
  return runOnce(Mapper, Ctx, BaselineDepth, Config);
}

std::vector<RunRecord>
qlosure::runQuekoSweep(const CouplingGraph &GenDevice,
                       const CouplingGraph &Backend,
                       const std::vector<Router *> &Mappers,
                       const QuekoSweepConfig &Config) {
  // Ensure the shared backend carries its distance matrix exactly once;
  // every context below references this one prepared copy.
  CouplingGraph Hw = Backend;
  Hw.computeDistances();

  // Generate all instances up front (seeds derive from the (depth,
  // instance) run coordinates, never from shared RNG state), then build
  // one shared context per instance.
  std::vector<QuekoInstance> Instances;
  for (unsigned Depth : Config.Depths) {
    for (unsigned Instance = 0; Instance < Config.CircuitsPerDepth;
         ++Instance) {
      QuekoSpec Spec;
      Spec.Depth = Depth;
      Spec.TwoQubitDensity = Config.TwoQubitDensity;
      Spec.OneQubitDensity = Config.OneQubitDensity;
      Spec.Seed = Config.SeedBase + Depth * 97 + Instance;
      QuekoInstance Queko = generateQueko(GenDevice, Spec);
      Queko.Circ.setName(formatString("queko-%uq-d%u-i%u",
                                      GenDevice.numQubits(), Depth,
                                      Instance));
      Instances.push_back(std::move(Queko));
    }
  }

  std::vector<RoutingContext> Contexts;
  Contexts.reserve(Instances.size());
  for (const QuekoInstance &Queko : Instances)
    Contexts.push_back(RoutingContext::build(Queko.Circ, Hw));

  // Fan (instance x mapper) across the batch engine, keeping the serial
  // sweep's record order: instance-major, mapper-minor.
  std::vector<BatchJob> Jobs;
  Jobs.reserve(Instances.size() * Mappers.size());
  for (size_t I = 0; I < Instances.size(); ++I) {
    for (Router *Mapper : Mappers) {
      BatchJob Job;
      Job.Mapper = Mapper;
      Job.Ctx = &Contexts[I];
      Job.BaselineDepth = Instances[I].OptimalDepth;
      Job.Eval = Config.Eval;
      Jobs.push_back(Job);
    }
  }
  return runBatch(Jobs, Config.Threads);
}

namespace {

/// Groups records by mapper and feeds (value, isLarge, timedOut) samples.
template <typename ValueFn>
std::map<std::string, MediumLargeSummary>
aggregate(const std::vector<RunRecord> &Records, size_t SplitDepth,
          ValueFn Value) {
  struct Buckets {
    std::vector<double> Medium, Large;
    bool MediumTimedOut = false, LargeTimedOut = false;
  };
  std::map<std::string, Buckets> ByMapper;
  for (const RunRecord &R : Records) {
    if (R.Failed)
      continue; // Rejected inputs never contribute to summaries.
    Buckets &B = ByMapper[R.Mapper];
    bool Large = R.BaselineDepth >= SplitDepth;
    if (R.TimedOut) {
      (Large ? B.LargeTimedOut : B.MediumTimedOut) = true;
      continue;
    }
    (Large ? B.Large : B.Medium).push_back(Value(R));
  }
  std::map<std::string, MediumLargeSummary> Out;
  for (auto &[Mapper, B] : ByMapper) {
    MediumLargeSummary S;
    S.Medium = mean(B.Medium);
    S.Large = mean(B.Large);
    S.MediumTimedOut = B.MediumTimedOut;
    S.LargeTimedOut = B.LargeTimedOut;
    Out[Mapper] = S;
  }
  return Out;
}

} // namespace

std::map<std::string, MediumLargeSummary>
qlosure::depthFactorSummary(const std::vector<RunRecord> &Records,
                            size_t SplitDepth) {
  return aggregate(Records, SplitDepth,
                   [](const RunRecord &R) { return R.depthFactor(); });
}

std::map<std::string, MediumLargeSummary>
qlosure::swapRatioSummary(const std::vector<RunRecord> &Records,
                          const std::string &ReferenceMapper,
                          size_t SplitDepth) {
  // Index the reference mapper's swap counts per workload instance.
  std::map<std::string, double> ReferenceSwaps;
  for (const RunRecord &R : Records)
    if (R.Mapper == ReferenceMapper && !R.TimedOut && !R.Failed)
      ReferenceSwaps[R.Workload + "@" + R.Backend] =
          static_cast<double>(R.Swaps);

  std::vector<RunRecord> Ratioed;
  for (const RunRecord &R : Records) {
    if (R.Mapper == ReferenceMapper)
      continue;
    auto It = ReferenceSwaps.find(R.Workload + "@" + R.Backend);
    if (It == ReferenceSwaps.end() || It->second == 0)
      continue;
    Ratioed.push_back(R);
  }
  return aggregate(Ratioed, SplitDepth, [&](const RunRecord &R) {
    double Ref = ReferenceSwaps[R.Workload + "@" + R.Backend];
    return static_cast<double>(R.Swaps) / Ref;
  });
}

std::map<std::string, MediumLargeSummary>
qlosure::mappingTimeSummary(const std::vector<RunRecord> &Records,
                            size_t SplitDepth) {
  return aggregate(Records, SplitDepth,
                   [](const RunRecord &R) { return R.Seconds; });
}
