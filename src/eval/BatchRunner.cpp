//===- eval/BatchRunner.cpp - Parallel batch routing engine ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/BatchRunner.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace qlosure;

unsigned BatchRunner::effectiveThreads(size_t NumJobs) const {
  unsigned Threads = Options.Threads;
  if (Threads == 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<size_t>(Threads, std::max<size_t>(NumJobs, 1)));
}

std::vector<RunRecord> BatchRunner::run(
    const std::vector<BatchJob> &Jobs) const {
  std::vector<RunRecord> Records(Jobs.size());
  if (Jobs.empty())
    return Records;

  // Work stealing over an atomic cursor; each worker writes only its own
  // slots, so insertion-ordered aggregation needs no synchronization
  // beyond the join. Each worker owns one RoutingScratch for its whole
  // job stream, so the routing kernels stay allocation-free across jobs
  // (scratches are never shared between threads; see RoutingScratch.h).
  std::atomic<size_t> Next{0};
  auto Worker = [&] {
    RoutingScratch Scratch;
    for (size_t I = Next.fetch_add(1, std::memory_order_relaxed);
         I < Jobs.size();
         I = Next.fetch_add(1, std::memory_order_relaxed)) {
      const BatchJob &Job = Jobs[I];
      Records[I] = runOnce(*Job.Mapper, *Job.Ctx, Job.BaselineDepth,
                           Job.Eval, Scratch);
    }
  };

  unsigned Threads = effectiveThreads(Jobs.size());
  if (Threads <= 1) {
    Worker();
    return Records;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();
  return Records;
}

std::vector<RunRecord> qlosure::runBatch(const std::vector<BatchJob> &Jobs,
                                         unsigned Threads) {
  BatchOptions Options;
  Options.Threads = Threads;
  return BatchRunner(Options).run(Jobs);
}
