//===- eval/Harness.h - Evaluation harness -------------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for regenerating the paper's tables and figures: run a
/// set of mappers over a set of circuits on a backend, collect per-run
/// records (swaps, depth, time, verification), and aggregate them into the
/// depth-factor / SWAP-ratio / mapping-time summaries of Tables II-IV and
/// the per-circuit rows of Tables V-VI.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_EVAL_HARNESS_H
#define QLOSURE_EVAL_HARNESS_H

#include "route/Router.h"
#include "route/RoutingContext.h"
#include "workloads/Queko.h"

#include <map>
#include <string>
#include <vector>

namespace qlosure {

/// One (mapper, circuit, backend) routing run.
struct RunRecord {
  std::string Mapper;
  std::string Backend;
  std::string Workload;
  unsigned CircuitQubits = 0;
  size_t QuantumOps = 0;
  size_t TwoQubitGates = 0;
  /// For QUEKO runs this is the provably optimal depth; for QASMBench runs
  /// the pre-mapping circuit depth.
  size_t BaselineDepth = 0;
  size_t RoutedDepth = 0;
  size_t Swaps = 0;
  double Seconds = 0;
  bool TimedOut = false;
  bool Verified = false;
  /// A rejected input (invalid context / inconsistent mapping): the run
  /// was skipped, Error explains why, and every aggregate ignores it.
  bool Failed = false;
  std::string Error;

  double depthFactor() const {
    return BaselineDepth
               ? static_cast<double>(RoutedDepth) /
                     static_cast<double>(BaselineDepth)
               : 0.0;
  }
};

/// Harness options.
struct EvalConfig {
  /// Independently verify every routing (adjacency + dependence
  /// preservation); failures abort, making every reported number trusted.
  bool Verify = true;
  SwapCostModel DepthModel = SwapCostModel::SwapAsOneGate;
};

/// Routes \p Ctx's circuit with \p Mapper from the identity placement and
/// returns the filled record. \p BaselineDepth seeds the depth-factor
/// denominator (pass the QUEKO optimal depth or the circuit's own depth).
/// An invalid context yields a Failed record instead of aborting.
RunRecord runOnce(Router &Mapper, const RoutingContext &Ctx,
                  size_t BaselineDepth, const EvalConfig &Config = {});

/// As above, but routes through \p Scratch so a caller looping over many
/// runs (one worker thread of BatchRunner, a sweep, a bench) reuses one
/// warm set of kernel buffers instead of reallocating them per run.
RunRecord runOnce(Router &Mapper, const RoutingContext &Ctx,
                  size_t BaselineDepth, const EvalConfig &Config,
                  RoutingScratch &Scratch);

/// One-shot convenience: builds a context for (\p Circ, \p Backend) with
/// the mapper's contextOptions() and delegates to the context overload.
RunRecord runOnce(Router &Mapper, const Circuit &Circ,
                  const CouplingGraph &Backend, size_t BaselineDepth,
                  const EvalConfig &Config = {});

/// QUEKO sweep parameters.
struct QuekoSweepConfig {
  std::vector<unsigned> Depths;
  unsigned CircuitsPerDepth = 2;
  double TwoQubitDensity = 0.44;
  double OneQubitDensity = 0.26;
  uint64_t SeedBase = 1000;
  EvalConfig Eval;
  /// BatchRunner worker threads (0 = hardware concurrency). Results are
  /// identical for every thread count (see the BatchRunner.h caveat on
  /// wall-clock budgeted mappers).
  unsigned Threads = 0;
};

/// Generates QUEKO circuits on \p GenDevice per \p Config, routes each
/// with every mapper in \p Mappers on \p Backend, and returns all records.
/// Each instance's context is shared by every mapper and therefore built
/// with default RoutingContextOptions; mappers configured with a
/// non-default omega engine should route through their own contexts (see
/// BatchJob) rather than this convenience sweep.
std::vector<RunRecord> runQuekoSweep(const CouplingGraph &GenDevice,
                                     const CouplingGraph &Backend,
                                     const std::vector<Router *> &Mappers,
                                     const QuekoSweepConfig &Config);

/// Mean of \p Records' depth factors, grouped by mapper, split at the
/// paper's medium (< SplitDepth) / large (>= SplitDepth) boundary.
struct MediumLargeSummary {
  double Medium = 0;
  double Large = 0;
  bool MediumTimedOut = false;
  bool LargeTimedOut = false;
};

/// Per-mapper average depth factor (Table II rows).
std::map<std::string, MediumLargeSummary>
depthFactorSummary(const std::vector<RunRecord> &Records,
                   size_t SplitDepth = 550);

/// Per-mapper average ratio (mapper swaps / reference swaps), paired per
/// workload instance (Table III rows).
std::map<std::string, MediumLargeSummary>
swapRatioSummary(const std::vector<RunRecord> &Records,
                 const std::string &ReferenceMapper,
                 size_t SplitDepth = 550);

/// Per-mapper average mapping seconds (Table IV rows).
std::map<std::string, MediumLargeSummary>
mappingTimeSummary(const std::vector<RunRecord> &Records,
                   size_t SplitDepth = 550);

} // namespace qlosure

#endif // QLOSURE_EVAL_HARNESS_H
