//===- baselines/GreedyRouterBase.h - Greedy routing skeleton -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Template-method skeleton shared by the SABRE-, Cirq- and tket-style
/// baseline routers: execute every feasible front gate, otherwise generate
/// candidate SWAPs on front qubits and apply the subclass-scored minimum.
/// Subclasses only provide the cost function and window sizing — the
/// differences Table I of the paper identifies.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BASELINES_GREEDYROUTERBASE_H
#define QLOSURE_BASELINES_GREEDYROUTERBASE_H

#include "route/Router.h"

#include <cstdint>
#include <vector>

namespace qlosure {

class CircuitDag;
class FrontLayerTracker;

/// Base class for one-swap-at-a-time greedy routers.
class GreedyRouterBase : public Router {
public:
  using Router::route;
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &Scratch,
                      const CancellationToken *Cancel) final;

protected:
  /// Number of look-ahead gates beyond the front layer the subclass wants
  /// (two-qubit gates only). 0 disables the extended window.
  virtual size_t extendedWindowSize(size_t NumFrontGates) const = 0;

  /// Scores one candidate SWAP from its precomputed lane values; lower is
  /// better. \p FrontSum and \p ExtSum are the post-swap distance sums of
  /// the blocked front gates and the extended-window gates (exact
  /// integers in double), \p FrontMax the post-swap maximum front
  /// distance (only meaningful when usesFrontMax()), \p MaxDecay is
  /// max(delta_q1, delta_q2) of the swapped logical qubits (always 1.0 if
  /// the subclass never increments decay). \p NumFront / \p NumExt are
  /// the gate counts behind the sums.
  virtual double scoreFromSums(double FrontSum, double ExtSum,
                               double FrontMax, double MaxDecay,
                               size_t NumFront, size_t NumExt) const = 0;

  /// Evaluates the score formula across all \p NumCandidates lanes into
  /// \p Out. The default is the scalar loop over scoreFromSums; subclasses
  /// override with a SIMD kernel (core/SimdScore.h) that is bit-identical
  /// by contract. \p FrontMax is null unless usesFrontMax().
  virtual void scoreLanes(const double *FrontSum, const double *ExtSum,
                          const double *FrontMax, const double *Decay,
                          size_t NumFront, size_t NumExt,
                          size_t NumCandidates, double *Out) const;

  /// Whether the score needs the maximum front distance (tket's
  /// lexicographic fold); gates the per-candidate histogram upkeep.
  virtual bool usesFrontMax() const { return false; }

  /// Whether to apply SABRE decay bookkeeping.
  virtual bool usesDecay() const { return false; }

  /// Decay increment per swap (only used when usesDecay()).
  virtual double decayIncrement() const { return 0.001; }

  /// Deterministic tie-breaking: first minimal candidate wins when false,
  /// seeded-random selection among ties when true.
  virtual bool randomTieBreak() const { return false; }

  /// Seed for random tie-breaking.
  virtual uint64_t seed() const { return 0xBA5EBA11ULL; }

  /// Escape-hatch threshold (swaps without progress before forcing
  /// shortest-path resolution).
  virtual unsigned maxSwapsWithoutProgress() const { return 64; }
};

} // namespace qlosure

#endif // QLOSURE_BASELINES_GREEDYROUTERBASE_H
