//===- baselines/RouterRegistry.h - Mapper factory -----------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory for the five mappers of the paper's evaluation (Qlosure plus
/// the four baselines), used by the evaluation harness and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BASELINES_ROUTERREGISTRY_H
#define QLOSURE_BASELINES_ROUTERREGISTRY_H

#include "route/Router.h"

#include <memory>
#include <string>
#include <vector>

namespace qlosure {

/// Creates a mapper by name: "qlosure", "sabre", "qmap", "cirq", "tket".
/// Aborts on unknown names.
std::unique_ptr<Router> makeRouterByName(const std::string &Name);

/// The evaluation order used throughout the paper's tables:
/// SABRE, QMAP, Cirq, Pytket, Qlosure.
std::vector<std::string> paperRouterNames();

/// Instantiates all five mappers in paper order.
std::vector<std::unique_ptr<Router>> makePaperRouters();

} // namespace qlosure

#endif // QLOSURE_BASELINES_ROUTERREGISTRY_H
