//===- baselines/Sabre.h - SABRE baseline mapper ------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SABRE-style router (Li, Ding, Xie — ASPLOS 2019; LightSABRE variant of
/// Zou et al. 2024): a front layer plus one flat extended window, scored by
///
///   H(s) = max(decay) * [ 1/|F| * sum_F D + W * 1/|E| * sum_E D ]
///
/// with W = 0.5 and decay preventing swap thrashing. Supports the
/// bidirectional initial-mapping passes of the original paper through
/// route/InitialMapping.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BASELINES_SABRE_H
#define QLOSURE_BASELINES_SABRE_H

#include "baselines/GreedyRouterBase.h"

namespace qlosure {

/// SABRE tuning options.
struct SabreOptions {
  size_t ExtendedSetSize = 20;
  double ExtendedWeight = 0.5;
  double DecayIncrement = 0.001;
  uint64_t Seed = 0x5AB3E5EEDULL;
};

/// The SABRE baseline.
class SabreRouter : public GreedyRouterBase {
public:
  explicit SabreRouter(SabreOptions Options = {}) : Options(Options) {}

  std::string name() const override { return "SABRE"; }

protected:
  size_t extendedWindowSize(size_t) const override {
    return Options.ExtendedSetSize;
  }
  double scoreFromSums(double FrontSum, double ExtSum, double FrontMax,
                       double MaxDecay, size_t NumFront,
                       size_t NumExt) const override;
  void scoreLanes(const double *FrontSum, const double *ExtSum,
                  const double *FrontMax, const double *Decay,
                  size_t NumFront, size_t NumExt, size_t NumCandidates,
                  double *Out) const override;
  bool usesDecay() const override { return true; }
  double decayIncrement() const override { return Options.DecayIncrement; }
  bool randomTieBreak() const override { return true; }
  uint64_t seed() const override { return Options.Seed; }

private:
  SabreOptions Options;
};

} // namespace qlosure

#endif // QLOSURE_BASELINES_SABRE_H
