//===- baselines/CirqGreedy.cpp - Cirq-style baseline mapper --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/CirqGreedy.h"

using namespace qlosure;

double CirqGreedyRouter::scoreSwap(const std::vector<unsigned> &FrontDists,
                                   const std::vector<unsigned> &ExtendedDists,
                                   double) const {
  double Score = 0;
  for (unsigned D : FrontDists)
    Score += D;
  double Ext = 0;
  for (unsigned D : ExtendedDists)
    Ext += D;
  return Score + Options.NextSliceWeight * Ext;
}
