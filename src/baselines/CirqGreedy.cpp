//===- baselines/CirqGreedy.cpp - Cirq-style baseline mapper --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/CirqGreedy.h"

#include "core/SimdScore.h"

using namespace qlosure;

double CirqGreedyRouter::scoreFromSums(double FrontSum, double ExtSum,
                                       double /*FrontMax*/,
                                       double /*MaxDecay*/, size_t /*NumFront*/,
                                       size_t /*NumExt*/) const {
  return FrontSum + Options.NextSliceWeight * ExtSum;
}

void CirqGreedyRouter::scoreLanes(const double *FrontSum, const double *ExtSum,
                                  const double * /*FrontMax*/,
                                  const double * /*Decay*/, size_t /*NumFront*/,
                                  size_t /*NumExt*/, size_t NumCandidates,
                                  double *Out) const {
  simd::cirqScoreLanes(Out, FrontSum, ExtSum, Options.NextSliceWeight,
                       NumCandidates);
}
