//===- baselines/Sabre.cpp - SABRE baseline mapper -------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Sabre.h"

#include "core/SimdScore.h"

using namespace qlosure;

double SabreRouter::scoreFromSums(double FrontSum, double ExtSum,
                                  double /*FrontMax*/, double MaxDecay,
                                  size_t NumFront, size_t NumExt) const {
  double Score =
      NumFront == 0 ? 0.0 : FrontSum / static_cast<double>(NumFront);
  if (NumExt != 0)
    Score += Options.ExtendedWeight * ExtSum / static_cast<double>(NumExt);
  return MaxDecay * Score;
}

void SabreRouter::scoreLanes(const double *FrontSum, const double *ExtSum,
                             const double *FrontMax, const double *Decay,
                             size_t NumFront, size_t NumExt,
                             size_t NumCandidates, double *Out) const {
  if (NumFront == 0) { // Degenerate step: defer to the scalar formula.
    GreedyRouterBase::scoreLanes(FrontSum, ExtSum, FrontMax, Decay, NumFront,
                                 NumExt, NumCandidates, Out);
    return;
  }
  simd::sabreScoreLanes(Out, FrontSum, ExtSum, Decay,
                        static_cast<double>(NumFront),
                        static_cast<double>(NumExt), Options.ExtendedWeight,
                        NumExt != 0, NumCandidates);
}
