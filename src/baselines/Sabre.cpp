//===- baselines/Sabre.cpp - SABRE baseline mapper -------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Sabre.h"

using namespace qlosure;

double SabreRouter::scoreSwap(const std::vector<unsigned> &FrontDists,
                              const std::vector<unsigned> &ExtendedDists,
                              double MaxDecay) const {
  double FrontSum = 0;
  for (unsigned D : FrontDists)
    FrontSum += D;
  double Score = FrontDists.empty()
                     ? 0.0
                     : FrontSum / static_cast<double>(FrontDists.size());
  if (!ExtendedDists.empty()) {
    double ExtSum = 0;
    for (unsigned D : ExtendedDists)
      ExtSum += D;
    Score += Options.ExtendedWeight * ExtSum /
             static_cast<double>(ExtendedDists.size());
  }
  return MaxDecay * Score;
}
