//===- baselines/QmapAstar.h - QMAP-style layered A* mapper -------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// QMAP-style router (Zulehner/Paler/Wille DATE 2018; Wille & Burgholzer
/// ISPD 2023 heuristic mode; Table I of the paper: "multi-layer,
/// A*-search"): the circuit is partitioned into time-sliced layers; for
/// each layer an A* search finds a SWAP sequence making every layer gate
/// hardware-feasible; layers are reconciled by carrying the mapping
/// forward. Node and wall-clock budgets keep the search bounded — on very
/// large devices the budget trips and the router reports a timeout, the
/// behaviour the paper observed for QMAP on Sherbrooke-2X.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BASELINES_QMAPASTAR_H
#define QLOSURE_BASELINES_QMAPASTAR_H

#include "route/Router.h"

namespace qlosure {

/// QMAP-style tuning options.
struct QmapOptions {
  /// Maximum A* node expansions per chunk before falling back to greedy
  /// shortest-path insertion for the remaining blocked gates.
  size_t NodeBudgetPerLayer = 20000;

  /// Layers are split into chunks of at most this many two-qubit gates
  /// solved jointly (keeps the A* state space tractable, as MQT QMAP does
  /// when limiting its search space).
  size_t MaxJointGates = 4;

  /// Overall wall-clock budget; exceeded => RoutingResult::TimedOut.
  double TimeBudgetSeconds = 120.0;
};

/// The QMAP-style baseline.
class QmapAstarRouter : public Router {
public:
  explicit QmapAstarRouter(QmapOptions Options = {}) : Options(Options) {}

  std::string name() const override { return "QMAP"; }

  using Router::route;
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &Scratch,
                      const CancellationToken *Cancel) override;

private:
  QmapOptions Options;
};

} // namespace qlosure

#endif // QLOSURE_BASELINES_QMAPASTAR_H
