//===- baselines/GreedyRouterBase.cpp - Greedy routing skeleton -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The inner loop runs entirely out of the caller's RoutingScratch: the
// ready/candidate/distance arrays are reused across steps (and across
// route() calls sharing the scratch), the look-ahead window is the
// epoch-stamped FrontLayerTracker one, and candidate physical qubits are
// deduplicated with an epoch marker — no per-step heap allocation once the
// scratch is warm. The decision sequence is byte-identical to the
// pre-scratch implementation (bench_kernel_throughput asserts this).
//
//===----------------------------------------------------------------------===//

#include "baselines/GreedyRouterBase.h"

#include "circuit/Dag.h"
#include "core/SimdScore.h"
#include "route/FrontLayer.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace qlosure;

RoutingResult GreedyRouterBase::route(const RoutingContext &Ctx,
                                      const QubitMapping &Initial,
                                      RoutingScratch &S,
                                      const CancellationToken *Cancel) {
  checkPreconditions(Ctx, Initial);
  const Circuit &Logical = Ctx.circuit();
  const CouplingGraph &Hw = Ctx.hardware();
  Timer Clock;

  const CircuitDag &Dag = Ctx.dag();
  S.ensurePhys(Hw.numQubits());
  // TouchingGates persists across route() calls; start from a clean slate
  // in case the previous user of this scratch left entries behind.
  S.clearTouchingGates();
  FrontLayerTracker Tracker(Dag, S);
  QubitMapping Phi = Initial;
  Rng TieBreaker(seed());
  S.Decay.assign(Logical.numQubits(), 1.0);

  RoutingResult Result;
  Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
  Result.InitialMapping = Initial;
  Result.RouterName = name();

  unsigned SwapsSinceProgress = 0;

  auto physOf = [&Phi](int32_t L) { return Phi.physOf(L); };

  auto isExecutable = [&](uint32_t GI) {
    const Gate &G = Logical.gate(GI);
    if (!G.isTwoQubit())
      return true;
    return Hw.areAdjacent(static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
                          static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
  };

  auto emitSwap = [&](unsigned P1, unsigned P2) {
    Result.Routed.addSwap(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    Result.InsertedSwapFlags.push_back(1);
    ++Result.NumSwaps;
    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    if (usesDecay()) {
      if (L1 >= 0)
        S.Decay[static_cast<size_t>(L1)] += decayIncrement();
      if (L2 >= 0)
        S.Decay[static_cast<size_t>(L2)] += decayIncrement();
    }
  };

  // One coarse span for the whole greedy loop (never per-step); a null
  // sink — the default — costs a single pointer test.
  ScopedSpan LoopSpan(S.TraceSink, "greedy_loop");
  while (!Tracker.allExecuted()) {
    // One cancellation poll + progress report per front-layer step; a
    // null token never perturbs the decision sequence.
    if (Cancel) {
      if (Cancel->cancelled()) {
        Result.Cancelled = true;
        break;
      }
      Cancel->reportProgress(Tracker.numExecuted(), Logical.size());
    }
    // Phase 1: drain every executable gate.
    bool Progress = false;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      // Snapshot: execute() mutates the front.
      S.Ready.clear();
      for (uint32_t G : Tracker.front())
        if (isExecutable(G))
          S.Ready.push_back(G);
      std::sort(S.Ready.begin(), S.Ready.end());
      for (uint32_t G : S.Ready) {
        Result.Routed.addGate(Logical.gate(G).withMappedQubits(physOf));
        Result.InsertedSwapFlags.push_back(0);
        Tracker.execute(G);
        Progress = true;
        Changed = true;
      }
    }
    if (Progress) {
      if (usesDecay())
        std::fill(S.Decay.begin(), S.Decay.end(), 1.0);
      SwapsSinceProgress = 0;
      continue;
    }
    if (Tracker.allExecuted())
      break;

    // Escape hatch: force the oldest blocked gate along a shortest path.
    if (SwapsSinceProgress >= maxSwapsWithoutProgress()) {
      uint32_t Oldest = UINT32_MAX;
      for (uint32_t G : Tracker.front())
        if (Logical.gate(G).isTwoQubit())
          Oldest = std::min(Oldest, G);
      assert(Oldest != UINT32_MAX && "stuck without a blocked 2Q gate");
      const Gate &G = Logical.gate(Oldest);
      std::vector<unsigned> Path = Hw.shortestPath(
          static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
          static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
      for (size_t I = 0; I + 2 < Path.size(); ++I)
        emitSwap(Path[I], Path[I + 1]);
      SwapsSinceProgress = 0;
      continue;
    }

    // Phase 2: choose one SWAP.
    S.FrontTwoQ.clear();
    for (uint32_t G : Tracker.front())
      if (Logical.gate(G).isTwoQubit())
        S.FrontTwoQ.push_back(G);
    std::sort(S.FrontTwoQ.begin(), S.FrontTwoQ.end());

    size_t WantExtended = extendedWindowSize(S.FrontTwoQ.size());
    S.Extended.clear();
    if (WantExtended) {
      // Topological window includes the front; skip those entries.
      const std::vector<uint32_t> &Window =
          Tracker.topologicalWindow(S.FrontTwoQ.size() + 4 * WantExtended);
      for (uint32_t G : Window) {
        if (Tracker.isInFront(G) || !Logical.gate(G).isTwoQubit())
          continue;
        S.Extended.push_back(G);
        if (S.Extended.size() >= WantExtended)
          break;
      }
    }

    // Candidate swaps on front physical qubits.
    S.Candidates.clear();
    {
      S.PFront.clear();
      S.PhysSeen.beginEpoch();
      for (uint32_t GI : S.FrontTwoQ)
        for (unsigned Q = 0; Q < 2; ++Q) {
          unsigned P = static_cast<unsigned>(
              Phi.physOf(Logical.gate(GI).Qubits[Q]));
          if (!S.PhysSeen.fresh(P)) {
            S.PhysSeen.set(P, 1);
            S.PFront.push_back(P);
          }
        }
      std::sort(S.PFront.begin(), S.PFront.end());
      for (unsigned P1 : S.PFront)
        for (unsigned P2 : Hw.neighbors(P1)) {
          unsigned Lo = std::min(P1, P2), Hi = std::max(P1, P2);
          bool Dup = false;
          for (const auto &C : S.Candidates)
            if (C.first == Lo && C.second == Hi) {
              Dup = true;
              break;
            }
          if (!Dup)
            S.Candidates.push_back({Lo, Hi});
        }
    }
    assert(!S.Candidates.empty() && "no candidates on a connected graph");

    // Delta-rescoring setup: record each scored gate's current physical
    // endpoints and base (no-swap) distance once per step, plus which
    // gates each physical qubit hosts. A candidate swap (P1, P2) can only
    // change the distance of gates hosted on P1 or P2, so the per-candidate
    // work is one flat copy of the base distances plus a handful of
    // recomputed entries — instead of |front| + |extended| distance-matrix
    // lookups per candidate. Distances are small integers, so the patched
    // arrays are bit-identical to full recomputation.
    const size_t NumFront = S.FrontTwoQ.size();
    const size_t NumScored = NumFront + S.Extended.size();
    S.GreedyEndA.resize(NumScored);
    S.GreedyEndB.resize(NumScored);
    S.GreedyBaseDists.resize(NumScored);
    S.clearTouchingGates();
    for (size_t I = 0; I < NumScored; ++I) {
      const Gate &G = Logical.gate(I < NumFront ? S.FrontTwoQ[I]
                                                : S.Extended[I - NumFront]);
      unsigned PA = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
      unsigned PB = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
      S.GreedyEndA[I] = PA;
      S.GreedyEndB[I] = PB;
      S.GreedyBaseDists[I] = Hw.distance(PA, PB);
      if (S.TouchingGates[PA].empty())
        S.TouchedPhys.push_back(PA);
      S.TouchingGates[PA].push_back(static_cast<uint32_t>(I));
      if (PB != PA) {
        if (S.TouchingGates[PB].empty())
          S.TouchedPhys.push_back(PB);
        S.TouchingGates[PB].push_back(static_cast<uint32_t>(I));
      }
    }

    // Lane scoring: the base (no-swap) sums are computed once per step;
    // each candidate contributes integer deltas for its touched gates
    // only, and the mapper's formula is then evaluated element-wise over
    // the per-candidate SoA lanes (SIMD when enabled — bit-identical to
    // the scalar loop by the SimdScore contract, and to the full
    // per-candidate recomputation because distance sums of small integers
    // are exact in double).
    const size_t NumExt = S.Extended.size();
    const uint64_t BaseFrontSum =
        simd::sumU32(S.GreedyBaseDists.data(), NumFront);
    const uint64_t BaseExtSum =
        simd::sumU32(S.GreedyBaseDists.data() + NumFront, NumExt);
    const bool NeedMax = usesFrontMax();
    unsigned BaseFrontMax = 0;
    if (NeedMax) {
      BaseFrontMax = simd::maxU32(S.GreedyBaseDists.data(), NumFront);
      S.DistHist.assign(static_cast<size_t>(BaseFrontMax) + 1, 0);
      for (size_t I = 0; I < NumFront; ++I)
        ++S.DistHist[S.GreedyBaseDists[I]];
    }

    const size_t NumCand = S.Candidates.size();
    S.LaneFrontSum.resize(NumCand);
    S.LaneExtSum.resize(NumCand);
    S.LaneDecay.resize(NumCand);
    if (NeedMax)
      S.LaneFrontMax.resize(NumCand);
    for (size_t CI = 0; CI < NumCand; ++CI) {
      auto [P1, P2] = S.Candidates[CI];
      int64_t DeltaFront = 0, DeltaExt = 0;
      unsigned MaxNew = 0;
      S.TouchedOldD.clear();
      S.TouchedNewD.clear();
      auto patchGatesOn = [&](unsigned P, unsigned Other) {
        for (uint32_t I : S.TouchingGates[P]) {
          unsigned PA = S.GreedyEndA[I];
          unsigned PB = S.GreedyEndB[I];
          // A gate hosted on both swapped qubits keeps its distance: skip
          // it so it is neither recomputed nor counted from both lists.
          if (PA == Other || PB == Other)
            continue;
          unsigned NewPA = PA == P1 ? P2 : (PA == P2 ? P1 : PA);
          unsigned NewPB = PB == P1 ? P2 : (PB == P2 ? P1 : PB);
          unsigned D = Hw.distance(NewPA, NewPB);
          unsigned Old = S.GreedyBaseDists[I];
          if (I < NumFront) {
            DeltaFront += static_cast<int64_t>(D) - static_cast<int64_t>(Old);
            if (NeedMax) {
              S.TouchedOldD.push_back(Old);
              S.TouchedNewD.push_back(D);
              MaxNew = std::max(MaxNew, D);
            }
          } else {
            DeltaExt += static_cast<int64_t>(D) - static_cast<int64_t>(Old);
          }
        }
      };
      patchGatesOn(P1, P2);
      patchGatesOn(P2, P1);
      S.LaneFrontSum[CI] = static_cast<double>(
          static_cast<int64_t>(BaseFrontSum) + DeltaFront);
      S.LaneExtSum[CI] =
          static_cast<double>(static_cast<int64_t>(BaseExtSum) + DeltaExt);
      if (NeedMax) {
        // Patch the histogram, scan down from the highest possible bin,
        // then revert — O(touched + scan) instead of O(front) per
        // candidate, same integer maximum.
        unsigned Hi = std::max(BaseFrontMax, MaxNew);
        if (S.DistHist.size() < static_cast<size_t>(Hi) + 1)
          S.DistHist.resize(static_cast<size_t>(Hi) + 1, 0);
        for (size_t T = 0; T < S.TouchedOldD.size(); ++T) {
          --S.DistHist[S.TouchedOldD[T]];
          ++S.DistHist[S.TouchedNewD[T]];
        }
        unsigned M = Hi;
        while (M > 0 && S.DistHist[M] == 0)
          --M;
        S.LaneFrontMax[CI] = static_cast<double>(M);
        for (size_t T = 0; T < S.TouchedOldD.size(); ++T) {
          ++S.DistHist[S.TouchedOldD[T]];
          --S.DistHist[S.TouchedNewD[T]];
        }
      }
      double MaxDecay = 1.0;
      if (usesDecay()) {
        int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
        int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
        double D1 = L1 >= 0 ? S.Decay[static_cast<size_t>(L1)] : 1.0;
        double D2 = L2 >= 0 ? S.Decay[static_cast<size_t>(L2)] : 1.0;
        MaxDecay = std::max(D1, D2);
      }
      S.LaneDecay[CI] = MaxDecay;
    }

    S.Scores.resize(NumCand);
    scoreLanes(S.LaneFrontSum.data(), S.LaneExtSum.data(),
               NeedMax ? S.LaneFrontMax.data() : nullptr, S.LaneDecay.data(),
               NumFront, NumExt, NumCand, S.Scores.data());

    // Selection: the exact sequential tolerance logic of the reference
    // implementation (a strictly better score clears earlier ties; later
    // within-tolerance scores join without lowering the bar).
    double BestScore = std::numeric_limits<double>::infinity();
    S.BestIdx.clear();
    for (size_t CI = 0; CI < NumCand; ++CI) {
      double Score = S.Scores[CI];
      if (Score < BestScore - 1e-12) {
        BestScore = Score;
        S.BestIdx.clear();
        S.BestIdx.push_back(CI);
      } else if (Score <= BestScore + 1e-12) {
        S.BestIdx.push_back(CI);
      }
    }
    size_t Pick = randomTieBreak()
                      ? S.BestIdx[static_cast<size_t>(
                            TieBreaker.nextBounded(S.BestIdx.size()))]
                      : S.BestIdx.front();
    emitSwap(S.Candidates[Pick].first, S.Candidates[Pick].second);
    ++SwapsSinceProgress;
  }

  Result.FinalMapping = Phi;
  Result.MappingSeconds = Clock.elapsedSeconds();
  return Result;
}

void GreedyRouterBase::scoreLanes(const double *FrontSum, const double *ExtSum,
                                  const double *FrontMax, const double *Decay,
                                  size_t NumFront, size_t NumExt,
                                  size_t NumCandidates, double *Out) const {
  for (size_t I = 0; I < NumCandidates; ++I)
    Out[I] = scoreFromSums(FrontSum[I], ExtSum[I], FrontMax ? FrontMax[I] : 0.0,
                           Decay[I], NumFront, NumExt);
}
