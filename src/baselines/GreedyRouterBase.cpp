//===- baselines/GreedyRouterBase.cpp - Greedy routing skeleton -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/GreedyRouterBase.h"

#include "circuit/Dag.h"
#include "route/FrontLayer.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace qlosure;

RoutingResult GreedyRouterBase::route(const RoutingContext &Ctx,
                                      const QubitMapping &Initial) {
  checkPreconditions(Ctx, Initial);
  const Circuit &Logical = Ctx.circuit();
  const CouplingGraph &Hw = Ctx.hardware();
  Timer Clock;

  const CircuitDag &Dag = Ctx.dag();
  FrontLayerTracker Tracker(Dag);
  QubitMapping Phi = Initial;
  Rng TieBreaker(seed());
  std::vector<double> Decay(Logical.numQubits(), 1.0);

  RoutingResult Result;
  Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
  Result.InitialMapping = Initial;
  Result.RouterName = name();

  unsigned SwapsSinceProgress = 0;

  auto physOf = [&Phi](int32_t L) { return Phi.physOf(L); };

  auto isExecutable = [&](uint32_t GI) {
    const Gate &G = Logical.gate(GI);
    if (!G.isTwoQubit())
      return true;
    return Hw.areAdjacent(static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
                          static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
  };

  auto emitSwap = [&](unsigned P1, unsigned P2) {
    Result.Routed.addSwap(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    Result.InsertedSwapFlags.push_back(1);
    ++Result.NumSwaps;
    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    if (usesDecay()) {
      if (L1 >= 0)
        Decay[static_cast<size_t>(L1)] += decayIncrement();
      if (L2 >= 0)
        Decay[static_cast<size_t>(L2)] += decayIncrement();
    }
  };

  while (!Tracker.allExecuted()) {
    // Phase 1: drain every executable gate.
    bool Progress = false;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      std::vector<uint32_t> Ready;
      for (uint32_t G : Tracker.front())
        if (isExecutable(G))
          Ready.push_back(G);
      std::sort(Ready.begin(), Ready.end());
      for (uint32_t G : Ready) {
        Result.Routed.addGate(Logical.gate(G).withMappedQubits(physOf));
        Result.InsertedSwapFlags.push_back(0);
        Tracker.execute(G);
        Progress = true;
        Changed = true;
      }
    }
    if (Progress) {
      if (usesDecay())
        std::fill(Decay.begin(), Decay.end(), 1.0);
      SwapsSinceProgress = 0;
      continue;
    }
    if (Tracker.allExecuted())
      break;

    // Escape hatch: force the oldest blocked gate along a shortest path.
    if (SwapsSinceProgress >= maxSwapsWithoutProgress()) {
      uint32_t Oldest = UINT32_MAX;
      for (uint32_t G : Tracker.front())
        if (Logical.gate(G).isTwoQubit())
          Oldest = std::min(Oldest, G);
      assert(Oldest != UINT32_MAX && "stuck without a blocked 2Q gate");
      const Gate &G = Logical.gate(Oldest);
      std::vector<unsigned> Path = Hw.shortestPath(
          static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
          static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
      for (size_t I = 0; I + 2 < Path.size(); ++I)
        emitSwap(Path[I], Path[I + 1]);
      SwapsSinceProgress = 0;
      continue;
    }

    // Phase 2: choose one SWAP.
    std::vector<uint32_t> FrontTwoQ;
    for (uint32_t G : Tracker.front())
      if (Logical.gate(G).isTwoQubit())
        FrontTwoQ.push_back(G);
    std::sort(FrontTwoQ.begin(), FrontTwoQ.end());

    size_t WantExtended = extendedWindowSize(FrontTwoQ.size());
    std::vector<uint32_t> Extended;
    if (WantExtended) {
      // Topological window includes the front; skip those entries.
      std::vector<uint32_t> Window =
          Tracker.topologicalWindow(FrontTwoQ.size() + 4 * WantExtended);
      for (uint32_t G : Window) {
        if (Tracker.isInFront(G) || !Logical.gate(G).isTwoQubit())
          continue;
        Extended.push_back(G);
        if (Extended.size() >= WantExtended)
          break;
      }
    }

    // Candidate swaps on front physical qubits.
    std::vector<std::pair<unsigned, unsigned>> Candidates;
    {
      std::vector<unsigned> PFront;
      std::vector<uint8_t> InFront(Hw.numQubits(), 0);
      for (uint32_t GI : FrontTwoQ)
        for (unsigned Q = 0; Q < 2; ++Q) {
          unsigned P = static_cast<unsigned>(
              Phi.physOf(Logical.gate(GI).Qubits[Q]));
          if (!InFront[P]) {
            InFront[P] = 1;
            PFront.push_back(P);
          }
        }
      std::sort(PFront.begin(), PFront.end());
      for (unsigned P1 : PFront)
        for (unsigned P2 : Hw.neighbors(P1)) {
          unsigned Lo = std::min(P1, P2), Hi = std::max(P1, P2);
          bool Dup = false;
          for (const auto &C : Candidates)
            if (C.first == Lo && C.second == Hi) {
              Dup = true;
              break;
            }
          if (!Dup)
            Candidates.push_back({Lo, Hi});
        }
    }
    assert(!Candidates.empty() && "no candidates on a connected graph");

    double BestScore = std::numeric_limits<double>::infinity();
    std::vector<size_t> BestIdx;
    std::vector<unsigned> FrontDists(FrontTwoQ.size());
    std::vector<unsigned> ExtDists(Extended.size());
    for (size_t CI = 0; CI < Candidates.size(); ++CI) {
      auto [P1, P2] = Candidates[CI];
      auto mapThroughSwap = [&](int32_t L) -> unsigned {
        unsigned P = static_cast<unsigned>(Phi.physOf(L));
        if (P == P1)
          return P2;
        if (P == P2)
          return P1;
        return P;
      };
      for (size_t I = 0; I < FrontTwoQ.size(); ++I) {
        const Gate &G = Logical.gate(FrontTwoQ[I]);
        FrontDists[I] = Hw.distance(mapThroughSwap(G.Qubits[0]),
                                    mapThroughSwap(G.Qubits[1]));
      }
      for (size_t I = 0; I < Extended.size(); ++I) {
        const Gate &G = Logical.gate(Extended[I]);
        ExtDists[I] = Hw.distance(mapThroughSwap(G.Qubits[0]),
                                  mapThroughSwap(G.Qubits[1]));
      }
      double MaxDecay = 1.0;
      if (usesDecay()) {
        int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
        int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
        double D1 = L1 >= 0 ? Decay[static_cast<size_t>(L1)] : 1.0;
        double D2 = L2 >= 0 ? Decay[static_cast<size_t>(L2)] : 1.0;
        MaxDecay = std::max(D1, D2);
      }
      double Score = scoreSwap(FrontDists, ExtDists, MaxDecay);
      if (Score < BestScore - 1e-12) {
        BestScore = Score;
        BestIdx.clear();
        BestIdx.push_back(CI);
      } else if (Score <= BestScore + 1e-12) {
        BestIdx.push_back(CI);
      }
    }
    size_t Pick = randomTieBreak()
                      ? BestIdx[static_cast<size_t>(
                            TieBreaker.nextBounded(BestIdx.size()))]
                      : BestIdx.front();
    emitSwap(Candidates[Pick].first, Candidates[Pick].second);
    ++SwapsSinceProgress;
  }

  Result.FinalMapping = Phi;
  Result.MappingSeconds = Clock.elapsedSeconds();
  return Result;
}
