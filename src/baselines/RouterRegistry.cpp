//===- baselines/RouterRegistry.cpp - Mapper factory ------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RouterRegistry.h"

#include "baselines/CirqGreedy.h"
#include "baselines/QmapAstar.h"
#include "baselines/Sabre.h"
#include "baselines/TketBounded.h"
#include "core/Qlosure.h"
#include "support/Error.h"

using namespace qlosure;

std::unique_ptr<Router> qlosure::makeRouterByName(const std::string &Name) {
  if (Name == "qlosure")
    return std::make_unique<QlosureRouter>();
  if (Name == "sabre")
    return std::make_unique<SabreRouter>();
  if (Name == "qmap")
    return std::make_unique<QmapAstarRouter>();
  if (Name == "cirq")
    return std::make_unique<CirqGreedyRouter>();
  if (Name == "tket")
    return std::make_unique<TketBoundedRouter>();
  reportFatalError("unknown router name: " + Name);
}

std::vector<std::string> qlosure::paperRouterNames() {
  return {"sabre", "qmap", "cirq", "tket", "qlosure"};
}

std::vector<std::unique_ptr<Router>> qlosure::makePaperRouters() {
  std::vector<std::unique_ptr<Router>> Routers;
  for (const std::string &Name : paperRouterNames())
    Routers.push_back(makeRouterByName(Name));
  return Routers;
}
