//===- baselines/CirqGreedy.h - Cirq-style baseline mapper --------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cirq-style router (Table I of the paper: "time-sliced, qubit
/// distance"): greedily minimizes the total qubit distance of the current
/// time slice plus a discounted next slice, without decay — the classic
/// distance-only strategy the paper contrasts against.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BASELINES_CIRQGREEDY_H
#define QLOSURE_BASELINES_CIRQGREEDY_H

#include "baselines/GreedyRouterBase.h"

namespace qlosure {

/// Cirq-style tuning options.
struct CirqOptions {
  /// The next-slice window scales with the current slice size.
  double SliceWindowFactor = 1.0;
  double NextSliceWeight = 0.5;
};

/// The Cirq-style baseline.
class CirqGreedyRouter : public GreedyRouterBase {
public:
  explicit CirqGreedyRouter(CirqOptions Options = {}) : Options(Options) {}

  std::string name() const override { return "Cirq"; }

protected:
  size_t extendedWindowSize(size_t NumFrontGates) const override {
    return static_cast<size_t>(
        Options.SliceWindowFactor * static_cast<double>(NumFrontGates)) + 1;
  }
  double scoreFromSums(double FrontSum, double ExtSum, double FrontMax,
                       double MaxDecay, size_t NumFront,
                       size_t NumExt) const override;
  void scoreLanes(const double *FrontSum, const double *ExtSum,
                  const double *FrontMax, const double *Decay,
                  size_t NumFront, size_t NumExt, size_t NumCandidates,
                  double *Out) const override;

private:
  CirqOptions Options;
};

} // namespace qlosure

#endif // QLOSURE_BASELINES_CIRQGREEDY_H
