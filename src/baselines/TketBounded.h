//===- baselines/TketBounded.h - tket-style baseline mapper -------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// tket-style router (Cowtan et al., TQC 2019; Table I of the paper:
/// "time-sliced, bounded longest distance"): candidate SWAPs are ranked by
/// the *maximum* remaining qubit distance across the frontier slices, with
/// the distance sum as tie-breaker — bounding the worst pair rather than
/// the average.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BASELINES_TKETBOUNDED_H
#define QLOSURE_BASELINES_TKETBOUNDED_H

#include "baselines/GreedyRouterBase.h"

namespace qlosure {

/// tket-style tuning options.
struct TketOptions {
  size_t LookaheadGates = 8;
  double LookaheadWeight = 0.25;
};

/// The tket-style baseline.
class TketBoundedRouter : public GreedyRouterBase {
public:
  explicit TketBoundedRouter(TketOptions Options = {}) : Options(Options) {}

  std::string name() const override { return "Pytket"; }

protected:
  size_t extendedWindowSize(size_t) const override {
    return Options.LookaheadGates;
  }
  double scoreFromSums(double FrontSum, double ExtSum, double FrontMax,
                       double MaxDecay, size_t NumFront,
                       size_t NumExt) const override;
  void scoreLanes(const double *FrontSum, const double *ExtSum,
                  const double *FrontMax, const double *Decay,
                  size_t NumFront, size_t NumExt, size_t NumCandidates,
                  double *Out) const override;
  bool usesFrontMax() const override { return true; }

private:
  TketOptions Options;
};

} // namespace qlosure

#endif // QLOSURE_BASELINES_TKETBOUNDED_H
