//===- baselines/TketBounded.cpp - tket-style baseline mapper --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/TketBounded.h"

#include <algorithm>

using namespace qlosure;

double TketBoundedRouter::scoreSwap(const std::vector<unsigned> &FrontDists,
                                    const std::vector<unsigned> &ExtendedDists,
                                    double) const {
  // Lexicographic (max distance, total distance) folded into one value:
  // the max dominates, the sum breaks ties among equal maxima.
  unsigned MaxDist = 0;
  double Sum = 0;
  for (unsigned D : FrontDists) {
    MaxDist = std::max(MaxDist, D);
    Sum += D;
  }
  double Ext = 0;
  for (unsigned D : ExtendedDists)
    Ext += D;
  return static_cast<double>(MaxDist) * 1e6 + Sum +
         Options.LookaheadWeight * Ext;
}
