//===- baselines/TketBounded.cpp - tket-style baseline mapper --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/TketBounded.h"

#include "core/SimdScore.h"

using namespace qlosure;

double TketBoundedRouter::scoreFromSums(double FrontSum, double ExtSum,
                                        double FrontMax, double /*MaxDecay*/,
                                        size_t /*NumFront*/,
                                        size_t /*NumExt*/) const {
  // Lexicographic (max distance, total distance) folded into one value:
  // the max dominates, the sum breaks ties among equal maxima.
  return FrontMax * 1e6 + FrontSum + Options.LookaheadWeight * ExtSum;
}

void TketBoundedRouter::scoreLanes(const double *FrontSum, const double *ExtSum,
                                   const double *FrontMax,
                                   const double * /*Decay*/,
                                   size_t /*NumFront*/, size_t /*NumExt*/,
                                   size_t NumCandidates, double *Out) const {
  simd::tketScoreLanes(Out, FrontSum, ExtSum, FrontMax,
                       Options.LookaheadWeight, NumCandidates);
}
