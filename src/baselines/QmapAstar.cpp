//===- baselines/QmapAstar.cpp - QMAP-style layered A* mapper --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The A* search runs out of the caller's RoutingScratch: nodes are flat
// (parent link + one swap) with their tracked-qubit positions in a shared
// arena, the open list is a binary heap of node ids over a reused vector
// (std::push_heap/std::pop_heap — exactly what std::priority_queue does
// underneath, so the expansion order is byte-identical to the pre-scratch
// node-copying implementation), and the closed set and per-chunk vectors
// are reused across chunks and route() calls. Expanding a node copies K
// unsigneds instead of allocating two vectors per neighbor.
//
//===----------------------------------------------------------------------===//

#include "baselines/QmapAstar.h"

#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace qlosure;

namespace {

/// Heap order over packed (f, g) keys: lower f on top; among equal f,
/// deeper nodes (higher g) first — the reference NodeCompare's order,
/// induced by key = (f << 32) | (2^32 - 1 - g) so one integer compare
/// replaces two node loads per sift step. Equal (f, g) pairs compare
/// equivalent under both, so push_heap/pop_heap permute identically.
inline uint64_t heapKey(uint32_t F, uint32_t G) {
  return (static_cast<uint64_t>(F) << 32) | (0xFFFFFFFFu - G);
}

struct HeapEntryCompare {
  bool operator()(const RoutingScratch::AstarHeapEntry &A,
                  const RoutingScratch::AstarHeapEntry &B) const {
    return A.Key > B.Key;
  }
};

uint64_t hashPositions(const unsigned *Positions, size_t K) {
  uint64_t H = 0xCBF29CE484222325ULL;
  for (size_t I = 0; I < K; ++I) {
    H ^= Positions[I];
    H *= 0x100000001B3ULL;
  }
  return H;
}

} // namespace

RoutingResult QmapAstarRouter::route(const RoutingContext &Ctx,
                                     const QubitMapping &Initial,
                                     RoutingScratch &S,
                                     const CancellationToken *Cancel) {
  checkPreconditions(Ctx, Initial);
  auto isCancelled = [Cancel] { return Cancel && Cancel->cancelled(); };
  const Circuit &Logical = Ctx.circuit();
  const CouplingGraph &Hw = Ctx.hardware();
  Timer Clock;

  RoutingResult Result;
  Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
  Result.InitialMapping = Initial;
  Result.RouterName = name();
  QubitMapping Phi = Initial;

  // Time-sliced layer partition: a gate joins the current layer unless one
  // of its qubits is already busy there. Gates enter layers in index
  // order, so layer k is the contiguous range [Bounds[k], Bounds[k+1]).
  std::vector<uint32_t> &Bounds = S.QmapLayerBounds;
  Bounds.clear();
  S.QmapBusy.assign(Logical.numQubits(), 0);
  for (uint32_t GI = 0; GI < Logical.size(); ++GI) {
    const Gate &G = Logical.gate(GI);
    unsigned N = G.numQubits();
    bool Conflict = false;
    for (unsigned Q = 0; Q < N; ++Q)
      Conflict |= S.QmapBusy[static_cast<size_t>(G.Qubits[Q])] != 0;
    if (GI == 0 || Conflict) {
      Bounds.push_back(GI);
      if (Conflict)
        std::fill(S.QmapBusy.begin(), S.QmapBusy.end(),
                  static_cast<uint8_t>(0));
    }
    for (unsigned Q = 0; Q < N; ++Q)
      S.QmapBusy[static_cast<size_t>(G.Qubits[Q])] = 1;
  }
  Bounds.push_back(static_cast<uint32_t>(Logical.size()));

  auto emitSwap = [&](unsigned P1, unsigned P2) {
    Result.Routed.addSwap(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    Result.InsertedSwapFlags.push_back(1);
    ++Result.NumSwaps;
    Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
  };

  auto emitProgramGate = [&](uint32_t GI) {
    Result.Routed.addGate(Logical.gate(GI).withMappedQubits(
        [&Phi](int32_t Q) { return Phi.physOf(Q); }));
    Result.InsertedSwapFlags.push_back(0);
  };

  /// Routes one chunk of mutually disjoint 2Q gates with a bounded A*
  /// search over the joint placement of the chunk's qubits, then emits the
  /// chunk's gates. Falls back to greedy shortest-path insertion per gate
  /// when the node budget is exhausted. Returns false when the
  /// cancellation token fired mid-chunk (the route must abort).
  auto routeChunk = [&](const uint32_t *Chunk, size_t ChunkSize) -> bool {
    // Tracked qubits: the chunk's logical operands.
    std::vector<int32_t> &Tracked = S.AstarTracked;
    Tracked.clear();
    for (size_t C = 0; C < ChunkSize; ++C) {
      Tracked.push_back(Logical.gate(Chunk[C]).Qubits[0]);
      Tracked.push_back(Logical.gate(Chunk[C]).Qubits[1]);
    }
    std::sort(Tracked.begin(), Tracked.end());
    Tracked.erase(std::unique(Tracked.begin(), Tracked.end()),
                  Tracked.end());
    const size_t K = Tracked.size();
    std::vector<std::pair<unsigned, unsigned>> &GatePairs = S.AstarGatePairs;
    GatePairs.clear();
    for (size_t C = 0; C < ChunkSize; ++C) {
      const Gate &G = Logical.gate(Chunk[C]);
      auto OrdinalOf = [&Tracked](int32_t Q) {
        return static_cast<unsigned>(
            std::lower_bound(Tracked.begin(), Tracked.end(), Q) -
            Tracked.begin());
      };
      GatePairs.push_back({OrdinalOf(G.Qubits[0]), OrdinalOf(G.Qubits[1])});
    }
    // A chunk comes from one time-slice layer, so its gates are pairwise
    // qubit-disjoint: every tracked ordinal belongs to exactly one pair.
    std::vector<unsigned> &PairOf = S.AstarPairOf;
    PairOf.assign(K, 0);
    for (unsigned P = 0; P < GatePairs.size(); ++P) {
      PairOf[GatePairs[P].first] = P;
      PairOf[GatePairs[P].second] = P;
    }

    auto heuristic = [&](const unsigned *Pos) {
      unsigned H = 0;
      for (auto [A, B] : GatePairs)
        H += Hw.distance(Pos[A], Pos[B]) - 1;
      return H;
    };
    auto isGoal = [&](const unsigned *Pos) {
      for (auto [A, B] : GatePairs)
        if (!Hw.areAdjacent(Pos[A], Pos[B]))
          return false;
      return true;
    };

    // Flat node pools, reset per chunk (capacity retained).
    std::vector<RoutingScratch::AstarNode> &Nodes = S.AstarNodes;
    std::vector<unsigned> &Arena = S.AstarPositions;
    std::vector<RoutingScratch::AstarHeapEntry> &Heap = S.AstarHeap;
    Nodes.clear();
    Arena.clear();
    Heap.clear();
    S.AstarClosed.clear(); // O(1) epoch bump, capacity retained.
    S.AstarInvPos.assign(Hw.numQubits(), UINT32_MAX);
    HeapEntryCompare Compare;
    assert(Hw.numQubits() <= 0xFFFF &&
           "AstarNode packs physical indices into 16 bits");

    // Lazy-slot arena discipline: only nodes that actually get expanded
    // receive an arena slot (positions rebuilt from the parent's slot plus
    // the node's one swap), so the large majority of generated nodes — the
    // ones the search never pops — cost 12 bytes and no position traffic.
    uint32_t NextSlot = 1;
    auto ensureSlot = [&](uint32_t Slot) -> unsigned * {
      size_t SlotBase = static_cast<size_t>(Slot) * K;
      if (Arena.size() < SlotBase + K) {
        if (Arena.capacity() < SlotBase + K)
          Arena.reserve(std::max(Arena.capacity() * 2, SlotBase + K));
        Arena.resize(SlotBase + K);
      }
      return Arena.data() + SlotBase;
    };

    // Root node: the only one whose positions exist before its pop.
    {
      Arena.resize(K);
      for (size_t I = 0; I < K; ++I)
        Arena[I] = static_cast<unsigned>(Phi.physOf(Tracked[I]));
      RoutingScratch::AstarNode Root;
      Root.Slot = 0;
      Nodes.push_back(Root);
      Heap.push_back({heapKey(heuristic(Arena.data()), 0), 0});
    }

    size_t Expansions = 0;
    uint32_t GoalId = UINT32_MAX;

    while (!Heap.empty() && Expansions < Options.NodeBudgetPerLayer) {
      // The unbounded-latency loop of this mapper: poll the token every
      // 64 expansions so a cancel/deadline lands within microseconds.
      if ((Expansions & 63u) == 0 && isCancelled())
        return false;
      const uint64_t Key = Heap.front().Key;
      const uint32_t NodeId = Heap.front().Id;
      std::pop_heap(Heap.begin(), Heap.end(), Compare);
      Heap.pop_back();
      // Costs travel packed in the open-list key, not in the node.
      const uint32_t CostG = 0xFFFFFFFFu - static_cast<uint32_t>(Key);
      const uint32_t CostH = static_cast<uint32_t>(Key >> 32) - CostG;
      RoutingScratch::AstarNode &Node = Nodes[NodeId];
      unsigned *Pos;
      if (Node.Slot != UINT32_MAX) {
        Pos = Arena.data() + static_cast<size_t>(Node.Slot) * K; // Root.
      } else {
        // Materialize into a tentative slot; a duplicate pop (position
        // set already expanded) abandons it for reuse by the next pop.
        Pos = ensureSlot(NextSlot);
        const unsigned *PPos =
            Arena.data() + static_cast<size_t>(Nodes[Node.Parent].Slot) * K;
        for (size_t J = 0; J < K; ++J) {
          unsigned V = PPos[J];
          Pos[J] = V == Node.SwapFrom ? Node.SwapTo
                   : V == Node.SwapTo ? static_cast<unsigned>(Node.SwapFrom)
                                      : V;
        }
      }
      if (!S.AstarClosed.insert(hashPositions(Pos, K)))
        continue;
      if (Node.Slot == UINT32_MAX)
        Node.Slot = NextSlot++;
      ++Expansions;
      if (isGoal(Pos)) {
        GoalId = NodeId;
        break;
      }
      // Per-expansion precomputation: FNV-1a prefix states of this node's
      // positions (a successor's key then re-hashes only the suffix from
      // the first changed ordinal — same composition, identical key) and
      // the inverse occupancy map (O(1) swap-occupant lookup in place of
      // an O(K) scan). No arena growth happens inside the successor loop,
      // so Pos stays valid throughout.
      std::vector<uint64_t> &Pref = S.AstarHashPref;
      Pref.resize(K + 1);
      Pref[0] = 0xCBF29CE484222325ULL;
      for (size_t J = 0; J < K; ++J)
        Pref[J + 1] = (Pref[J] ^ Pos[J]) * 0x100000001B3ULL;
      uint32_t *Inv = S.AstarInvPos.data();
      for (size_t J = 0; J < K; ++J)
        Inv[Pos[J]] = static_cast<uint32_t>(J);
      for (size_t I = 0; I < K; ++I) {
        unsigned From = Pos[I];
        for (unsigned To : Hw.neighbors(From)) {
          // If another tracked qubit occupies To, it moves to From.
          size_t Moved = Inv[To] == UINT32_MAX ? SIZE_MAX : Inv[To];
          size_t FirstChanged = Moved < I ? Moved : I;
          uint64_t PosKey = Pref[FirstChanged];
          for (size_t J = FirstChanged; J < K; ++J) {
            unsigned V = J == I ? To : J == Moved ? From : Pos[J];
            PosKey = (PosKey ^ V) * 0x100000001B3ULL;
          }
          if (S.AstarClosed.contains(PosKey))
            continue;
          // Incremental heuristic: only the (unique, chunk gates being
          // qubit-disjoint) pairs of the moved ordinals change, and every
          // term is an exact integer, so this equals the full
          // recomputation bit for bit. Successor positions are never
          // materialized — the changed ones substitute in directly.
          auto pairDelta = [&](unsigned P) {
            auto [A, B] = GatePairs[P];
            unsigned NA = A == I ? To : A == Moved ? From : Pos[A];
            unsigned NB = B == I ? To : B == Moved ? From : Pos[B];
            return static_cast<int32_t>(Hw.distance(NA, NB)) -
                   static_cast<int32_t>(Hw.distance(Pos[A], Pos[B]));
          };
          int32_t HDelta = pairDelta(PairOf[I]);
          if (Moved != SIZE_MAX && PairOf[Moved] != PairOf[I])
            HDelta += pairDelta(PairOf[Moved]);
          const uint32_t NextG = CostG + 1;
          const uint32_t NextH = static_cast<uint32_t>(
              static_cast<int32_t>(CostH) + HDelta);
          uint32_t NextId = static_cast<uint32_t>(Nodes.size());
          Nodes.push_back({NodeId, UINT32_MAX, static_cast<uint16_t>(From),
                           static_cast<uint16_t>(To)});
          Heap.push_back({heapKey(NextG + NextH, NextG), NextId});
          std::push_heap(Heap.begin(), Heap.end(), Compare);
        }
      }
      // Restore the sentinel for the next expansion's occupancy map.
      for (size_t J = 0; J < K; ++J)
        Inv[Pos[J]] = UINT32_MAX;
    }

    if (GoalId != UINT32_MAX) {
      // Reconstruct the swap sequence root -> goal via parent links.
      S.AstarPath.clear();
      for (uint32_t Id = GoalId; Nodes[Id].Parent != UINT32_MAX;
           Id = Nodes[Id].Parent)
        S.AstarPath.push_back({Nodes[Id].SwapFrom, Nodes[Id].SwapTo});
      std::reverse(S.AstarPath.begin(), S.AstarPath.end());
      for (auto [P1, P2] : S.AstarPath)
        emitSwap(P1, P2);
      for (size_t C = 0; C < ChunkSize; ++C)
        emitProgramGate(Chunk[C]);
      return true;
    }
    // Budget exhausted: resolve-and-emit each gate immediately (a later
    // gate's path may separate an earlier pair, so emission cannot wait).
    for (size_t C = 0; C < ChunkSize; ++C) {
      if (isCancelled())
        return false;
      const Gate &G = Logical.gate(Chunk[C]);
      unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
      unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
      if (!Hw.areAdjacent(P1, P2)) {
        std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
        for (size_t I = 0; I + 2 < Path.size(); ++I)
          emitSwap(Path[I], Path[I + 1]);
      }
      emitProgramGate(Chunk[C]);
    }
    return true;
  };

  // One span over the whole layered A* search (per-chunk spans would
  // flood the pool on deep circuits and touch the hot path).
  ScopedSpan SearchSpan(S.TraceSink, "qmap_astar");
  for (size_t LI = 0; LI + 1 < Bounds.size(); ++LI) {
    uint32_t Begin = Bounds[LI], End = Bounds[LI + 1];
    if (isCancelled()) {
      Result.Cancelled = true;
      break;
    }
    if (Cancel)
      Cancel->reportProgress(Begin, Logical.size());
    S.QmapTwoQ.clear();
    for (uint32_t GI = Begin; GI < End; ++GI)
      if (Logical.gate(GI).isTwoQubit())
        S.QmapTwoQ.push_back(GI);

    bool TimedOut = Clock.elapsedSeconds() > Options.TimeBudgetSeconds;
    if (TimedOut)
      Result.TimedOut = true;

    if (!S.QmapTwoQ.empty()) {
      if (TimedOut) {
        // Greedy completion so callers still receive a valid circuit.
        for (uint32_t GI : S.QmapTwoQ) {
          if (isCancelled()) {
            Result.Cancelled = true;
            break;
          }
          const Gate &G = Logical.gate(GI);
          unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
          unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
          if (!Hw.areAdjacent(P1, P2)) {
            std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
            for (size_t I = 0; I + 2 < Path.size(); ++I)
              emitSwap(Path[I], Path[I + 1]);
          }
          emitProgramGate(GI);
        }
      } else {
        // Joint A* over chunks of at most MaxJointGates disjoint gates
        // (MQT QMAP splits large layers the same way to keep the search
        // space tractable).
        for (size_t ChunkBegin = 0; ChunkBegin < S.QmapTwoQ.size();
             ChunkBegin += Options.MaxJointGates) {
          size_t ChunkEnd = std::min(S.QmapTwoQ.size(),
                                     ChunkBegin + Options.MaxJointGates);
          if (!routeChunk(S.QmapTwoQ.data() + ChunkBegin,
                          ChunkEnd - ChunkBegin)) {
            Result.Cancelled = true;
            break;
          }
        }
      }
    }
    if (Result.Cancelled)
      break;
    // Single-qubit gates of the layer execute wherever their qubit sits.
    for (uint32_t GI = Begin; GI < End; ++GI)
      if (!Logical.gate(GI).isTwoQubit())
        emitProgramGate(GI);
  }

  Result.FinalMapping = Phi;
  Result.MappingSeconds = Clock.elapsedSeconds();
  return Result;
}
