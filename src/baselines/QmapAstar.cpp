//===- baselines/QmapAstar.cpp - QMAP-style layered A* mapper --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/QmapAstar.h"

#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <unordered_set>

using namespace qlosure;

namespace {

/// One A* search node: positions of the tracked logical qubits plus the
/// swap path taken from the root.
struct SearchNode {
  std::vector<unsigned> Positions; ///< Phys position per tracked ordinal.
  std::vector<std::pair<unsigned, unsigned>> Swaps;
  unsigned CostG = 0;
  unsigned CostH = 0;

  unsigned costF() const { return CostG + CostH; }
};

struct NodeCompare {
  bool operator()(const SearchNode &A, const SearchNode &B) const {
    if (A.costF() != B.costF())
      return A.costF() > B.costF();
    return A.CostG < B.CostG; // Prefer deeper nodes among equal f.
  }
};

uint64_t hashPositions(const std::vector<unsigned> &Positions) {
  uint64_t H = 0xCBF29CE484222325ULL;
  for (unsigned P : Positions) {
    H ^= P;
    H *= 0x100000001B3ULL;
  }
  return H;
}

} // namespace

RoutingResult QmapAstarRouter::route(const RoutingContext &Ctx,
                                     const QubitMapping &Initial) {
  checkPreconditions(Ctx, Initial);
  const Circuit &Logical = Ctx.circuit();
  const CouplingGraph &Hw = Ctx.hardware();
  Timer Clock;

  RoutingResult Result;
  Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
  Result.InitialMapping = Initial;
  Result.RouterName = name();
  QubitMapping Phi = Initial;

  // Time-sliced layer partition: a gate joins the current layer unless one
  // of its qubits is already busy there.
  std::vector<std::vector<uint32_t>> Layers;
  {
    std::vector<uint8_t> Busy(Logical.numQubits(), 0);
    std::vector<uint32_t> Current;
    for (uint32_t GI = 0; GI < Logical.size(); ++GI) {
      const Gate &G = Logical.gate(GI);
      unsigned N = G.numQubits();
      bool Conflict = false;
      for (unsigned Q = 0; Q < N; ++Q)
        Conflict |= Busy[static_cast<size_t>(G.Qubits[Q])] != 0;
      if (Conflict) {
        Layers.push_back(std::move(Current));
        Current.clear();
        std::fill(Busy.begin(), Busy.end(), 0);
      }
      Current.push_back(GI);
      for (unsigned Q = 0; Q < N; ++Q)
        Busy[static_cast<size_t>(G.Qubits[Q])] = 1;
    }
    if (!Current.empty())
      Layers.push_back(std::move(Current));
  }

  auto emitSwap = [&](unsigned P1, unsigned P2) {
    Result.Routed.addSwap(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    Result.InsertedSwapFlags.push_back(1);
    ++Result.NumSwaps;
    Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
  };

  auto emitProgramGate = [&](uint32_t GI) {
    Result.Routed.addGate(Logical.gate(GI).withMappedQubits(
        [&Phi](int32_t Q) { return Phi.physOf(Q); }));
    Result.InsertedSwapFlags.push_back(0);
  };

  /// Routes one chunk of mutually disjoint 2Q gates with a bounded A*
  /// search over the joint placement of the chunk's qubits, then emits the
  /// chunk's gates. Falls back to greedy shortest-path insertion per gate
  /// when the node budget is exhausted.
  auto routeChunk = [&](const std::vector<uint32_t> &Chunk) {
    // Tracked qubits: the chunk's logical operands.
    std::vector<int32_t> Tracked;
    for (uint32_t GI : Chunk) {
      Tracked.push_back(Logical.gate(GI).Qubits[0]);
      Tracked.push_back(Logical.gate(GI).Qubits[1]);
    }
    std::sort(Tracked.begin(), Tracked.end());
    Tracked.erase(std::unique(Tracked.begin(), Tracked.end()),
                  Tracked.end());
    std::vector<std::pair<unsigned, unsigned>> GatePairs;
    for (uint32_t GI : Chunk) {
      const Gate &G = Logical.gate(GI);
      auto OrdinalOf = [&Tracked](int32_t Q) {
        return static_cast<unsigned>(
            std::lower_bound(Tracked.begin(), Tracked.end(), Q) -
            Tracked.begin());
      };
      GatePairs.push_back({OrdinalOf(G.Qubits[0]), OrdinalOf(G.Qubits[1])});
    }

    auto heuristic = [&](const std::vector<unsigned> &Pos) {
      unsigned H = 0;
      for (auto [A, B] : GatePairs)
        H += Hw.distance(Pos[A], Pos[B]) - 1;
      return H;
    };
    auto isGoal = [&](const std::vector<unsigned> &Pos) {
      for (auto [A, B] : GatePairs)
        if (!Hw.areAdjacent(Pos[A], Pos[B]))
          return false;
      return true;
    };

    SearchNode Root;
    Root.Positions.resize(Tracked.size());
    for (size_t I = 0; I < Tracked.size(); ++I)
      Root.Positions[I] = static_cast<unsigned>(Phi.physOf(Tracked[I]));
    Root.CostH = heuristic(Root.Positions);

    std::priority_queue<SearchNode, std::vector<SearchNode>, NodeCompare>
        Open;
    std::unordered_set<uint64_t> Closed;
    Open.push(Root);
    size_t Expansions = 0;
    bool Solved = false;
    SearchNode Goal;

    while (!Open.empty() && Expansions < Options.NodeBudgetPerLayer) {
      SearchNode Node = Open.top();
      Open.pop();
      uint64_t Key = hashPositions(Node.Positions);
      if (!Closed.insert(Key).second)
        continue;
      ++Expansions;
      if (isGoal(Node.Positions)) {
        Solved = true;
        Goal = std::move(Node);
        break;
      }
      for (size_t I = 0; I < Node.Positions.size(); ++I) {
        unsigned From = Node.Positions[I];
        for (unsigned To : Hw.neighbors(From)) {
          SearchNode Next = Node;
          Next.Positions[I] = To;
          // If another tracked qubit occupies To, it moves to From.
          for (size_t J = 0; J < Next.Positions.size(); ++J)
            if (J != I && Next.Positions[J] == To)
              Next.Positions[J] = From;
          Next.Swaps.push_back({From, To});
          Next.CostG = Node.CostG + 1;
          Next.CostH = heuristic(Next.Positions);
          if (!Closed.count(hashPositions(Next.Positions)))
            Open.push(std::move(Next));
        }
      }
    }

    if (Solved) {
      for (auto [P1, P2] : Goal.Swaps)
        emitSwap(P1, P2);
      for (uint32_t GI : Chunk)
        emitProgramGate(GI);
      return;
    }
    // Budget exhausted: resolve-and-emit each gate immediately (a later
    // gate's path may separate an earlier pair, so emission cannot wait).
    for (uint32_t GI : Chunk) {
      const Gate &G = Logical.gate(GI);
      unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
      unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
      if (!Hw.areAdjacent(P1, P2)) {
        std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
        for (size_t I = 0; I + 2 < Path.size(); ++I)
          emitSwap(Path[I], Path[I + 1]);
      }
      emitProgramGate(GI);
    }
  };

  for (const std::vector<uint32_t> &Layer : Layers) {
    std::vector<uint32_t> TwoQ;
    for (uint32_t GI : Layer)
      if (Logical.gate(GI).isTwoQubit())
        TwoQ.push_back(GI);

    bool TimedOut = Clock.elapsedSeconds() > Options.TimeBudgetSeconds;
    if (TimedOut)
      Result.TimedOut = true;

    if (!TwoQ.empty()) {
      if (TimedOut) {
        // Greedy completion so callers still receive a valid circuit.
        for (uint32_t GI : TwoQ) {
          const Gate &G = Logical.gate(GI);
          unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
          unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
          if (!Hw.areAdjacent(P1, P2)) {
            std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
            for (size_t I = 0; I + 2 < Path.size(); ++I)
              emitSwap(Path[I], Path[I + 1]);
          }
          emitProgramGate(GI);
        }
      } else {
        // Joint A* over chunks of at most MaxJointGates disjoint gates
        // (MQT QMAP splits large layers the same way to keep the search
        // space tractable).
        for (size_t Begin = 0; Begin < TwoQ.size();
             Begin += Options.MaxJointGates) {
          size_t End = std::min(TwoQ.size(), Begin + Options.MaxJointGates);
          std::vector<uint32_t> Chunk(TwoQ.begin() + Begin,
                                      TwoQ.begin() + End);
          routeChunk(Chunk);
        }
      }
    }
    // Single-qubit gates of the layer execute wherever their qubit sits.
    for (uint32_t GI : Layer)
      if (!Logical.gate(GI).isTwoQubit())
        emitProgramGate(GI);
  }

  Result.FinalMapping = Phi;
  Result.MappingSeconds = Clock.elapsedSeconds();
  return Result;
}
