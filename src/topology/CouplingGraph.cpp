//===- topology/CouplingGraph.cpp - QPU coupling graphs ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "topology/CouplingGraph.h"

#include "support/Error.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

using namespace qlosure;

void CouplingGraph::addEdge(unsigned A, unsigned B) {
  assert(A < NumQubits && B < NumQubits && "edge endpoint out of range");
  assert(A != B && "self loops are not allowed");
  if (areAdjacent(A, B))
    return;
  Adjacency[A].push_back(B);
  Adjacency[B].push_back(A);
  // Invalidate both cached APSP matrices.
  Distances.clear();
  WeightedDistances.clear();
  WeightedDistancePenalty = -1.0;
}

std::vector<std::pair<unsigned, unsigned>> CouplingGraph::edges() const {
  std::vector<std::pair<unsigned, unsigned>> Result;
  for (unsigned A = 0; A < NumQubits; ++A)
    for (unsigned B : Adjacency[A])
      if (A < B)
        Result.push_back({A, B});
  return Result;
}

size_t CouplingGraph::numEdges() const {
  size_t Twice = 0;
  for (const auto &Nbrs : Adjacency)
    Twice += Nbrs.size();
  return Twice / 2;
}

unsigned CouplingGraph::maxDegree() const {
  size_t Max = 0;
  for (const auto &Nbrs : Adjacency)
    Max = std::max(Max, Nbrs.size());
  return static_cast<unsigned>(Max);
}

bool CouplingGraph::isConnected() const {
  if (NumQubits == 0)
    return true;
  std::vector<bool> Seen(NumQubits, false);
  std::deque<unsigned> Queue{0};
  Seen[0] = true;
  size_t Count = 1;
  while (!Queue.empty()) {
    unsigned Q = Queue.front();
    Queue.pop_front();
    for (unsigned N : Adjacency[Q]) {
      if (!Seen[N]) {
        Seen[N] = true;
        ++Count;
        Queue.push_back(N);
      }
    }
  }
  return Count == NumQubits;
}

void CouplingGraph::computeDistances() {
  if (hasDistances())
    return; // Cache valid; addEdge() invalidates on mutation.
  Distances.assign(static_cast<size_t>(NumQubits) * NumQubits,
                   UnreachableDistance);
  std::deque<unsigned> Queue;
  for (unsigned Source = 0; Source < NumQubits; ++Source) {
    uint32_t *Row = &Distances[static_cast<size_t>(Source) * NumQubits];
    Row[Source] = 0;
    Queue.clear();
    Queue.push_back(Source);
    while (!Queue.empty()) {
      unsigned Q = Queue.front();
      Queue.pop_front();
      for (unsigned N : Adjacency[Q]) {
        if (Row[N] == UnreachableDistance) {
          Row[N] = Row[Q] + 1;
          Queue.push_back(N);
        }
      }
    }
  }
}

void CouplingGraph::setEdgeError(unsigned A, unsigned B, double ErrorRate) {
  assert(areAdjacent(A, B) && "error rates attach to existing edges");
  assert(ErrorRate >= 0.0 && ErrorRate < 1.0 && "error rate out of range");
  if (EdgeErrors.empty())
    EdgeErrors.assign(static_cast<size_t>(NumQubits) * NumQubits, 0.0);
  EdgeErrors[edgeKey(A, B)] = ErrorRate;
  ErrorModelInstalled = true;
  WeightedDistances.clear(); // Invalidate cached weighted APSP.
  WeightedDistancePenalty = -1.0;
}

double CouplingGraph::edgeError(unsigned A, unsigned B) const {
  assert(A < NumQubits && B < NumQubits && "qubit out of range");
  return EdgeErrors.empty() ? 0.0 : EdgeErrors[edgeKey(A, B)];
}

void CouplingGraph::computeWeightedDistances(double Penalty) {
  if (hasWeightedDistances() && WeightedDistancePenalty == Penalty)
    return; // Cache valid for this penalty; setEdgeError() invalidates.
  size_t N = NumQubits;
  WeightedDistances.assign(N * N, std::numeric_limits<double>::infinity());
  using Entry = std::pair<double, unsigned>; // (distance, qubit).
  for (unsigned Source = 0; Source < NumQubits; ++Source) {
    double *Row = &WeightedDistances[static_cast<size_t>(Source) * N];
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        Frontier;
    Row[Source] = 0;
    Frontier.push({0.0, Source});
    while (!Frontier.empty()) {
      auto [Dist, Q] = Frontier.top();
      Frontier.pop();
      if (Dist > Row[Q])
        continue;
      for (unsigned Nbr : Adjacency[Q]) {
        double Cost = 1.0 + Penalty * edgeError(Q, Nbr);
        if (Row[Q] + Cost < Row[Nbr]) {
          Row[Nbr] = Row[Q] + Cost;
          Frontier.push({Row[Nbr], Nbr});
        }
      }
    }
  }
  WeightedDistancePenalty = Penalty;
}

double CouplingGraph::weightedDistance(unsigned A, unsigned B) const {
  assert(hasWeightedDistances() &&
         "call computeWeightedDistances() first");
  assert(A < NumQubits && B < NumQubits && "qubit out of range");
  return WeightedDistances[static_cast<size_t>(A) * NumQubits + B];
}

void qlosure::applySyntheticErrorModel(CouplingGraph &Graph, uint64_t Seed,
                                       double MinError, double MaxError) {
  assert(MinError > 0 && MinError <= MaxError && MaxError < 1.0 &&
         "bad error range");
  Rng Generator(Seed);
  double LogMin = std::log(MinError);
  double LogMax = std::log(MaxError);
  for (auto [A, B] : Graph.edges()) {
    double Rate =
        std::exp(LogMin + (LogMax - LogMin) * Generator.nextDouble());
    Graph.setEdgeError(A, B, Rate);
  }
  Graph.computeWeightedDistances();
}

std::vector<unsigned> CouplingGraph::shortestPath(unsigned A,
                                                  unsigned B) const {
  assert(hasDistances() && "call computeDistances() first");
  if (distance(A, B) == UnreachableDistance)
    reportFatalError("shortestPath between disconnected qubits");
  std::vector<unsigned> Path{A};
  unsigned Current = A;
  while (Current != B) {
    // Greedy descent on distance-to-B is optimal on unweighted graphs.
    unsigned Best = Current;
    unsigned BestDist = distance(Current, B);
    for (unsigned N : Adjacency[Current]) {
      unsigned D = distance(N, B);
      if (D < BestDist) {
        BestDist = D;
        Best = N;
      }
    }
    assert(Best != Current && "no descent neighbor on a connected graph");
    Current = Best;
    Path.push_back(Current);
  }
  return Path;
}
