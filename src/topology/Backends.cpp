//===- topology/Backends.cpp - QPU topology constructors ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "topology/Backends.h"

#include "support/Error.h"

#include <cassert>
#include <vector>

using namespace qlosure;

CouplingGraph qlosure::makeLine(unsigned NumQubits) {
  CouplingGraph G(NumQubits, "line" + std::to_string(NumQubits));
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    G.addEdge(Q, Q + 1);
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeRing(unsigned NumQubits) {
  assert(NumQubits >= 3 && "a ring needs at least three qubits");
  CouplingGraph G(NumQubits, "ring" + std::to_string(NumQubits));
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    G.addEdge(Q, (Q + 1) % NumQubits);
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeGrid(unsigned Rows, unsigned Cols) {
  CouplingGraph G(Rows * Cols,
                  "grid" + std::to_string(Rows) + "x" + std::to_string(Cols));
  auto Id = [Cols](unsigned R, unsigned C) { return R * Cols + C; };
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C) {
      if (C + 1 < Cols)
        G.addEdge(Id(R, C), Id(R, C + 1));
      if (R + 1 < Rows)
        G.addEdge(Id(R, C), Id(R + 1, C));
    }
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeKingsGrid(unsigned Rows, unsigned Cols) {
  CouplingGraph G(Rows * Cols, "kings" + std::to_string(Rows) + "x" +
                                   std::to_string(Cols));
  auto Id = [Cols](unsigned R, unsigned C) { return R * Cols + C; };
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C) {
      if (C + 1 < Cols)
        G.addEdge(Id(R, C), Id(R, C + 1));
      if (R + 1 < Rows)
        G.addEdge(Id(R, C), Id(R + 1, C));
      if (R + 1 < Rows && C + 1 < Cols)
        G.addEdge(Id(R, C), Id(R + 1, C + 1)); // Down-right diagonal.
      if (R + 1 < Rows && C > 0)
        G.addEdge(Id(R, C), Id(R + 1, C - 1)); // Down-left diagonal.
    }
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeHeavyHex(unsigned Rows, unsigned Cols) {
  assert(Rows % 2 == 1 && "heavy-hex needs an odd number of rows");
  assert(Cols % 4 == 3 && "heavy-hex rows must have 4k + 3 qubits");

  // Build over virtual coordinates first, then compact the id space.
  // Virtual layout: for each row R a full row of Cols qubits; between rows
  // R and R+1, one bridge qubit above every fourth column starting at
  // offset 0 (even gaps) or 2 (odd gaps). The first row drops its last
  // qubit and the last row its first (IBM Eagle trimming).
  unsigned NumBridgesPerGap = (Cols + 1) / 4;
  std::vector<std::vector<int>> RowIds(Rows, std::vector<int>(Cols, -1));
  std::vector<std::vector<int>> GapIds(Rows - 1,
                                       std::vector<int>(NumBridgesPerGap, -1));
  unsigned NextId = 0;

  auto rowHasColumn = [&](unsigned R, unsigned C) {
    if (R == 0 && C == Cols - 1)
      return false;
    if (R == Rows - 1 && C == 0)
      return false;
    return true;
  };

  // Ids in reading order: row, then its following gap of bridges.
  for (unsigned R = 0; R < Rows; ++R) {
    for (unsigned C = 0; C < Cols; ++C)
      if (rowHasColumn(R, C))
        RowIds[R][C] = static_cast<int>(NextId++);
    if (R + 1 < Rows)
      for (unsigned B = 0; B < NumBridgesPerGap; ++B)
        GapIds[R][B] = static_cast<int>(NextId++);
  }

  CouplingGraph G(NextId, "heavyhex" + std::to_string(Rows) + "x" +
                              std::to_string(Cols));
  // Horizontal row edges.
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C + 1 < Cols; ++C)
      if (RowIds[R][C] >= 0 && RowIds[R][C + 1] >= 0)
        G.addEdge(static_cast<unsigned>(RowIds[R][C]),
                  static_cast<unsigned>(RowIds[R][C + 1]));
  // Bridge edges.
  for (unsigned R = 0; R + 1 < Rows; ++R) {
    unsigned Offset = (R % 2 == 0) ? 0 : 2;
    for (unsigned B = 0; B < NumBridgesPerGap; ++B) {
      unsigned C = Offset + 4 * B;
      if (C >= Cols)
        continue;
      int Bridge = GapIds[R][B];
      if (RowIds[R][C] >= 0)
        G.addEdge(static_cast<unsigned>(RowIds[R][C]),
                  static_cast<unsigned>(Bridge));
      if (RowIds[R + 1][C] >= 0)
        G.addEdge(static_cast<unsigned>(Bridge),
                  static_cast<unsigned>(RowIds[R + 1][C]));
    }
  }
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeSherbrooke() {
  CouplingGraph G = makeHeavyHex(7, 15);
  assert(G.numQubits() == 127 && "Sherbrooke must have 127 qubits");
  // Rename (keep topology, give it the backend name).
  CouplingGraph Named(127, "sherbrooke");
  for (auto [A, B] : G.edges())
    Named.addEdge(A, B);
  Named.computeDistances();
  return Named;
}

CouplingGraph qlosure::makeAnkaa3() {
  // 7x12 square lattice with two opposite corners disabled: 82 qubits with
  // max degree 4, matching the paper's description of Ankaa-3.
  unsigned Rows = 7, Cols = 12;
  std::vector<int> Compact(Rows * Cols, -1);
  unsigned NextId = 0;
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C) {
      bool Disabled = (R == 0 && C == 0) || (R == Rows - 1 && C == Cols - 1);
      if (!Disabled)
        Compact[R * Cols + C] = static_cast<int>(NextId++);
    }
  CouplingGraph G(NextId, "ankaa3");
  auto Id = [&](unsigned R, unsigned C) { return Compact[R * Cols + C]; };
  for (unsigned R = 0; R < Rows; ++R)
    for (unsigned C = 0; C < Cols; ++C) {
      if (Id(R, C) < 0)
        continue;
      if (C + 1 < Cols && Id(R, C + 1) >= 0)
        G.addEdge(static_cast<unsigned>(Id(R, C)),
                  static_cast<unsigned>(Id(R, C + 1)));
      if (R + 1 < Rows && Id(R + 1, C) >= 0)
        G.addEdge(static_cast<unsigned>(Id(R, C)),
                  static_cast<unsigned>(Id(R + 1, C)));
    }
  assert(G.numQubits() == 82 && "Ankaa-3 must have 82 qubits");
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeSherbrooke2X() {
  CouplingGraph Base = makeSherbrooke();
  unsigned N = Base.numQubits();
  CouplingGraph G(2 * N + 2, "sherbrooke2x");
  for (auto [A, B] : Base.edges()) {
    G.addEdge(A, B);
    G.addEdge(A + N, B + N);
  }
  // Two bridge qubits splice the right edge of copy A to the left edge of
  // copy B at two different rows so the joint lattice stays heavy-hex-like.
  unsigned BridgeTop = 2 * N;
  unsigned BridgeBottom = 2 * N + 1;
  // Row-1 right end of copy A is qubit 32; row-1 left end of copy B is 18.
  G.addEdge(32, BridgeTop);
  G.addEdge(BridgeTop, 18 + N);
  // Row-5 right end of copy A is 108; row-5 left end of copy B is 94.
  G.addEdge(108, BridgeBottom);
  G.addEdge(BridgeBottom, 94 + N);
  assert(G.numQubits() == 256 && "Sherbrooke-2X must have 256 qubits");
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeKings9x9() {
  CouplingGraph G = makeKingsGrid(9, 9);
  assert(G.numQubits() == 81 && "kings9x9 must have 81 qubits");
  return G;
}

CouplingGraph qlosure::makeKings16x16() {
  CouplingGraph G = makeKingsGrid(16, 16);
  assert(G.numQubits() == 256 && "kings16x16 must have 256 qubits");
  return G;
}

CouplingGraph qlosure::makeAspen16() {
  CouplingGraph G(16, "aspen16");
  // Two octagons 0..7 and 8..15.
  for (unsigned Q = 0; Q < 8; ++Q) {
    G.addEdge(Q, (Q + 1) % 8);
    G.addEdge(8 + Q, 8 + (Q + 1) % 8);
  }
  // Two rungs between the octagons.
  G.addEdge(1, 14);
  G.addEdge(2, 13);
  G.computeDistances();
  return G;
}

CouplingGraph qlosure::makeSycamore54() {
  CouplingGraph G = makeGrid(6, 9);
  assert(G.numQubits() == 54 && "Sycamore-54 must have 54 qubits");
  return G;
}

CouplingGraph qlosure::makeBackendByName(const std::string &Name) {
  if (Name == "sherbrooke")
    return makeSherbrooke();
  if (Name == "ankaa3")
    return makeAnkaa3();
  if (Name == "sherbrooke2x")
    return makeSherbrooke2X();
  if (Name == "kings9x9")
    return makeKings9x9();
  if (Name == "kings16x16")
    return makeKings16x16();
  if (Name == "aspen16")
    return makeAspen16();
  if (Name == "sycamore54")
    return makeSycamore54();
  reportFatalError("unknown backend name: " + Name);
}
