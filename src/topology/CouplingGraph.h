//===- topology/CouplingGraph.h - QPU coupling graphs ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware connectivity abstraction R_hw of the paper: an undirected
/// graph over physical qubits plus the all-pairs shortest path matrix
/// D_phys used by every router's cost function.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_TOPOLOGY_COUPLINGGRAPH_H
#define QLOSURE_TOPOLOGY_COUPLINGGRAPH_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace qlosure {

/// An undirected coupling graph over physical qubits 0..N-1.
class CouplingGraph {
public:
  CouplingGraph() = default;
  explicit CouplingGraph(unsigned NumQubits, std::string Name = "")
      : NumQubits(NumQubits), Adjacency(NumQubits), Name(std::move(Name)) {}

  unsigned numQubits() const { return NumQubits; }
  const std::string &name() const { return Name; }

  /// Adds the undirected edge (A, B); duplicate additions are ignored.
  void addEdge(unsigned A, unsigned B);

  // Inline: adjacency and distance queries sit on the innermost loops of
  // every mapper (A* successor generation, swap-candidate delta scoring),
  // where an out-of-line call would dominate the O(1) lookup itself.
  bool areAdjacent(unsigned A, unsigned B) const {
    assert(A < NumQubits && B < NumQubits && "qubit out of range");
    if (!Distances.empty())
      return Distances[static_cast<size_t>(A) * NumQubits + B] == 1;
    const std::vector<unsigned> &Nbrs = Adjacency[A];
    return std::find(Nbrs.begin(), Nbrs.end(), B) != Nbrs.end();
  }

  const std::vector<unsigned> &neighbors(unsigned Qubit) const {
    return Adjacency[Qubit];
  }

  /// All edges with A < B.
  std::vector<std::pair<unsigned, unsigned>> edges() const;

  size_t numEdges() const;

  /// Maximum vertex degree (the paper's look-ahead constant c must exceed
  /// this).
  unsigned maxDegree() const;

  /// True if every qubit can reach every other.
  bool isConnected() const;

  /// Computes the all-pairs shortest-path matrix via BFS from each vertex.
  /// Unreachable pairs get the sentinel UnreachableDistance. Idempotent:
  /// repeated calls on an unchanged graph return immediately (mutating the
  /// graph invalidates the cache, so the next call recomputes).
  void computeDistances();

  /// Shortest-path distance (in edges == minimum SWAP chain length + 1
  /// relative to adjacency). Requires computeDistances() first.
  unsigned distance(unsigned A, unsigned B) const {
    assert(hasDistances() && "call computeDistances() first");
    assert(A < NumQubits && B < NumQubits && "qubit out of range");
    return Distances[static_cast<size_t>(A) * NumQubits + B];
  }

  bool hasDistances() const { return !Distances.empty(); }

  /// One shortest path from A to B inclusive of both endpoints.
  std::vector<unsigned> shortestPath(unsigned A, unsigned B) const;

  //===--------------------------------------------------------------------===//
  // Error model (the paper's future-work extension: error-aware mapping)
  //===--------------------------------------------------------------------===//

  /// Records the two-qubit gate error rate of the edge (A, B) (must exist).
  void setEdgeError(unsigned A, unsigned B, double ErrorRate);

  /// Error rate of edge (A, B); 0 when no model was installed.
  double edgeError(unsigned A, unsigned B) const;

  bool hasErrorModel() const { return ErrorModelInstalled; }

  /// Computes fidelity-weighted all-pairs distances by Dijkstra, where an
  /// edge costs 1 + Penalty * errorRate: routes through noisy couplers
  /// look "longer" to error-aware cost functions. Idempotent for a given
  /// \p Penalty on an unchanged error model; a different penalty or a new
  /// calibration triggers recomputation.
  void computeWeightedDistances(double Penalty = 25.0);

  /// Fidelity-weighted distance; requires computeWeightedDistances().
  double weightedDistance(unsigned A, unsigned B) const;

  bool hasWeightedDistances() const { return !WeightedDistances.empty(); }

  static constexpr unsigned UnreachableDistance = 0x3FFFFFFF;

private:
  size_t edgeKey(unsigned A, unsigned B) const {
    return static_cast<size_t>(std::min(A, B)) * NumQubits + std::max(A, B);
  }

  unsigned NumQubits = 0;
  std::vector<std::vector<unsigned>> Adjacency;
  std::vector<uint32_t> Distances; // Row-major N x N.
  std::vector<double> WeightedDistances; // Row-major N x N.
  /// Flat N x N table keyed by edgeKey (0 off-edge); sized lazily on the
  /// first setEdgeError. A flat vector keeps the error-aware hot path
  /// (one lookup per candidate SWAP per decision) free of tree walks.
  std::vector<double> EdgeErrors;
  bool ErrorModelInstalled = false;
  double WeightedDistancePenalty = -1.0; ///< Penalty the cache was built with.
  std::string Name;
};

/// Installs a synthetic calibration on \p Graph: edge error rates drawn
/// log-uniformly from [MinError, MaxError] with the given \p Seed, plus
/// weighted distances. Models the daily calibration data real QPU vendors
/// publish (which this repo cannot ship).
void applySyntheticErrorModel(CouplingGraph &Graph, uint64_t Seed,
                              double MinError = 0.002,
                              double MaxError = 0.03);

} // namespace qlosure

#endif // QLOSURE_TOPOLOGY_COUPLINGGRAPH_H
