//===- topology/Backends.h - QPU topology constructors -----------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructors for the coupling graphs used in the paper's evaluation:
/// IBM Sherbrooke (127-qubit heavy-hex), Rigetti Ankaa-3 (82-qubit square
/// lattice), the synthetic 256-qubit Sherbrooke-2X, the 9x9/16x16
/// eight-neighbor grids used to generate the custom QUEKO sets, and generic
/// line/ring/grid/heavy-hex families for tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_TOPOLOGY_BACKENDS_H
#define QLOSURE_TOPOLOGY_BACKENDS_H

#include "topology/CouplingGraph.h"

namespace qlosure {

/// A path 0 - 1 - ... - N-1.
CouplingGraph makeLine(unsigned NumQubits);

/// A cycle over \p NumQubits qubits (requires >= 3).
CouplingGraph makeRing(unsigned NumQubits);

/// A Rows x Cols square lattice with 4-neighbor connectivity.
CouplingGraph makeGrid(unsigned Rows, unsigned Cols);

/// A Rows x Cols king's-graph lattice: every interior qubit connects to its
/// eight nearest neighbors (the paper's custom QUEKO grid architecture).
CouplingGraph makeKingsGrid(unsigned Rows, unsigned Cols);

/// A generic heavy-hexagon lattice with \p Rows qubit rows of length
/// \p Cols; four bridge qubits sit between consecutive rows at alternating
/// offsets, the first row drops its last qubit and the last row its first
/// (IBM Eagle trimming). Rows must be odd and Cols of the form 4k + 3.
CouplingGraph makeHeavyHex(unsigned Rows, unsigned Cols);

/// IBM Sherbrooke: the 127-qubit heavy-hex lattice (7 rows of 15).
CouplingGraph makeSherbrooke();

/// Rigetti Ankaa-3: an 82-qubit square lattice (7x12 grid with two corner
/// qubits disabled, max degree 4).
CouplingGraph makeAnkaa3();

/// Sherbrooke-2X: two Sherbrooke copies joined by two bridge qubits,
/// 256 qubits total (the paper's synthetic scalability backend).
CouplingGraph makeSherbrooke2X();

/// The 81-qubit 9x9 king's-graph QPU used to synthesize queko-bss-81qbt.
CouplingGraph makeKings9x9();

/// The 256-qubit 16x16 king's-graph QPU used to synthesize the 16x16
/// QUEKO circuits evaluated on Sherbrooke-2X.
CouplingGraph makeKings16x16();

/// Rigetti Aspen-4 (16 qubits): two octagonal rings joined by two rungs —
/// the device the original queko-bss-16qbt set targets.
CouplingGraph makeAspen16();

/// Google Sycamore-54 approximation: a 6x9 square lattice (degree <= 4),
/// the generation device for queko-bss-54qbt.
CouplingGraph makeSycamore54();

/// Looks up a backend by name ("sherbrooke", "ankaa3", "sherbrooke2x",
/// "kings9x9", "kings16x16", "aspen16", "sycamore54"); aborts on unknown
/// names.
CouplingGraph makeBackendByName(const std::string &Name);

} // namespace qlosure

#endif // QLOSURE_TOPOLOGY_BACKENDS_H
