//===- circuit/Dag.h - Circuit dependence DAG --------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gate-level dependence DAG of a circuit. An edge g -> h exists when h
/// is the *next* gate after g sharing one of g's qubits (per-wire nearest
/// dependence); the transitive closure of these edges equals the full
/// shared-qubit dependence relation Rdep+ of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_CIRCUIT_DAG_H
#define QLOSURE_CIRCUIT_DAG_H

#include "circuit/Circuit.h"

#include <cstdint>
#include <vector>

namespace qlosure {

/// Immutable dependence DAG over the gates of one circuit. Gate identity is
/// the index into Circuit::gates().
class CircuitDag {
public:
  /// Builds the DAG of \p C (barriers/measures participate as ordinary
  /// nodes so they keep their ordering role; strip them beforehand if
  /// undesired).
  explicit CircuitDag(const Circuit &C);

  size_t numGates() const { return Successors.size(); }

  const std::vector<uint32_t> &successors(size_t Gate) const {
    return Successors[Gate];
  }
  const std::vector<uint32_t> &predecessors(size_t Gate) const {
    return Predecessors[Gate];
  }

  /// Number of direct predecessors (in-degree).
  unsigned inDegree(size_t Gate) const {
    return static_cast<unsigned>(Predecessors[Gate].size());
  }

  /// Gates with no predecessors (the initial front layer).
  const std::vector<uint32_t> &roots() const { return Roots; }

  /// Whether gate \p Gate has exactly two qubit operands (cached at
  /// construction for consumers that no longer hold the circuit).
  bool isTwoQubitGate(size_t Gate) const { return TwoQubit[Gate] != 0; }

  /// ASAP level of each gate (roots at level 0).
  std::vector<uint32_t> asapLevels() const;

  /// Number of transitive successors of each gate, computed exactly with
  /// a reverse-topological bitset sweep. O(V^2/64 + V*E) time, O(V^2/8)
  /// memory; use the affine engine (deps/TransitiveWeights) for scale.
  std::vector<uint64_t> exactTransitiveSuccessorCounts() const;

private:
  std::vector<std::vector<uint32_t>> Successors;
  std::vector<std::vector<uint32_t>> Predecessors;
  std::vector<uint32_t> Roots;
  std::vector<uint8_t> TwoQubit;
};

} // namespace qlosure

#endif // QLOSURE_CIRCUIT_DAG_H
