//===- circuit/Circuit.h - Quantum circuit IR --------------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat quantum-circuit IR: a named sequence of gates over a fixed
/// number of qubits. The same type represents logical (pre-mapping) and
/// physical (post-routing) circuits; routers document which they produce.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_CIRCUIT_CIRCUIT_H
#define QLOSURE_CIRCUIT_CIRCUIT_H

#include "circuit/Gate.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// How SWAP gates are charged when measuring depth and gate counts.
enum class SwapCostModel : uint8_t {
  SwapAsOneGate,  ///< A SWAP occupies one time step (QUEKO convention).
  SwapAsThreeCx   ///< A SWAP is three CX gates (hardware decomposition).
};

/// A quantum circuit: an ordered gate list over NumQubits qubits.
class Circuit {
public:
  Circuit() = default;
  explicit Circuit(unsigned NumQubits, std::string Name = "")
      : NumQubits(NumQubits), Name(std::move(Name)) {}

  unsigned numQubits() const { return NumQubits; }
  const std::string &name() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  const std::vector<Gate> &gates() const { return Gates; }

  /// Mutable gate access for passes that rewrite in place (and for fault
  /// injection in tests). Invariants are the caller's responsibility;
  /// re-check with verifyInvariants().
  std::vector<Gate> &gatesMutable() { return Gates; }
  size_t size() const { return Gates.size(); }
  bool empty() const { return Gates.empty(); }
  const Gate &gate(size_t Index) const { return Gates[Index]; }

  /// Appends \p G; asserts its qubit operands are in range and distinct.
  void addGate(const Gate &G);

  /// Convenience builders.
  void add1Q(GateKind Kind, int32_t Q) { addGate(Gate(Kind, Q)); }
  void add1Q(GateKind Kind, int32_t Q, double Theta) {
    Gate G(Kind, Q);
    G.Params[0] = Theta;
    addGate(G);
  }
  void add2Q(GateKind Kind, int32_t Q0, int32_t Q1) {
    addGate(Gate(Kind, Q0, Q1));
  }
  void add2Q(GateKind Kind, int32_t Q0, int32_t Q1, double Theta) {
    Gate G(Kind, Q0, Q1);
    G.Params[0] = Theta;
    addGate(G);
  }
  void addCx(int32_t Control, int32_t Target) {
    add2Q(GateKind::CX, Control, Target);
  }
  void addSwap(int32_t Q0, int32_t Q1) { add2Q(GateKind::Swap, Q0, Q1); }

  /// Number of gates with exactly two qubit operands (includes SWAPs).
  size_t numTwoQubitGates() const;

  /// Number of SWAP gates.
  size_t numSwapGates() const;

  /// Total quantum operations excluding barriers and measurements.
  size_t numQuantumOps() const;

  /// Circuit depth: length of the longest dependence chain, with SWAPs
  /// charged per \p Model.
  size_t depth(SwapCostModel Model = SwapCostModel::SwapAsOneGate) const;

  /// Returns a copy with all qubit operands rewritten through \p Fn
  /// (e.g. applying an initial logical-to-physical placement).
  template <typename FnT> Circuit withMappedQubits(FnT Fn) const {
    Circuit Result(NumQubits, Name);
    Result.Gates.reserve(Gates.size());
    for (const Gate &G : Gates)
      Result.Gates.push_back(G.withMappedQubits(Fn));
    return Result;
  }

  /// Returns a copy without barriers and measurements (routers only care
  /// about unitary gates).
  Circuit withoutNonUnitaries() const;

  /// Returns a copy where CCX/CSwap are decomposed into 1- and 2-qubit
  /// gates (standard 6-CX Toffoli construction).
  Circuit decomposeThreeQubitGates() const;

  /// Asserts structural invariants (operand ranges, distinctness).
  void verifyInvariants() const;

private:
  unsigned NumQubits = 0;
  std::string Name;
  std::vector<Gate> Gates;
};

} // namespace qlosure

#endif // QLOSURE_CIRCUIT_CIRCUIT_H
