//===- circuit/Dag.cpp - Circuit dependence DAG -------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Dag.h"

#include "support/DynamicBitset.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;

CircuitDag::CircuitDag(const Circuit &C) {
  size_t N = C.size();
  Successors.resize(N);
  Predecessors.resize(N);
  TwoQubit.resize(N);
  for (size_t GI = 0; GI < N; ++GI)
    TwoQubit[GI] = C.gate(GI).isTwoQubit();

  // Last gate seen on each wire.
  std::vector<int64_t> LastOnWire(C.numQubits(), -1);
  for (size_t GI = 0; GI < N; ++GI) {
    const Gate &G = C.gate(GI);
    unsigned NQ = G.numQubits();
    bool HasPred = false;
    for (unsigned Q = 0; Q < NQ; ++Q) {
      int64_t Prev = LastOnWire[static_cast<size_t>(G.Qubits[Q])];
      if (Prev >= 0) {
        // Avoid duplicate edges when both operands last met the same gate.
        auto &Preds = Predecessors[GI];
        if (std::find(Preds.begin(), Preds.end(),
                      static_cast<uint32_t>(Prev)) == Preds.end()) {
          Successors[static_cast<size_t>(Prev)].push_back(
              static_cast<uint32_t>(GI));
          Preds.push_back(static_cast<uint32_t>(Prev));
        }
        HasPred = true;
      }
      LastOnWire[static_cast<size_t>(G.Qubits[Q])] =
          static_cast<int64_t>(GI);
    }
    if (!HasPred)
      Roots.push_back(static_cast<uint32_t>(GI));
  }
}

std::vector<uint32_t> CircuitDag::asapLevels() const {
  size_t N = numGates();
  std::vector<uint32_t> Level(N, 0);
  // Gates are stored in a topological order (program order), so one forward
  // sweep suffices.
  for (size_t GI = 0; GI < N; ++GI)
    for (uint32_t Succ : Successors[GI])
      Level[Succ] = std::max(Level[Succ], Level[GI] + 1);
  return Level;
}

std::vector<uint64_t> CircuitDag::exactTransitiveSuccessorCounts() const {
  size_t N = numGates();
  std::vector<uint64_t> Counts(N, 0);
  if (N == 0)
    return Counts;

  // Reverse topological order is just reverse program order.
  std::vector<DynamicBitset> Reach(N);
  for (size_t GI = N; GI-- > 0;) {
    DynamicBitset &Set = Reach[GI];
    Set.resize(N);
    for (uint32_t Succ : Successors[GI]) {
      Set.set(Succ);
      Set |= Reach[Succ];
    }
    Counts[GI] = Set.count();
  }
  return Counts;
}
