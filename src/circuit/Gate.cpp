//===- circuit/Gate.cpp - Quantum gate representation ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Gate.h"

#include "support/Error.h"
#include "support/StringUtils.h"

using namespace qlosure;

unsigned qlosure::gateArity(GateKind Kind) {
  switch (Kind) {
  case GateKind::I:
  case GateKind::X:
  case GateKind::Y:
  case GateKind::Z:
  case GateKind::H:
  case GateKind::S:
  case GateKind::Sdg:
  case GateKind::T:
  case GateKind::Tdg:
  case GateKind::SX:
  case GateKind::RX:
  case GateKind::RY:
  case GateKind::RZ:
  case GateKind::P:
  case GateKind::U1:
  case GateKind::U2:
  case GateKind::U3:
  case GateKind::Measure:
  case GateKind::Barrier:
    return 1;
  case GateKind::CX:
  case GateKind::CZ:
  case GateKind::CP:
  case GateKind::CRZ:
  case GateKind::RZZ:
  case GateKind::CH:
  case GateKind::CY:
  case GateKind::Swap:
    return 2;
  case GateKind::CCX:
  case GateKind::CSwap:
    return 3;
  }
  QLOSURE_UNREACHABLE("unknown gate kind");
}

unsigned qlosure::gateNumParams(GateKind Kind) {
  switch (Kind) {
  case GateKind::RX:
  case GateKind::RY:
  case GateKind::RZ:
  case GateKind::P:
  case GateKind::U1:
  case GateKind::CP:
  case GateKind::CRZ:
  case GateKind::RZZ:
    return 1;
  case GateKind::U2:
    return 2;
  case GateKind::U3:
    return 3;
  default:
    return 0;
  }
}

const char *qlosure::gateName(GateKind Kind) {
  switch (Kind) {
  case GateKind::I:
    return "id";
  case GateKind::X:
    return "x";
  case GateKind::Y:
    return "y";
  case GateKind::Z:
    return "z";
  case GateKind::H:
    return "h";
  case GateKind::S:
    return "s";
  case GateKind::Sdg:
    return "sdg";
  case GateKind::T:
    return "t";
  case GateKind::Tdg:
    return "tdg";
  case GateKind::SX:
    return "sx";
  case GateKind::RX:
    return "rx";
  case GateKind::RY:
    return "ry";
  case GateKind::RZ:
    return "rz";
  case GateKind::P:
    return "p";
  case GateKind::U1:
    return "u1";
  case GateKind::U2:
    return "u2";
  case GateKind::U3:
    return "u3";
  case GateKind::CX:
    return "cx";
  case GateKind::CZ:
    return "cz";
  case GateKind::CP:
    return "cp";
  case GateKind::CRZ:
    return "crz";
  case GateKind::RZZ:
    return "rzz";
  case GateKind::CH:
    return "ch";
  case GateKind::CY:
    return "cy";
  case GateKind::Swap:
    return "swap";
  case GateKind::CCX:
    return "ccx";
  case GateKind::CSwap:
    return "cswap";
  case GateKind::Measure:
    return "measure";
  case GateKind::Barrier:
    return "barrier";
  }
  QLOSURE_UNREACHABLE("unknown gate kind");
}

std::string Gate::toString() const {
  std::string Out = gateName(Kind);
  unsigned NP = numParams();
  if (NP) {
    Out += "(";
    for (unsigned I = 0; I < NP; ++I) {
      if (I)
        Out += ", ";
      Out += formatString("%g", Params[I]);
    }
    Out += ")";
  }
  Out += " ";
  unsigned NQ = numQubits();
  for (unsigned I = 0; I < NQ; ++I) {
    if (I)
      Out += ", ";
    Out += formatString("q[%d]", Qubits[I]);
  }
  return Out;
}
