//===- circuit/Gate.h - Quantum gate representation --------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact value-type quantum gate. Gates reference qubits by index; the
/// owning Circuit defines whether those indices are logical or physical.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_CIRCUIT_GATE_H
#define QLOSURE_CIRCUIT_GATE_H

#include <array>
#include <cstdint>
#include <string>

namespace qlosure {

/// The gate alphabet: the OpenQASM 2.0 qelib1 subset the frontend accepts
/// plus SWAP (inserted by routers) and the 3-qubit gates we can decompose.
enum class GateKind : uint8_t {
  // One-qubit gates.
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  RX,
  RY,
  RZ,
  P,
  U1,
  U2,
  U3,
  // Two-qubit gates.
  CX,
  CZ,
  CP,
  CRZ,
  RZZ,
  CH,
  CY,
  Swap,
  // Three-qubit gates (decomposed before routing).
  CCX,
  CSwap,
  // Non-unitary / structural.
  Measure,
  Barrier
};

/// Number of qubit operands \p Kind takes (Barrier is variadic in QASM but
/// is stored per-qubit after import).
unsigned gateArity(GateKind Kind);

/// Number of angle parameters \p Kind takes.
unsigned gateNumParams(GateKind Kind);

/// The lowercase QASM mnemonic, e.g. "cx".
const char *gateName(GateKind Kind);

/// A single gate application.
struct Gate {
  GateKind Kind = GateKind::I;
  std::array<int32_t, 3> Qubits = {-1, -1, -1};
  std::array<double, 3> Params = {0, 0, 0};

  Gate() = default;

  /// One-qubit constructor.
  Gate(GateKind Kind, int32_t Q0) : Kind(Kind) { Qubits[0] = Q0; }

  /// Two-qubit constructor.
  Gate(GateKind Kind, int32_t Q0, int32_t Q1) : Kind(Kind) {
    Qubits[0] = Q0;
    Qubits[1] = Q1;
  }

  /// Three-qubit constructor.
  Gate(GateKind Kind, int32_t Q0, int32_t Q1, int32_t Q2) : Kind(Kind) {
    Qubits[0] = Q0;
    Qubits[1] = Q1;
    Qubits[2] = Q2;
  }

  unsigned numQubits() const { return gateArity(Kind); }
  unsigned numParams() const { return gateNumParams(Kind); }

  bool isTwoQubit() const { return numQubits() == 2; }
  bool isSwap() const { return Kind == GateKind::Swap; }

  /// True if the gate touches qubit \p Q.
  bool usesQubit(int32_t Q) const {
    unsigned N = numQubits();
    for (unsigned I = 0; I < N; ++I)
      if (Qubits[I] == Q)
        return true;
    return false;
  }

  /// Returns a copy with every qubit operand rewritten through \p Fn.
  template <typename FnT> Gate withMappedQubits(FnT Fn) const {
    Gate Result = *this;
    unsigned N = numQubits();
    for (unsigned I = 0; I < N; ++I)
      Result.Qubits[I] = Fn(Qubits[I]);
    return Result;
  }

  /// Renders e.g. "cx q[0], q[3]" for debugging.
  std::string toString() const;
};

} // namespace qlosure

#endif // QLOSURE_CIRCUIT_GATE_H
