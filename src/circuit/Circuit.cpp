//===- circuit/Circuit.cpp - Quantum circuit IR ------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Circuit.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;

void Circuit::addGate(const Gate &G) {
  unsigned N = G.numQubits();
  for (unsigned I = 0; I < N; ++I) {
    assert(G.Qubits[I] >= 0 &&
           G.Qubits[I] < static_cast<int32_t>(NumQubits) &&
           "gate operand out of range");
    for (unsigned J = I + 1; J < N; ++J)
      assert(G.Qubits[I] != G.Qubits[J] && "repeated gate operand");
  }
  Gates.push_back(G);
}

size_t Circuit::numTwoQubitGates() const {
  size_t Count = 0;
  for (const Gate &G : Gates)
    if (G.isTwoQubit())
      ++Count;
  return Count;
}

size_t Circuit::numSwapGates() const {
  size_t Count = 0;
  for (const Gate &G : Gates)
    if (G.isSwap())
      ++Count;
  return Count;
}

size_t Circuit::numQuantumOps() const {
  size_t Count = 0;
  for (const Gate &G : Gates)
    if (G.Kind != GateKind::Barrier && G.Kind != GateKind::Measure)
      ++Count;
  return Count;
}

size_t Circuit::depth(SwapCostModel Model) const {
  // ASAP levels per qubit wire; barriers synchronize the qubits they touch
  // but cost nothing.
  std::vector<size_t> WireLevel(NumQubits, 0);
  size_t Depth = 0;
  for (const Gate &G : Gates) {
    unsigned N = G.numQubits();
    size_t Level = 0;
    for (unsigned I = 0; I < N; ++I)
      Level = std::max(Level, WireLevel[static_cast<size_t>(G.Qubits[I])]);
    size_t Cost = 1;
    if (G.Kind == GateKind::Barrier)
      Cost = 0;
    else if (G.isSwap() && Model == SwapCostModel::SwapAsThreeCx)
      Cost = 3;
    Level += Cost;
    for (unsigned I = 0; I < N; ++I)
      WireLevel[static_cast<size_t>(G.Qubits[I])] = Level;
    Depth = std::max(Depth, Level);
  }
  return Depth;
}

Circuit Circuit::withoutNonUnitaries() const {
  Circuit Result(NumQubits, Name);
  for (const Gate &G : Gates)
    if (G.Kind != GateKind::Barrier && G.Kind != GateKind::Measure)
      Result.Gates.push_back(G);
  return Result;
}

Circuit Circuit::decomposeThreeQubitGates() const {
  Circuit Result(NumQubits, Name);
  for (const Gate &G : Gates) {
    if (G.Kind == GateKind::CCX) {
      int32_t A = G.Qubits[0], B = G.Qubits[1], C = G.Qubits[2];
      // Standard Toffoli decomposition: 6 CX + 7 single-qubit gates.
      Result.add1Q(GateKind::H, C);
      Result.addCx(B, C);
      Result.add1Q(GateKind::Tdg, C);
      Result.addCx(A, C);
      Result.add1Q(GateKind::T, C);
      Result.addCx(B, C);
      Result.add1Q(GateKind::Tdg, C);
      Result.addCx(A, C);
      Result.add1Q(GateKind::T, B);
      Result.add1Q(GateKind::T, C);
      Result.add1Q(GateKind::H, C);
      Result.addCx(A, B);
      Result.add1Q(GateKind::T, A);
      Result.add1Q(GateKind::Tdg, B);
      Result.addCx(A, B);
      continue;
    }
    if (G.Kind == GateKind::CSwap) {
      int32_t A = G.Qubits[0], B = G.Qubits[1], C = G.Qubits[2];
      // Fredkin via CX + Toffoli, then recurse on the Toffoli.
      Result.addCx(C, B);
      Circuit Toffoli(NumQubits);
      Toffoli.addGate(Gate(GateKind::CCX, A, B, C));
      Circuit Decomposed = Toffoli.decomposeThreeQubitGates();
      for (const Gate &Sub : Decomposed.gates())
        Result.Gates.push_back(Sub);
      Result.addCx(C, B);
      continue;
    }
    Result.Gates.push_back(G);
  }
  return Result;
}

void Circuit::verifyInvariants() const {
  for (const Gate &G : Gates) {
    unsigned N = G.numQubits();
    for (unsigned I = 0; I < N; ++I) {
      if (G.Qubits[I] < 0 || G.Qubits[I] >= static_cast<int32_t>(NumQubits))
        reportFatalError("circuit invariant violated: operand out of range in " +
                         G.toString());
      for (unsigned J = I + 1; J < N; ++J)
        if (G.Qubits[I] == G.Qubits[J])
          reportFatalError("circuit invariant violated: repeated operand in " +
                           G.toString());
    }
  }
}
