//===- affine/PeriodDetector.cpp - Periodic macro-gate structure ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/PeriodDetector.h"

#include "affine/Lifter.h"
#include "presburger/Permutation.h"

#include <algorithm>

using namespace qlosure;

namespace {

/// The gate trace flattened out of the statement form: one entry per trace
/// index, O(1) pair comparisons during verification.
struct TraceView {
  std::vector<uint8_t> Kind;
  std::vector<uint8_t> Arity;
  std::vector<int32_t> Q[3];

  explicit TraceView(const AffineCircuit &AC) {
    size_t N = static_cast<size_t>(AC.numGates());
    Kind.resize(N);
    Arity.resize(N);
    for (auto &Col : Q)
      Col.assign(N, -1);
    size_t T = 0;
    for (const MacroGate &S : AC.statements())
      for (int64_t I = 0; I < S.TripCount; ++I, ++T) {
        Kind[T] = static_cast<uint8_t>(S.Kind);
        Arity[T] = static_cast<uint8_t>(S.NumOperands);
        for (unsigned K = 0; K < S.NumOperands; ++K)
          Q[K][T] = static_cast<int32_t>(S.qubit(K, I));
      }
  }

  /// True when gate T2's operands are gate T1's through \p Perm.
  bool pairMatches(size_t T1, size_t T2,
                   const std::vector<int32_t> &Perm) const {
    if (Kind[T1] != Kind[T2] || Arity[T1] != Arity[T2])
      return false;
    for (unsigned K = 0; K < Arity[T1]; ++K)
      if (Perm[static_cast<size_t>(Q[K][T1])] != Q[K][T2])
        return false;
    return true;
  }
};

/// True when statements \p A and \p B have the same shape (everything but
/// the offsets): their instances then pair up one-to-one.
bool sameShape(const MacroGate &A, const MacroGate &B) {
  if (A.Kind != B.Kind || A.NumOperands != B.NumOperands ||
      A.TripCount != B.TripCount)
    return false;
  for (unsigned K = 0; K < A.NumOperands; ++K)
    if (A.Scale[K] != B.Scale[K])
      return false;
  return true;
}

/// Derives pi from the presburger access relations of the statement pairs
/// (r0 .. r0+k) vs (r0+k .. r0+2k), when those pairs align shape-for-shape
/// (the paper's symbolic path: pi = union over pairs of
/// reverse(A_S) . A_S'). nullopt when the statements do not align or the
/// relation is not a partial injection.
std::optional<std::vector<int32_t>>
derivePermSymbolic(const AffineCircuit &AC, size_t R0, size_t K) {
  if (R0 + 2 * K > AC.numStatements())
    return std::nullopt;
  presburger::IntegerMap Rel(1, 1);
  for (size_t J = 0; J < K; ++J) {
    const MacroGate &SA = AC.statement(R0 + J);
    const MacroGate &SB = AC.statement(R0 + K + J);
    if (!sameShape(SA, SB))
      return std::nullopt;
    for (unsigned Op = 0; Op < SA.NumOperands; ++Op)
      Rel = Rel.unionWith(AC.accessRelation(R0 + J, Op)
                              .reverse()
                              .composeWith(AC.accessRelation(R0 + K + J, Op)));
  }
  return presburger::extractPermutation(Rel, AC.numQubits());
}

/// Derives pi pointwise from the gate pairs (t, t+B) of the first period,
/// completing unconstrained qubits like extractPermutation does.
std::optional<std::vector<int32_t>>
derivePermPointwise(const TraceView &TV, size_t R, size_t B,
                    unsigned NumQubits) {
  std::vector<int32_t> To(NumQubits, -1);
  std::vector<uint8_t> Used(NumQubits, 0);
  for (size_t T = R; T < R + B; ++T) {
    size_t T2 = T + B;
    if (TV.Kind[T] != TV.Kind[T2] || TV.Arity[T] != TV.Arity[T2])
      return std::nullopt;
    for (unsigned K = 0; K < TV.Arity[T]; ++K) {
      int32_t Src = TV.Q[K][T], Dst = TV.Q[K][T2];
      if (To[Src] == Dst)
        continue;
      if (To[Src] != -1 || Used[Dst])
        return std::nullopt;
      To[Src] = Dst;
      Used[Dst] = 1;
    }
  }
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    if (To[Q] == -1 && !Used[Q]) {
      To[Q] = static_cast<int32_t>(Q);
      Used[Q] = 1;
    }
  unsigned NextImage = 0;
  for (unsigned Q = 0; Q < NumQubits; ++Q) {
    if (To[Q] != -1)
      continue;
    while (NextImage < NumQubits && Used[NextImage])
      ++NextImage;
    To[Q] = static_cast<int32_t>(NextImage);
    Used[NextImage] = 1;
  }
  return To;
}

} // namespace

std::optional<PeriodStructure>
qlosure::detectPeriod(const AffineCircuit &AC,
                      const PeriodDetectorOptions &O) {
  const size_t M = AC.numStatements();
  const int64_t N = AC.numGates();
  if (M == 0 || N < 2 * O.MinPeriods)
    return std::nullopt;

  TraceView TV(AC);

  // Statement start offsets (the candidate period seams).
  std::vector<int64_t> Starts(M);
  for (size_t S = 0; S < M; ++S)
    Starts[S] = AC.statement(S).Start;

  for (size_t R0 = 0; R0 < std::min(O.MaxPrologueStatements + 1, M); ++R0) {
    const int64_t R = Starts[R0];
    int64_t B = 0;
    for (size_t K = 1; R0 + K <= M && K <= O.MaxBodyStatements; ++K) {
      B += AC.statement(R0 + K - 1).TripCount;
      if (B > O.MaxBodyGates)
        break;
      if ((N - R) / B < O.MinPeriods)
        break; // Larger bodies only fit fewer periods.
      if (R + 2 * B > N)
        break;

      // Cheap shape reject before deriving anything: the first pair of
      // gates across the seam must at least agree on kind and arity.
      if (TV.Kind[R] != TV.Kind[R + B] || TV.Arity[R] != TV.Arity[R + B])
        continue;

      // Derive pi. The pointwise pass over the first period runs first:
      // its constraints are necessary for *any* pi, so it is also the
      // cheap rejection filter for wrong candidate periods. Surviving
      // candidates re-derive pi symbolically from the aligned statement
      // access relations (the paper's presburger path); both derivations
      // complete unconstrained qubits identically, so they agree whenever
      // the statements align, and the pointwise verification below makes
      // the result exact either way.
      std::optional<std::vector<int32_t>> Perm = derivePermPointwise(
          TV, static_cast<size_t>(R), static_cast<size_t>(B),
          AC.numQubits());
      if (!Perm)
        continue;
      if (std::optional<std::vector<int32_t>> Symbolic =
              derivePermSymbolic(AC, R0, K))
        Perm = std::move(Symbolic);

      // Verify the candidate across the whole trace: count consecutive
      // matching pairs from the region start, then keep whole periods.
      int64_t T = R;
      while (T + B < N &&
             TV.pairMatches(static_cast<size_t>(T),
                            static_cast<size_t>(T + B), *Perm))
        ++T;
      int64_t Matched = T - R; // Pairs (t, t+B) verified.
      int64_t Periods = Matched / B + 1;
      if (Periods < O.MinPeriods)
        continue;
      if (static_cast<double>(Periods * B) <
          O.MinCoverage * static_cast<double>(N - R))
        continue;

      PeriodStructure P;
      P.RegionStart = R;
      P.BodyGates = B;
      P.NumPeriods = Periods;
      P.Perm = std::move(*Perm);
      return P;
    }
  }
  return std::nullopt;
}

std::optional<PeriodStructure>
qlosure::detectPeriod(const Circuit &Circ, const PeriodDetectorOptions &O) {
  return detectPeriod(liftCircuit(Circ), O);
}
