//===- affine/AffineCircuit.cpp - Affine circuit representation ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/AffineCircuit.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace qlosure;
using namespace qlosure::presburger;

std::string MacroGate::toString() const {
  std::string Out = gateName(Kind);
  Out += formatString(" S[i: 0..%lld]", static_cast<long long>(TripCount - 1));
  for (unsigned K = 0; K < NumOperands; ++K) {
    Out += K ? ", " : " ";
    if (Scale[K] == 0)
      Out += formatString("q[%lld]", static_cast<long long>(Offset[K]));
    else if (Scale[K] == 1 && Offset[K] == 0)
      Out += "q[i]";
    else if (Offset[K] == 0)
      Out += formatString("q[%lld*i]", static_cast<long long>(Scale[K]));
    else
      Out += formatString("q[%lld*i%+lld]", static_cast<long long>(Scale[K]),
                          static_cast<long long>(Offset[K]));
  }
  Out += formatString(" @t=%lld+i", static_cast<long long>(Start));
  return Out;
}

AffineCircuit::AffineCircuit(unsigned NumQubits,
                             std::vector<MacroGate> StatementsIn)
    : NumQubits(NumQubits), Statements(std::move(StatementsIn)) {
  StartOffsets.reserve(Statements.size());
  for (const MacroGate &S : Statements) {
    assert(S.TripCount >= 1 && "statements must be nonempty");
    assert(S.Start == TotalGates && "statements must tile the trace");
    StartOffsets.push_back(TotalGates);
    TotalGates += S.TripCount;
  }
}

GateCoords AffineCircuit::coordsOfGate(int64_t TraceIndex) const {
  assert(TraceIndex >= 0 && TraceIndex < TotalGates &&
         "trace index out of range");
  // Binary search over prefix sums.
  auto It = std::upper_bound(StartOffsets.begin(), StartOffsets.end(),
                             TraceIndex);
  size_t S = static_cast<size_t>(It - StartOffsets.begin()) - 1;
  return GateCoords{static_cast<uint32_t>(S), TraceIndex - StartOffsets[S]};
}

IntegerSet AffineCircuit::iterationDomain(size_t S) const {
  const MacroGate &M = Statements[S];
  BasicSet Domain(1);
  Domain.addBounds(0, 0, M.TripCount - 1);
  return IntegerSet(std::move(Domain));
}

IntegerMap AffineCircuit::accessRelation(size_t S, unsigned K) const {
  const MacroGate &M = Statements[S];
  assert(K < M.NumOperands && "operand index out of range");
  // { [i] -> [q] : q == Scale*i + Offset, 0 <= i < Trip }.
  BasicSet Set(2);
  Set.addConstraint(makeEqExpr(
      AffineExpr::variable(2, 1),
      AffineExpr::variable(2, 0) * M.Scale[K] +
          AffineExpr::constant(2, M.Offset[K])));
  Set.addConstraint(makeGe(AffineExpr::variable(2, 0),
                           AffineExpr::constant(2, 0)));
  Set.addConstraint(makeLe(AffineExpr::variable(2, 0),
                           AffineExpr::constant(2, M.TripCount - 1)));
  return IntegerMap(BasicMap(1, 1, std::move(Set)));
}

IntegerMap AffineCircuit::schedule(size_t S) const {
  const MacroGate &M = Statements[S];
  BasicSet Set(2);
  Set.addConstraint(makeEqExpr(AffineExpr::variable(2, 1),
                               AffineExpr::variable(2, 0) +
                                   AffineExpr::constant(2, M.Start)));
  Set.addConstraint(makeGe(AffineExpr::variable(2, 0),
                           AffineExpr::constant(2, 0)));
  Set.addConstraint(makeLe(AffineExpr::variable(2, 0),
                           AffineExpr::constant(2, M.TripCount - 1)));
  return IntegerMap(BasicMap(1, 1, std::move(Set)));
}

IntegerMap AffineCircuit::useMap(size_t S) const {
  const MacroGate &M = Statements[S];
  assert(M.NumOperands == 2 && "use map is defined for two-qubit statements");
  // { [t] -> [q1, q2] : t = Start + i, qk = Scale_k*i + Offset_k } with i
  // eliminated: i = t - Start.
  BasicSet Set(3);
  AffineExpr T = AffineExpr::variable(3, 0);
  AffineExpr IVal = T - AffineExpr::constant(3, M.Start);
  for (unsigned K = 0; K < 2; ++K) {
    Set.addConstraint(makeEqExpr(AffineExpr::variable(3, 1 + K),
                                 IVal * M.Scale[K] +
                                     AffineExpr::constant(3, M.Offset[K])));
  }
  Set.addConstraint(
      makeGe(T, AffineExpr::constant(3, M.Start)));
  Set.addConstraint(
      makeLe(T, AffineExpr::constant(3, M.Start + M.TripCount - 1)));
  return IntegerMap(BasicMap(1, 2, std::move(Set)));
}

double AffineCircuit::compressionRatio() const {
  if (Statements.empty())
    return 1.0;
  return static_cast<double>(TotalGates) /
         static_cast<double>(Statements.size());
}
