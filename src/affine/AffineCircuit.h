//===- affine/AffineCircuit.h - Affine circuit representation -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lifted circuit: an ordered list of macro-gates covering the trace.
/// Provides the polyhedral views the paper builds on (iteration domains,
/// qubit access relations, schedules, and the Use Map) as presburger
/// objects, plus O(1) gate <-> (statement, instance) translation.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_AFFINE_AFFINECIRCUIT_H
#define QLOSURE_AFFINE_AFFINECIRCUIT_H

#include "affine/MacroGate.h"
#include "circuit/Circuit.h"
#include "presburger/IntegerMap.h"

#include <vector>

namespace qlosure {

/// (statement, instance) coordinates of a trace gate.
struct GateCoords {
  uint32_t Statement;
  int64_t Instance;
};

/// A circuit lifted into macro-gate (statement) form. Statements are
/// disjoint, contiguous runs covering the whole trace in order.
class AffineCircuit {
public:
  AffineCircuit() = default;
  AffineCircuit(unsigned NumQubits, std::vector<MacroGate> Statements);

  unsigned numQubits() const { return NumQubits; }
  const std::vector<MacroGate> &statements() const { return Statements; }
  size_t numStatements() const { return Statements.size(); }
  const MacroGate &statement(size_t S) const { return Statements[S]; }

  /// Total number of gate instances across statements.
  int64_t numGates() const { return TotalGates; }

  /// Coordinates of the trace gate at position \p TraceIndex.
  GateCoords coordsOfGate(int64_t TraceIndex) const;

  /// Iteration domain of statement \p S as a 1-D integer set [0, Trip).
  presburger::IntegerSet iterationDomain(size_t S) const;

  /// Access relation of operand \p K of statement \p S:
  /// { [i] -> [q] : q = Scale*i + Offset, 0 <= i < Trip }.
  presburger::IntegerMap accessRelation(size_t S, unsigned K) const;

  /// Schedule of statement \p S: { [i] -> [t] : t = Start + i }.
  presburger::IntegerMap schedule(size_t S) const;

  /// The paper's Use Map restricted to two-qubit statements:
  /// { [t] -> [q1, q2] } for instances of \p S.
  presburger::IntegerMap useMap(size_t S) const;

  /// The average number of gates per statement — the lifter's compression
  /// ratio (higher means more regular structure was found).
  double compressionRatio() const;

private:
  unsigned NumQubits = 0;
  std::vector<MacroGate> Statements;
  int64_t TotalGates = 0;
  /// Prefix sums of trip counts for coordsOfGate.
  std::vector<int64_t> StartOffsets;
};

} // namespace qlosure

#endif // QLOSURE_AFFINE_AFFINECIRCUIT_H
