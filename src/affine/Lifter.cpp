//===- affine/Lifter.cpp - QRANE-style affine lifting --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"

#include "support/StringUtils.h"

using namespace qlosure;

Status qlosure::checkLiftable(const Circuit &Circ) {
  const auto &Gates = Circ.gates();
  for (size_t GI = 0; GI < Gates.size(); ++GI)
    if (Gates[GI].Kind == GateKind::Barrier ||
        Gates[GI].Kind == GateKind::Measure)
      return Status::error(formatString(
          "circuit %s contains a %s at trace index %zu; strip "
          "non-unitaries before lifting (Circuit::withoutNonUnitaries)",
          Circ.name().c_str(), gateName(Gates[GI].Kind), GI));
  return Status::success();
}

namespace {

/// A run being grown by the lifter.
struct Run {
  GateKind Kind;
  unsigned NumOperands = 0;
  int64_t Start = 0;
  int64_t Length = 0;
  // First gate's operands (defines Offset); stride defined by 2nd gate.
  int64_t Offset[3] = {0, 0, 0};
  int64_t Scale[3] = {0, 0, 0};
  bool StrideKnown = false;

  MacroGate finish() const {
    MacroGate M;
    M.Kind = Kind;
    M.NumOperands = NumOperands;
    M.TripCount = Length;
    M.Start = Start;
    for (unsigned K = 0; K < NumOperands; ++K) {
      M.Scale[K] = StrideKnown ? Scale[K] : 0;
      M.Offset[K] = Offset[K];
    }
    return M;
  }
};

} // namespace

AffineCircuit qlosure::liftCircuit(const Circuit &Circ,
                                   const LifterOptions &Options) {
  std::vector<MacroGate> Statements;
  const auto &Gates = Circ.gates();

  /// Emits \p R as one statement, or as singletons when too short to be a
  /// meaningful affine run.
  auto emitRun = [&](const Run &R) {
    if (R.Length >= Options.MinRunLength || R.Length == 1) {
      Statements.push_back(R.finish());
      return;
    }
    // Split short runs into singletons so accidental strides of length two
    // do not pollute the dependence relations.
    for (int64_t I = 0; I < R.Length; ++I) {
      MacroGate M;
      M.Kind = R.Kind;
      M.NumOperands = R.NumOperands;
      M.TripCount = 1;
      M.Start = R.Start + I;
      for (unsigned K = 0; K < R.NumOperands; ++K) {
        M.Scale[K] = 0;
        M.Offset[K] = R.Offset[K] + (R.StrideKnown ? R.Scale[K] * I : 0);
      }
      Statements.push_back(M);
    }
  };

  Run Current;
  bool HaveRun = false;
  for (size_t GI = 0; GI < Gates.size(); ++GI) {
    const Gate &G = Gates[GI];
    unsigned NumOps = G.numQubits();

    if (HaveRun && Current.Kind == G.Kind &&
        Current.NumOperands == NumOps) {
      if (!Current.StrideKnown) {
        // The second gate of a run fixes the stride of every operand.
        Current.StrideKnown = true;
        for (unsigned K = 0; K < NumOps; ++K)
          Current.Scale[K] = G.Qubits[K] - Current.Offset[K];
        ++Current.Length;
        continue;
      }
      // Later gates must match the affine prediction.
      bool Matches = true;
      for (unsigned K = 0; K < NumOps; ++K) {
        int64_t Predicted =
            Current.Offset[K] + Current.Scale[K] * Current.Length;
        if (G.Qubits[K] != Predicted) {
          Matches = false;
          break;
        }
      }
      if (Matches) {
        ++Current.Length;
        continue;
      }
    }

    if (HaveRun)
      emitRun(Current);
    Current = Run();
    Current.Kind = G.Kind;
    Current.NumOperands = NumOps;
    Current.Start = static_cast<int64_t>(GI);
    Current.Length = 1;
    for (unsigned K = 0; K < NumOps; ++K)
      Current.Offset[K] = G.Qubits[K];
    HaveRun = true;
  }
  if (HaveRun)
    emitRun(Current);

  return AffineCircuit(Circ.numQubits(), std::move(Statements));
}
