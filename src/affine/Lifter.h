//===- affine/Lifter.h - QRANE-style affine lifting ---------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifts a flat gate trace into the affine IR by greedily growing maximal
/// runs of same-kind gates whose operands follow affine functions
/// constant*i + constant of the run index — the scalable subset of the
/// QRANE reconstruction (Gerard, Grosser, Kong; CC 2022). Gates that do not
/// extend any affine run become singleton statements.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_AFFINE_LIFTER_H
#define QLOSURE_AFFINE_LIFTER_H

#include "affine/AffineCircuit.h"
#include "support/Error.h"

namespace qlosure {

/// Options controlling the lifter.
struct LifterOptions {
  /// Runs shorter than this stay as singleton statements (a length-2 "run"
  /// whose stride is accidental provides no compression benefit).
  int64_t MinRunLength = 3;
};

/// Recoverable precheck for circuits that reach the lifter from untrusted
/// sources (the service path): an error naming the first barrier or
/// measure in \p Circ, success when every gate is unitary. liftCircuit
/// itself accepts such gates (see below), so this is for callers that want
/// to *reject* non-unitary circuits rather than lift them.
Status checkLiftable(const Circuit &Circ);

/// Lifts \p Circ. The resulting statements cover the trace contiguously.
/// Barriers and measures do not abort: they lift like any other gate kind
/// (runs of them compress, stragglers become singleton statements), which
/// keeps the trace tiling intact; analyses that require unitary-only input
/// should gate on checkLiftable() first.
AffineCircuit liftCircuit(const Circuit &Circ, const LifterOptions &Options = {});

} // namespace qlosure

#endif // QLOSURE_AFFINE_LIFTER_H
