//===- affine/Lifter.h - QRANE-style affine lifting ---------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifts a flat gate trace into the affine IR by greedily growing maximal
/// runs of same-kind gates whose operands follow affine functions
/// constant*i + constant of the run index — the scalable subset of the
/// QRANE reconstruction (Gerard, Grosser, Kong; CC 2022). Gates that do not
/// extend any affine run become singleton statements.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_AFFINE_LIFTER_H
#define QLOSURE_AFFINE_LIFTER_H

#include "affine/AffineCircuit.h"

namespace qlosure {

/// Options controlling the lifter.
struct LifterOptions {
  /// Runs shorter than this stay as singleton statements (a length-2 "run"
  /// whose stride is accidental provides no compression benefit).
  int64_t MinRunLength = 3;
};

/// Lifts \p Circ (barriers/measures must be stripped beforehand; asserts
/// otherwise). The resulting statements cover the trace contiguously.
AffineCircuit liftCircuit(const Circuit &Circ, const LifterOptions &Options = {});

} // namespace qlosure

#endif // QLOSURE_AFFINE_LIFTER_H
