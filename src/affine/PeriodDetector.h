//===- affine/PeriodDetector.h - Periodic macro-gate structure ----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detection of loop structure in a lifted circuit: a *periodic region* is
/// a contiguous trace range [RegionStart, RegionStart + NumPeriods * B)
/// whose gates satisfy
///
///   gate(t + B) = pi(gate(t))        (same kind, operands through pi)
///
/// for a fixed qubit permutation pi — the shape a loop body emits when each
/// iteration re-touches the same interaction pattern under a per-iteration
/// relabeling (pi = identity for a plain repeated body). The detector
/// proposes candidate periods from the macro-gate statement structure (run
/// boundaries are where the lifter's affine predictions break, which is
/// exactly where loop iterations seam), derives pi from the presburger
/// access relations of the first aligned statement pair when possible, and
/// verifies the whole region pointwise so the result is exact regardless of
/// how runs happen to align with iteration boundaries.
///
/// The routing replay engine (route/ReplayPlan.h) consumes the result; it
/// is memoized per RoutingContext so service-cached contexts pay for
/// detection once per circuit fingerprint.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_AFFINE_PERIODDETECTOR_H
#define QLOSURE_AFFINE_PERIODDETECTOR_H

#include "affine/AffineCircuit.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace qlosure {

/// A detected periodic region of the gate trace.
struct PeriodStructure {
  /// Trace index of the first gate inside the region.
  int64_t RegionStart = 0;
  /// Gates per period (the loop-body length B).
  int64_t BodyGates = 0;
  /// Number of complete periods in the region (>= MinPeriods).
  int64_t NumPeriods = 0;
  /// The iteration permutation: operand q of gate t maps to Perm[q] in
  /// gate t + BodyGates. Identity for a plainly repeated body.
  std::vector<int32_t> Perm;

  /// One past the last trace index covered by complete periods.
  int64_t regionEnd() const { return RegionStart + BodyGates * NumPeriods; }
};

/// Detection limits.
struct PeriodDetectorOptions {
  /// Minimum complete periods for a region to count as loop structure.
  int64_t MinPeriods = 3;
  /// Candidate prologues: region starts are tried at the first statement
  /// boundaries only (a long irregular prologue means no loop anyway).
  size_t MaxPrologueStatements = 8;
  /// Candidate bodies span at most this many statements...
  size_t MaxBodyStatements = 256;
  /// ... and at most this many gates (bounds replay-plan memory).
  int64_t MaxBodyGates = 1 << 20;
  /// The region must cover at least this fraction of the trace after the
  /// prologue, so an accidental local repetition is not mistaken for the
  /// circuit's loop structure.
  double MinCoverage = 0.5;
};

/// Finds the leftmost periodic region with the smallest period, or nullopt
/// when the circuit has no (detected) loop structure.
std::optional<PeriodStructure>
detectPeriod(const AffineCircuit &AC, const PeriodDetectorOptions &O = {});

/// Convenience overload: lifts \p Circ (default lifter options) first.
std::optional<PeriodStructure>
detectPeriod(const Circuit &Circ, const PeriodDetectorOptions &O = {});

} // namespace qlosure

#endif // QLOSURE_AFFINE_PERIODDETECTOR_H
