//===- affine/MacroGate.h - Lifted affine statements --------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The affine intermediate representation produced by the QRANE-style
/// lifter: a macro-gate (statement) groups a run of gates whose qubit
/// operands follow affine access functions q_k(i) = A_k * i + B_k of a
/// one-dimensional iteration index, with schedule t(i) = Start + i.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_AFFINE_MACROGATE_H
#define QLOSURE_AFFINE_MACROGATE_H

#include "circuit/Gate.h"

#include <cstdint>
#include <string>

namespace qlosure {

/// One lifted statement. Instances are indexed by i in [0, TripCount).
struct MacroGate {
  GateKind Kind = GateKind::I;
  unsigned NumOperands = 0;

  /// Iteration domain size (>= 1).
  int64_t TripCount = 0;

  /// Qubit access functions: operand k of instance i touches qubit
  /// Scale[k] * i + Offset[k].
  int64_t Scale[3] = {0, 0, 0};
  int64_t Offset[3] = {0, 0, 0};

  /// Schedule: instance i executes at trace position Start + i.
  int64_t Start = 0;

  /// Qubit of operand \p K at instance \p I.
  int64_t qubit(unsigned K, int64_t I) const {
    return Scale[K] * I + Offset[K];
  }

  /// Trace position of instance \p I.
  int64_t time(int64_t I) const { return Start + I; }

  /// Renders e.g. "cx S[i: 0..9] q[2i+1], q[i]" for debugging.
  std::string toString() const;
};

} // namespace qlosure

#endif // QLOSURE_AFFINE_MACROGATE_H
