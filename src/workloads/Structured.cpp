//===- workloads/Structured.cpp - Periodic benchmark circuits ------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Structured.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <cassert>
#include <utility>

using namespace qlosure;

std::vector<int32_t> qlosure::cyclicShiftPermutation(unsigned NumQubits,
                                                     int64_t Shift) {
  std::vector<int32_t> Perm(NumQubits);
  int64_t N = static_cast<int64_t>(NumQubits);
  for (int64_t Q = 0; Q < N; ++Q)
    Perm[static_cast<size_t>(Q)] =
        static_cast<int32_t>(((Q + Shift) % N + N) % N);
  return Perm;
}

Circuit qlosure::repeatWithPermutation(const Circuit &Body,
                                       const std::vector<int32_t> &Perm,
                                       int64_t Reps, std::string Name) {
  assert(Perm.size() == Body.numQubits() &&
         "permutation arity must match the body");
  Circuit Result(Body.numQubits(), std::move(Name));
  std::vector<int32_t> Cur(Perm.size());
  for (size_t Q = 0; Q < Cur.size(); ++Q)
    Cur[Q] = static_cast<int32_t>(Q);
  for (int64_t Rep = 0; Rep < Reps; ++Rep) {
    for (const Gate &G : Body.gates())
      Result.addGate(G.withMappedQubits(
          [&](int32_t Q) { return Cur[static_cast<size_t>(Q)]; }));
    // Iteration j+1 sees pi^(j+1) = pi o pi^j.
    for (size_t Q = 0; Q < Cur.size(); ++Q)
      Cur[Q] = Perm[static_cast<size_t>(Cur[Q])];
  }
  return Result;
}

Circuit qlosure::layeredConveyor(const CouplingGraph &GenDevice,
                                 unsigned BodyDepth, int64_t Reps,
                                 uint64_t Seed) {
  unsigned N = GenDevice.numQubits();
  Circuit Body(N, "conveyor-body");
  Rng Gen(Seed);

  // QUEKO-flavored cycles: a maximal-ish set of disjoint device edges per
  // cycle (shuffled greedy matching), 1Q fillers on a few idle qubits.
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned P = 0; P < N; ++P)
    for (unsigned Q : GenDevice.neighbors(P))
      if (P < Q)
        Edges.push_back({P, Q});
  std::vector<uint8_t> Busy(N, 0);
  for (unsigned Cycle = 0; Cycle < BodyDepth; ++Cycle) {
    Gen.shuffle(Edges);
    std::fill(Busy.begin(), Busy.end(), 0);
    for (const auto &E : Edges) {
      if (Busy[E.first] || Busy[E.second])
        continue;
      Busy[E.first] = Busy[E.second] = 1;
      Body.addCx(static_cast<int32_t>(E.first),
                 static_cast<int32_t>(E.second));
    }
    for (unsigned Q = 0; Q < N; ++Q)
      if (!Busy[Q] && Gen.nextBernoulli(0.25))
        Body.add1Q(GateKind::H, static_cast<int32_t>(Q));
  }

  return repeatWithPermutation(
      Body, cyclicShiftPermutation(N, 1), Reps,
      formatString("conveyor-%s-d%u-x%lld", GenDevice.name().c_str(),
                   BodyDepth, static_cast<long long>(Reps)));
}

Circuit qlosure::qftLikeKernel(unsigned NumQubits, int64_t Reps) {
  assert(NumQubits >= 3 && "the wrap-around link needs at least 3 qubits");
  Circuit Body(NumQubits, "qft-body");
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    Body.add1Q(GateKind::H, static_cast<int32_t>(Q));
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    Body.add2Q(GateKind::CP, static_cast<int32_t>(Q),
               static_cast<int32_t>(Q + 1),
               3.14159265358979323846 / static_cast<double>(Q + 2));
  Body.add2Q(GateKind::CP, static_cast<int32_t>(NumQubits - 1), 0,
             3.14159265358979323846 / static_cast<double>(NumQubits));

  std::vector<int32_t> Identity(NumQubits);
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    Identity[Q] = static_cast<int32_t>(Q);
  return repeatWithPermutation(
      Body, Identity, Reps,
      formatString("qft-kernel-%uq-x%lld", NumQubits,
                   static_cast<long long>(Reps)));
}
