//===- workloads/Queko.h - QUEKO benchmark generator --------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generator for QUEKO-style circuits with known optimal depth (Tan & Cong,
/// "Optimality study of existing quantum computing layout synthesis
/// tools"): each of T cycles holds two-qubit gates on *disjoint edges of a
/// generation device* plus single-qubit fillers, a dependence chain through
/// consecutive cycles pins the optimal depth to exactly T on that device,
/// and a random logical relabeling hides the witness placement from the
/// mapper. This reproduces the paper's queko-bss-16qbt / 54qbt sets and
/// the custom 81-qubit (9x9) and 256-qubit (16x16) king's-graph sets.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_WORKLOADS_QUEKO_H
#define QLOSURE_WORKLOADS_QUEKO_H

#include "circuit/Circuit.h"
#include "topology/CouplingGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// Parameters of one QUEKO circuit.
struct QuekoSpec {
  /// Optimal depth to pin (number of cycles).
  unsigned Depth = 100;
  /// Fraction of device qubits engaged in two-qubit gates per cycle
  /// (0.44 matches the QUEKO BSS profile).
  double TwoQubitDensity = 0.44;
  /// Fraction of remaining qubits receiving a single-qubit gate per cycle.
  double OneQubitDensity = 0.26;
  uint64_t Seed = 1;
};

/// A generated QUEKO instance: the scrambled circuit plus its provably
/// optimal depth on the generation device and the witness placement.
struct QuekoInstance {
  Circuit Circ;
  unsigned OptimalDepth = 0;
  /// Logical qubit L sits on generation-device qubit Witness[L] in the
  /// depth-optimal placement (the inverse of the scramble permutation).
  std::vector<unsigned> Witness;
};

/// Generates one QUEKO circuit on \p GenDevice (which must be connected
/// and have at least one edge).
QuekoInstance generateQueko(const CouplingGraph &GenDevice,
                            const QuekoSpec &Spec);

/// A (name, generation device) pair identifying one QUEKO benchmark set.
struct QuekoSet {
  std::string Name;
  CouplingGraph GenDevice;
};

/// The paper's four generation devices: queko-bss-16qbt (Aspen-4),
/// queko-bss-54qbt (Sycamore), queko-bss-81qbt (9x9 kings) and the
/// 16x16-kings set for Sherbrooke-2X.
std::vector<QuekoSet> paperQuekoSets();

} // namespace qlosure

#endif // QLOSURE_WORKLOADS_QUEKO_H
