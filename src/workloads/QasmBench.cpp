//===- workloads/QasmBench.cpp - QASMBench-style circuit families ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/QasmBench.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cmath>

using namespace qlosure;

/// cp(theta) a, b decomposed as rz/cx/rz/cx/rz (global phase ignored).
static void addCpDecomposed(Circuit &C, int32_t A, int32_t B, double Theta) {
  C.add1Q(GateKind::RZ, A, Theta / 2);
  C.addCx(A, B);
  C.add1Q(GateKind::RZ, B, -Theta / 2);
  C.addCx(A, B);
  C.add1Q(GateKind::RZ, B, Theta / 2);
}

Circuit qlosure::makeQft(unsigned NumQubits, bool DecomposeCp) {
  assert(NumQubits >= 2 && "QFT needs at least two qubits");
  Circuit C(NumQubits, formatString("qft_n%u", NumQubits));
  for (unsigned I = 0; I < NumQubits; ++I) {
    C.add1Q(GateKind::H, static_cast<int32_t>(I));
    for (unsigned J = I + 1; J < NumQubits; ++J) {
      double Theta = M_PI / std::pow(2.0, static_cast<double>(J - I));
      if (DecomposeCp)
        addCpDecomposed(C, static_cast<int32_t>(J), static_cast<int32_t>(I),
                        Theta);
      else
        C.add2Q(GateKind::CP, static_cast<int32_t>(J),
                static_cast<int32_t>(I), Theta);
    }
  }
  for (unsigned I = 0; I < NumQubits / 2; ++I)
    C.addSwap(static_cast<int32_t>(I),
              static_cast<int32_t>(NumQubits - 1 - I));
  return C;
}

/// Appends a decomposed Toffoli (control A, control B, target T).
static void addToffoli(Circuit &C, int32_t A, int32_t B, int32_t T) {
  Circuit Holder(C.numQubits());
  Holder.addGate(Gate(GateKind::CCX, A, B, T));
  Circuit Decomposed = Holder.decomposeThreeQubitGates();
  for (const Gate &G : Decomposed.gates())
    C.addGate(G);
}

Circuit qlosure::makeAdder(unsigned NumQubits) {
  assert(NumQubits >= 4 && NumQubits % 2 == 0 &&
         "adder needs an even qubit count >= 4");
  unsigned Width = (NumQubits - 2) / 2;
  Circuit C(NumQubits, formatString("adder_n%u", NumQubits));
  // Register layout: cin = 0, a[i] = 1 + 2i, b[i] = 2 + 2i, cout = last.
  auto QA = [](unsigned I) { return static_cast<int32_t>(1 + 2 * I); };
  auto QB = [](unsigned I) { return static_cast<int32_t>(2 + 2 * I); };
  int32_t Cin = 0;
  int32_t Cout = static_cast<int32_t>(NumQubits - 1);

  // MAJ ladder.
  auto addMaj = [&C](int32_t X, int32_t Y, int32_t Z) {
    C.addCx(Z, Y);
    C.addCx(Z, X);
    addToffoli(C, X, Y, Z);
  };
  auto addUma = [&C](int32_t X, int32_t Y, int32_t Z) {
    addToffoli(C, X, Y, Z);
    C.addCx(Z, X);
    C.addCx(X, Y);
  };

  addMaj(Cin, QB(0), QA(0));
  for (unsigned I = 1; I < Width; ++I)
    addMaj(QA(I - 1), QB(I), QA(I));
  C.addCx(QA(Width - 1), Cout);
  for (unsigned I = Width; I-- > 1;)
    addUma(QA(I - 1), QB(I), QA(I));
  addUma(Cin, QB(0), QA(0));
  return C;
}

Circuit qlosure::makeMultiplier(unsigned NumQubits) {
  assert(NumQubits >= 6 && NumQubits % 3 == 0 &&
         "multiplier needs a qubit count divisible by 3 (>= 6)");
  unsigned Width = NumQubits / 3;
  Circuit C(NumQubits, formatString("multiplier_n%u", NumQubits));
  // Layout: a[i] = i, b[i] = Width + i, p[i] = 2*Width + i.
  auto QA = [](unsigned I) { return static_cast<int32_t>(I); };
  auto QB = [Width](unsigned I) { return static_cast<int32_t>(Width + I); };
  auto QP = [Width](unsigned I) {
    return static_cast<int32_t>(2 * Width + I);
  };

  // Shift-and-add: for every bit a[i], add (b << i) into p controlled on
  // a[i], using a carry-save Toffoli cascade within the product register.
  for (unsigned I = 0; I < Width; ++I) {
    for (unsigned J = 0; J + I < Width; ++J) {
      unsigned K = I + J;
      // p[k] ^= a[i] & b[j]  (partial product).
      addToffoli(C, QA(I), QB(J), QP(K));
      // Ripple a carry into the next product bit when one exists.
      if (K + 1 < Width)
        addToffoli(C, QP(K), QB(J), QP(K + 1));
    }
  }
  return C;
}

Circuit qlosure::makeQugan(unsigned NumQubits, unsigned Layers) {
  assert(NumQubits >= 2 && "qugan needs at least two qubits");
  Circuit C(NumQubits, formatString("qugan_n%u", NumQubits));
  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned Q = 0; Q < NumQubits; ++Q)
      C.add1Q(GateKind::RY, static_cast<int32_t>(Q),
              0.1 * static_cast<double>(L * NumQubits + Q + 1));
    for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
      C.addCx(static_cast<int32_t>(Q), static_cast<int32_t>(Q + 1));
  }
  return C;
}

Circuit qlosure::makeQram(unsigned NumQubits) {
  assert(NumQubits >= 7 && "qram needs at least 7 qubits");
  Circuit C(NumQubits, formatString("qram_n%u", NumQubits));
  // A router tree: address qubits steer a bus qubit through levels of
  // controlled swaps (decomposed Fredkins on qubit triples).
  unsigned AddrBits = 0;
  while ((2u << AddrBits) + AddrBits + 1 <= NumQubits)
    ++AddrBits;
  if (AddrBits)
    --AddrBits;
  unsigned Bus = AddrBits; // Addresses occupy [0, AddrBits).
  unsigned CellBase = AddrBits + 1;
  unsigned NumCells = NumQubits - CellBase;

  auto addFredkin = [&C](int32_t Ctl, int32_t X, int32_t Y) {
    Circuit Holder(C.numQubits());
    Holder.addGate(Gate(GateKind::CSwap, Ctl, X, Y));
    Circuit Decomposed = Holder.decomposeThreeQubitGates();
    for (const Gate &G : Decomposed.gates())
      C.addGate(G);
  };

  for (unsigned A = 0; A < AddrBits; ++A)
    C.add1Q(GateKind::H, static_cast<int32_t>(A));
  // Route bus through the cells level by level.
  for (unsigned A = 0; A < AddrBits; ++A) {
    unsigned Stride = 1u << A;
    for (unsigned Cell = 0; Cell + Stride < NumCells; Cell += 2 * Stride)
      addFredkin(static_cast<int32_t>(A),
                 static_cast<int32_t>(CellBase + Cell),
                 static_cast<int32_t>(CellBase + Cell + Stride));
  }
  // Bus readout couplings.
  for (unsigned Cell = 0; Cell < NumCells; Cell += 2)
    C.addCx(static_cast<int32_t>(CellBase + Cell),
            static_cast<int32_t>(Bus));
  return C;
}

Circuit qlosure::makeGhz(unsigned NumQubits) {
  Circuit C(NumQubits, formatString("ghz_n%u", NumQubits));
  C.add1Q(GateKind::H, 0);
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    C.addCx(static_cast<int32_t>(Q), static_cast<int32_t>(Q + 1));
  return C;
}

Circuit qlosure::makeCat(unsigned NumQubits) {
  Circuit C(NumQubits, formatString("cat_n%u", NumQubits));
  C.add1Q(GateKind::H, 0);
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    C.addCx(static_cast<int32_t>(Q), static_cast<int32_t>(Q + 1));
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.add1Q(GateKind::X, static_cast<int32_t>(Q));
  return C;
}

Circuit qlosure::makeBv(unsigned NumQubits, uint64_t Seed) {
  assert(NumQubits >= 2 && "BV needs at least two qubits");
  Circuit C(NumQubits, formatString("bv_n%u", NumQubits));
  Rng Generator(Seed);
  unsigned Target = NumQubits - 1;
  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.add1Q(GateKind::H, static_cast<int32_t>(Q));
  C.add1Q(GateKind::Z, static_cast<int32_t>(Target));
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    if (Generator.nextBernoulli(0.5))
      C.addCx(static_cast<int32_t>(Q), static_cast<int32_t>(Target));
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    C.add1Q(GateKind::H, static_cast<int32_t>(Q));
  return C;
}

Circuit qlosure::makeWState(unsigned NumQubits) {
  assert(NumQubits >= 2 && "W state needs at least two qubits");
  Circuit C(NumQubits, formatString("wstate_n%u", NumQubits));
  C.add1Q(GateKind::RY, 0, 2 * std::acos(1.0 / std::sqrt(NumQubits)));
  for (unsigned Q = 1; Q < NumQubits; ++Q) {
    double Theta =
        2 * std::acos(1.0 / std::sqrt(static_cast<double>(NumQubits - Q)));
    // Controlled-RY approximated by the standard two-CX construction.
    C.add1Q(GateKind::RY, static_cast<int32_t>(Q), Theta / 2);
    C.addCx(static_cast<int32_t>(Q - 1), static_cast<int32_t>(Q));
    C.add1Q(GateKind::RY, static_cast<int32_t>(Q), -Theta / 2);
    C.addCx(static_cast<int32_t>(Q - 1), static_cast<int32_t>(Q));
  }
  for (unsigned Q = NumQubits; Q-- > 1;)
    C.addCx(static_cast<int32_t>(Q), static_cast<int32_t>(Q - 1));
  return C;
}

Circuit qlosure::makeIsing(unsigned NumQubits, unsigned Layers) {
  Circuit C(NumQubits, formatString("ising_n%u", NumQubits));
  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
      C.add2Q(GateKind::RZZ, static_cast<int32_t>(Q),
              static_cast<int32_t>(Q + 1), 0.3);
    for (unsigned Q = 0; Q < NumQubits; ++Q)
      C.add1Q(GateKind::RX, static_cast<int32_t>(Q), 0.7);
  }
  return C;
}

Circuit qlosure::makeSwapTest(unsigned NumQubits) {
  assert(NumQubits >= 3 && NumQubits % 2 == 1 &&
         "swap test needs an odd qubit count >= 3");
  unsigned Width = (NumQubits - 1) / 2;
  Circuit C(NumQubits, formatString("swaptest_n%u", NumQubits));
  int32_t Ancilla = 0;
  C.add1Q(GateKind::H, Ancilla);
  for (unsigned I = 0; I < Width; ++I) {
    Circuit Holder(C.numQubits());
    Holder.addGate(Gate(GateKind::CSwap, Ancilla,
                        static_cast<int32_t>(1 + I),
                        static_cast<int32_t>(1 + Width + I)));
    Circuit Decomposed = Holder.decomposeThreeQubitGates();
    for (const Gate &G : Decomposed.gates())
      C.addGate(G);
  }
  C.add1Q(GateKind::H, Ancilla);
  return C;
}

Circuit qlosure::makeQpe(unsigned NumQubits) {
  assert(NumQubits >= 3 && "QPE needs at least three qubits");
  unsigned Counting = NumQubits - 1;
  int32_t Eigen = static_cast<int32_t>(NumQubits - 1);
  Circuit C(NumQubits, formatString("qpe_n%u", NumQubits));
  for (unsigned Q = 0; Q < Counting; ++Q)
    C.add1Q(GateKind::H, static_cast<int32_t>(Q));
  C.add1Q(GateKind::X, Eigen);
  for (unsigned Q = 0; Q < Counting; ++Q) {
    // Controlled phase kickback with angle scaled by 2^Q (decomposed).
    double Theta = M_PI / 4 * std::pow(2.0, static_cast<double>(Q % 8));
    addCpDecomposed(C, static_cast<int32_t>(Q), Eigen, Theta);
  }
  // Inverse QFT on the counting register (decomposed controlled phases).
  for (unsigned I = Counting; I-- > 0;) {
    for (unsigned J = Counting - 1; J > I; --J) {
      double Theta = -M_PI / std::pow(2.0, static_cast<double>(J - I));
      addCpDecomposed(C, static_cast<int32_t>(J), static_cast<int32_t>(I),
                      Theta);
    }
    C.add1Q(GateKind::H, static_cast<int32_t>(I));
  }
  return C;
}

Circuit qlosure::makeQaoa(unsigned NumQubits, unsigned Layers,
                          uint64_t Seed) {
  Circuit C(NumQubits, formatString("qaoa_n%u", NumQubits));
  Rng Generator(Seed);
  // Random bounded-degree MaxCut instance.
  std::vector<std::pair<unsigned, unsigned>> Edges;
  for (unsigned Q = 0; Q + 1 < NumQubits; ++Q)
    Edges.push_back({Q, Q + 1});
  for (unsigned Q = 0; Q + 3 < NumQubits; ++Q)
    if (Generator.nextBernoulli(0.5))
      Edges.push_back(
          {Q, Q + 2 + static_cast<unsigned>(Generator.nextBounded(2))});

  for (unsigned Q = 0; Q < NumQubits; ++Q)
    C.add1Q(GateKind::H, static_cast<int32_t>(Q));
  for (unsigned L = 0; L < Layers; ++L) {
    for (auto [A, B] : Edges)
      C.add2Q(GateKind::RZZ, static_cast<int32_t>(A),
              static_cast<int32_t>(B), 0.4 + 0.1 * L);
    for (unsigned Q = 0; Q < NumQubits; ++Q)
      C.add1Q(GateKind::RX, static_cast<int32_t>(Q), 0.9 - 0.1 * L);
  }
  return C;
}

std::vector<NamedCircuit> qlosure::spotlightQasmBenchCircuits() {
  std::vector<NamedCircuit> Suite;
  Suite.push_back({"qram_n20", makeQram(20)});
  Suite.push_back({"qugan_n39", makeQugan(39, 13)});
  Suite.push_back({"multiplier_n45", makeMultiplier(45)});
  Suite.push_back({"qft_n63", makeQft(63)});
  Suite.push_back({"adder_n64", makeAdder(64)});
  Suite.push_back({"qugan_n71", makeQugan(71, 9)});
  Suite.push_back({"multiplier_n75", makeMultiplier(75)});
  return Suite;
}

std::vector<NamedCircuit> qlosure::standardQasmBenchSuite() {
  std::vector<NamedCircuit> Suite = spotlightQasmBenchCircuits();
  // Fill to 41 circuits spanning 20-81 qubits across all families.
  Suite.push_back({"ghz_n25", makeGhz(25)});
  Suite.push_back({"ghz_n40", makeGhz(40)});
  Suite.push_back({"cat_n22", makeCat(22)});
  Suite.push_back({"cat_n35", makeCat(35)});
  Suite.push_back({"bv_n30", makeBv(30)});
  Suite.push_back({"bv_n50", makeBv(50)});
  Suite.push_back({"wstate_n27", makeWState(27)});
  Suite.push_back({"wstate_n36", makeWState(36)});
  Suite.push_back({"wstate_n76", makeWState(76)});
  Suite.push_back({"ising_n26", makeIsing(26, 6)});
  Suite.push_back({"ising_n34", makeIsing(34, 6)});
  Suite.push_back({"ising_n42", makeIsing(42, 5)});
  Suite.push_back({"ising_n66", makeIsing(66, 4)});
  Suite.push_back({"ising_n80", makeIsing(80, 4)});
  Suite.push_back({"qft_n20", makeQft(20)});
  Suite.push_back({"qft_n29", makeQft(29)});
  Suite.push_back({"qft_n45", makeQft(45)});
  Suite.push_back({"adder_n28", makeAdder(28)});
  Suite.push_back({"adder_n44", makeAdder(44)});
  Suite.push_back({"adder_n76", makeAdder(76)});
  Suite.push_back({"multiplier_n30", makeMultiplier(30)});
  Suite.push_back({"multiplier_n60", makeMultiplier(60)});
  Suite.push_back({"qugan_n24", makeQugan(24, 14)});
  Suite.push_back({"qugan_n55", makeQugan(55, 10)});
  Suite.push_back({"qram_n24", makeQram(24)});
  Suite.push_back({"qram_n40", makeQram(40)});
  Suite.push_back({"swaptest_n25", makeSwapTest(25)});
  Suite.push_back({"swaptest_n41", makeSwapTest(41)});
  Suite.push_back({"qpe_n21", makeQpe(21)});
  Suite.push_back({"qpe_n35", makeQpe(35)});
  Suite.push_back({"qaoa_n32", makeQaoa(32, 3)});
  Suite.push_back({"qaoa_n48", makeQaoa(48, 3)});
  Suite.push_back({"qaoa_n64", makeQaoa(64, 2)});
  Suite.push_back({"qaoa_n81", makeQaoa(81, 2)});
  assert(Suite.size() == 41 && "the paper's suite has 41 circuits");
  return Suite;
}
