//===- workloads/QasmBench.h - QASMBench-style circuit families ---*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic reconstructions of the QASMBench circuit families the
/// paper evaluates (Li et al., ACM TQC 2023). The published QASM files are
/// not redistributable here, so each family is built from its textbook
/// construction at the same qubit sizes; gate counts land in the same
/// magnitude and the circuits exercise identical interaction structure
/// (see DESIGN.md, substitutions table). All constructors return unitary
/// circuits with gate arity <= 2 (three-qubit gates pre-decomposed),
/// ready for routing.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_WORKLOADS_QASMBENCH_H
#define QLOSURE_WORKLOADS_QASMBENCH_H

#include "circuit/Circuit.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// Quantum Fourier transform over \p NumQubits qubits. Controlled-phase
/// gates are decomposed into {rz, cx, rz, cx, rz} when \p DecomposeCp
/// (matching QASMBench's low-level gate counts); the final reversal uses
/// SWAP gates.
Circuit makeQft(unsigned NumQubits, bool DecomposeCp = true);

/// Cuccaro ripple-carry adder using \p NumQubits total qubits
/// (two (n-2)/2-bit operands + carry-in + carry-out). Toffolis are
/// decomposed.
Circuit makeAdder(unsigned NumQubits);

/// Shift-and-add multiplier over \p NumQubits = 3 * width qubits
/// (two width-bit operands and a width-bit product register. Controlled
/// additions are built from Toffoli cascades, decomposed to 2Q gates.
Circuit makeMultiplier(unsigned NumQubits);

/// Quantum GAN variational ansatz: \p Layers layers of per-qubit RY
/// rotations followed by a CX entangling chain.
Circuit makeQugan(unsigned NumQubits, unsigned Layers);

/// Bucket-brigade-style QRAM toy over a binary router tree.
Circuit makeQram(unsigned NumQubits);

/// GHZ state preparation (H + CX chain).
Circuit makeGhz(unsigned NumQubits);

/// Cat-state preparation (structurally GHZ with an X-basis flourish).
Circuit makeCat(unsigned NumQubits);

/// Bernstein-Vazirani with a pseudo-random hidden string.
Circuit makeBv(unsigned NumQubits, uint64_t Seed = 7);

/// W-state preparation ladder.
Circuit makeWState(unsigned NumQubits);

/// Transverse-field Ising simulation: \p Layers Trotter steps of RZZ
/// chains + RX fields.
Circuit makeIsing(unsigned NumQubits, unsigned Layers);

/// SWAP test between two (n-1)/2-qubit registers with one ancilla.
Circuit makeSwapTest(unsigned NumQubits);

/// Quantum phase estimation: (n-1) counting qubits controlling powers of
/// a single-qubit phase unitary, followed by an inverse QFT.
Circuit makeQpe(unsigned NumQubits);

/// QAOA MaxCut ansatz on a random 3-regular-ish graph.
Circuit makeQaoa(unsigned NumQubits, unsigned Layers, uint64_t Seed = 11);

/// A named circuit of the evaluation suite.
struct NamedCircuit {
  std::string Name;
  Circuit Circ;
};

/// The 41-circuit medium/large evaluation suite (20-81 qubits) used for
/// the paper's Tables V and VI averages.
std::vector<NamedCircuit> standardQasmBenchSuite();

/// The seven spotlight circuits of Tables V/VI: qram_n20, qugan_n39,
/// multiplier_n45, qft_n63, adder_n64, qugan_n71, multiplier_n75.
std::vector<NamedCircuit> spotlightQasmBenchCircuits();

} // namespace qlosure

#endif // QLOSURE_WORKLOADS_QASMBENCH_H
