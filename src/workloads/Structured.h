//===- workloads/Structured.h - Periodic benchmark circuits -------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for circuits with explicit loop structure — a fixed body
/// repeated under a per-iteration qubit permutation — the workload class
/// the affine replay fast path (route/ReplayPlan.h) targets: QAOA/trotter
/// layers, QFT-like cascades, and conveyor variants of the QUEKO layered
/// circuits. The generated traces satisfy gate(t + B) = pi(gate(t))
/// exactly, so the period detector recovers (B, pi) and replay can cover
/// every iteration after the first.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_WORKLOADS_STRUCTURED_H
#define QLOSURE_WORKLOADS_STRUCTURED_H

#include "circuit/Circuit.h"
#include "topology/CouplingGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {

/// The cyclic shift q -> (q + Shift) mod NumQubits (negative shifts wrap).
std::vector<int32_t> cyclicShiftPermutation(unsigned NumQubits,
                                            int64_t Shift);

/// Repeats \p Body \p Reps times; iteration j's operands are iteration
/// 0's pushed through \p Perm j times (gate parameters are preserved
/// verbatim). \p Perm must be a permutation of [0, Body.numQubits()).
Circuit repeatWithPermutation(const Circuit &Body,
                              const std::vector<int32_t> &Perm, int64_t Reps,
                              std::string Name);

/// A QUEKO-style layered body (disjoint device edges per cycle, 1Q
/// fillers) of \p BodyDepth cycles on \p GenDevice, repeated \p Reps times
/// under a cyclic shift — a conveyor of identical interaction layers
/// marching across the device. Deterministic in \p Seed.
Circuit layeredConveyor(const CouplingGraph &GenDevice, unsigned BodyDepth,
                        int64_t Reps, uint64_t Seed);

/// A QFT-like kernel: \p Reps repetitions of one H + nearest-neighbor
/// controlled-phase cascade with a wrap-around link, pi = identity. The
/// rotation angles vary within the body and repeat across iterations.
Circuit qftLikeKernel(unsigned NumQubits, int64_t Reps);

} // namespace qlosure

#endif // QLOSURE_WORKLOADS_STRUCTURED_H
