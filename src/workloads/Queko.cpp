//===- workloads/Queko.cpp - QUEKO benchmark generator ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Queko.h"

#include "support/Random.h"
#include "topology/Backends.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace qlosure;

QuekoInstance qlosure::generateQueko(const CouplingGraph &GenDevice,
                                     const QuekoSpec &Spec) {
  assert(GenDevice.numEdges() > 0 && "generation device has no edges");
  assert(Spec.Depth >= 1 && "depth must be positive");
  unsigned NumQubits = GenDevice.numQubits();
  Rng Generator(Spec.Seed);

  const GateKind OneQPool[] = {GateKind::H, GateKind::X, GateKind::T,
                               GateKind::S};

  std::vector<std::pair<unsigned, unsigned>> AllEdges = GenDevice.edges();
  Circuit Physical(NumQubits, "queko");

  // The dependence chain that pins the depth: every cycle contains a gate
  // touching ChainQubit, and the chain gate of cycle t+1 shares that qubit
  // with cycle t's.
  unsigned ChainQubit =
      static_cast<unsigned>(Generator.nextBounded(NumQubits));

  size_t TargetTwoQ = static_cast<size_t>(
      Spec.TwoQubitDensity * static_cast<double>(NumQubits) / 2.0);

  for (unsigned Cycle = 0; Cycle < Spec.Depth; ++Cycle) {
    std::vector<uint8_t> Busy(NumQubits, 0);

    // 1. Chain gate first: a 2Q gate on an edge incident to ChainQubit
    //    (falls back to a 1Q gate if the qubit were isolated).
    const auto &ChainNbrs = GenDevice.neighbors(ChainQubit);
    if (!ChainNbrs.empty()) {
      unsigned Other = ChainNbrs[static_cast<size_t>(
          Generator.nextBounded(ChainNbrs.size()))];
      Physical.addCx(static_cast<int32_t>(ChainQubit),
                     static_cast<int32_t>(Other));
      Busy[ChainQubit] = Busy[Other] = 1;
      // The chain continues through either endpoint.
      ChainQubit = Generator.nextBernoulli(0.5) ? ChainQubit : Other;
    } else {
      Physical.add1Q(OneQPool[Generator.nextBounded(4)],
                     static_cast<int32_t>(ChainQubit));
      Busy[ChainQubit] = 1;
    }

    // 2. Fill with disjoint 2Q gates up to the density target.
    Generator.shuffle(AllEdges);
    size_t TwoQPlaced = 1;
    for (auto [A, B] : AllEdges) {
      if (TwoQPlaced >= TargetTwoQ)
        break;
      if (Busy[A] || Busy[B])
        continue;
      Physical.addCx(static_cast<int32_t>(A), static_cast<int32_t>(B));
      Busy[A] = Busy[B] = 1;
      ++TwoQPlaced;
    }

    // 3. Single-qubit fillers on free qubits.
    for (unsigned Q = 0; Q < NumQubits; ++Q) {
      if (Busy[Q])
        continue;
      if (Generator.nextBernoulli(Spec.OneQubitDensity))
        Physical.add1Q(OneQPool[Generator.nextBounded(4)],
                       static_cast<int32_t>(Q));
    }
  }
  assert(Physical.depth() == Spec.Depth &&
         "cycle construction must realize the target depth exactly");

  // Scramble: logical qubit L = Perm[P] for device qubit P; the witness
  // placement maps L back onto P.
  std::vector<unsigned> Perm(NumQubits);
  std::iota(Perm.begin(), Perm.end(), 0u);
  Generator.shuffle(Perm);

  QuekoInstance Instance;
  Instance.OptimalDepth = Spec.Depth;
  Instance.Witness.resize(NumQubits);
  for (unsigned P = 0; P < NumQubits; ++P)
    Instance.Witness[Perm[P]] = P;
  Instance.Circ = Physical.withMappedQubits(
      [&Perm](int32_t Q) { return static_cast<int32_t>(Perm[Q]); });
  Instance.Circ.setName("queko");
  return Instance;
}

std::vector<QuekoSet> qlosure::paperQuekoSets() {
  std::vector<QuekoSet> Sets;
  Sets.push_back({"queko-bss-16qbt", makeAspen16()});
  Sets.push_back({"queko-bss-54qbt", makeSycamore54()});
  Sets.push_back({"queko-bss-81qbt", makeKings9x9()});
  Sets.push_back({"queko-bss-16x16", makeKings16x16()});
  return Sets;
}
