//===- service/Histogram.h - Log-scale latency histograms ---------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-bucket, log-scale latency histograms for the serving tier.
///
/// Buckets are powers of two in microseconds: 1us, 2us, 4us, ... up to
/// ~134s, plus an overflow bucket — the same 28-bound layout everywhere,
/// so histograms from different daemons merge bucket-by-bucket with no
/// negotiation. Recording is a relaxed atomic increment per bucket (the
/// per-bucket counters are the lock stripes: concurrent recorders touch
/// different cache lines for different latencies and never serialize),
/// so a histogram can sit on the request path of every worker thread.
///
/// The JSON snapshot is a self-describing stats leaf tagged
/// `"type":"histogram"`; `mergeStatsDocs` (service/Metrics.h) sums the
/// bucket arrays element-wise across shards and the Prometheus walker
/// renders the classic `_bucket`/`_sum`/`_count` series from it.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_HISTOGRAM_H
#define QLOSURE_SERVICE_HISTOGRAM_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>

namespace qlosure {

class LatencyHistogram {
public:
  /// Number of finite bucket bounds: 1us * 2^k for k in [0, NumBounds).
  static constexpr int NumBounds = 28;

  LatencyHistogram() = default;

  /// Records one observation. Lock-free; safe from any thread.
  void recordNs(int64_t Ns) {
    if (Ns < 0)
      Ns = 0;
    Buckets[bucketFor(Ns)].fetch_add(1, std::memory_order_relaxed);
    SumNs.fetch_add(Ns, std::memory_order_relaxed);
  }
  void recordSeconds(double Seconds) {
    recordNs(static_cast<int64_t>(Seconds * 1e9));
  }

  uint64_t count() const {
    uint64_t C = 0;
    for (int I = 0; I <= NumBounds; ++I)
      C += Buckets[I].load(std::memory_order_relaxed);
    return C;
  }

  /// Upper bound of finite bucket \p I, in microseconds.
  static int64_t boundUs(int I) { return int64_t(1) << I; }

  /// Bucket index for an observation: the first bound it fits under, or
  /// the overflow bucket (index NumBounds).
  static int bucketFor(int64_t Ns) {
    int64_t Us = (Ns + 999) / 1000; // ceil: 1ns..1us land in the 1us bucket
    for (int I = 0; I < NumBounds; ++I)
      if (Us <= boundUs(I))
        return I;
    return NumBounds;
  }

  /// Stats-document leaf:
  ///   {"type":"histogram","count":N,"sum_seconds":S,
  ///    "le_us":[1,2,...],"bucket_counts":[...,overflow]}
  /// bucket_counts are per-bucket (not cumulative) so shard merging is a
  /// plain element-wise sum; the Prometheus renderer accumulates.
  json::Value toJson() const;

private:
  std::atomic<uint64_t> Buckets[NumBounds + 1] = {};
  std::atomic<int64_t> SumNs{0};
};

/// Returns true when \p V looks like a LatencyHistogram::toJson leaf.
bool isHistogramJson(const json::Value &V);

/// Merges histogram leaf \p Src into \p Dst (both must satisfy
/// isHistogramJson): counts and sums add, bucket arrays add element-wise
/// where lengths match, bounds stay as Dst's.
void mergeHistogramJson(json::Value &Dst, const json::Value &Src);

} // namespace qlosure

#endif // QLOSURE_SERVICE_HISTOGRAM_H
