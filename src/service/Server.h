//===- service/Server.h - qlosured Unix-socket server ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived mapping service: a stream-socket server — unix-domain
/// or TCP, per the parsed listen address (service/Transport.h) — speaking
/// the newline-delimited JSON protocol v2 (service/Protocol.h), backed by
/// the sharded context/result caches (service/ContextCache.h) and the
/// bounded worker-pool scheduler (service/Scheduler.h).
///
/// Since protocol v2 each connection is **fully asynchronous**: the
/// connection thread only reads and validates; every response is written
/// through the connection's mutex-serialized writer, by whichever thread
/// finishes first. Cheap requests (ping/stats/cache hits/validation
/// errors) answer inline from the connection thread; scheduled routes
/// answer from the worker that ran them — so a pipelined connection gets
/// responses out of order and one slow route never head-of-line-blocks
/// the rest of the stream.
///
/// Request path for `route`:
///
///   connection thread: parse line -> validate mapper/backend -> import
///   QASM -> fingerprint -> result-cache lookup (hit: respond now) ->
///   register the job ticket under its id -> trySubmit (full queue:
///   `queue_full`) -> **keep reading** (no wait).
///
///   worker thread: context-cache getOrBuild (shared RoutingContext with
///   warm omega weights) -> route with the worker's pooled RoutingScratch,
///   polling the job's CancellationToken once per front-layer step ->
///   verify -> print -> insert result cache -> write the response through
///   the connection writer, or the `cancelled`/`deadline_exceeded` error
///   when the token fired mid-route.
///
///   `cancel` (connection thread): look up the ticket by id; a queued job
///   is unqueued and answered `cancelled` immediately, a running one has
///   its token signalled and answers through its own completion path.
///
/// Flow control: responses are written with a per-send timeout
/// (SO_SNDTIMEO, 10 s) *and* a 30 s cumulative per-frame bound, so a
/// peer that stops reading — or drips bytes to reset per-call timers —
/// while responses are owed is declared dead and its connection latched
/// closed. A wedged client delays a worker by tens of seconds at most,
/// never pins it.
///
/// Threading/ownership contract: the Server owns the accept thread, one
/// connection thread per live connection, and the scheduler's workers.
/// Each Connection object (socket fd + writer mutex + in-flight job
/// table) is shared between its connection thread and the workers running
/// its jobs via shared_ptr; the fd closes when the last holder drops, so
/// a worker can never write into a recycled fd. Caches are internally
/// synchronized; counters take CounterMu; nothing here may be touched
/// after teardown() returns except the destructor.
///
/// Every request is answered: malformed input yields structured error
/// responses, expired deadlines yield `deadline_exceeded` (checked both
/// at pickup and during routing), cancelled requests yield `cancelled`,
/// and shutdown yields `shutting_down` — a connection is never wedged and
/// the daemon never crashes on bad bytes.
///
/// Lifecycle: start() binds and spawns the accept thread; wait() blocks
/// until a `shutdown` request, requestStop(), or the optional external
/// predicate (the daemon's signal flag) fires, then tears everything down
/// gracefully (drains in-flight jobs, joins every thread, unlinks the
/// socket). One Server per process lifetime stage; not restartable.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_SERVER_H
#define QLOSURE_SERVICE_SERVER_H

#include "service/ContextCache.h"
#include "service/Histogram.h"
#include "service/InflightTable.h"
#include "service/Protocol.h"
#include "service/ResultStore.h"
#include "service/Scheduler.h"
#include "service/Transport.h"
#include "support/Error.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "topology/CouplingGraph.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qlosure {
namespace service {

/// Server configuration.
struct ServerOptions {
  /// Listen address (required): "unix:/path", "tcp:host:port", or a bare
  /// filesystem path (unix). A stale unix socket file is replaced; a tcp
  /// port of 0 binds ephemerally (boundAddress() reports the real port).
  std::string Listen;
  /// Scheduler worker threads (0 = hardware concurrency).
  unsigned Workers = 0;
  /// Bounded scheduler queue; overflow answers `queue_full`.
  size_t QueueCapacity = 256;
  /// Byte budgets and stripe count of the two caches.
  size_t ContextCacheBytes = 256ull << 20;
  size_t ResultCacheBytes = 64ull << 20;
  size_t CacheShards = 8;
  /// Default per-request deadline when the request carries no timeout_ms
  /// (<= 0 disables the default deadline entirely).
  double DefaultTimeoutSeconds = 60.0;
  /// Maximum accepted request-line length; longer lines get a structured
  /// error and the connection is closed (the stream cannot be trusted to
  /// resynchronize).
  size_t MaxRequestBytes = 64ull << 20;
  /// Slow-request threshold in milliseconds for the structured log
  /// (support/Log.h): a routed request whose total latency (queue wait
  /// included) reaches it emits one warn-level "slow_request" line with
  /// its per-phase trace. 0 disables the slow log entirely.
  double SlowRequestMs = 0;
  /// Durable result store path (service/ResultStore.h); empty disables
  /// the durable tier entirely. When set, result-cache misses consult
  /// the store before routing and routed results are appended to it, so
  /// warm results survive restarts. start() fails when the file cannot
  /// be opened or is not a result store.
  std::string StorePath;
  /// Open the store read-only: serve from it (following another
  /// daemon's appends) but never write. Requires StorePath.
  bool StoreReadOnly = false;
  /// Store fsync batching threshold in bytes (0 = sync every record).
  size_t StoreFsyncBytes = 1 << 20;
};

/// Always-on per-op and per-phase latency histograms, surfaced in the
/// `stats` document under "latency" and rendered by service/Metrics.h as
/// Prometheus `_bucket`/`_sum`/`_count` series. Recording costs a few
/// steady-clock reads per *request* (never per routing step), so these
/// stay on even when tracing is off.
struct ServiceHistograms {
  LatencyHistogram Route;          ///< route op, total (queue wait included).
  LatencyHistogram BatchItem;      ///< one batch item, worker time.
  LatencyHistogram QueueWait;      ///< submit -> worker pickup.
  LatencyHistogram ContextBuild;   ///< context-cache getOrBuild.
  LatencyHistogram InitialMapping; ///< identity / bidirectional derive.
  LatencyHistogram RoutingLoop;    ///< the mapper's route() call.
  LatencyHistogram Verify;         ///< gate-for-gate verification.

  /// The stats subtree: {"route": {histogram...}, ...}.
  json::Value toJson() const;
};

/// Top-level request counters (cache and scheduler counters live in their
/// components; statsJson() aggregates all of them).
struct ServerCounters {
  uint64_t Connections = 0;
  uint64_t Requests = 0;
  uint64_t RouteRequests = 0;
  uint64_t CancelRequests = 0;
  /// Batch sessions accepted for parsing and the items they carried
  /// (counted at arrival; rejected batches still count — they were
  /// requested).
  uint64_t BatchRequests = 0;
  uint64_t BatchItems = 0;
  uint64_t Errors = 0;
  /// Requests answered by attaching to another identical request's
  /// in-flight route instead of routing again (service/InflightTable.h).
  uint64_t Coalesced = 0;
  /// Affine fast-path outcomes, summed over every completed route: loop
  /// periods covered by replaying a recorded swap schedule vs. periods
  /// routed gate-by-gate (recording or post-divergence fallback).
  uint64_t AffineReplays = 0;
  uint64_t AffineFallbacks = 0;
};

/// The service.
class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the socket, starts the scheduler and the accept thread.
  Status start();

  /// Blocks until stop is requested (shutdown op, requestStop(), or
  /// \p ExternalStop returning true — polled a few times per second so a
  /// signal handler only needs to flip a flag), then tears down: stops
  /// accepting, unblocks and joins connection threads, drains the
  /// scheduler, unlinks the socket.
  void wait(const std::function<bool()> &ExternalStop = nullptr);

  /// Requests asynchronous stop; wait() performs the actual teardown.
  void requestStop();

  /// Convenience for embedders (tests, the bench): requestStop() + the
  /// teardown wait() would do. Safe to call from any thread except a
  /// connection handler (those must use the shutdown op instead).
  void stop();

  const std::string &listenAddress() const { return Options.Listen; }

  /// The canonical bound address ("unix:/path" / "tcp:host:port" with the
  /// resolved port) — what clients should connect to. Valid after a
  /// successful start().
  std::string boundAddress() const { return Acceptor.endpoint().str(); }

  /// The full stats document served by the `stats` op.
  json::Value statsJson() const;

  ServerCounters counters() const;
  CacheStats contextCacheStats() const { return Contexts.stats(); }
  CacheStats resultCacheStats() const { return Results.stats(); }

private:
  struct PooledBackend {
    std::shared_ptr<const CouplingGraph> Graph;
    uint64_t Fingerprint = 0;
  };

  /// Per-connection shared state: the socket, the serialized writer, and
  /// the in-flight cancellable-job table. Defined in Server.cpp.
  struct Connection;

  /// Shared state of one in-flight `batch` session: per-item outcome
  /// slots, the remaining-item countdown whose final decrement sends the
  /// summary (which is how "summary always last" is enforced), and the
  /// per-item scheduler tickets for whole-batch cancellation. Defined in
  /// Server.cpp.
  struct BatchState;

  /// Outcome of the worker-side routing core shared by `route` and
  /// `batch` items. Defined in Server.cpp.
  struct RouteOutcome;

  void acceptLoop();
  void connectionLoop(std::shared_ptr<Connection> Conn, size_t Slot);
  void teardown();

  /// Handles one request line. All responses go out through \p Conn's
  /// writer — inline for cheap ops, from a worker for scheduled routes.
  /// \p StopAfterSend is set for the shutdown op: the ack is written
  /// *before* the caller triggers requestStop(), or teardown could sever
  /// the connection ahead of it.
  void handleLine(const std::shared_ptr<Connection> &Conn,
                  const std::string &Line, bool &StopAfterSend);
  void handleRoute(const std::shared_ptr<Connection> &Conn,
                   const Request &Req);
  void handleBatch(const std::shared_ptr<Connection> &Conn,
                   const Request &Req);
  void handleCancel(const std::shared_ptr<Connection> &Conn,
                    const Request &Req);

  /// The mapper/context/route/verify/cache core every routed request runs
  /// on a worker thread; `route` and `batch` items differ only in how
  /// they report the outcome. \p BeforeRoute, when set, runs right before
  /// the main routing pass (after the bidirectional derive) — the hook
  /// `route` uses to install its progress sink.
  /// \p T, when non-null, receives the per-phase spans of this request
  /// (context_build, initial_mapping, routing_loop, verify, print_qasm)
  /// and is installed as the scratch's trace sink around the mapper call.
  /// Phase latencies are recorded into Histos regardless of tracing.
  RouteOutcome executeRoute(const std::shared_ptr<Circuit> &Logical,
                            const std::shared_ptr<const PooledBackend> &Backend,
                            const RouteRequest &Params, uint64_t CircuitFp,
                            const CacheKey &ResultKey, RoutingScratch &Scratch,
                            CancellationToken &Cancel,
                            const std::function<void()> &BeforeRoute,
                            Trace *T = nullptr);

  /// Records item \p Index's terse outcome and performs the batch's
  /// completion protocol: the thread whose decrement empties the batch
  /// releases the id and writes the summary — necessarily after every
  /// item frame, because each item's frame is sent before its decrement.
  void finishBatchItem(const std::shared_ptr<BatchState> &Batch, size_t Index,
                       const char *Status);

  /// Cancels every item of \p Batch: queued items are claimed, reported
  /// (`cancelled` item frame) and finished here; running items get their
  /// tokens signalled and report through their own completion paths.
  /// Returns whether any item was still live.
  bool cancelBatch(const std::shared_ptr<BatchState> &Batch);

  /// Writes an error response through \p Conn and bumps the error
  /// counter (callable from any thread).
  void sendError(Connection &Conn, const char *Op, const std::string &Id,
                 const char *Code, const std::string &Message);

  /// Returns the pooled (lazily built) backend variant, or nullptr when
  /// the name is unknown. Shared ownership: in-flight requests keep their
  /// variant alive even if the pool evicts it.
  std::shared_ptr<const PooledBackend>
  lookupBackend(const std::string &Name, bool ErrorAware,
                uint64_t CalibrationSeed);

  /// Serves \p Key from the in-memory result cache, falling back to the
  /// durable store (a store hit is promoted into the memory cache).
  /// Returns nullptr on a full miss.
  std::shared_ptr<const CachedResult> lookupResult(const CacheKey &Key);

  ServerOptions Options;
  std::unique_ptr<Scheduler> Workers;
  ContextCache Contexts;
  ResultCache Results;
  /// The durable tier behind Results (nullptr when StorePath is empty).
  std::unique_ptr<ResultStore> Store;
  /// Single-flight coalescing of identical routed requests.
  std::unique_ptr<InflightTable> Inflight;
  Timer Uptime;

  Listener Acceptor;
  std::thread AcceptThread;

  /// Connection bookkeeping: ConnThreads[I] handles Conns[I]. Finished
  /// connections report their slot in FinishedSlots; the accept loop
  /// joins them and recycles the slots via FreeSlots, so a long-lived
  /// daemon serving many short-lived connections holds O(max concurrent),
  /// not O(total), thread stacks. Conns[I] may outlive its slot: workers
  /// with in-flight jobs hold their own references.
  mutable std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
  std::vector<std::shared_ptr<Connection>> Conns;
  std::vector<size_t> FinishedSlots;
  std::vector<size_t> FreeSlots;

  mutable std::mutex BackendMu;
  /// Keyed by variant id ("name|plain" / "name|ea<seed>"). The
  /// calibration-seed dimension is client-controlled, so the pool is
  /// bounded: past MaxBackendVariants the error-aware variants are
  /// dropped (plain variants are at most one per known backend).
  std::map<std::string, std::shared_ptr<const PooledBackend>> Backends;
  static constexpr size_t MaxBackendVariants = 32;

  mutable std::mutex CounterMu;
  ServerCounters Counters;

  /// Lock-free latency recording (see ServiceHistograms).
  ServiceHistograms Histos;

  std::mutex StopMu;
  std::condition_variable StopCv;
  bool StopRequested = false;
  std::atomic<bool> Stopping{false};
  bool Started = false;
  /// Serializes teardown(): concurrent callers (a wait()er and the
  /// destructor) must both block until teardown completed, not return
  /// while the other is still mid-teardown.
  std::mutex TeardownMu;
  bool TornDown = false;
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_SERVER_H
