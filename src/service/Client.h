//===- service/Client.h - Blocking qlosured client ---------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the qlosured Unix-socket protocol, shared
/// by tools/qlosure-client, the service integration tests, and the
/// bench_service_throughput load generator: connect (optionally retrying
/// until the daemon is up), send one request line, read one response line.
/// No background threads, no state beyond the socket — one instance per
/// connection, usable from any thread but not from several at once.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_CLIENT_H
#define QLOSURE_SERVICE_CLIENT_H

#include "support/Error.h"

#include <string>

namespace qlosure {
namespace service {

/// One client connection.
class Client {
public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept : Fd(Other.Fd), Pending(std::move(Other.Pending)) {
    Other.Fd = -1;
  }

  /// Connects to the daemon at \p SocketPath. When \p RetrySeconds > 0 a
  /// refused/missing socket is retried (50 ms backoff) until the deadline
  /// — the standard way to wait for a freshly exec'd daemon to bind.
  Status connect(const std::string &SocketPath, double RetrySeconds = 0);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends \p Line (newline appended).
  Status sendLine(const std::string &Line);

  /// Reads one newline-terminated response into \p Line (newline
  /// stripped). Fails when the daemon closes the connection first.
  Status recvLine(std::string &Line);

  /// sendLine + recvLine.
  Status request(const std::string &Line, std::string &Response);

private:
  int Fd = -1;
  std::string Pending; ///< Bytes read past the last returned line.
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_CLIENT_H
