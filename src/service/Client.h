//===- service/Client.h - Blocking qlosured client ---------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the qlosured protocol v2 over either
/// transport (unix-domain or TCP),
/// shared by tools/qlosure-client, the service integration tests, and the
/// bench_service_throughput load generator: connect (optionally retrying
/// until the daemon is up), send request lines, read frames.
///
/// Since protocol v2 responses arrive out of order and event frames may
/// interleave, so the client demultiplexes: recvResponseFor() reads
/// frames until the final response matching a wanted (op, id) appears,
/// handing event frames to a callback and stashing other requests'
/// finals for their own recvResponseFor() calls. The v1-style
/// request()/recvLine() remain for lockstep callers (a connection with
/// one outstanding request never observes reordering).
///
/// No background threads, no locks — one instance per connection, usable
/// from any thread but not from several at once.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_CLIENT_H
#define QLOSURE_SERVICE_CLIENT_H

#include "support/Error.h"

#include <deque>
#include <functional>
#include <string>

namespace qlosure {
namespace service {

/// One client connection.
class Client {
public:
  /// Invoked by recvResponseFor() with the raw line of each event frame.
  using EventFn = std::function<void(const std::string &Line)>;

  Client() = default;
  ~Client() { close(); }

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept
      : Fd(Other.Fd), Pending(std::move(Other.Pending)),
        Stash(std::move(Other.Stash)) {
    Other.Fd = -1;
  }

  /// Connects to the daemon at \p Address — "unix:/path", "tcp:host:port",
  /// or a bare socket path. When \p RetrySeconds > 0 a refused/missing
  /// endpoint is retried with bounded exponential backoff + jitter
  /// (BackoffPolicy defaults) until the deadline — the standard way to
  /// wait for a freshly exec'd daemon to bind.
  Status connect(const std::string &Address, double RetrySeconds = 0);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Bounds every subsequent blocking send/recv on this connection to
  /// \p Seconds (SO_SNDTIMEO / SO_RCVTIMEO); a timed-out read surfaces
  /// as a recv error. What the router's health pings and stats fetches
  /// use so a wedged shard cannot pin them. <= 0 restores unbounded.
  Status setIoTimeout(double Seconds);

  /// Sends \p Line (newline appended).
  Status sendLine(const std::string &Line);

  /// Reads one raw newline-terminated frame into \p Line (newline
  /// stripped), event or final, skipping the stash. Fails when the
  /// daemon closes the connection first. Lockstep-era primitive; prefer
  /// recvResponseFor() on pipelined connections.
  Status recvLine(std::string &Line);

  /// Demultiplexing read: returns the next final response whose "id"
  /// equals \p Id and (unless \p OpFilter is empty) whose "op" equals
  /// \p OpFilter. An empty \p Id matches the first final response of any
  /// correlation. Event frames encountered on the way are passed to
  /// \p OnEvent (or dropped); finals for other (op, id) pairs are stashed
  /// and served to the recvResponseFor() call that wants them.
  Status recvResponseFor(const std::string &Id, std::string &Response,
                         const EventFn &OnEvent = {},
                         const std::string &OpFilter = {});

  /// sendLine + recvResponseFor with an empty id: the classic blocking
  /// round trip, tolerant of stray event frames.
  Status request(const std::string &Line, std::string &Response);

private:
  struct StashedFinal {
    std::string Id;
    std::string Op;
    std::string Line;
  };

  int Fd = -1;
  std::string Pending; ///< Bytes read past the last returned line.
  /// Final responses read while waiting for a different (op, id), in
  /// arrival order.
  std::deque<StashedFinal> Stash;
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_CLIENT_H
