//===- service/SocketIO.h - Shared socket I/O helpers ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two primitives the newline-delimited protocol needs on both sides
/// of the socket, shared by Server and Client so the EINTR/MSG_NOSIGNAL
/// and line-framing behavior can never drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_SOCKETIO_H
#define QLOSURE_SERVICE_SOCKETIO_H

#include <string>

#include <sys/types.h>

namespace qlosure {
namespace service {

/// Writes all of \p Text to \p Fd, retrying on EINTR, with MSG_NOSIGNAL
/// so a vanished peer yields EPIPE instead of killing the process.
/// Returns false when the peer is gone. \p MaxSeconds > 0 bounds the
/// *cumulative* write time — a peer draining one byte per SO_SNDTIMEO
/// window makes per-call timeouts useless, so slow overall progress also
/// fails the send (the caller treats the peer as gone).
bool sendAll(int Fd, const std::string &Text, double MaxSeconds = 0);

/// Reads up to \p Cap bytes from \p Fd into \p Buf, retrying on EINTR so
/// a signal during a blocking read never surfaces as a spurious
/// connection error. Returns the byte count, 0 at orderly EOF, or -1 on
/// a real socket error (errno preserved).
ssize_t recvSome(int Fd, char *Buf, size_t Cap);

/// Pops one complete line (newline removed, trailing '\r' stripped) off
/// the front of \p Pending into \p Line. Returns false when \p Pending
/// holds no complete line yet.
bool popLine(std::string &Pending, std::string &Line);

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_SOCKETIO_H
