//===- service/SocketIO.cpp - Shared socket I/O helpers ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SocketIO.h"

#include <cerrno>
#include <chrono>

#include <sys/socket.h>

using namespace qlosure;
using namespace qlosure::service;

bool service::sendAll(int Fd, const std::string &Text, double MaxSeconds) {
  auto Deadline = std::chrono::steady_clock::time_point::max();
  if (MaxSeconds > 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(MaxSeconds));
  size_t Off = 0;
  while (Off < Text.size()) {
    ssize_t N =
        ::send(Fd, Text.data() + Off, Text.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
    if (Off < Text.size() && std::chrono::steady_clock::now() >= Deadline)
      return false; // Peer is draining too slowly; treat as gone.
  }
  return true;
}

ssize_t service::recvSome(int Fd, char *Buf, size_t Cap) {
  while (true) {
    ssize_t N = ::recv(Fd, Buf, Cap, 0);
    if (N < 0 && errno == EINTR)
      continue;
    return N;
  }
}

bool service::popLine(std::string &Pending, std::string &Line) {
  size_t Nl = Pending.find('\n');
  if (Nl == std::string::npos)
    return false;
  Line = Pending.substr(0, Nl);
  Pending.erase(0, Nl + 1);
  if (!Line.empty() && Line.back() == '\r')
    Line.pop_back();
  return true;
}
