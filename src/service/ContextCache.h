//===- service/ContextCache.h - Sharded routing-state caches -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memoization heart of the qlosured service: a mutex-striped, sharded
/// LRU cache with a byte budget, instantiated twice —
///
///  * ContextCache maps (circuit fingerprint, backend fingerprint, context
///    config fingerprint) to a shared CachedContext bundle that owns the
///    circuit, the coupling graph, and the fully built RoutingContext
///    (distances, DAG, eagerly warmed omega weights). A warm request skips
///    the entire per-(circuit, backend) precomputation the paper's
///    abstraction made cheap and this cache makes free.
///
///  * ResultCache maps (context key + mapper/placement config) to a shared
///    CachedResult holding the routed QASM text and its statistics.
///    Routing is deterministic (fixed seeds, identity or derived initial
///    placements), so replaying a cached result is byte-identical to
///    re-running the mapper — verified end-to-end by
///    bench_service_throughput.
///
/// Threading/ownership contract: every public member is safe to call
/// from any thread — keys are striped over independently locked shards,
/// so unrelated requests never contend. Values are shared_ptr<const T>
/// and immutable once inserted: the cache owns one reference, every
/// reader owns its own, and eviction only drops the cache's — in-flight
/// readers (worker threads mid-route) keep theirs for as long as they
/// need. A miss builds *outside* the shard lock: concurrent first
/// requests for one key may build twice, but both builds are deterministic
/// and the insert keeps the first — simple, and never stalls a shard
/// behind an expensive build.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_CONTEXTCACHE_H
#define QLOSURE_SERVICE_CONTEXTCACHE_H

#include "circuit/Circuit.h"
#include "route/RoutingContext.h"
#include "support/Fingerprint.h"
#include "topology/CouplingGraph.h"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace qlosure {

class Trace;

namespace service {

/// Cache key: three content fingerprints (see support/Fingerprint.h).
struct CacheKey {
  uint64_t CircuitFp = 0;
  uint64_t BackendFp = 0;
  uint64_t ConfigFp = 0;

  bool operator==(const CacheKey &Other) const {
    return CircuitFp == Other.CircuitFp && BackendFp == Other.BackendFp &&
           ConfigFp == Other.ConfigFp;
  }

  uint64_t hash() const {
    return hashCombine(hashCombine(CircuitFp, BackendFp), ConfigFp);
  }
};

struct CacheKeyHasher {
  size_t operator()(const CacheKey &Key) const {
    return static_cast<size_t>(Key.hash());
  }
};

/// Aggregate counters, summed over shards.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;
  uint64_t Bytes = 0;
};

/// Sizing knobs shared by both instantiations.
struct CacheOptions {
  /// Number of independently locked shards (rounded up to at least 1).
  size_t Shards = 8;
  /// Total byte budget across all shards; the least recently used entries
  /// of an over-budget shard are evicted after each insert. Each shard
  /// always retains its most recent entry, so one entry larger than the
  /// budget still caches (it just evicts everything else in its shard).
  size_t ByteBudget = 256ull << 20;
};

/// Generic sharded LRU keyed by CacheKey. ValueT must expose
/// `size_t approxBytes() const`.
template <typename ValueT> class ShardedLruCache {
public:
  using ValuePtr = std::shared_ptr<const ValueT>;
  using BuildFn = std::function<ValuePtr()>;

  explicit ShardedLruCache(CacheOptions Options = {})
      : Options(Options),
        TheShards(std::max<size_t>(Options.Shards, 1)) {}

  /// Returns the cached value for \p Key, or invokes \p Build, inserts the
  /// result, and returns it. A Build returning nullptr is passed through
  /// uncached (the caller failed to produce a value). \p WasHit, when
  /// non-null, reports whether this call was served from cache.
  ValuePtr getOrBuild(const CacheKey &Key, const BuildFn &Build,
                      bool *WasHit = nullptr) {
    Shard &S = shardFor(Key);
    {
      std::lock_guard<std::mutex> Lock(S.Mu);
      auto It = S.Map.find(Key);
      if (It != S.Map.end()) {
        S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
        ++S.Hits;
        if (WasHit)
          *WasHit = true;
        return It->second->Value;
      }
      ++S.Misses;
    }
    if (WasHit)
      *WasHit = false;
    ValuePtr Built = Build();
    if (!Built)
      return nullptr;
    return insert(S, Key, std::move(Built));
  }

  /// Inserts \p Value for \p Key without touching the hit/miss counters
  /// (for callers that already did a lookup()); keeps the incumbent on a
  /// racing duplicate insert. Returns the entry the cache now holds.
  ValuePtr insertValue(const CacheKey &Key, ValuePtr Value) {
    return insert(shardFor(Key), Key, std::move(Value));
  }

  /// Cached value for \p Key, or nullptr (counts a hit or a miss).
  ValuePtr lookup(const CacheKey &Key) {
    Shard &S = shardFor(Key);
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It == S.Map.end()) {
      ++S.Misses;
      return nullptr;
    }
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    ++S.Hits;
    return It->second->Value;
  }

  CacheStats stats() const {
    CacheStats Total;
    for (const Shard &S : TheShards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      Total.Hits += S.Hits;
      Total.Misses += S.Misses;
      Total.Evictions += S.Evictions;
      Total.Entries += S.Lru.size();
      Total.Bytes += S.Bytes;
    }
    return Total;
  }

  void clear() {
    for (Shard &S : TheShards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      S.Lru.clear();
      S.Map.clear();
      S.Bytes = 0;
    }
  }

private:
  struct Entry {
    CacheKey Key;
    ValuePtr Value;
    size_t Bytes = 0;
  };

  struct Shard {
    mutable std::mutex Mu;
    std::list<Entry> Lru; ///< Front = most recently used.
    std::unordered_map<CacheKey, typename std::list<Entry>::iterator,
                       CacheKeyHasher>
        Map;
    size_t Bytes = 0;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
  };

  Shard &shardFor(const CacheKey &Key) {
    return TheShards[Key.hash() % TheShards.size()];
  }

  ValuePtr insert(Shard &S, const CacheKey &Key, ValuePtr Value) {
    size_t Bytes = Value->approxBytes();
    size_t ShardBudget =
        std::max<size_t>(Options.ByteBudget / TheShards.size(), 1);
    std::lock_guard<std::mutex> Lock(S.Mu);
    // A racing builder may have inserted first; keep the incumbent so
    // every caller shares one value.
    auto It = S.Map.find(Key);
    if (It != S.Map.end())
      return It->second->Value;
    S.Lru.push_front(Entry{Key, std::move(Value), Bytes});
    S.Map[Key] = S.Lru.begin();
    S.Bytes += Bytes;
    while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
      Entry &Victim = S.Lru.back();
      S.Bytes -= Victim.Bytes;
      S.Map.erase(Victim.Key);
      S.Lru.pop_back();
      ++S.Evictions;
    }
    return S.Lru.begin()->Value;
  }

  CacheOptions Options;
  std::vector<Shard> TheShards;
};

/// A cached (circuit, backend) precomputation bundle. Owns copies of the
/// circuit and graph so the RoutingContext's references stay valid for the
/// entry's whole lifetime, independent of the request that built it.
class CachedContext {
public:
  /// Builds a bundle over copies of \p Circ and \p Hw. The context's
  /// omega weights are computed eagerly when \p WarmWeights is set and the
  /// context is valid — a cached context will be routed with, so first-use
  /// laziness only moves the cost into the first request's latency.
  /// \p T, when non-null, receives the construction-phase spans
  /// (ctx_distances, ctx_dag, ctx_weights) of a traced cold build.
  static std::shared_ptr<const CachedContext>
  build(const Circuit &Circ, const CouplingGraph &Hw,
        const RoutingContextOptions &Options, bool WarmWeights = true,
        Trace *T = nullptr);

  const RoutingContext &context() const { return *Ctx; }
  const Circuit &circuit() const { return Circ; }
  const CouplingGraph &hardware() const { return Hw; }
  size_t approxBytes() const { return Bytes; }

private:
  CachedContext() = default;

  Circuit Circ;
  CouplingGraph Hw;
  std::optional<RoutingContext> Ctx;
  size_t Bytes = 0;
};

/// A cached routing outcome: the routed program text plus the statistics
/// the protocol reports. Immutable once built.
struct CachedResult {
  std::string RoutedQasm;
  size_t LogicalGates = 0;
  size_t RoutedGates = 0;
  size_t Swaps = 0;
  size_t DepthBefore = 0;
  size_t DepthAfter = 0;
  double MappingSeconds = 0;
  bool TimedOut = false;
  bool Verified = false;
  /// Estimated success probability; negative when no error model applies.
  double SuccessProbability = -1.0;

  size_t approxBytes() const { return sizeof(*this) + RoutedQasm.size(); }
};

using ContextCache = ShardedLruCache<CachedContext>;
using ResultCache = ShardedLruCache<CachedResult>;

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_CONTEXTCACHE_H
