//===- service/Scheduler.cpp - Bounded job queue + worker pool -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Scheduler.h"

#include <algorithm>

using namespace qlosure;
using namespace qlosure::service;

Scheduler::Scheduler(SchedulerOptions Options)
    : Capacity(std::max<size_t>(Options.QueueCapacity, 1)) {
  unsigned Workers = Options.Workers;
  if (Workers == 0)
    Workers = std::max(1u, std::thread::hardware_concurrency());
  Pool.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler() { shutdown(); }

std::shared_ptr<JobTicket>
Scheduler::trySubmit(SchedulerJob Job, std::shared_ptr<JobTicket> Ticket) {
  if (!Ticket)
    Ticket = std::make_shared<JobTicket>();
  // Arm the deadline before the job is visible to any worker or
  // canceller; the queue mutex publishes it.
  Ticket->Token.setDeadline(Job.Deadline);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown || Queue.size() >= Capacity) {
      ++Rejected;
      return nullptr;
    }
    Queue.push_back(QueuedJob{std::move(Job), Ticket});
    ++Submitted;
  }
  QueueCv.notify_one();
  return Ticket;
}

std::vector<std::shared_ptr<JobTicket>>
Scheduler::trySubmitBatch(std::vector<SchedulerJob> Jobs,
                          std::vector<std::shared_ptr<JobTicket>> Tickets) {
  if (Jobs.empty())
    return {};
  if (Tickets.empty()) {
    Tickets.reserve(Jobs.size());
    for (size_t I = 0; I < Jobs.size(); ++I)
      Tickets.push_back(std::make_shared<JobTicket>());
  }
  for (size_t I = 0; I < Jobs.size(); ++I)
    Tickets[I]->Token.setDeadline(Jobs[I].Deadline);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown || Queue.size() + Jobs.size() > Capacity) {
      Rejected += Jobs.size();
      return {};
    }
    for (size_t I = 0; I < Jobs.size(); ++I)
      Queue.push_back(QueuedJob{std::move(Jobs[I]), Tickets[I]});
    Submitted += Jobs.size();
  }
  QueueCv.notify_all();
  return Tickets;
}

JobTicket::State Scheduler::cancel(const std::shared_ptr<JobTicket> &Ticket) {
  if (!Ticket)
    return JobTicket::State::Done; // Rejected submissions have no job.
  JobTicket::State Prev = Ticket->cancel();
  if (Prev != JobTicket::State::Queued)
    return Prev;
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto It = Queue.begin(); It != Queue.end(); ++It) {
    if (It->Ticket == Ticket) {
      Queue.erase(It);
      ++Cancelled;
      return Prev;
    }
  }
  // A worker popped the entry before we took the lock; its discard path
  // (the failed Running claim) accounts for the job instead.
  return Prev;
}

void Scheduler::shutdown() {
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
    ToJoin.swap(Pool);
  }
  QueueCv.notify_all();
  for (std::thread &Worker : ToJoin)
    if (Worker.joinable())
      Worker.join();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  SchedulerStats S;
  S.Submitted = Submitted;
  S.Completed = Completed;
  S.Expired = Expired;
  S.Rejected = Rejected;
  S.Cancelled = Cancelled;
  S.QueueDepth = Queue.size();
  S.Workers = static_cast<unsigned>(Pool.size());
  return S;
}

void Scheduler::workerLoop() {
  // One scratch per worker for the worker's whole lifetime: every routing
  // job this thread ever runs reuses the same warm kernel buffers (the
  // BatchRunner discipline; see RoutingScratch.h).
  RoutingScratch Scratch;
  while (true) {
    QueuedJob Entry;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // Shutting down and drained.
      Entry = std::move(Queue.front());
      Queue.pop_front();
    }
    // Claim the job. Losing this race means a canceller unqueued it (and
    // owns reporting): discard silently.
    uint8_t Expected = static_cast<uint8_t>(JobTicket::State::Queued);
    if (!Entry.Ticket->St.compare_exchange_strong(
            Expected, static_cast<uint8_t>(JobTicket::State::Running))) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Cancelled;
      continue;
    }
    bool IsExpired = std::chrono::steady_clock::now() >= Entry.Job.Deadline;
    if (IsExpired) {
      if (Entry.Job.OnExpired)
        Entry.Job.OnExpired();
    } else if (Entry.Job.Run) {
      Entry.Job.Run(Scratch, Entry.Ticket->Token);
    }
    Entry.Ticket->St.store(static_cast<uint8_t>(JobTicket::State::Done));
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (IsExpired)
        ++Expired;
      else
        ++Completed;
    }
  }
}
