//===- service/Scheduler.cpp - Bounded job queue + worker pool -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Scheduler.h"

#include <algorithm>

using namespace qlosure;
using namespace qlosure::service;

Scheduler::Scheduler(SchedulerOptions Options)
    : Capacity(std::max<size_t>(Options.QueueCapacity, 1)) {
  unsigned Workers = Options.Workers;
  if (Workers == 0)
    Workers = std::max(1u, std::thread::hardware_concurrency());
  Pool.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler() { shutdown(); }

bool Scheduler::trySubmit(SchedulerJob Job) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (ShuttingDown || Queue.size() >= Capacity) {
      ++Rejected;
      return false;
    }
    Queue.push_back(std::move(Job));
    ++Submitted;
  }
  QueueCv.notify_one();
  return true;
}

void Scheduler::shutdown() {
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
    ToJoin.swap(Pool);
  }
  QueueCv.notify_all();
  for (std::thread &Worker : ToJoin)
    if (Worker.joinable())
      Worker.join();
}

SchedulerStats Scheduler::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  SchedulerStats S;
  S.Submitted = Submitted;
  S.Completed = Completed;
  S.Expired = Expired;
  S.Rejected = Rejected;
  S.QueueDepth = Queue.size();
  S.Workers = static_cast<unsigned>(Pool.size());
  return S;
}

void Scheduler::workerLoop() {
  // One scratch per worker for the worker's whole lifetime: every routing
  // job this thread ever runs reuses the same warm kernel buffers (the
  // BatchRunner discipline; see RoutingScratch.h).
  RoutingScratch Scratch;
  while (true) {
    SchedulerJob Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      QueueCv.wait(Lock, [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // Shutting down and drained.
      Job = std::move(Queue.front());
      Queue.pop_front();
    }
    bool IsExpired = std::chrono::steady_clock::now() >= Job.Deadline;
    if (IsExpired) {
      if (Job.OnExpired)
        Job.OnExpired();
    } else if (Job.Run) {
      Job.Run(Scratch);
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (IsExpired)
        ++Expired;
      else
        ++Completed;
    }
  }
}
