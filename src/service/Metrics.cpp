//===- service/Metrics.cpp - Prometheus text from stats JSON -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Metrics.h"

#include "service/Histogram.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace qlosure;
using namespace qlosure::service;

namespace {

void sanitizeComponent(const std::string &Name, std::string &Out) {
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
}

void appendNumber(std::string &Out, double V) {
  // Match the JSON writer's discipline: exactly representable integers
  // print without a decimal point, everything else as shortest double.
  if (std::floor(V) == V && std::fabs(V) < 9007199254740992.0)
    Out += formatString("%lld", static_cast<long long>(V));
  else
    Out += formatString("%.17g", V);
}

void appendSample(std::string &Out, const std::string &Name,
                  const std::string &Labels, double V) {
  Out += "# TYPE ";
  Out += Name;
  Out += " gauge\n";
  Out += Name;
  if (!Labels.empty()) {
    Out += '{';
    Out += Labels;
    Out += '}';
  }
  Out += ' ';
  appendNumber(Out, V);
  Out += '\n';
}

/// Renders one histogram leaf (service/Histogram.h's toJson layout) as a
/// classic Prometheus histogram. The JSON carries per-bucket counts so
/// shard merging stays element-wise; the exposition format wants
/// cumulative buckets, so this accumulates while emitting. Bounds are
/// exposed in seconds, the Prometheus convention for latency.
void appendHistogram(std::string &Out, const std::string &Name,
                     const std::string &Labels, const json::Value &H) {
  const json::Value *Bounds = H.get("le_us");
  const json::Value *Counts = H.get("bucket_counts");
  const json::Value *Count = H.get("count");
  const json::Value *Sum = H.get("sum_seconds");
  Out += "# TYPE ";
  Out += Name;
  Out += " histogram\n";
  double Cumulative = 0;
  for (size_t I = 0; I < Counts->items().size(); ++I) {
    const json::Value &C = Counts->items()[I];
    if (C.isNumber())
      Cumulative += C.asNumber();
    Out += Name;
    Out += "_bucket{";
    if (!Labels.empty()) {
      Out += Labels;
      Out += ',';
    }
    if (I < Bounds->items().size() && Bounds->items()[I].isNumber())
      Out += formatString("le=\"%.9g\"",
                          Bounds->items()[I].asNumber() / 1e6);
    else
      Out += "le=\"+Inf\"";
    Out += "} ";
    appendNumber(Out, Cumulative);
    Out += '\n';
  }
  Out += Name;
  Out += "_sum";
  if (!Labels.empty()) {
    Out += '{';
    Out += Labels;
    Out += '}';
  }
  Out += ' ';
  appendNumber(Out, Sum && Sum->isNumber() ? Sum->asNumber() : 0.0);
  Out += '\n';
  Out += Name;
  Out += "_count";
  if (!Labels.empty()) {
    Out += '{';
    Out += Labels;
    Out += '}';
  }
  Out += ' ';
  appendNumber(Out, Count && Count->isNumber() ? Count->asNumber() : 0.0);
  Out += '\n';
}

void walk(std::string &Out, const json::Value &V, const std::string &Name,
          const std::string &Labels) {
  switch (V.kind()) {
  case json::Value::Kind::Number:
    appendSample(Out, Name, Labels, V.asNumber());
    return;
  case json::Value::Kind::Bool:
    appendSample(Out, Name, Labels, V.asBool() ? 1.0 : 0.0);
    return;
  case json::Value::Kind::Object:
    if (isHistogramJson(V)) {
      appendHistogram(Out, Name, Labels, V);
      return;
    }
    for (const auto &Member : V.members()) {
      std::string Child = Name;
      Child.push_back('_');
      sanitizeComponent(Member.first, Child);
      walk(Out, Member.second, Child, Labels);
    }
    return;
  case json::Value::Kind::Null:
  case json::Value::Kind::String:
  case json::Value::Kind::Array:
    return; // Identification, not measurement; no sample.
  }
}

} // namespace

void service::appendPrometheusText(std::string &Out, const json::Value &Doc,
                                   const std::string &Prefix,
                                   const std::string &Labels) {
  std::string Root;
  sanitizeComponent(Prefix, Root);
  walk(Out, Doc, Root, Labels);
}

json::Value service::mergeStatsDocs(const std::vector<json::Value> &Docs) {
  json::Value Merged = json::Value::object();
  for (const json::Value &Doc : Docs) {
    if (!Doc.isObject())
      continue;
    for (const auto &Member : Doc.members()) {
      const json::Value *Existing = Merged.get(Member.first);
      if (!Existing) {
        if (isHistogramJson(Member.second)) {
          // Histogram leaves copy verbatim (their arrays are data, not
          // identification) and later documents add in bucket-wise.
          Merged.set(Member.first, Member.second);
        } else if (Member.second.isObject()) {
          // Deep-copy through a single-document merge so nested numeric
          // members of later documents can add into it.
          Merged.set(Member.first, mergeStatsDocs({Member.second}));
        } else if (Member.second.isBool()) {
          Merged.set(Member.first, Member.second.asBool() ? 1.0 : 0.0);
        } else {
          Merged.set(Member.first, Member.second);
        }
        continue;
      }
      if (isHistogramJson(*Existing) && isHistogramJson(Member.second)) {
        json::Value Combined = *Existing;
        mergeHistogramJson(Combined, Member.second);
        Merged.set(Member.first, std::move(Combined));
      } else if (Existing->isObject() && Member.second.isObject()) {
        Merged.set(Member.first,
                   mergeStatsDocs({*Existing, Member.second}));
      } else if (Existing->isNumber() &&
                 (Member.second.isNumber() || Member.second.isBool())) {
        double Add = Member.second.isBool()
                         ? (Member.second.asBool() ? 1.0 : 0.0)
                         : Member.second.asNumber();
        Merged.set(Member.first, Existing->asNumber() + Add);
      }
      // Mixed kinds / strings / arrays: first one wins, nothing to sum.
    }
  }
  return Merged;
}

std::string service::prometheusLabelValue(const std::string &Raw) {
  std::string Out;
  Out.reserve(Raw.size());
  for (char C : Raw) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out.push_back(C);
    }
  }
  return Out;
}

std::string service::prometheusText(const json::Value &Doc,
                                    const std::string &Prefix) {
  std::string Out;
  appendPrometheusText(Out, Doc, Prefix);
  return Out;
}
