//===- service/Metrics.cpp - Prometheus text from stats JSON -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Metrics.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace qlosure;
using namespace qlosure::service;

namespace {

void sanitizeComponent(const std::string &Name, std::string &Out) {
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
}

void appendSample(std::string &Out, const std::string &Name,
                  const std::string &Labels, double V) {
  Out += "# TYPE ";
  Out += Name;
  Out += " gauge\n";
  Out += Name;
  if (!Labels.empty()) {
    Out += '{';
    Out += Labels;
    Out += '}';
  }
  Out += ' ';
  // Match the JSON writer's discipline: exactly representable integers
  // print without a decimal point, everything else as shortest double.
  if (std::floor(V) == V && std::fabs(V) < 9007199254740992.0)
    Out += formatString("%lld", static_cast<long long>(V));
  else
    Out += formatString("%.17g", V);
  Out += '\n';
}

void walk(std::string &Out, const json::Value &V, const std::string &Name,
          const std::string &Labels) {
  switch (V.kind()) {
  case json::Value::Kind::Number:
    appendSample(Out, Name, Labels, V.asNumber());
    return;
  case json::Value::Kind::Bool:
    appendSample(Out, Name, Labels, V.asBool() ? 1.0 : 0.0);
    return;
  case json::Value::Kind::Object:
    for (const auto &Member : V.members()) {
      std::string Child = Name;
      Child.push_back('_');
      sanitizeComponent(Member.first, Child);
      walk(Out, Member.second, Child, Labels);
    }
    return;
  case json::Value::Kind::Null:
  case json::Value::Kind::String:
  case json::Value::Kind::Array:
    return; // Identification, not measurement; no sample.
  }
}

} // namespace

void service::appendPrometheusText(std::string &Out, const json::Value &Doc,
                                   const std::string &Prefix,
                                   const std::string &Labels) {
  std::string Root;
  sanitizeComponent(Prefix, Root);
  walk(Out, Doc, Root, Labels);
}

json::Value service::mergeStatsDocs(const std::vector<json::Value> &Docs) {
  json::Value Merged = json::Value::object();
  for (const json::Value &Doc : Docs) {
    if (!Doc.isObject())
      continue;
    for (const auto &Member : Doc.members()) {
      const json::Value *Existing = Merged.get(Member.first);
      if (!Existing) {
        if (Member.second.isObject()) {
          // Deep-copy through a single-document merge so nested numeric
          // members of later documents can add into it.
          Merged.set(Member.first, mergeStatsDocs({Member.second}));
        } else if (Member.second.isBool()) {
          Merged.set(Member.first, Member.second.asBool() ? 1.0 : 0.0);
        } else {
          Merged.set(Member.first, Member.second);
        }
        continue;
      }
      if (Existing->isObject() && Member.second.isObject()) {
        Merged.set(Member.first,
                   mergeStatsDocs({*Existing, Member.second}));
      } else if (Existing->isNumber() &&
                 (Member.second.isNumber() || Member.second.isBool())) {
        double Add = Member.second.isBool()
                         ? (Member.second.asBool() ? 1.0 : 0.0)
                         : Member.second.asNumber();
        Merged.set(Member.first, Existing->asNumber() + Add);
      }
      // Mixed kinds / strings / arrays: first one wins, nothing to sum.
    }
  }
  return Merged;
}

std::string service::prometheusText(const json::Value &Doc,
                                    const std::string &Prefix) {
  std::string Out;
  appendPrometheusText(Out, Doc, Prefix);
  return Out;
}
