//===- service/Transport.h - Transport-agnostic endpoints --------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport seam of the service layer: one address scheme, one
/// listener, one connect path — shared by the daemon (Server), the
/// blocking Client, the shard router, and the benches, so "which socket
/// family" is a parsed string, never a compile-time assumption.
///
/// Addresses:
///
///   unix:/path/to.sock     Unix-domain stream socket
///   tcp:host:port          TCP (host resolved via getaddrinfo; port 0
///                          binds an ephemeral port, readable back from
///                          Listener::endpoint() after listen())
///   /bare/path             backward-compatible shorthand for unix:
///
/// Both transports speak the identical newline-delimited protocol v2
/// through the SocketIO framing primitives (sendAll / recvSome /
/// popLine), which own the EINTR and partial-I/O discipline in one
/// place. TCP sockets get TCP_NODELAY on both ends — the protocol is
/// request/response lines, and Nagle would add 40 ms stalls to every
/// small frame.
///
/// Threading: a Listener is driven by one accept thread; close() may be
/// called from another thread to unblock a blocked acceptConnection()
/// (the same shutdown()-then-close() discipline Server always used).
/// connectEndpoint() and BackoffPolicy are stateless/thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_TRANSPORT_H
#define QLOSURE_SERVICE_TRANSPORT_H

#include "support/Error.h"

#include <cstdint>
#include <string>

namespace qlosure {
namespace service {

/// A parsed service address.
struct Endpoint {
  enum class Kind : uint8_t { Unix, Tcp };
  Kind Transport = Kind::Unix;
  /// Unix: the socket filesystem path.
  std::string Path;
  /// TCP: host name or numeric address, and port (0 = ephemeral).
  std::string Host;
  uint16_t Port = 0;

  /// Canonical spelling: "unix:/path" or "tcp:host:port".
  std::string str() const;
};

/// Parses "unix:/path", "tcp:host:port", or a bare filesystem path
/// (treated as unix: for backward compatibility with pre-fleet tooling).
Status parseEndpoint(const std::string &Spec, Endpoint &Out);

/// Bounded exponential backoff with jitter, shared by Client's
/// connect-retry and the router's health-check reconnects. delayMs() is
/// pure: attempt 0 waits ~InitialMs, each further attempt doubles (by
/// Factor) up to MaxMs, and the result is scattered uniformly within
/// +-JitterFraction so a fleet of retrying clients never thunders in
/// lockstep. \p JitterSeed picks the point in the jitter window
/// deterministically (hash it from anything per-caller-unique).
struct BackoffPolicy {
  double InitialMs = 10.0;
  double MaxMs = 500.0;
  double Factor = 2.0;
  double JitterFraction = 0.5;

  double delayMs(unsigned Attempt, uint64_t JitterSeed) const;
};

/// A listening socket over either transport.
class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }

  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Binds and listens on \p Ep. For unix endpoints a stale socket file
  /// is replaced (a live daemon on the same path loses its clients —
  /// the operator's call, as before). For tcp, SO_REUSEADDR is set and
  /// port 0 resolves to the kernel-assigned port, visible in
  /// endpoint().
  Status listen(const Endpoint &Ep, int Backlog = 64);

  /// Blocking accept with EINTR retry; applies TCP_NODELAY to accepted
  /// TCP sockets. Returns -1 once the listener is closed (or on a fatal
  /// accept error).
  int acceptConnection();

  /// Shuts down and closes the listening socket (unblocking a blocked
  /// acceptConnection()) and unlinks a unix socket file this listener
  /// created.
  void close();

  bool listening() const { return Fd >= 0; }

  /// The bound address — for tcp with port 0, the resolved port.
  const Endpoint &endpoint() const { return Bound; }

private:
  int Fd = -1;
  Endpoint Bound;
};

/// Connects one stream socket to \p Ep (blocking, one attempt — retry
/// policy belongs to the caller; Client layers BackoffPolicy on top).
/// EINTR during connect() is completed via poll + SO_ERROR instead of
/// surfacing as a spurious failure. On success \p Fd holds the
/// connected socket (TCP_NODELAY set for tcp).
Status connectEndpoint(const Endpoint &Ep, int &Fd);

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_TRANSPORT_H
