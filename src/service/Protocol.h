//===- service/Protocol.h - qlosured wire protocol ---------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON protocol (v2) spoken over the qlosured Unix
/// socket: one JSON object per line in each direction. See
/// docs/PROTOCOL.md for the normative schema; the short form:
///
///   -> {"op":"ping"}
///   -> {"op":"stats"}
///   -> {"op":"shutdown"}
///   -> {"op":"route","qasm":"...","mapper":"qlosure","backend":
///       "sherbrooke","bidirectional":false,"error_aware":false,
///       "affine":false,"calibration":1,"include_qasm":true,
///       "timeout_ms":30000,
///       "progress":false,"id":"r1"}
///   -> {"op":"cancel","id":"r1"}
///   -> {"op":"batch","id":"b1","mapper":"qlosure","backend":"sherbrooke",
///       "items":[{"name":"a","qasm":"..."},{"qasm":"..."}]}
///   <- {"event":"batch_item","op":"batch","id":"b1","index":0,"name":"a",
///       "stats":{...},"cache_hit":false,...}
///   <- {"ok":true,"op":"batch","id":"b1","total":2,"succeeded":2,
///       "failed":0,"cancelled":0,"items":[...]}
///   <- {"ok":true,"op":"route","id":"r1","stats":{...},"cache_hit":true,
///       "context_cache_hit":true,"result_cache_hit":false,"qasm":"..."}
///   <- {"ok":false,"op":"route","id":"r1","error":{"code":"cancelled",
///       "message":"..."}}
///   <- {"ok":true,"op":"cancel","id":"r1","cancelled":true}
///   <- {"event":"progress","op":"route","id":"r1","done":512,
///       "total":38469}
///
/// Since v2 the stream is **asynchronous**: responses on one connection
/// may arrive in any order (correlate by the (op, id) pair) and event
/// frames — objects carrying "event" instead of "ok" — may interleave
/// anywhere. Every request still gets exactly one final response.
///
/// Every malformed input maps to a structured error response with a
/// stable machine-readable code; the daemon never crashes or drops a
/// connection over bad input.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_PROTOCOL_H
#define QLOSURE_SERVICE_PROTOCOL_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace qlosure {
namespace service {

/// Stable machine-readable error codes (docs/PROTOCOL.md documents each).
namespace errc {
inline constexpr const char *BadJson = "bad_json";
inline constexpr const char *BadRequest = "bad_request";
inline constexpr const char *BadQasm = "bad_qasm";
inline constexpr const char *UnknownMapper = "unknown_mapper";
inline constexpr const char *UnknownBackend = "unknown_backend";
inline constexpr const char *TooLarge = "too_large";
inline constexpr const char *InvalidCircuit = "invalid_circuit";
inline constexpr const char *VerifyFailed = "verify_failed";
inline constexpr const char *QueueFull = "queue_full";
inline constexpr const char *DeadlineExceeded = "deadline_exceeded";
inline constexpr const char *Cancelled = "cancelled";
inline constexpr const char *ShuttingDown = "shutting_down";
/// Fleet tier: the router could not reach any live shard for the
/// request (all backends down, or the owning shard died mid-request
/// with no live successor).
inline constexpr const char *Unavailable = "unavailable";
} // namespace errc

/// The protocol revision reported by `ping` responses. v2 added
/// out-of-order responses, the `cancel` op, and `progress` events; the
/// `batch` op is a later additive v2 extension (old clients that never
/// send it observe no difference).
inline constexpr int ProtocolVersion = 2;

/// Request operation. `metrics` is an additive v2 extension: the same
/// counters `stats` reports, rendered as Prometheus text exposition for
/// scrapers (and served over plain HTTP by the router's /metrics
/// endpoint).
enum class Op : uint8_t { Ping, Stats, Shutdown, Route, Cancel, Batch, Metrics };

/// A parsed `route` request.
struct RouteRequest {
  std::string Qasm;
  std::string Mapper = "qlosure";
  std::string Backend = "sherbrooke";
  bool Bidirectional = false;
  bool ErrorAware = false;
  /// Route with the affine replay fast path (periodic circuits reuse the
  /// first iteration's swap schedule; exact-fallback otherwise). Implies
  /// the unweighted scoring profile for the qlosure mapper.
  bool Affine = false;
  uint64_t CalibrationSeed = 1;
  /// Echo the routed program in the response (stats-only callers save the
  /// bytes by setting this false).
  bool IncludeQasm = true;
  /// Per-request deadline in milliseconds from arrival; <= 0 means the
  /// server default applies.
  double TimeoutMs = 0;
  /// Stream `progress` events while this request routes (requires an
  /// `id`; ignored otherwise).
  bool Progress = false;
  /// Opt into request tracing: the response carries a "trace" section
  /// with per-phase spans (docs/PROTOCOL.md). Off by default — an
  /// untraced request's routing path is byte-identical to pre-trace
  /// builds.
  bool Trace = false;
  /// Client- or router-assigned correlation id echoed in the trace
  /// section and in slow-request log lines. Generated server-side when
  /// tracing is on and none was supplied.
  std::string TraceId;
};

/// One circuit of a `batch` request.
struct BatchItem {
  /// Client-chosen label echoed in the item's frames (may be empty; the
  /// zero-based item index is always echoed and is the stable key).
  std::string Name;
  std::string Qasm;
};

/// A parsed request of any op.
struct Request {
  Op TheOp = Op::Ping;
  /// Client-chosen correlation id, echoed verbatim in the response
  /// (empty = omitted). Required for `cancel`, where it names the target
  /// request, and for `batch`, whose per-item frames demultiplex by it;
  /// a `route` needs one to be cancellable or to stream progress.
  std::string Id;
  /// Shared routing parameters. For `batch` these apply to every item
  /// (one mapper × one backend per batch) and Route.Qasm is unused.
  RouteRequest Route;
  /// The circuits of a `batch` request (empty for every other op).
  std::vector<BatchItem> Items;
};

/// Outcome of parseRequest: Ok, or a protocol error (code + message) the
/// caller turns into an error response. On errors, whatever correlation
/// material was already parsed survives — Req.Id and OpName — so the
/// rejection frame stays demultiplexable by (op, id) whenever the
/// request carried them (a line that fails JSON parsing has neither).
struct RequestParse {
  bool Ok = false;
  Request Req;
  /// The request's raw "op" string when one was readable (even an
  /// unknown one); empty means the caller should respond with op
  /// "unknown".
  std::string OpName;
  std::string ErrorCode;
  std::string ErrorMessage;
};

/// Parses one request line. Never aborts; any malformed input yields
/// ErrorCode = bad_json / bad_request.
RequestParse parseRequest(const std::string &Line);

/// The statistics block of a `route` response — also the schema
/// `qlosure-route --json` prints, so scripts can consume either source
/// uniformly.
struct RouteStats {
  size_t LogicalGates = 0;
  size_t RoutedGates = 0;
  size_t Swaps = 0;
  size_t DepthBefore = 0;
  size_t DepthAfter = 0;
  double MappingSeconds = 0;
  bool TimedOut = false;
  bool Verified = false;
  /// Estimated success probability; negative = no error model, omitted.
  double SuccessProbability = -1.0;
};

/// Serializes \p Stats as the shared JSON stats object.
json::Value routeStatsToJson(const RouteStats &Stats);

/// Response builders. Each returns one complete line *without* the
/// trailing newline; the transport appends it.
std::string formatPingResponse(const std::string &Id);
std::string formatErrorResponse(const char *Op, const std::string &Id,
                                const std::string &Code,
                                const std::string &Message);
/// \p TraceJson, when non-null, is attached as the response's "trace"
/// member (the Trace::toJson document of a traced request). \p Coalesced
/// marks a response answered from another identical request's in-flight
/// route (the response then carries "coalesced":true; absent otherwise).
std::string formatRouteResponse(const std::string &Id,
                                const std::string &Mapper,
                                const std::string &Backend,
                                const RouteStats &Stats, bool ContextCacheHit,
                                bool ResultCacheHit, const std::string &Qasm,
                                bool IncludeQasm,
                                const json::Value *TraceJson = nullptr,
                                bool Coalesced = false);
/// `stats` responses carry an arbitrary server-assembled object.
std::string formatStatsResponse(const std::string &Id,
                                const json::Value &Body);
std::string formatShutdownResponse(const std::string &Id);
/// A `metrics` response: \p Text is the full Prometheus text exposition
/// body (newlines and all), carried as one JSON string member.
std::string formatMetricsResponse(const std::string &Id,
                                  const std::string &Text);
/// Ack of a `cancel` op: \p Delivered reports whether the cancellation
/// reached a still-live job (queued or running). The target request's own
/// final response (the `cancelled` error, or a success that won the race)
/// arrives separately.
std::string formatCancelResponse(const std::string &Id, bool Delivered);
/// A `progress` event frame (not a response: carries "event", no "ok").
std::string formatProgressEvent(const std::string &Id, size_t Done,
                                size_t Total);

/// A `batch_item` event frame for a successfully routed item. Like every
/// event frame it carries "event" and no "ok"; success and failure are
/// distinguished by which of "stats" / "error" is present.
std::string formatBatchItemResult(const std::string &Id, size_t Index,
                                  const std::string &Name,
                                  const std::string &Mapper,
                                  const std::string &Backend,
                                  const RouteStats &Stats,
                                  bool ContextCacheHit, bool ResultCacheHit,
                                  const std::string &Qasm, bool IncludeQasm,
                                  const json::Value *TraceJson = nullptr,
                                  bool Coalesced = false);

/// A `batch_item` event frame for an item that failed (or was cancelled /
/// expired): carries an "error" object with the same stable codes as
/// error responses.
std::string formatBatchItemError(const std::string &Id, size_t Index,
                                 const std::string &Name,
                                 const std::string &Code,
                                 const std::string &Message);

/// The final `batch` response — always the **last** frame of its batch:
/// per-item terse outcomes ("ok" or the item's error code, indexed in
/// submission order) plus the success/failure/cancellation tallies.
/// \p ItemNames and \p ItemStatus are parallel, one entry per item.
std::string
formatBatchSummaryResponse(const std::string &Id, const std::string &Mapper,
                           const std::string &Backend,
                           const std::vector<std::string> &ItemNames,
                           const std::vector<std::string> &ItemStatus);

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_PROTOCOL_H
