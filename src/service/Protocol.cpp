//===- service/Protocol.cpp - qlosured wire protocol ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace qlosure;
using namespace qlosure::service;

namespace {

RequestParse protocolError(std::string Code, std::string Message) {
  RequestParse Result;
  Result.ErrorCode = std::move(Code);
  Result.ErrorMessage = std::move(Message);
  return Result;
}

/// Reads an optional member with type checking; a present member of the
/// wrong type is a bad_request, not a silent default.
template <typename FnT>
bool readMember(const json::Value &Obj, const char *Key, bool Required,
                json::Value::Kind Kind, RequestParse &Err, FnT Apply) {
  const json::Value *Member = Obj.get(Key);
  if (!Member) {
    if (Required) {
      Err = protocolError(errc::BadRequest,
                          formatString("missing required field \"%s\"", Key));
      return false;
    }
    return true;
  }
  if (Member->kind() != Kind) {
    Err = protocolError(errc::BadRequest,
                        formatString("field \"%s\" has the wrong type", Key));
    return false;
  }
  Apply(*Member);
  return true;
}

} // namespace

RequestParse service::parseRequest(const std::string &Line) {
  json::ParseResult Parsed = json::parse(Line);
  if (!Parsed.Ok)
    return protocolError(errc::BadJson, Parsed.Error);
  const json::Value &Obj = Parsed.V;
  if (!Obj.isObject())
    return protocolError(errc::BadRequest, "request must be a JSON object");

  RequestParse Result;
  Request &Req = Result.Req;

  // Correlation material first: capture the raw op string and the id
  // before any validation, so every later rejection still carries the
  // (op, id) pair a pipelined client demultiplexes by.
  const json::Value *OpField = Obj.get("op");
  if (OpField && OpField->isString())
    Result.OpName = OpField->asString();
  auto fail = [&Result](std::string Code,
                        std::string Message) -> RequestParse & {
    Result.Ok = false;
    Result.ErrorCode = std::move(Code);
    Result.ErrorMessage = std::move(Message);
    return Result;
  };

  RequestParse Err;
  if (!readMember(Obj, "id", false, json::Value::Kind::String, Err,
                  [&](const json::Value &V) { Req.Id = V.asString(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);

  if (!OpField || !OpField->isString())
    return fail(errc::BadRequest, "missing or non-string \"op\" field");
  const std::string &OpName = Result.OpName;
  if (OpName == "ping")
    Req.TheOp = Op::Ping;
  else if (OpName == "stats")
    Req.TheOp = Op::Stats;
  else if (OpName == "shutdown")
    Req.TheOp = Op::Shutdown;
  else if (OpName == "route")
    Req.TheOp = Op::Route;
  else if (OpName == "cancel")
    Req.TheOp = Op::Cancel;
  else if (OpName == "batch")
    Req.TheOp = Op::Batch;
  else if (OpName == "metrics")
    Req.TheOp = Op::Metrics;
  else
    return fail(errc::BadRequest,
                formatString("unknown op \"%s\"", OpName.c_str()));

  if (Req.TheOp == Op::Cancel && Req.Id.empty())
    return fail(errc::BadRequest,
                "\"cancel\" requires a non-empty \"id\" naming the "
                "request to cancel");
  if (Req.TheOp == Op::Batch && Req.Id.empty())
    return fail(errc::BadRequest,
                "\"batch\" requires a non-empty \"id\": its per-item "
                "frames demultiplex by it");

  if (Req.TheOp != Op::Route && Req.TheOp != Op::Batch) {
    Result.Ok = true;
    return Result;
  }

  RouteRequest &Route = Req.Route;
  // `qasm` belongs to `route` alone; a batch carries one per item.
  if (!readMember(Obj, "qasm", /*Required=*/Req.TheOp == Op::Route,
                  json::Value::Kind::String, Err,
                  [&](const json::Value &V) { Route.Qasm = V.asString(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "mapper", false, json::Value::Kind::String, Err,
                  [&](const json::Value &V) { Route.Mapper = V.asString(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "backend", false, json::Value::Kind::String, Err,
                  [&](const json::Value &V) { Route.Backend = V.asString(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "bidirectional", false, json::Value::Kind::Bool, Err,
                  [&](const json::Value &V) {
                    Route.Bidirectional = V.asBool();
                  }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "error_aware", false, json::Value::Kind::Bool, Err,
                  [&](const json::Value &V) { Route.ErrorAware = V.asBool(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "affine", false, json::Value::Kind::Bool, Err,
                  [&](const json::Value &V) { Route.Affine = V.asBool(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "include_qasm", false, json::Value::Kind::Bool, Err,
                  [&](const json::Value &V) {
                    Route.IncludeQasm = V.asBool();
                  }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "progress", false, json::Value::Kind::Bool, Err,
                  [&](const json::Value &V) { Route.Progress = V.asBool(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "trace", false, json::Value::Kind::Bool, Err,
                  [&](const json::Value &V) { Route.Trace = V.asBool(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!readMember(Obj, "trace_id", false, json::Value::Kind::String, Err,
                  [&](const json::Value &V) { Route.TraceId = V.asString(); }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  bool NumbersOk = true;
  if (!readMember(Obj, "calibration", false, json::Value::Kind::Number, Err,
                  [&](const json::Value &V) {
                    double N = V.asNumber();
                    // Upper bound keeps the double->uint64_t cast defined
                    // (2^53: every smaller integer is exactly
                    // representable and safely convertible).
                    if (!(N >= 0) || std::floor(N) != N ||
                        N > 9007199254740992.0)
                      NumbersOk = false;
                    else
                      Route.CalibrationSeed = static_cast<uint64_t>(N);
                  }))
    return fail(Err.ErrorCode, Err.ErrorMessage);
  if (!NumbersOk)
    return fail(errc::BadRequest,
                "\"calibration\" must be a non-negative integer <= 2^53");
  if (!readMember(Obj, "timeout_ms", false, json::Value::Kind::Number, Err,
                  [&](const json::Value &V) {
                    Route.TimeoutMs = V.asNumber();
                  }))
    return fail(Err.ErrorCode, Err.ErrorMessage);

  if (Req.TheOp == Op::Batch) {
    const json::Value *Items = Obj.get("items");
    if (!Items || !Items->isArray())
      return fail(errc::BadRequest,
                  "\"batch\" requires an \"items\" array");
    if (Items->items().empty())
      return fail(errc::BadRequest, "\"items\" must not be empty");
    // The line-length limit already bounds total bytes; this bounds the
    // per-item bookkeeping a single request can demand.
    constexpr size_t MaxBatchItems = 4096;
    if (Items->items().size() > MaxBatchItems)
      return fail(errc::BadRequest,
                  formatString("\"items\" has %zu entries (limit %zu)",
                               Items->items().size(), MaxBatchItems));
    Req.Items.reserve(Items->items().size());
    for (size_t I = 0; I < Items->items().size(); ++I) {
      const json::Value &Entry = Items->items()[I];
      if (!Entry.isObject())
        return fail(errc::BadRequest,
                    formatString("items[%zu] must be an object", I));
      const json::Value *ItemQasm = Entry.get("qasm");
      if (!ItemQasm || !ItemQasm->isString())
        return fail(
            errc::BadRequest,
            formatString("items[%zu] is missing a string \"qasm\"", I));
      const json::Value *ItemName = Entry.get("name");
      if (ItemName && !ItemName->isString())
        return fail(errc::BadRequest,
                    formatString("items[%zu].name must be a string", I));
      BatchItem Item;
      Item.Qasm = ItemQasm->asString();
      if (ItemName)
        Item.Name = ItemName->asString();
      Req.Items.push_back(std::move(Item));
    }
  }

  Result.Ok = true;
  return Result;
}

json::Value service::routeStatsToJson(const RouteStats &Stats) {
  json::Value Obj = json::Value::object();
  Obj.set("logical_gates", Stats.LogicalGates);
  Obj.set("routed_gates", Stats.RoutedGates);
  Obj.set("swaps", Stats.Swaps);
  Obj.set("depth_before", Stats.DepthBefore);
  Obj.set("depth_after", Stats.DepthAfter);
  Obj.set("mapping_seconds", Stats.MappingSeconds);
  Obj.set("timed_out", Stats.TimedOut);
  Obj.set("verified", Stats.Verified);
  if (Stats.SuccessProbability >= 0)
    Obj.set("success_probability", Stats.SuccessProbability);
  return Obj;
}

namespace {

json::Value responseHead(const char *Op, const std::string &Id, bool Ok) {
  json::Value Obj = json::Value::object();
  Obj.set("ok", Ok);
  Obj.set("op", Op);
  if (!Id.empty())
    Obj.set("id", Id);
  return Obj;
}

} // namespace

std::string service::formatPingResponse(const std::string &Id) {
  json::Value Obj = responseHead("ping", Id, true);
  Obj.set("protocol", ProtocolVersion);
  return Obj.dump();
}

std::string service::formatErrorResponse(const char *Op,
                                         const std::string &Id,
                                         const std::string &Code,
                                         const std::string &Message) {
  json::Value Obj = responseHead(Op, Id, false);
  json::Value Err = json::Value::object();
  Err.set("code", Code);
  Err.set("message", Message);
  Obj.set("error", std::move(Err));
  return Obj.dump();
}

std::string service::formatRouteResponse(
    const std::string &Id, const std::string &Mapper,
    const std::string &Backend, const RouteStats &Stats, bool ContextCacheHit,
    bool ResultCacheHit, const std::string &Qasm, bool IncludeQasm,
    const json::Value *TraceJson, bool Coalesced) {
  json::Value Obj = responseHead("route", Id, true);
  Obj.set("mapper", Mapper);
  Obj.set("backend", Backend);
  Obj.set("stats", routeStatsToJson(Stats));
  Obj.set("cache_hit", ContextCacheHit || ResultCacheHit);
  Obj.set("context_cache_hit", ContextCacheHit);
  Obj.set("result_cache_hit", ResultCacheHit);
  if (Coalesced)
    Obj.set("coalesced", true);
  if (TraceJson)
    Obj.set("trace", *TraceJson);
  if (IncludeQasm)
    Obj.set("qasm", Qasm);
  return Obj.dump();
}

std::string service::formatStatsResponse(const std::string &Id,
                                         const json::Value &Body) {
  json::Value Obj = responseHead("stats", Id, true);
  for (const auto &Member : Body.members())
    Obj.set(Member.first, Member.second);
  return Obj.dump();
}

std::string service::formatShutdownResponse(const std::string &Id) {
  json::Value Obj = responseHead("shutdown", Id, true);
  Obj.set("stopping", true);
  return Obj.dump();
}

std::string service::formatMetricsResponse(const std::string &Id,
                                           const std::string &Text) {
  json::Value Obj = responseHead("metrics", Id, true);
  Obj.set("content_type", "text/plain; version=0.0.4");
  Obj.set("body", Text);
  return Obj.dump();
}

std::string service::formatCancelResponse(const std::string &Id,
                                          bool Delivered) {
  json::Value Obj = responseHead("cancel", Id, true);
  Obj.set("cancelled", Delivered);
  return Obj.dump();
}

std::string service::formatProgressEvent(const std::string &Id, size_t Done,
                                         size_t Total) {
  json::Value Obj = json::Value::object();
  Obj.set("event", "progress");
  Obj.set("op", "route");
  if (!Id.empty())
    Obj.set("id", Id);
  Obj.set("done", Done);
  Obj.set("total", Total);
  return Obj.dump();
}

namespace {

json::Value batchItemHead(const std::string &Id, size_t Index,
                          const std::string &Name) {
  json::Value Obj = json::Value::object();
  Obj.set("event", "batch_item");
  Obj.set("op", "batch");
  Obj.set("id", Id);
  Obj.set("index", Index);
  if (!Name.empty())
    Obj.set("name", Name);
  return Obj;
}

} // namespace

std::string service::formatBatchItemResult(
    const std::string &Id, size_t Index, const std::string &Name,
    const std::string &Mapper, const std::string &Backend,
    const RouteStats &Stats, bool ContextCacheHit, bool ResultCacheHit,
    const std::string &Qasm, bool IncludeQasm,
    const json::Value *TraceJson, bool Coalesced) {
  json::Value Obj = batchItemHead(Id, Index, Name);
  Obj.set("mapper", Mapper);
  Obj.set("backend", Backend);
  Obj.set("stats", routeStatsToJson(Stats));
  Obj.set("cache_hit", ContextCacheHit || ResultCacheHit);
  Obj.set("context_cache_hit", ContextCacheHit);
  Obj.set("result_cache_hit", ResultCacheHit);
  if (Coalesced)
    Obj.set("coalesced", true);
  if (TraceJson)
    Obj.set("trace", *TraceJson);
  if (IncludeQasm)
    Obj.set("qasm", Qasm);
  return Obj.dump();
}

std::string service::formatBatchItemError(const std::string &Id, size_t Index,
                                          const std::string &Name,
                                          const std::string &Code,
                                          const std::string &Message) {
  json::Value Obj = batchItemHead(Id, Index, Name);
  json::Value Err = json::Value::object();
  Err.set("code", Code);
  Err.set("message", Message);
  Obj.set("error", std::move(Err));
  return Obj.dump();
}

std::string service::formatBatchSummaryResponse(
    const std::string &Id, const std::string &Mapper,
    const std::string &Backend, const std::vector<std::string> &ItemNames,
    const std::vector<std::string> &ItemStatus) {
  json::Value Obj = responseHead("batch", Id, true);
  Obj.set("mapper", Mapper);
  Obj.set("backend", Backend);
  size_t Succeeded = 0, Cancelled = 0;
  json::Value Items = json::Value::array();
  for (size_t I = 0; I < ItemStatus.size(); ++I) {
    if (ItemStatus[I] == "ok")
      ++Succeeded;
    else if (ItemStatus[I] == errc::Cancelled)
      ++Cancelled;
    json::Value Entry = json::Value::object();
    Entry.set("index", I);
    if (I < ItemNames.size() && !ItemNames[I].empty())
      Entry.set("name", ItemNames[I]);
    Entry.set("status", ItemStatus[I]);
    Items.push(std::move(Entry));
  }
  Obj.set("total", ItemStatus.size());
  Obj.set("succeeded", Succeeded);
  Obj.set("failed", ItemStatus.size() - Succeeded - Cancelled);
  Obj.set("cancelled", Cancelled);
  Obj.set("items", std::move(Items));
  return Obj.dump();
}
