//===- service/Histogram.cpp - Log-scale latency histograms ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Histogram.h"

namespace qlosure {

json::Value LatencyHistogram::toJson() const {
  json::Value Doc = json::Value::object();
  Doc.set("type", json::Value(std::string("histogram")));
  uint64_t Total = 0;
  json::Value Counts = json::Value::array();
  for (int I = 0; I <= NumBounds; ++I) {
    uint64_t C = Buckets[I].load(std::memory_order_relaxed);
    Total += C;
    Counts.push(json::Value(static_cast<double>(C)));
  }
  Doc.set("count", json::Value(static_cast<double>(Total)));
  Doc.set("sum_seconds",
          json::Value(static_cast<double>(
                          SumNs.load(std::memory_order_relaxed)) /
                      1e9));
  json::Value Bounds = json::Value::array();
  for (int I = 0; I < NumBounds; ++I)
    Bounds.push(json::Value(static_cast<double>(boundUs(I))));
  Doc.set("le_us", std::move(Bounds));
  Doc.set("bucket_counts", std::move(Counts));
  return Doc;
}

bool isHistogramJson(const json::Value &V) {
  if (!V.isObject())
    return false;
  const json::Value *Type = V.get("type");
  if (!Type || !Type->isString() || Type->asString() != "histogram")
    return false;
  const json::Value *Bounds = V.get("le_us");
  const json::Value *Counts = V.get("bucket_counts");
  return Bounds && Bounds->isArray() && Counts && Counts->isArray();
}

static void addNumberMember(json::Value &Dst, const json::Value &Src,
                            const char *Key) {
  const json::Value *A = Dst.get(Key);
  const json::Value *B = Src.get(Key);
  if (A && B && A->isNumber() && B->isNumber())
    Dst.set(Key, json::Value(A->asNumber() + B->asNumber()));
}

void mergeHistogramJson(json::Value &Dst, const json::Value &Src) {
  addNumberMember(Dst, Src, "count");
  addNumberMember(Dst, Src, "sum_seconds");
  const json::Value *SrcCounts = Src.get("bucket_counts");
  const json::Value *DstCounts = Dst.get("bucket_counts");
  if (!SrcCounts || !DstCounts)
    return;
  const auto &A = DstCounts->items();
  const auto &B = SrcCounts->items();
  if (A.size() != B.size())
    return; // incompatible layouts: keep Dst
  json::Value Merged = json::Value::array();
  for (size_t I = 0; I < A.size(); ++I) {
    double X = A[I].isNumber() ? A[I].asNumber() : 0.0;
    double Y = B[I].isNumber() ? B[I].asNumber() : 0.0;
    Merged.push(json::Value(X + Y));
  }
  Dst.set("bucket_counts", std::move(Merged));
}

} // namespace qlosure
