//===- service/Server.cpp - qlosured Unix-socket server ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "baselines/RouterRegistry.h"
#include "core/Qlosure.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/Fidelity.h"
#include "route/InitialMapping.h"
#include "route/Verify.h"
#include "service/Metrics.h"
#include "service/SocketIO.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include "topology/Backends.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

const char *const KnownBackends[] = {
    "sherbrooke", "ankaa3",  "sherbrooke2x", "kings9x9",
    "kings16x16", "aspen16", "sycamore54"};

const char *const KnownMappers[] = {"qlosure", "sabre", "qmap", "cirq",
                                    "tket"};

bool isKnown(const char *const *Names, size_t Count,
             const std::string &Name) {
  for (size_t I = 0; I < Count; ++I)
    if (Name == Names[I])
      return true;
  return false;
}

std::unique_ptr<Router> makeServiceRouter(const std::string &Name,
                                          bool ErrorAware, bool Affine) {
  if (Name == "qlosure") {
    QlosureOptions Opts;
    Opts.ErrorAware = ErrorAware;
    Opts.AffineReplay = Affine;
    // Replay is only exact under the unweighted scoring profile (omega
    // is aperiodic even on periodic traces, so weighted anchors rarely
    // recur); requesting affine selects that profile.
    if (Affine)
      Opts.UseDependencyWeights = false;
    return std::make_unique<QlosureRouter>(Opts);
  }
  // Baselines have no error-aware or affine mode; they route on the
  // calibrated graph with plain distances (mirrors tools/qlosure-route).
  return makeRouterByName(Name);
}

json::Value cacheStatsJson(const CacheStats &S, size_t ByteBudget) {
  json::Value Obj = json::Value::object();
  Obj.set("hits", S.Hits);
  Obj.set("misses", S.Misses);
  Obj.set("evictions", S.Evictions);
  Obj.set("entries", S.Entries);
  Obj.set("bytes", S.Bytes);
  Obj.set("byte_budget", ByteBudget);
  return Obj;
}

/// The RouteStats block a cached (memory or store) result replays.
RouteStats statsFromCached(const CachedResult &Cached) {
  RouteStats Stats;
  Stats.LogicalGates = Cached.LogicalGates;
  Stats.RoutedGates = Cached.RoutedGates;
  Stats.Swaps = Cached.Swaps;
  Stats.DepthBefore = Cached.DepthBefore;
  Stats.DepthAfter = Cached.DepthAfter;
  Stats.MappingSeconds = Cached.MappingSeconds;
  Stats.TimedOut = Cached.TimedOut;
  Stats.Verified = Cached.Verified;
  Stats.SuccessProbability = Cached.SuccessProbability;
  return Stats;
}

/// A leader-failure outcome for the followers coalesced onto it: the
/// leader's own error code, with the message marking that the failure
/// was inherited (docs/PROTOCOL.md documents the semantics).
InflightTable::Outcome coalescedFailure(const char *Code,
                                        const std::string &Message) {
  InflightTable::Outcome O;
  O.ErrorCode = Code;
  O.ErrorMessage = formatString("coalesced leader failed: %s",
                                Message.c_str());
  return O;
}

/// Maps a fired token to its protocol error (code, message).
std::pair<const char *, const char *>
cancellationError(const CancellationToken &Token) {
  if (Token.reason() == CancellationToken::Reason::DeadlineExceeded)
    return {errc::DeadlineExceeded, "deadline expired mid-route"};
  return {errc::Cancelled, "request cancelled"};
}

/// Absolute deadline for a request that asked for \p TimeoutMs (<= 0 =
/// server default). Clamped before converting: an absurd client-supplied
/// timeout must not overflow the chrono arithmetic (which would wrap the
/// deadline into the past) or make the double->int64 cast undefined. A
/// week is effectively "no deadline" for a mapping request.
std::chrono::steady_clock::time_point
requestDeadline(double TimeoutMs, double DefaultTimeoutSeconds) {
  auto Deadline = std::chrono::steady_clock::time_point::max();
  double EffectiveMs =
      TimeoutMs > 0 ? TimeoutMs : DefaultTimeoutSeconds * 1000.0;
  constexpr double MaxTimeoutMs = 7.0 * 24 * 3600 * 1000;
  EffectiveMs = std::min(EffectiveMs, MaxTimeoutMs);
  if (TimeoutMs > 0 || DefaultTimeoutSeconds > 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(
                   static_cast<int64_t>(EffectiveMs * 1000.0));
  return Deadline;
}

/// Nanoseconds between two trace-clock points.
int64_t spanNs(Trace::Clock::time_point From, Trace::Clock::time_point To) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(To - From)
      .count();
}

/// One warn-level "slow_request" line for a request that crossed the
/// configured threshold, carrying the per-phase trace when one was
/// recorded.
void logSlowRequest(const char *Op, const std::string &Id,
                    const RouteRequest &Params, double TotalMs,
                    double ThresholdMs, Trace *T,
                    Trace::Clock::time_point Now) {
  if (!log::enabled(log::Level::Warn))
    return;
  log::Event E(log::Level::Warn, "slow_request");
  E.str("op", Op);
  if (!Id.empty())
    E.str("id", Id);
  E.str("mapper", Params.Mapper);
  E.str("backend", Params.Backend);
  E.num("total_ms", TotalMs);
  E.num("threshold_ms", ThresholdMs);
  if (T) {
    E.str("trace_id", T->traceId());
    E.json("trace", T->toJson(Now));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Connection: the shared per-connection writer + in-flight job table
//===----------------------------------------------------------------------===//

/// Shared between the connection thread (reads, inline responses,
/// cancels) and any workers running this connection's jobs (final
/// responses, progress events). The writer mutex serializes frames so
/// concurrent completions interleave whole lines, never bytes. The fd
/// closes with the last shared_ptr, so a worker finishing after the
/// reader exited can never write into a recycled descriptor.
struct Server::Connection {
  explicit Connection(int FdIn) : Fd(FdIn) {}
  ~Connection() { ::close(Fd); }
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  const int Fd;

  /// Writes one frame (newline appended). Returns false once the peer is
  /// gone or the reader marked the connection closed; failures latch, so
  /// late completions degrade to cheap no-ops. The 30 s cumulative bound
  /// (on top of the per-send SO_SNDTIMEO) means a slow-dripping reader
  /// cannot pin the writing thread past one frame's worth of patience.
  bool send(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    if (Closed)
      return false;
    if (!sendAll(Fd, Line + "\n", /*MaxSeconds=*/30.0)) {
      Closed = true;
      return false;
    }
    return true;
  }

  bool alive() {
    std::lock_guard<std::mutex> Lock(WriteMu);
    return !Closed;
  }

  /// Called by the connection thread on exit: no further frames go out.
  void markClosed() {
    std::lock_guard<std::mutex> Lock(WriteMu);
    Closed = true;
  }

  /// In-flight cancellable routes by id, and in-flight batch sessions by
  /// id (one namespace: a live batch id cannot be reused by a route and
  /// vice versa). Only the owning connection thread inserts (ids are
  /// connection-scoped and requests on one connection are read serially);
  /// workers erase on completion, so the mutex arbitrates insert/lookup
  /// against that erase.
  std::mutex JobsMu;
  std::map<std::string, std::shared_ptr<JobTicket>> InFlight;
  std::map<std::string, std::shared_ptr<Server::BatchState>> InFlightBatches;

  /// The single release point of the in-flight table: every completion
  /// path (success, error, expiry, queued-cancel, submit failure) frees
  /// the id here, *before* its final frame is written, so a client that
  /// has read the final response may immediately reuse the id.
  void releaseJob(const std::string &Id) {
    if (Id.empty())
      return;
    std::lock_guard<std::mutex> Lock(JobsMu);
    InFlight.erase(Id);
  }

  /// Same contract for batch sessions: released by the summary sender
  /// right before the summary frame goes out.
  void releaseBatch(const std::string &Id) {
    std::lock_guard<std::mutex> Lock(JobsMu);
    InFlightBatches.erase(Id);
  }

  /// True when \p Id is in flight as either a route or a batch.
  bool idInFlight(const std::string &Id) {
    std::lock_guard<std::mutex> Lock(JobsMu);
    return InFlight.count(Id) != 0 || InFlightBatches.count(Id) != 0;
  }

private:
  std::mutex WriteMu;
  bool Closed = false;
};

//===----------------------------------------------------------------------===//
// BatchState: one in-flight batch session
//===----------------------------------------------------------------------===//

/// Shared by the connection thread (inline hits/failures, cancels) and
/// the workers running the batch's scheduled items. Per-item slots are
/// written by exactly one thread each (whoever completes that item), and
/// the Remaining countdown sequences those writes before the summary
/// sender's reads — no per-item locking needed.
struct Server::BatchState {
  std::shared_ptr<Connection> Conn;
  std::string Id;
  std::string Mapper;
  std::string BackendName;
  /// Items still unfinished; the decrement that reaches zero owns
  /// releasing the id and sending the summary.
  std::atomic<size_t> Remaining{0};
  /// Parallel per-item arrays, indexed in submission order: the client
  /// label echoed in frames, and the terse outcome ("ok" or error code)
  /// the summary reports.
  std::vector<std::string> Names;
  std::vector<std::string> Status;
  /// (ticket, item index) for every item that reached the scheduler —
  /// the whole-batch cancellation handles. Written once by the
  /// connection thread right after submission; only that same thread
  /// reads them (cancel and teardown both run on it), so unsynchronized.
  std::vector<std::pair<std::shared_ptr<JobTicket>, size_t>> Tickets;
};

/// Outcome of the shared worker-side routing core.
struct Server::RouteOutcome {
  /// nullptr = success. When Cancelled is set the caller derives the
  /// code from the token (cancelled vs. deadline_exceeded) instead.
  const char *ErrorCode = nullptr;
  std::string ErrorMessage;
  bool Cancelled = false;
  bool ContextHit = false;
  RouteStats Stats;
  std::shared_ptr<const CachedResult> Cached; ///< Set on success.
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

Server::Server(ServerOptions Options)
    : Options(std::move(Options)),
      Contexts(CacheOptions{this->Options.CacheShards,
                            this->Options.ContextCacheBytes}),
      Results(CacheOptions{this->Options.CacheShards,
                           this->Options.ResultCacheBytes}) {}

Server::~Server() {
  requestStop();
  wait();
}

Status Server::start() {
  if (Started)
    return Status::error("server already started");
  if (Options.Listen.empty())
    return Status::error("listen address must not be empty");

  if (!Options.StorePath.empty()) {
    ResultStoreOptions StoreOpts;
    StoreOpts.Path = Options.StorePath;
    StoreOpts.ReadOnly = Options.StoreReadOnly;
    StoreOpts.FsyncBytes = Options.StoreFsyncBytes;
    Status StoreErr;
    Store = ResultStore::open(StoreOpts, StoreErr);
    if (!Store)
      return StoreErr;
  } else if (Options.StoreReadOnly) {
    return Status::error("--store-read-only requires a store path");
  }

  Endpoint Ep;
  if (Status S = parseEndpoint(Options.Listen, Ep); !S.ok())
    return S;
  if (Status S = Acceptor.listen(Ep, 64); !S.ok())
    return S;

  Inflight = std::make_unique<InflightTable>();
  SchedulerOptions SchedOpts;
  SchedOpts.Workers = Options.Workers;
  SchedOpts.QueueCapacity = Options.QueueCapacity;
  Workers = std::make_unique<Scheduler>(SchedOpts);

  Started = true;
  Uptime.reset();
  AcceptThread = std::thread([this] { acceptLoop(); });
  return Status::success();
}

void Server::requestStop() {
  {
    std::lock_guard<std::mutex> Lock(StopMu);
    StopRequested = true;
  }
  StopCv.notify_all();
}

void Server::wait(const std::function<bool()> &ExternalStop) {
  if (!Started)
    return;
  {
    std::unique_lock<std::mutex> Lock(StopMu);
    while (!StopRequested) {
      if (ExternalStop && ExternalStop())
        break;
      StopCv.wait_for(Lock, std::chrono::milliseconds(200));
    }
  }
  teardown();
}

void Server::stop() {
  requestStop();
  wait();
}

void Server::teardown() {
  std::lock_guard<std::mutex> TeardownLock(TeardownMu);
  if (TornDown)
    return;
  TornDown = true;
  Stopping.store(true);

  // Unblock accept(): closing the listener makes it fail immediately
  // (and unlinks a unix socket file).
  Acceptor.close();
  if (AcceptThread.joinable())
    AcceptThread.join();

  // Drain the scheduler FIRST, while every connection's write side is
  // still intact: each pending route reaches its completion path and its
  // final response actually reaches the client — the exactly-one-final-
  // response guarantee holds across shutdown. New submissions are
  // already rejected (Stopping answers shutting_down). Only then sever
  // the connections to unblock their readers.
  if (Workers)
    Workers->shutdown();
  // Every leader has now completed (drained jobs complete their flights
  // on the way out), so the coalescing table is normally empty; drain
  // the stragglers with a structured error while the writers still work
  // — no follower is ever left without its final response.
  if (Inflight) {
    InflightTable::Outcome Shutdown;
    Shutdown.ErrorCode = errc::ShuttingDown;
    Shutdown.ErrorMessage = "server is shutting down";
    Inflight->drain(Shutdown);
  }
  if (Store)
    Store->flush();
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::shared_ptr<Connection> &Conn : Conns)
      if (Conn)
        ::shutdown(Conn->Fd, SHUT_RDWR);
  }
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    ToJoin.swap(ConnThreads);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
}

//===----------------------------------------------------------------------===//
// Accept + connection loops
//===----------------------------------------------------------------------===//

void Server::acceptLoop() {
  while (!Stopping.load()) {
    int Fd = Acceptor.acceptConnection();
    if (Fd < 0)
      return; // Listener closed (teardown) or fatal; either way, stop.
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    // Responses are written by worker threads: a peer that stops reading
    // while we owe it data must not pin a worker (or the writer mutex)
    // forever. Bound every blocking send; a timed-out send fails and
    // latches the connection closed — the peer is treated as gone.
    timeval SendTimeout{};
    SendTimeout.tv_sec = 10;
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                 sizeof(SendTimeout));
    auto Conn = std::make_shared<Connection>(Fd);
    std::lock_guard<std::mutex> Lock(ConnMu);
    // Reap connections that finished since the last accept: join their
    // threads (they have already vacated their slot, so join returns
    // promptly) and recycle the slots.
    for (size_t Finished : FinishedSlots) {
      if (ConnThreads[Finished].joinable())
        ConnThreads[Finished].join();
      FreeSlots.push_back(Finished);
    }
    FinishedSlots.clear();

    size_t Slot;
    if (!FreeSlots.empty()) {
      Slot = FreeSlots.back();
      FreeSlots.pop_back();
      Conns[Slot] = Conn;
      ConnThreads[Slot] =
          std::thread([this, Conn, Slot] { connectionLoop(Conn, Slot); });
    } else {
      Slot = Conns.size();
      Conns.push_back(Conn);
      ConnThreads.emplace_back(
          [this, Conn, Slot] { connectionLoop(Conn, Slot); });
    }
    {
      std::lock_guard<std::mutex> CounterLock(CounterMu);
      ++Counters.Connections;
    }
  }
}

void Server::connectionLoop(std::shared_ptr<Connection> Conn, size_t Slot) {
  std::string Pending;
  char Buffer[65536];
  bool Alive = true;
  while (Alive) {
    ssize_t N = recvSome(Conn->Fd, Buffer, sizeof(Buffer));
    if (N <= 0)
      break;
    Pending.append(Buffer, static_cast<size_t>(N));
    if (Pending.size() > Options.MaxRequestBytes &&
        Pending.find('\n') == std::string::npos) {
      sendError(*Conn, "unknown", "", errc::BadRequest,
                "request line too large");
      break;
    }
    std::string Line;
    while (Alive && popLine(Pending, Line)) {
      if (Line.empty())
        continue;
      bool StopAfterSend = false;
      handleLine(Conn, Line, StopAfterSend);
      if (StopAfterSend)
        requestStop();
      if (!Conn->alive())
        Alive = false;
    }
  }
  // No frame may go out after the reader exits: in-flight completions
  // degrade to no-ops (their job-table entries still clear normally).
  Conn->markClosed();
  // Nothing can read this connection's outcomes anymore, so abort its
  // queued and in-flight jobs instead of letting workers spend minutes
  // routing into a latched-closed writer (a dropped pipelined connection
  // could otherwise pin the whole pool on dead work).
  std::vector<std::shared_ptr<JobTicket>> Orphans;
  std::vector<std::shared_ptr<BatchState>> OrphanBatches;
  {
    std::lock_guard<std::mutex> Lock(Conn->JobsMu);
    for (const auto &Entry : Conn->InFlight)
      Orphans.push_back(Entry.second);
    for (const auto &Entry : Conn->InFlightBatches)
      OrphanBatches.push_back(Entry.second);
  }
  for (const std::shared_ptr<JobTicket> &Ticket : Orphans) {
    if (Workers->cancel(Ticket) == JobTicket::State::Queued) {
      // Claimed unrun. If it led a flight, followers on *other*
      // connections must still get their final response.
      Inflight->completeByLeader(
          Ticket, coalescedFailure(errc::Cancelled,
                                   "leader connection dropped"));
    }
  }
  // Batch items are aborted through the same helper the cancel op uses;
  // its frames degrade to no-ops on the latched-closed writer.
  for (const std::shared_ptr<BatchState> &Batch : OrphanBatches)
    cancelBatch(Batch);
  // Vacate the slot under the same lock teardown() iterates under, then
  // report it finished so the accept loop joins this thread and recycles
  // it. The Connection object itself lives on until the last in-flight
  // job drops its reference — which is what keeps the fd from being
  // recycled under a late writer.
  std::lock_guard<std::mutex> Lock(ConnMu);
  Conns[Slot] = nullptr;
  FinishedSlots.push_back(Slot);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

void Server::sendError(Connection &Conn, const char *Op,
                       const std::string &Id, const char *Code,
                       const std::string &Message) {
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Errors;
  }
  Conn.send(formatErrorResponse(Op, Id, Code, Message));
}

void Server::handleLine(const std::shared_ptr<Connection> &Conn,
                        const std::string &Line, bool &StopAfterSend) {
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Requests;
  }
  RequestParse Parsed = parseRequest(Line);
  if (!Parsed.Ok) {
    // Rejections stay correlatable: whatever (op, id) the request
    // carried was captured before validation failed.
    sendError(*Conn,
              Parsed.OpName.empty() ? "unknown" : Parsed.OpName.c_str(),
              Parsed.Req.Id, Parsed.ErrorCode.c_str(),
              Parsed.ErrorMessage);
    return;
  }
  const Request &Req = Parsed.Req;
  switch (Req.TheOp) {
  case Op::Ping:
    Conn->send(formatPingResponse(Req.Id));
    return;
  case Op::Stats:
    Conn->send(formatStatsResponse(Req.Id, statsJson()));
    return;
  case Op::Metrics:
    Conn->send(
        formatMetricsResponse(Req.Id, prometheusText(statsJson(), "qlosure")));
    return;
  case Op::Shutdown:
    StopAfterSend = true;
    Conn->send(formatShutdownResponse(Req.Id));
    return;
  case Op::Cancel:
    handleCancel(Conn, Req);
    return;
  case Op::Route:
    handleRoute(Conn, Req);
    return;
  case Op::Batch:
    handleBatch(Conn, Req);
    return;
  }
  sendError(*Conn, "unknown", Req.Id, errc::BadRequest, "unhandled op");
}

void Server::handleCancel(const std::shared_ptr<Connection> &Conn,
                          const Request &Req) {
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.CancelRequests;
  }
  std::shared_ptr<JobTicket> Ticket;
  std::shared_ptr<BatchState> Batch;
  {
    std::lock_guard<std::mutex> Lock(Conn->JobsMu);
    auto It = Conn->InFlight.find(Req.Id);
    if (It != Conn->InFlight.end())
      Ticket = It->second;
    auto BatchIt = Conn->InFlightBatches.find(Req.Id);
    if (BatchIt != Conn->InFlightBatches.end())
      Batch = BatchIt->second;
  }
  if (Batch) {
    // Whole-batch cancel: every still-live item dies; the summary still
    // arrives (last) through the normal countdown, tallying the mix of
    // completed and cancelled items.
    Conn->send(formatCancelResponse(Req.Id, cancelBatch(Batch)));
    return;
  }
  if (!Ticket) {
    // Unknown or already finished: idempotent no-op ack.
    Conn->send(formatCancelResponse(Req.Id, false));
    return;
  }
  switch (Workers->cancel(Ticket)) {
  case JobTicket::State::Queued: {
    // Unqueued before it ever ran: this thread owns reporting. When the
    // ticket led a coalescing flight, the flight dies with it (its
    // followers inherit the cancellation as a structured error); a
    // cancelled *follower* leads nothing, so this is a no-op for it.
    Inflight->completeByLeader(
        Ticket,
        coalescedFailure(errc::Cancelled, "request cancelled while queued"));
    Conn->releaseJob(Req.Id);
    Conn->send(formatCancelResponse(Req.Id, true));
    sendError(*Conn, "route", Req.Id, errc::Cancelled,
              "request cancelled while queued");
    return;
  }
  case JobTicket::State::Running:
    // Token signalled; the job aborts at its next poll and reports
    // through its own completion path.
    Conn->send(formatCancelResponse(Req.Id, true));
    return;
  case JobTicket::State::CancelledWhileQueued:
  case JobTicket::State::Done:
    Conn->send(formatCancelResponse(Req.Id, false));
    return;
  }
}

std::shared_ptr<const CachedResult>
Server::lookupResult(const CacheKey &Key) {
  if (auto Cached = Results.lookup(Key))
    return Cached;
  if (!Store)
    return nullptr;
  auto FromStore = Store->get(Key);
  if (!FromStore)
    return nullptr;
  // Promote the durable record into the memory cache so the next hit
  // skips the disk read (insertValue keeps a racing incumbent).
  return Results.insertValue(Key, std::move(FromStore));
}

std::shared_ptr<const Server::PooledBackend>
Server::lookupBackend(const std::string &Name, bool ErrorAware,
                      uint64_t CalibrationSeed) {
  if (!isKnown(KnownBackends,
               sizeof(KnownBackends) / sizeof(KnownBackends[0]), Name))
    return nullptr;
  std::string VariantKey =
      ErrorAware ? formatString("%s|ea%llu", Name.c_str(),
                                static_cast<unsigned long long>(
                                    CalibrationSeed))
                 : Name + "|plain";
  std::lock_guard<std::mutex> Lock(BackendMu);
  auto It = Backends.find(VariantKey);
  if (It != Backends.end())
    return It->second;
  // The calibration-seed dimension is client-controlled: bound the pool
  // by dropping the error-aware variants when it fills up (in-flight
  // requests hold shared ownership of theirs; plain variants — at most
  // one per known backend — are retained).
  if (Backends.size() >= MaxBackendVariants) {
    for (auto Victim = Backends.begin(); Victim != Backends.end();) {
      if (Victim->first.find("|ea") != std::string::npos)
        Victim = Backends.erase(Victim);
      else
        ++Victim;
    }
  }
  auto Graph = std::make_shared<CouplingGraph>(makeBackendByName(Name));
  if (ErrorAware)
    applySyntheticErrorModel(*Graph, CalibrationSeed);
  auto Pooled = std::make_shared<PooledBackend>();
  Pooled->Fingerprint = fingerprint(*Graph);
  Pooled->Graph = std::move(Graph);
  Backends.emplace(VariantKey, Pooled);
  return Pooled;
}

void Server::handleRoute(const std::shared_ptr<Connection> &Conn,
                         const Request &Req) {
  const RouteRequest &Route = Req.Route;
  const auto ReqStart = Trace::Clock::now();
  // A traced request carries one span recorder from arrival to its final
  // frame; untraced requests never allocate one.
  std::shared_ptr<Trace> T;
  if (Route.Trace) {
    T = std::make_shared<Trace>();
    T->reset(Route.TraceId.empty() ? generateTraceId() : Route.TraceId,
             ReqStart);
  }
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.RouteRequests;
  }
  if (Stopping.load()) {
    sendError(*Conn, "route", Req.Id, errc::ShuttingDown,
              "server is shutting down");
    return;
  }
  if (!Req.Id.empty() && Conn->idInFlight(Req.Id)) {
    sendError(*Conn, "route", Req.Id, errc::BadRequest,
              formatString("id \"%s\" is already in flight on this "
                           "connection",
                           Req.Id.c_str()));
    return;
  }
  if (!isKnown(KnownMappers, sizeof(KnownMappers) / sizeof(KnownMappers[0]),
               Route.Mapper)) {
    sendError(*Conn, "route", Req.Id, errc::UnknownMapper,
              formatString("unknown mapper \"%s\"", Route.Mapper.c_str()));
    return;
  }
  std::shared_ptr<const PooledBackend> Backend =
      lookupBackend(Route.Backend, Route.ErrorAware, Route.CalibrationSeed);
  if (!Backend) {
    sendError(*Conn, "route", Req.Id, errc::UnknownBackend,
              formatString("unknown backend \"%s\"", Route.Backend.c_str()));
    return;
  }

  int ImportSpan = T ? T->begin("import_qasm") : -1;
  qasm::ImportResult Imported = qasm::importQasm(Route.Qasm, "request");
  if (!Imported.succeeded()) {
    sendError(*Conn, "route", Req.Id, errc::BadQasm, Imported.Error);
    return;
  }
  auto Logical = std::make_shared<Circuit>(
      Imported.Circ->withoutNonUnitaries().decomposeThreeQubitGates());
  if (T)
    T->end(ImportSpan);
  if (Logical->numQubits() > Backend->Graph->numQubits()) {
    sendError(*Conn, "route", Req.Id, errc::TooLarge,
              formatString("circuit has %u qubits but %s only has %u",
                           Logical->numQubits(), Route.Backend.c_str(),
                           Backend->Graph->numQubits()));
    return;
  }

  uint64_t CircuitFp = fingerprint(*Logical);
  uint64_t MapperConfigFp = hashCombine(
      fingerprintString(Route.Mapper),
      (Route.Affine ? 4u : 0u) | (Route.Bidirectional ? 2u : 0u) |
          (Route.ErrorAware ? 1u : 0u));
  CacheKey ResultKey{CircuitFp, Backend->Fingerprint, MapperConfigFp};

  if (auto Cached = lookupResult(ResultKey)) {
    RouteStats Stats = statsFromCached(*Cached);
    const auto Now = Trace::Clock::now();
    Histos.Route.recordNs(spanNs(ReqStart, Now));
    if (T) {
      T->addNs("result_cache_hit", T->sinceEpochNs(Now), 0);
      json::Value TraceJson = T->toJson(Now);
      Conn->send(formatRouteResponse(Req.Id, Route.Mapper, Route.Backend,
                                     Stats,
                                     /*ContextCacheHit=*/false,
                                     /*ResultCacheHit=*/true,
                                     Cached->RoutedQasm, Route.IncludeQasm,
                                     &TraceJson));
    } else {
      Conn->send(formatRouteResponse(Req.Id, Route.Mapper, Route.Backend,
                                     Stats,
                                     /*ContextCacheHit=*/false,
                                     /*ResultCacheHit=*/true,
                                     Cached->RoutedQasm, Route.IncludeQasm));
    }
    return;
  }

  auto Deadline =
      requestDeadline(Route.TimeoutMs, Options.DefaultTimeoutSeconds);

  // Pre-register the ticket before the coalescing decision and before
  // submission, so a completion (or a follower delivery) racing this
  // thread can only ever erase an entry that exists; the connection
  // thread is the sole inserter, so no other request can slip in
  // between.
  auto Ticket = std::make_shared<JobTicket>();
  if (!Req.Id.empty()) {
    std::lock_guard<std::mutex> Lock(Conn->JobsMu);
    Conn->InFlight[Req.Id] = Ticket;
  }

  // Coalesce: when an identical request (same result key) is already
  // routing, follow its flight instead of routing again. The follower's
  // ticket doubles as its claim token — its cancel and deadline work
  // through the same paths as a queued job's, without touching the
  // leader.
  InflightTable::Follower F;
  F.Ticket = Ticket;
  F.Deadline = Deadline;
  F.Deliver = [this, Conn, Id = Req.Id, Mapper = Route.Mapper,
               BackendName = Route.Backend,
               IncludeQasm = Route.IncludeQasm,
               ReqStart](const InflightTable::Outcome &O) {
    Histos.Route.recordNs(spanNs(ReqStart, Trace::Clock::now()));
    Conn->releaseJob(Id);
    if (!O.Ok) {
      sendError(*Conn, "route", Id, O.ErrorCode, O.ErrorMessage);
      return;
    }
    Conn->send(formatRouteResponse(Id, Mapper, BackendName, O.Stats,
                                   O.ContextHit, /*ResultCacheHit=*/false,
                                   O.Cached->RoutedQasm, IncludeQasm,
                                   /*TraceJson=*/nullptr,
                                   /*Coalesced=*/true));
  };
  if (!Inflight->leadOrFollow(ResultKey, Ticket, std::move(F))) {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Coalesced;
    return;
  }

  // This request leads: it owns the scheduler job, and every completion
  // path below also completes the flight (delivering any followers that
  // coalesced onto it meanwhile).

  // Everything the worker needs, captured by value / shared ownership:
  // the parsed circuit, the pooled backend, the connection writer, and
  // the request parameters — minus the raw QASM source, which only the
  // import above ever reads: a pipelined connection can park hundreds of
  // jobs in the queue, and each must not pin (or even transiently copy)
  // megabytes of dead text.
  RouteRequest Params;
  Params.Mapper = Route.Mapper;
  Params.Backend = Route.Backend;
  Params.Bidirectional = Route.Bidirectional;
  Params.ErrorAware = Route.ErrorAware;
  Params.Affine = Route.Affine;
  Params.CalibrationSeed = Route.CalibrationSeed;
  Params.IncludeQasm = Route.IncludeQasm;
  Params.TimeoutMs = Route.TimeoutMs;
  Params.Progress = Route.Progress;

  // Queue wait is measured from here (just before submission) to worker
  // pickup.
  const auto SubmitTime = Trace::Clock::now();

  SchedulerJob Job;
  Job.Deadline = Deadline;
  Job.OnExpired = [this, Conn, Id = Req.Id, ResultKey] {
    Inflight->complete(
        ResultKey,
        coalescedFailure(errc::DeadlineExceeded,
                         "deadline passed before a worker picked the "
                         "request up"));
    Conn->releaseJob(Id);
    sendError(*Conn, "route", Id, errc::DeadlineExceeded,
              "deadline passed before a worker picked the request up");
  };
  Job.Run = [this, Conn, Logical, Backend, Route = std::move(Params),
             Id = Req.Id, CircuitFp, ResultKey, T, ReqStart,
             SubmitTime](RoutingScratch &Scratch, CancellationToken &Cancel) {
    const auto Pickup = Trace::Clock::now();
    Histos.QueueWait.recordNs(spanNs(SubmitTime, Pickup));
    if (T)
      T->add("queue_wait", SubmitTime, Pickup);
    std::function<void()> BeforeRoute;
    if (Route.Progress && !Id.empty()) {
      // Stream ~20 progress events per route, floored so small circuits
      // do not flood the connection. Installed only right before the
      // main routing pass — after the bidirectional derive passes, which
      // route the circuit internally and would otherwise exhaust the
      // throttle (and mislead the client) before the real route begins.
      size_t Step = std::max<size_t>(Logical->size() / 20, 256);
      BeforeRoute = [&Cancel, Conn, Id, Step] {
        Cancel.enableProgress(
            [Conn, Id](size_t Done, size_t Total) {
              Conn->send(formatProgressEvent(Id, Done, Total));
            },
            Step);
      };
    }
    RouteOutcome Out = executeRoute(Logical, Backend, Route, CircuitFp,
                                    ResultKey, Scratch, Cancel, BeforeRoute,
                                    T.get());
    const auto Done = Trace::Clock::now();
    Histos.Route.recordNs(spanNs(ReqStart, Done));
    double TotalMs = spanNs(ReqStart, Done) / 1e6;
    if (Options.SlowRequestMs > 0 && TotalMs >= Options.SlowRequestMs)
      logSlowRequest("route", Id, Route, TotalMs, Options.SlowRequestMs,
                     T.get(), Done);
    if (Out.Cancelled) {
      auto [Code, Message] = cancellationError(Cancel);
      // Followers are delivered first: the leader's possibly-slow writer
      // must not delay their (other connections') responses.
      Inflight->complete(ResultKey, coalescedFailure(Code, Message));
      Conn->releaseJob(Id);
      sendError(*Conn, "route", Id, Code, Message);
      return;
    }
    if (Out.ErrorCode) {
      Inflight->complete(ResultKey,
                         coalescedFailure(Out.ErrorCode, Out.ErrorMessage));
      Conn->releaseJob(Id);
      sendError(*Conn, "route", Id, Out.ErrorCode, Out.ErrorMessage);
      return;
    }
    {
      InflightTable::Outcome FlightOut;
      FlightOut.Ok = true;
      FlightOut.ContextHit = Out.ContextHit;
      FlightOut.Stats = Out.Stats;
      FlightOut.Cached = Out.Cached;
      Inflight->complete(ResultKey, FlightOut);
    }
    Conn->releaseJob(Id);
    if (T) {
      json::Value TraceJson = T->toJson(Done);
      Conn->send(formatRouteResponse(Id, Route.Mapper, Route.Backend,
                                     Out.Stats, Out.ContextHit,
                                     /*ResultCacheHit=*/false,
                                     Out.Cached->RoutedQasm,
                                     Route.IncludeQasm, &TraceJson));
    } else {
      Conn->send(formatRouteResponse(Id, Route.Mapper, Route.Backend,
                                     Out.Stats, Out.ContextHit,
                                     /*ResultCacheHit=*/false,
                                     Out.Cached->RoutedQasm,
                                     Route.IncludeQasm));
    }
  };

  if (!Workers->trySubmit(std::move(Job), Ticket)) {
    const char *Code = Stopping.load() ? errc::ShuttingDown : errc::QueueFull;
    const char *Message = Stopping.load()
                              ? "server is shutting down"
                              : "scheduler queue is full, retry later";
    Inflight->complete(ResultKey, coalescedFailure(Code, Message));
    Conn->releaseJob(Req.Id);
    sendError(*Conn, "route", Req.Id, Code, Message);
  }
}

Server::RouteOutcome
Server::executeRoute(const std::shared_ptr<Circuit> &Logical,
                     const std::shared_ptr<const PooledBackend> &Backend,
                     const RouteRequest &Params, uint64_t CircuitFp,
                     const CacheKey &ResultKey, RoutingScratch &Scratch,
                     CancellationToken &Cancel,
                     const std::function<void()> &BeforeRoute, Trace *T) {
  RouteOutcome Out;
  if (Cancel.cancelled()) {
    Out.Cancelled = true;
    return Out;
  }
  std::unique_ptr<Router> Mapper =
      makeServiceRouter(Params.Mapper, Params.ErrorAware, Params.Affine);
  RoutingContextOptions CtxOptions = Mapper->contextOptions();
  CacheKey ContextKey{CircuitFp, Backend->Fingerprint,
                      fingerprint(CtxOptions)};
  const auto CtxStart = Trace::Clock::now();
  int CtxSpan = T ? T->begin("context_build") : -1;
  auto Bundle = Contexts.getOrBuild(
      ContextKey,
      [&] {
        return CachedContext::build(*Logical, *Backend->Graph, CtxOptions,
                                    /*WarmWeights=*/true, T);
      },
      &Out.ContextHit);
  if (T)
    T->end(CtxSpan);
  Histos.ContextBuild.recordNs(spanNs(CtxStart, Trace::Clock::now()));
  const RoutingContext &Ctx = Bundle->context();
  if (!Ctx.valid()) {
    Out.ErrorCode = errc::InvalidCircuit;
    Out.ErrorMessage = Ctx.status().message();
    return Out;
  }
  const auto InitStart = Trace::Clock::now();
  int InitSpan = T ? T->begin("initial_mapping") : -1;
  QubitMapping Initial =
      Params.Bidirectional
          ? deriveBidirectionalMapping(*Mapper, Ctx, 1, &Scratch, &Cancel)
          : Ctx.identityMapping();
  if (T)
    T->end(InitSpan);
  Histos.InitialMapping.recordNs(spanNs(InitStart, Trace::Clock::now()));
  if (Cancel.cancelled()) {
    Out.Cancelled = true;
    return Out;
  }
  if (BeforeRoute)
    BeforeRoute();
  const auto RouteStart = Trace::Clock::now();
  int RouteSpan = T ? T->begin("routing_loop") : -1;
  // The sink rides the pooled scratch through the virtual route() call;
  // restore it before the scratch returns to the pool.
  Scratch.TraceSink = T;
  RoutingResult Result = Mapper->route(Ctx, Initial, Scratch, &Cancel);
  Scratch.TraceSink = nullptr;
  if (T)
    T->end(RouteSpan);
  Histos.RoutingLoop.recordNs(spanNs(RouteStart, Trace::Clock::now()));
  if (Result.Cancelled) {
    Out.Cancelled = true;
    return Out;
  }
  if (Result.AffineReplayedPeriods || Result.AffineFallbackPeriods) {
    std::lock_guard<std::mutex> Lock(CounterMu);
    Counters.AffineReplays += Result.AffineReplayedPeriods;
    Counters.AffineFallbacks += Result.AffineFallbackPeriods;
  }
  const auto VerifyStart = Trace::Clock::now();
  int VerifySpan = T ? T->begin("verify") : -1;
  VerifyResult Check = verifyRouting(Ctx.circuit(), Ctx.hardware(), Result);
  if (T)
    T->end(VerifySpan);
  Histos.Verify.recordNs(spanNs(VerifyStart, Trace::Clock::now()));
  if (!Check.Ok) {
    Out.ErrorCode = errc::VerifyFailed;
    Out.ErrorMessage = formatString("routing failed verification: %s",
                                    Check.Message.c_str());
    return Out;
  }
  auto Cached = std::make_shared<CachedResult>();
  {
    ScopedSpan PrintSpan(T, "print_qasm");
    Cached->RoutedQasm = qasm::printQasm(Result.Routed);
  }
  Cached->LogicalGates = Logical->size();
  Cached->RoutedGates = Result.Routed.size();
  Cached->Swaps = Result.NumSwaps;
  Cached->DepthBefore = Logical->depth();
  Cached->DepthAfter = Result.Routed.depth();
  Cached->MappingSeconds = Result.MappingSeconds;
  Cached->TimedOut = Result.TimedOut;
  Cached->Verified = true;
  if (Ctx.hardware().hasErrorModel())
    Cached->SuccessProbability =
        estimateSuccessProbability(Result.Routed, Ctx.hardware());

  Out.Stats.LogicalGates = Cached->LogicalGates;
  Out.Stats.RoutedGates = Cached->RoutedGates;
  Out.Stats.Swaps = Cached->Swaps;
  Out.Stats.DepthBefore = Cached->DepthBefore;
  Out.Stats.DepthAfter = Cached->DepthAfter;
  Out.Stats.MappingSeconds = Cached->MappingSeconds;
  Out.Stats.TimedOut = Cached->TimedOut;
  Out.Stats.Verified = true;
  Out.Stats.SuccessProbability = Cached->SuccessProbability;
  Out.Cached = Results.insertValue(ResultKey, std::move(Cached));
  // Persist the routed result. Failures are counted in the store's own
  // stats and never fail the request — durability is an optimization,
  // not a correctness requirement.
  if (Store)
    Store->put(ResultKey, *Out.Cached);
  return Out;
}

//===----------------------------------------------------------------------===//
// Batch sessions
//===----------------------------------------------------------------------===//

void Server::finishBatchItem(const std::shared_ptr<BatchState> &Batch,
                             size_t Index, const char *Status) {
  Batch->Status[Index] = Status;
  // The fetch_sub sequences this thread's Status write (and its already-
  // sent item frame) before the summary sender's reads, and the writer
  // mutex orders the frames themselves — so the summary is always last.
  if (Batch->Remaining.fetch_sub(1) == 1) {
    Batch->Conn->releaseBatch(Batch->Id);
    Batch->Conn->send(formatBatchSummaryResponse(Batch->Id, Batch->Mapper,
                                                 Batch->BackendName,
                                                 Batch->Names,
                                                 Batch->Status));
  }
}

bool Server::cancelBatch(const std::shared_ptr<BatchState> &Batch) {
  bool AnyLive = false;
  for (const auto &[Ticket, Index] : Batch->Tickets) {
    switch (Workers->cancel(Ticket)) {
    case JobTicket::State::Queued:
      // Claimed away from the workers unrun: this thread owns reporting.
      // An item leading a coalescing flight takes its followers' answers
      // with it (as a structured error); a cancelled follower item leads
      // nothing, so the call is a no-op for it.
      Inflight->completeByLeader(
          Ticket,
          coalescedFailure(errc::Cancelled, "item cancelled while queued"));
      AnyLive = true;
      Batch->Conn->send(formatBatchItemError(Batch->Id, Index,
                                             Batch->Names[Index],
                                             errc::Cancelled,
                                             "item cancelled while queued"));
      finishBatchItem(Batch, Index, errc::Cancelled);
      break;
    case JobTicket::State::Running:
      // Token signalled; the item aborts at its next poll and reports
      // through its own completion path.
      AnyLive = true;
      break;
    case JobTicket::State::CancelledWhileQueued:
    case JobTicket::State::Done:
      break;
    }
  }
  return AnyLive;
}

void Server::handleBatch(const std::shared_ptr<Connection> &Conn,
                         const Request &Req) {
  const RouteRequest &Route = Req.Route;
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.BatchRequests;
    Counters.BatchItems += Req.Items.size();
  }
  if (Stopping.load()) {
    sendError(*Conn, "batch", Req.Id, errc::ShuttingDown,
              "server is shutting down");
    return;
  }
  if (Conn->idInFlight(Req.Id)) {
    sendError(*Conn, "batch", Req.Id, errc::BadRequest,
              formatString("id \"%s\" is already in flight on this "
                           "connection",
                           Req.Id.c_str()));
    return;
  }
  if (!isKnown(KnownMappers, sizeof(KnownMappers) / sizeof(KnownMappers[0]),
               Route.Mapper)) {
    sendError(*Conn, "batch", Req.Id, errc::UnknownMapper,
              formatString("unknown mapper \"%s\"", Route.Mapper.c_str()));
    return;
  }
  std::shared_ptr<const PooledBackend> Backend =
      lookupBackend(Route.Backend, Route.ErrorAware, Route.CalibrationSeed);
  if (!Backend) {
    sendError(*Conn, "batch", Req.Id, errc::UnknownBackend,
              formatString("unknown backend \"%s\"", Route.Backend.c_str()));
    return;
  }

  const size_t Total = Req.Items.size();
  auto Batch = std::make_shared<BatchState>();
  Batch->Conn = Conn;
  Batch->Id = Req.Id;
  Batch->Mapper = Route.Mapper;
  Batch->BackendName = Route.Backend;
  Batch->Remaining.store(Total);
  Batch->Status.assign(Total, std::string());
  Batch->Names.resize(Total);
  for (size_t I = 0; I < Total; ++I)
    Batch->Names[I] = Req.Items[I].Name;

  auto Deadline =
      requestDeadline(Route.TimeoutMs, Options.DefaultTimeoutSeconds);

  // Shared per-item parameters; progress streaming is a `route` feature
  // (a batch already streams one frame per item).
  RouteRequest Params;
  Params.Mapper = Route.Mapper;
  Params.Backend = Route.Backend;
  Params.Bidirectional = Route.Bidirectional;
  Params.ErrorAware = Route.ErrorAware;
  Params.Affine = Route.Affine;
  Params.CalibrationSeed = Route.CalibrationSeed;
  Params.IncludeQasm = Route.IncludeQasm;
  Params.TimeoutMs = Route.TimeoutMs;
  Params.Trace = Route.Trace;
  Params.TraceId = Route.TraceId;

  // Per-item queue wait (and each item trace's epoch) is anchored at
  // batch arrival: items genuinely wait while earlier ones are triaged.
  const auto BatchStart = Trace::Clock::now();

  // Triage every item before anything is enqueued or any frame is sent:
  // the submission below is all-or-nothing, and a rejected batch must
  // emit no item frames at all.
  struct InlineFailure {
    size_t Index;
    const char *Code;
    std::string Message;
  };
  struct InlineHit {
    size_t Index;
    std::shared_ptr<const CachedResult> Cached;
  };
  // An item whose key matches a flight already in the air (a foreign
  // request's route, or an earlier identical item of this same batch).
  // It must not route again — but it also must not attach yet: a foreign
  // flight could complete (and deliver this item's frame) before the
  // all-or-nothing submission decision below, and a rejected batch emits
  // no item frames. Candidates are resolved only after submission.
  struct CoalesceCandidate {
    size_t Index;
    std::shared_ptr<Circuit> Logical;
    uint64_t CircuitFp;
    CacheKey ResultKey;
    std::shared_ptr<JobTicket> Ticket;
  };
  std::vector<InlineFailure> Failures;
  std::vector<InlineHit> Hits;
  std::vector<CoalesceCandidate> Candidates;
  std::vector<SchedulerJob> Jobs;
  std::vector<size_t> JobIndex; // Jobs[J] routes item JobIndex[J].
  std::vector<std::shared_ptr<JobTicket>> LeaderTickets; // Parallels Jobs.

  // Builds the scheduler job for an item that leads its flight. Every
  // terminal path completes the flight (delivering any followers) before
  // reporting through this batch's own frames.
  auto MakeLeaderJob = [&](size_t I, std::shared_ptr<Circuit> Logical,
                           uint64_t CircuitFp, CacheKey ResultKey) {
    SchedulerJob Job;
    Job.Deadline = Deadline;
    Job.OnExpired = [this, Batch, I, ResultKey] {
      Inflight->complete(
          ResultKey,
          coalescedFailure(errc::DeadlineExceeded,
                           "deadline passed before a worker picked the item "
                           "up"));
      Batch->Conn->send(formatBatchItemError(
          Batch->Id, I, Batch->Names[I], errc::DeadlineExceeded,
          "deadline passed before a worker picked the item up"));
      finishBatchItem(Batch, I, errc::DeadlineExceeded);
    };
    Job.Run = [this, Batch, I, Logical, Backend, Params, CircuitFp,
               ResultKey, BatchStart](RoutingScratch &Scratch,
                                      CancellationToken &Cancel) {
      const auto Pickup = Trace::Clock::now();
      Histos.QueueWait.recordNs(spanNs(BatchStart, Pickup));
      std::unique_ptr<Trace> T;
      if (Params.Trace) {
        // Item traces correlate as "<trace id or batch id>-<index>".
        std::string Base =
            Params.TraceId.empty() ? Batch->Id : Params.TraceId;
        T = std::make_unique<Trace>();
        T->reset(Base.empty() ? generateTraceId()
                              : formatString("%s-%zu", Base.c_str(), I),
                 BatchStart);
        T->add("queue_wait", BatchStart, Pickup);
      }
      RouteOutcome Out =
          executeRoute(Logical, Backend, Params, CircuitFp, ResultKey,
                       Scratch, Cancel, nullptr, T.get());
      const auto Done = Trace::Clock::now();
      Histos.BatchItem.recordNs(spanNs(Pickup, Done));
      double TotalMs = spanNs(BatchStart, Done) / 1e6;
      if (Options.SlowRequestMs > 0 && TotalMs >= Options.SlowRequestMs)
        logSlowRequest("batch_item", Batch->Id, Params, TotalMs,
                       Options.SlowRequestMs, T.get(), Done);
      if (Out.Cancelled) {
        auto [Code, Message] = cancellationError(Cancel);
        // Followers are delivered first: the leader's possibly-slow
        // writer must not delay their (other connections') responses.
        Inflight->complete(ResultKey, coalescedFailure(Code, Message));
        Batch->Conn->send(formatBatchItemError(Batch->Id, I,
                                               Batch->Names[I], Code,
                                               Message));
        finishBatchItem(Batch, I, Code);
        return;
      }
      if (Out.ErrorCode) {
        Inflight->complete(ResultKey, coalescedFailure(Out.ErrorCode,
                                                       Out.ErrorMessage));
        Batch->Conn->send(formatBatchItemError(Batch->Id, I,
                                               Batch->Names[I],
                                               Out.ErrorCode,
                                               Out.ErrorMessage));
        finishBatchItem(Batch, I, Out.ErrorCode);
        return;
      }
      {
        InflightTable::Outcome FlightOut;
        FlightOut.Ok = true;
        FlightOut.ContextHit = Out.ContextHit;
        FlightOut.Stats = Out.Stats;
        FlightOut.Cached = Out.Cached;
        Inflight->complete(ResultKey, FlightOut);
      }
      if (T) {
        json::Value TraceJson = T->toJson(Done);
        Batch->Conn->send(formatBatchItemResult(
            Batch->Id, I, Batch->Names[I], Params.Mapper, Params.Backend,
            Out.Stats, Out.ContextHit, /*ResultCacheHit=*/false,
            Out.Cached->RoutedQasm, Params.IncludeQasm, &TraceJson));
      } else {
        Batch->Conn->send(formatBatchItemResult(
            Batch->Id, I, Batch->Names[I], Params.Mapper, Params.Backend,
            Out.Stats, Out.ContextHit, /*ResultCacheHit=*/false,
            Out.Cached->RoutedQasm, Params.IncludeQasm));
      }
      finishBatchItem(Batch, I, "ok");
    };
    return Job;
  };

  for (size_t I = 0; I < Total; ++I) {
    qasm::ImportResult Imported =
        qasm::importQasm(Req.Items[I].Qasm, "request");
    if (!Imported.succeeded()) {
      Failures.push_back({I, errc::BadQasm, Imported.Error});
      continue;
    }
    auto Logical = std::make_shared<Circuit>(
        Imported.Circ->withoutNonUnitaries().decomposeThreeQubitGates());
    if (Logical->numQubits() > Backend->Graph->numQubits()) {
      Failures.push_back(
          {I, errc::TooLarge,
           formatString("circuit has %u qubits but %s only has %u",
                        Logical->numQubits(), Route.Backend.c_str(),
                        Backend->Graph->numQubits())});
      continue;
    }
    uint64_t CircuitFp = fingerprint(*Logical);
    uint64_t MapperConfigFp = hashCombine(
        fingerprintString(Route.Mapper),
        (Route.Affine ? 4u : 0u) | (Route.Bidirectional ? 2u : 0u) |
            (Route.ErrorAware ? 1u : 0u));
    CacheKey ResultKey{CircuitFp, Backend->Fingerprint, MapperConfigFp};
    if (auto Cached = lookupResult(ResultKey)) {
      Hits.push_back({I, std::move(Cached)});
      continue;
    }
    // Leading is claimed *now*, with a fresh pre-made ticket, so that a
    // within-batch duplicate triaged later sees the flight and coalesces
    // instead of routing twice. The flights are unwound (completeByLeader)
    // if the submission below is rejected.
    auto Ticket = std::make_shared<JobTicket>();
    if (Inflight->lead(ResultKey, Ticket)) {
      Jobs.push_back(MakeLeaderJob(I, Logical, CircuitFp, ResultKey));
      JobIndex.push_back(I);
      LeaderTickets.push_back(std::move(Ticket));
    } else {
      Candidates.push_back(
          {I, std::move(Logical), CircuitFp, ResultKey, std::move(Ticket)});
    }
  }

  // Register before submission so a completing worker's releaseBatch()
  // always finds the entry; requests on this connection are read
  // serially, so no cancel can slip in between.
  {
    std::lock_guard<std::mutex> Lock(Conn->JobsMu);
    Conn->InFlightBatches[Req.Id] = Batch;
  }
  if (!Jobs.empty()) {
    std::vector<std::shared_ptr<JobTicket>> Tickets =
        Workers->trySubmitBatch(std::move(Jobs), LeaderTickets);
    if (Tickets.empty()) {
      // All-or-nothing rejection: nothing ran, nothing was sent — one
      // error response covers the whole batch. The flights claimed at
      // triage die with it: any *foreign* follower that coalesced onto
      // them meanwhile gets the rejection as a structured error (this
      // batch's own candidates have not attached yet, so no item frame
      // escapes).
      const char *Code =
          Stopping.load() ? errc::ShuttingDown : errc::QueueFull;
      std::string Message =
          Stopping.load()
              ? "server is shutting down"
              : formatString("scheduler queue lacks capacity for %zu "
                             "batch items, retry later",
                             JobIndex.size());
      for (const std::shared_ptr<JobTicket> &Ticket : LeaderTickets)
        Inflight->completeByLeader(Ticket, coalescedFailure(Code, Message));
      Conn->releaseBatch(Req.Id);
      sendError(*Conn, "batch", Req.Id, Code, Message);
      return;
    }
    for (size_t J = 0; J < Tickets.size(); ++J)
      Batch->Tickets.emplace_back(std::move(Tickets[J]), JobIndex[J]);
  }

  // The batch is committed: coalesce candidates may attach now. A
  // candidate whose flight resolved in the window since triage is served
  // from the result cache, or — when the flight failed and left no
  // result — routed individually after all.
  for (CoalesceCandidate &C : Candidates) {
    for (;;) {
      InflightTable::Follower F;
      F.Ticket = C.Ticket;
      F.Deadline = Deadline;
      F.Deliver = [this, Batch, I = C.Index, Mapper = Route.Mapper,
                   BackendName = Route.Backend,
                   IncludeQasm =
                       Route.IncludeQasm](const InflightTable::Outcome &O) {
        if (!O.Ok) {
          Batch->Conn->send(formatBatchItemError(
              Batch->Id, I, Batch->Names[I], O.ErrorCode, O.ErrorMessage));
          finishBatchItem(Batch, I, O.ErrorCode);
          return;
        }
        Batch->Conn->send(formatBatchItemResult(
            Batch->Id, I, Batch->Names[I], Mapper, BackendName, O.Stats,
            O.ContextHit, /*ResultCacheHit=*/false, O.Cached->RoutedQasm,
            IncludeQasm, /*TraceJson=*/nullptr, /*Coalesced=*/true));
        finishBatchItem(Batch, I, "ok");
      };
      if (Inflight->tryAttach(C.ResultKey, std::move(F))) {
        {
          std::lock_guard<std::mutex> Lock(CounterMu);
          ++Counters.Coalesced;
        }
        Batch->Tickets.emplace_back(C.Ticket, C.Index);
        break;
      }
      if (auto Cached = lookupResult(C.ResultKey)) {
        RouteStats Stats = statsFromCached(*Cached);
        Conn->send(formatBatchItemResult(
            Req.Id, C.Index, Batch->Names[C.Index], Route.Mapper,
            Route.Backend, Stats, /*ContextCacheHit=*/false,
            /*ResultCacheHit=*/true, Cached->RoutedQasm, Route.IncludeQasm));
        finishBatchItem(Batch, C.Index, "ok");
        break;
      }
      if (Inflight->lead(C.ResultKey, C.Ticket)) {
        if (!Workers->trySubmit(
                MakeLeaderJob(C.Index, C.Logical, C.CircuitFp, C.ResultKey),
                C.Ticket)) {
          const char *Code =
              Stopping.load() ? errc::ShuttingDown : errc::QueueFull;
          const char *Message = Stopping.load()
                                    ? "server is shutting down"
                                    : "scheduler queue is full, retry later";
          Inflight->completeByLeader(C.Ticket,
                                     coalescedFailure(Code, Message));
          Conn->send(formatBatchItemError(Req.Id, C.Index,
                                          Batch->Names[C.Index], Code,
                                          Message));
          finishBatchItem(Batch, C.Index, Code);
        } else {
          Batch->Tickets.emplace_back(C.Ticket, C.Index);
        }
        break;
      }
      // Another identical request took the lead in the window between
      // the failed attach and the failed lead; retry the attach.
    }
  }

  // Inline outcomes go out only now, after the all-or-nothing decision.
  // Workers may already be streaming their items — fine; the summary
  // still waits for these, because their countdown slots are ours.
  for (const InlineHit &Hit : Hits) {
    RouteStats Stats;
    Stats.LogicalGates = Hit.Cached->LogicalGates;
    Stats.RoutedGates = Hit.Cached->RoutedGates;
    Stats.Swaps = Hit.Cached->Swaps;
    Stats.DepthBefore = Hit.Cached->DepthBefore;
    Stats.DepthAfter = Hit.Cached->DepthAfter;
    Stats.MappingSeconds = Hit.Cached->MappingSeconds;
    Stats.TimedOut = Hit.Cached->TimedOut;
    Stats.Verified = Hit.Cached->Verified;
    Stats.SuccessProbability = Hit.Cached->SuccessProbability;
    Conn->send(formatBatchItemResult(
        Req.Id, Hit.Index, Batch->Names[Hit.Index], Route.Mapper,
        Route.Backend, Stats, /*ContextCacheHit=*/false,
        /*ResultCacheHit=*/true, Hit.Cached->RoutedQasm,
        Route.IncludeQasm));
    finishBatchItem(Batch, Hit.Index, "ok");
  }
  for (const InlineFailure &Failure : Failures) {
    Conn->send(formatBatchItemError(Req.Id, Failure.Index,
                                    Batch->Names[Failure.Index],
                                    Failure.Code, Failure.Message));
    finishBatchItem(Batch, Failure.Index, Failure.Code);
  }
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

json::Value Server::statsJson() const {
  json::Value Doc = json::Value::object();

  json::Value ServerObj = json::Value::object();
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ServerObj.set("connections", Counters.Connections);
    ServerObj.set("requests", Counters.Requests);
    ServerObj.set("route_requests", Counters.RouteRequests);
    ServerObj.set("cancel_requests", Counters.CancelRequests);
    ServerObj.set("batch_requests", Counters.BatchRequests);
    ServerObj.set("batch_items", Counters.BatchItems);
    ServerObj.set("errors", Counters.Errors);
    ServerObj.set("affine_replays", Counters.AffineReplays);
    ServerObj.set("affine_fallbacks", Counters.AffineFallbacks);
    ServerObj.set("coalesced", Counters.Coalesced);
  }
  ServerObj.set("uptime_seconds", Uptime.elapsedSeconds());
  ServerObj.set("endpoint", boundAddress());
  ServerObj.set("protocol", ProtocolVersion);
  Doc.set("server", std::move(ServerObj));

  if (Workers) {
    SchedulerStats S = Workers->stats();
    json::Value Sched = json::Value::object();
    Sched.set("workers", S.Workers);
    Sched.set("queue_depth", S.QueueDepth);
    Sched.set("queue_capacity", Options.QueueCapacity);
    Sched.set("submitted", S.Submitted);
    Sched.set("completed", S.Completed);
    Sched.set("expired", S.Expired);
    Sched.set("rejected", S.Rejected);
    Sched.set("cancelled", S.Cancelled);
    Doc.set("scheduler", std::move(Sched));
  }

  Doc.set("context_cache",
          cacheStatsJson(Contexts.stats(), Options.ContextCacheBytes));
  Doc.set("result_cache",
          cacheStatsJson(Results.stats(), Options.ResultCacheBytes));
  if (Store) {
    StoreStats SS = Store->stats();
    json::Value St = json::Value::object();
    St.set("read_only", Store->readOnly());
    St.set("records", SS.Records);
    St.set("appended_records", SS.AppendedRecords);
    St.set("bytes", SS.Bytes);
    St.set("live_bytes", SS.LiveBytes);
    St.set("hits", SS.Hits);
    St.set("misses", SS.Misses);
    St.set("corrupt_skipped", SS.CorruptSkipped);
    St.set("truncated_bytes", SS.TruncatedBytes);
    St.set("compactions", SS.Compactions);
    St.set("write_errors", SS.WriteErrors);
    Doc.set("store", std::move(St));
  }
  Doc.set("latency", Histos.toJson());
  return Doc;
}

json::Value ServiceHistograms::toJson() const {
  json::Value Obj = json::Value::object();
  Obj.set("route", Route.toJson());
  Obj.set("batch_item", BatchItem.toJson());
  Obj.set("queue_wait", QueueWait.toJson());
  Obj.set("context_build", ContextBuild.toJson());
  Obj.set("initial_mapping", InitialMapping.toJson());
  Obj.set("routing_loop", RoutingLoop.toJson());
  Obj.set("verify", Verify.toJson());
  return Obj;
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> Lock(CounterMu);
  return Counters;
}
