//===- service/Server.cpp - qlosured Unix-socket server ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "baselines/RouterRegistry.h"
#include "core/Qlosure.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/Fidelity.h"
#include "route/InitialMapping.h"
#include "route/Verify.h"
#include "service/SocketIO.h"
#include "support/StringUtils.h"
#include "topology/Backends.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

const char *const KnownBackends[] = {
    "sherbrooke", "ankaa3",  "sherbrooke2x", "kings9x9",
    "kings16x16", "aspen16", "sycamore54"};

const char *const KnownMappers[] = {"qlosure", "sabre", "qmap", "cirq",
                                    "tket"};

bool isKnown(const char *const *Names, size_t Count,
             const std::string &Name) {
  for (size_t I = 0; I < Count; ++I)
    if (Name == Names[I])
      return true;
  return false;
}

std::unique_ptr<Router> makeServiceRouter(const std::string &Name,
                                          bool ErrorAware) {
  if (Name == "qlosure") {
    QlosureOptions Opts;
    Opts.ErrorAware = ErrorAware;
    return std::make_unique<QlosureRouter>(Opts);
  }
  // Baselines have no error-aware mode; they route on the calibrated
  // graph with plain distances (mirrors tools/qlosure-route).
  return makeRouterByName(Name);
}

json::Value cacheStatsJson(const CacheStats &S, size_t ByteBudget) {
  json::Value Obj = json::Value::object();
  Obj.set("hits", S.Hits);
  Obj.set("misses", S.Misses);
  Obj.set("evictions", S.Evictions);
  Obj.set("entries", S.Entries);
  Obj.set("bytes", S.Bytes);
  Obj.set("byte_budget", ByteBudget);
  return Obj;
}

} // namespace

Server::Server(ServerOptions Options)
    : Options(std::move(Options)),
      Contexts(CacheOptions{this->Options.CacheShards,
                            this->Options.ContextCacheBytes}),
      Results(CacheOptions{this->Options.CacheShards,
                           this->Options.ResultCacheBytes}) {}

Server::~Server() {
  requestStop();
  wait();
}

Status Server::start() {
  if (Started)
    return Status::error("server already started");
  if (Options.SocketPath.empty())
    return Status::error("socket path must not be empty");

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Options.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error(
        formatString("socket path too long (%zu bytes, limit %zu)",
                     Options.SocketPath.size(), sizeof(Addr.sun_path) - 1));
  std::memcpy(Addr.sun_path, Options.SocketPath.c_str(),
              Options.SocketPath.size() + 1);

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error(formatString("socket(): %s", std::strerror(errno)));

  // Replace a stale socket file from a previous run; a live daemon on the
  // same path will have its clients stolen, which is the operator's call.
  ::unlink(Options.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Status Failure = Status::error(formatString(
        "bind(%s): %s", Options.SocketPath.c_str(), std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    return Failure;
  }
  if (::listen(ListenFd, 64) < 0) {
    Status Failure =
        Status::error(formatString("listen(): %s", std::strerror(errno)));
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Options.SocketPath.c_str());
    return Failure;
  }

  SchedulerOptions SchedOpts;
  SchedOpts.Workers = Options.Workers;
  SchedOpts.QueueCapacity = Options.QueueCapacity;
  Workers = std::make_unique<Scheduler>(SchedOpts);

  Started = true;
  Uptime.reset();
  AcceptThread = std::thread([this] { acceptLoop(); });
  return Status::success();
}

void Server::requestStop() {
  {
    std::lock_guard<std::mutex> Lock(StopMu);
    StopRequested = true;
  }
  StopCv.notify_all();
}

void Server::wait(const std::function<bool()> &ExternalStop) {
  if (!Started)
    return;
  {
    std::unique_lock<std::mutex> Lock(StopMu);
    while (!StopRequested) {
      if (ExternalStop && ExternalStop())
        break;
      StopCv.wait_for(Lock, std::chrono::milliseconds(200));
    }
  }
  teardown();
}

void Server::stop() {
  requestStop();
  wait();
}

void Server::teardown() {
  std::lock_guard<std::mutex> TeardownLock(TeardownMu);
  if (TornDown)
    return;
  TornDown = true;
  Stopping.store(true);

  // Unblock accept(): closing the listen socket makes it fail immediately.
  if (ListenFd >= 0) {
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    ListenFd = -1;
  }
  if (AcceptThread.joinable())
    AcceptThread.join();

  // Unblock every connection read; handlers then drain their in-flight
  // responses and exit.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (int Fd : ConnFds)
      if (Fd >= 0)
        ::shutdown(Fd, SHUT_RDWR);
  }
  // Drain queued jobs so every pending route request gets its response
  // before the connection threads are joined.
  if (Workers)
    Workers->shutdown();
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    ToJoin.swap(ConnThreads);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();

  ::unlink(Options.SocketPath.c_str());
}

void Server::acceptLoop() {
  while (!Stopping.load()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      return; // Listener closed (teardown) or fatal; either way, stop.
    }
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    std::lock_guard<std::mutex> Lock(ConnMu);
    // Reap connections that finished since the last accept: join their
    // threads (they have already vacated their fd slot, so join returns
    // promptly) and recycle the slots.
    for (size_t Finished : FinishedSlots) {
      if (ConnThreads[Finished].joinable())
        ConnThreads[Finished].join();
      FreeSlots.push_back(Finished);
    }
    FinishedSlots.clear();

    size_t Slot;
    if (!FreeSlots.empty()) {
      Slot = FreeSlots.back();
      FreeSlots.pop_back();
      ConnFds[Slot] = Fd;
      ConnThreads[Slot] =
          std::thread([this, Fd, Slot] { connectionLoop(Fd, Slot); });
    } else {
      Slot = ConnFds.size();
      ConnFds.push_back(Fd);
      ConnThreads.emplace_back(
          [this, Fd, Slot] { connectionLoop(Fd, Slot); });
    }
    {
      std::lock_guard<std::mutex> CounterLock(CounterMu);
      ++Counters.Connections;
    }
  }
}

void Server::connectionLoop(int Fd, size_t Slot) {
  std::string Pending;
  char Buffer[65536];
  bool Alive = true;
  while (Alive) {
    ssize_t N = ::recv(Fd, Buffer, sizeof(Buffer), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Pending.append(Buffer, static_cast<size_t>(N));
    if (Pending.size() > Options.MaxRequestBytes &&
        Pending.find('\n') == std::string::npos) {
      sendAll(Fd, formatErrorResponse("unknown", "", errc::BadRequest,
                                      "request line too large") +
                      "\n");
      break;
    }
    std::string Line;
    while (Alive && popLine(Pending, Line)) {
      if (Line.empty())
        continue;
      bool StopAfterSend = false;
      std::string Response = handleLine(Line, StopAfterSend);
      if (!sendAll(Fd, Response + "\n")) {
        Alive = false;
        break;
      }
      if (StopAfterSend)
        requestStop();
    }
  }
  // Vacate this connection's slot *before* closing, under the same lock
  // teardown() iterates under: once the kernel may reuse the fd number
  // for a new accept, no stale slot can alias it, so teardown never
  // shutdown()s the wrong connection (or misses a live one). Reporting
  // the slot as finished lets the accept loop join this thread and
  // recycle the slot.
  std::lock_guard<std::mutex> Lock(ConnMu);
  ConnFds[Slot] = -1;
  ::close(Fd);
  FinishedSlots.push_back(Slot);
}

std::string Server::handleLine(const std::string &Line,
                               bool &StopAfterSend) {
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Requests;
  }
  RequestParse Parsed = parseRequest(Line);
  if (!Parsed.Ok) {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Errors;
    return formatErrorResponse("unknown", "", Parsed.ErrorCode,
                               Parsed.ErrorMessage);
  }
  const Request &Req = Parsed.Req;
  switch (Req.TheOp) {
  case Op::Ping:
    return formatPingResponse(Req.Id);
  case Op::Stats:
    return formatStatsResponse(Req.Id, statsJson());
  case Op::Shutdown:
    StopAfterSend = true;
    return formatShutdownResponse(Req.Id);
  case Op::Route: {
    std::string Response = handleRoute(Req);
    if (Response.find("\"ok\":false") != std::string::npos) {
      std::lock_guard<std::mutex> Lock(CounterMu);
      ++Counters.Errors;
    }
    return Response;
  }
  }
  return formatErrorResponse("unknown", Req.Id, errc::BadRequest,
                             "unhandled op");
}

std::shared_ptr<const Server::PooledBackend>
Server::lookupBackend(const std::string &Name, bool ErrorAware,
                      uint64_t CalibrationSeed) {
  if (!isKnown(KnownBackends,
               sizeof(KnownBackends) / sizeof(KnownBackends[0]), Name))
    return nullptr;
  std::string VariantKey =
      ErrorAware ? formatString("%s|ea%llu", Name.c_str(),
                                static_cast<unsigned long long>(
                                    CalibrationSeed))
                 : Name + "|plain";
  std::lock_guard<std::mutex> Lock(BackendMu);
  auto It = Backends.find(VariantKey);
  if (It != Backends.end())
    return It->second;
  // The calibration-seed dimension is client-controlled: bound the pool
  // by dropping the error-aware variants when it fills up (in-flight
  // requests hold shared ownership of theirs; plain variants — at most
  // one per known backend — are retained).
  if (Backends.size() >= MaxBackendVariants) {
    for (auto Victim = Backends.begin(); Victim != Backends.end();) {
      if (Victim->first.find("|ea") != std::string::npos)
        Victim = Backends.erase(Victim);
      else
        ++Victim;
    }
  }
  auto Graph = std::make_shared<CouplingGraph>(makeBackendByName(Name));
  if (ErrorAware)
    applySyntheticErrorModel(*Graph, CalibrationSeed);
  auto Pooled = std::make_shared<PooledBackend>();
  Pooled->Fingerprint = fingerprint(*Graph);
  Pooled->Graph = std::move(Graph);
  Backends.emplace(VariantKey, Pooled);
  return Pooled;
}

std::string Server::handleRoute(const Request &Req) {
  const RouteRequest &Route = Req.Route;
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.RouteRequests;
  }
  if (Stopping.load())
    return formatErrorResponse("route", Req.Id, errc::ShuttingDown,
                               "server is shutting down");
  if (!isKnown(KnownMappers, sizeof(KnownMappers) / sizeof(KnownMappers[0]),
               Route.Mapper))
    return formatErrorResponse(
        "route", Req.Id, errc::UnknownMapper,
        formatString("unknown mapper \"%s\"", Route.Mapper.c_str()));
  std::shared_ptr<const PooledBackend> Backend =
      lookupBackend(Route.Backend, Route.ErrorAware, Route.CalibrationSeed);
  if (!Backend)
    return formatErrorResponse(
        "route", Req.Id, errc::UnknownBackend,
        formatString("unknown backend \"%s\"", Route.Backend.c_str()));

  qasm::ImportResult Imported = qasm::importQasm(Route.Qasm, "request");
  if (!Imported.succeeded())
    return formatErrorResponse("route", Req.Id, errc::BadQasm,
                               Imported.Error);
  auto Logical = std::make_shared<Circuit>(
      Imported.Circ->withoutNonUnitaries().decomposeThreeQubitGates());
  if (Logical->numQubits() > Backend->Graph->numQubits())
    return formatErrorResponse(
        "route", Req.Id, errc::TooLarge,
        formatString("circuit has %u qubits but %s only has %u",
                     Logical->numQubits(), Route.Backend.c_str(),
                     Backend->Graph->numQubits()));

  uint64_t CircuitFp = fingerprint(*Logical);
  uint64_t MapperConfigFp = hashCombine(
      fingerprintString(Route.Mapper),
      (Route.Bidirectional ? 2u : 0u) | (Route.ErrorAware ? 1u : 0u));
  CacheKey ResultKey{CircuitFp, Backend->Fingerprint, MapperConfigFp};

  if (auto Cached = Results.lookup(ResultKey)) {
    RouteStats Stats;
    Stats.LogicalGates = Cached->LogicalGates;
    Stats.RoutedGates = Cached->RoutedGates;
    Stats.Swaps = Cached->Swaps;
    Stats.DepthBefore = Cached->DepthBefore;
    Stats.DepthAfter = Cached->DepthAfter;
    Stats.MappingSeconds = Cached->MappingSeconds;
    Stats.TimedOut = Cached->TimedOut;
    Stats.Verified = Cached->Verified;
    Stats.SuccessProbability = Cached->SuccessProbability;
    return formatRouteResponse(Req.Id, Route.Mapper, Route.Backend, Stats,
                               /*ContextCacheHit=*/false,
                               /*ResultCacheHit=*/true, Cached->RoutedQasm,
                               Route.IncludeQasm);
  }

  auto Deadline = std::chrono::steady_clock::time_point::max();
  double TimeoutMs = Route.TimeoutMs > 0
                         ? Route.TimeoutMs
                         : Options.DefaultTimeoutSeconds * 1000.0;
  // Clamp before converting: an absurd client-supplied timeout must not
  // overflow the chrono arithmetic (which would wrap the deadline into
  // the past) or make the double->int64 cast undefined. A week is
  // effectively "no deadline" for a mapping request.
  constexpr double MaxTimeoutMs = 7.0 * 24 * 3600 * 1000;
  TimeoutMs = std::min(TimeoutMs, MaxTimeoutMs);
  if (Route.TimeoutMs > 0 || Options.DefaultTimeoutSeconds > 0)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(
                   static_cast<int64_t>(TimeoutMs * 1000.0));

  auto Promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> Response = Promise->get_future();

  // Everything the worker needs, captured by value / shared ownership:
  // the parsed circuit, the pooled backend (Backends map nodes are never
  // erased while the server lives), and the request parameters.
  SchedulerJob Job;
  Job.Deadline = Deadline;
  Job.OnExpired = [Promise, Id = Req.Id] {
    Promise->set_value(formatErrorResponse(
        "route", Id, errc::DeadlineExceeded,
        "deadline passed before a worker picked the request up"));
  };
  Job.Run = [this, Promise, Logical, Backend, Route, Id = Req.Id,
             CircuitFp, ResultKey](RoutingScratch &Scratch) {
    std::unique_ptr<Router> Mapper =
        makeServiceRouter(Route.Mapper, Route.ErrorAware);
    RoutingContextOptions CtxOptions = Mapper->contextOptions();
    CacheKey ContextKey{CircuitFp, Backend->Fingerprint,
                        fingerprint(CtxOptions)};
    bool ContextHit = false;
    auto Bundle = Contexts.getOrBuild(
        ContextKey,
        [&] {
          return CachedContext::build(*Logical, *Backend->Graph,
                                      CtxOptions);
        },
        &ContextHit);
    const RoutingContext &Ctx = Bundle->context();
    if (!Ctx.valid()) {
      Promise->set_value(formatErrorResponse(
          "route", Id, errc::InvalidCircuit, Ctx.status().message()));
      return;
    }
    QubitMapping Initial =
        Route.Bidirectional ? deriveBidirectionalMapping(*Mapper, Ctx)
                            : Ctx.identityMapping();
    RoutingResult Result = Mapper->route(Ctx, Initial, Scratch);
    VerifyResult Check =
        verifyRouting(Ctx.circuit(), Ctx.hardware(), Result);
    if (!Check.Ok) {
      Promise->set_value(formatErrorResponse(
          "route", Id, errc::VerifyFailed,
          formatString("routing failed verification: %s",
                       Check.Message.c_str())));
      return;
    }
    auto Cached = std::make_shared<CachedResult>();
    Cached->RoutedQasm = qasm::printQasm(Result.Routed);
    Cached->LogicalGates = Logical->size();
    Cached->RoutedGates = Result.Routed.size();
    Cached->Swaps = Result.NumSwaps;
    Cached->DepthBefore = Logical->depth();
    Cached->DepthAfter = Result.Routed.depth();
    Cached->MappingSeconds = Result.MappingSeconds;
    Cached->TimedOut = Result.TimedOut;
    Cached->Verified = true;
    if (Ctx.hardware().hasErrorModel())
      Cached->SuccessProbability =
          estimateSuccessProbability(Result.Routed, Ctx.hardware());
    Results.insertValue(ResultKey, Cached);

    RouteStats Stats;
    Stats.LogicalGates = Cached->LogicalGates;
    Stats.RoutedGates = Cached->RoutedGates;
    Stats.Swaps = Cached->Swaps;
    Stats.DepthBefore = Cached->DepthBefore;
    Stats.DepthAfter = Cached->DepthAfter;
    Stats.MappingSeconds = Cached->MappingSeconds;
    Stats.TimedOut = Cached->TimedOut;
    Stats.Verified = true;
    Stats.SuccessProbability = Cached->SuccessProbability;
    Promise->set_value(formatRouteResponse(
        Id, Route.Mapper, Route.Backend, Stats, ContextHit,
        /*ResultCacheHit=*/false, Cached->RoutedQasm, Route.IncludeQasm));
  };

  if (!Workers->trySubmit(std::move(Job))) {
    if (Stopping.load())
      return formatErrorResponse("route", Req.Id, errc::ShuttingDown,
                                 "server is shutting down");
    return formatErrorResponse("route", Req.Id, errc::QueueFull,
                               "scheduler queue is full, retry later");
  }
  return Response.get();
}

json::Value Server::statsJson() const {
  json::Value Doc = json::Value::object();

  json::Value ServerObj = json::Value::object();
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ServerObj.set("connections", Counters.Connections);
    ServerObj.set("requests", Counters.Requests);
    ServerObj.set("route_requests", Counters.RouteRequests);
    ServerObj.set("errors", Counters.Errors);
  }
  ServerObj.set("uptime_seconds", Uptime.elapsedSeconds());
  ServerObj.set("socket", Options.SocketPath);
  Doc.set("server", std::move(ServerObj));

  if (Workers) {
    SchedulerStats S = Workers->stats();
    json::Value Sched = json::Value::object();
    Sched.set("workers", S.Workers);
    Sched.set("queue_depth", S.QueueDepth);
    Sched.set("queue_capacity", Options.QueueCapacity);
    Sched.set("submitted", S.Submitted);
    Sched.set("completed", S.Completed);
    Sched.set("expired", S.Expired);
    Sched.set("rejected", S.Rejected);
    Doc.set("scheduler", std::move(Sched));
  }

  Doc.set("context_cache",
          cacheStatsJson(Contexts.stats(), Options.ContextCacheBytes));
  Doc.set("result_cache",
          cacheStatsJson(Results.stats(), Options.ResultCacheBytes));
  return Doc;
}

ServerCounters Server::counters() const {
  std::lock_guard<std::mutex> Lock(CounterMu);
  return Counters;
}
