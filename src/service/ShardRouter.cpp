//===- service/ShardRouter.cpp - Consistent-hash fleet router ------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ShardRouter.h"

#include "service/Client.h"
#include "service/Metrics.h"
#include "service/SocketIO.h"
#include "support/Fingerprint.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

//===----------------------------------------------------------------------===//
// HashRing
//===----------------------------------------------------------------------===//

void HashRing::build(const std::vector<std::string> &ShardAddresses,
                     unsigned VNodes) {
  NumShards = ShardAddresses.size();
  Ring.clear();
  Ring.reserve(NumShards * VNodes);
  for (size_t S = 0; S < NumShards; ++S) {
    // Ring points hash the shard's *address*, not its list position, so
    // reordering the shard list moves no keys.
    uint64_t Seed = fingerprintString(ShardAddresses[S]);
    for (unsigned V = 0; V < VNodes; ++V)
      Ring.emplace_back(hashCombine(Seed, V), static_cast<uint32_t>(S));
  }
  std::sort(Ring.begin(), Ring.end());
}

int HashRing::pick(uint64_t Key, const std::vector<char> &Alive) const {
  if (Ring.empty())
    return -1;
  auto It = std::lower_bound(
      Ring.begin(), Ring.end(), Key,
      [](const std::pair<uint64_t, uint32_t> &Point, uint64_t K) {
        return Point.first < K;
      });
  for (size_t Tried = 0; Tried < Ring.size(); ++Tried, ++It) {
    if (It == Ring.end())
      It = Ring.begin();
    uint32_t Shard = It->second;
    if (Shard < Alive.size() && Alive[Shard])
      return static_cast<int>(Shard);
  }
  return -1;
}

uint64_t service::shardKeyForRequest(const Request &Req) {
  uint64_t Key = fingerprintString(Req.Route.Backend);
  if (Req.TheOp == Op::Batch) {
    for (const BatchItem &Item : Req.Items)
      Key = hashCombine(Key, fingerprintString(Item.Qasm));
    return Key;
  }
  return hashCombine(Key, fingerprintString(Req.Route.Qasm));
}

//===----------------------------------------------------------------------===//
// Connection: client writer + per-shard upstreams + in-flight table
//===----------------------------------------------------------------------===//

namespace {

/// Frame triage for upstream traffic. Response objects are built with
/// "ok" first and event frames with "event" first (json::Value preserves
/// insertion order), so a prefix check settles every daemon-built frame;
/// the full parse is the fallback for anything unexpected.
bool isEventFrame(const std::string &Line) {
  if (Line.rfind("{\"event\":", 0) == 0)
    return true;
  if (Line.rfind("{\"ok\":", 0) == 0)
    return false;
  json::ParseResult Parsed = json::parse(Line);
  return Parsed.Ok && Parsed.V.isObject() &&
         Parsed.V.get("event") != nullptr;
}

int64_t nsBetween(std::chrono::steady_clock::time_point From,
                  std::chrono::steady_clock::time_point To) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(To - From)
      .count();
}

/// One span record in the wire trace layout (support/Trace.h toJson).
void pushSpan(json::Value &Spans, const char *Name, int64_t StartNs,
              int64_t DurNs, int Depth) {
  json::Value S = json::Value::object();
  S.set("name", std::string(Name));
  S.set("start_us", static_cast<double>(StartNs / 1000));
  S.set("dur_us", static_cast<double>((DurNs < 0 ? 0 : DurNs) / 1000));
  S.set("depth", static_cast<double>(Depth));
  Spans.push(std::move(S));
}

} // namespace

struct RouterServer::Connection {
  explicit Connection(int FdIn, size_t NumShards)
      : Fd(FdIn), Upstreams(NumShards) {}
  ~Connection() {
    for (Upstream &Up : Upstreams)
      if (Up.Fd >= 0)
        ::close(Up.Fd);
    ::close(Fd);
  }
  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  const int Fd;

  /// Mirrors Server::Connection::send: serialized whole-line writes,
  /// latched closed on the first failure.
  bool send(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    if (Closed)
      return false;
    if (!sendAll(Fd, Line + "\n", /*MaxSeconds=*/30.0)) {
      Closed = true;
      return false;
    }
    return true;
  }

  bool alive() {
    std::lock_guard<std::mutex> Lock(WriteMu);
    return !Closed;
  }

  void markClosed() {
    std::lock_guard<std::mutex> Lock(WriteMu);
    Closed = true;
  }

  /// One lazily-opened upstream per shard, owned by this client
  /// connection (per-connection upstreams keep the daemon's
  /// connection-scoped id namespace aligned with the client's).
  ///
  /// Locking: `Up` and `AnonOps` are guarded by the connection Mu. `Fd`
  /// is written under Mu *and* SendMu together and may be read under
  /// either — so the write path (SendMu) always sees the live socket
  /// and a reconnect can never close a descriptor out from under a
  /// concurrent sendAll.
  struct Upstream {
    int Fd = -1;
    bool Up = false;
    std::thread Forwarder;
    std::mutex SendMu;
    /// Op names of forwarded id-less requests, FIFO: uncorrelatable by
    /// design, these get `unavailable` frames if the upstream dies.
    std::deque<std::string> AnonOps;
  };

  static constexpr size_t ParkedShard = ~size_t(0);

  /// One id-carrying request forwarded and not yet finally answered.
  /// Shard == ParkedShard while it waits in the retry queue.
  struct Tracked {
    size_t Shard = 0;
    std::string OpName;
    std::string Line;
    uint64_t Key = 0;
    unsigned Attempts = 0;
    /// Router-side trace state. TraceId non-empty marks a traced
    /// request; Arrival anchors every router span and is set for all
    /// tracked requests (it feeds the forward-latency histogram too).
    std::string TraceId;
    std::chrono::steady_clock::time_point Arrival{};
    /// Last successful handoff to a shard: upstream_wait starts here.
    std::chrono::steady_clock::time_point SentAt{};
    /// When the request was parked for a queue_full backoff (zero when
    /// not currently parked); total parked time accumulates in ParkedNs
    /// across retries.
    std::chrono::steady_clock::time_point ParkedAt{};
    int64_t ParkedNs = 0;
    /// Accumulated ring-lookup/registration/handoff time across every
    /// dispatch attempt.
    int64_t DispatchNs = 0;
  };

  std::mutex Mu; ///< Guards InFlight and the upstream Up/AnonOps state.
  std::map<std::string, Tracked> InFlight;
  std::vector<Upstream> Upstreams;
  /// Handles of forwarders whose upstream was replaced after death;
  /// joined at connection teardown.
  std::vector<std::thread> DeadForwarders;

  /// Set by the reader thread before it severs the upstreams, so the
  /// forwarders' death upcalls know this is teardown, not shard failure.
  std::atomic<bool> TearingDown{false};

private:
  std::mutex WriteMu;
  bool Closed = false;
};

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

RouterServer::RouterServer(RouterOptions Options)
    : Options(std::move(Options)) {}

RouterServer::~RouterServer() {
  requestStop();
  wait();
}

Status RouterServer::start() {
  if (Started)
    return Status::error("router already started");
  if (Options.Shards.empty())
    return Status::error("router needs at least one --shard address");
  for (const std::string &Addr : Options.Shards) {
    Endpoint Ep;
    if (Status S = parseEndpoint(Addr, Ep); !S.ok())
      return S;
  }

  Endpoint ListenEp;
  if (Status S = parseEndpoint(Options.Listen, ListenEp); !S.ok())
    return S;
  if (Status S = Acceptor.listen(ListenEp, 64); !S.ok())
    return S;

  if (!Options.MetricsListen.empty()) {
    Endpoint MetricsEp;
    Status S = parseEndpoint(Options.MetricsListen, MetricsEp);
    if (S.ok())
      S = MetricsAcceptor.listen(MetricsEp, 16);
    if (!S.ok()) {
      Acceptor.close();
      return S;
    }
  }

  Ring.build(Options.Shards, std::max(1u, Options.VirtualNodes));
  // Optimistic until the first health pass: a request to a dead shard
  // fails fast and marks it down anyway.
  Alive.assign(Options.Shards.size(), 1);

  Started = true;
  Uptime.reset();
  AcceptThread = std::thread([this] { acceptLoop(); });
  HealthThread = std::thread([this] { healthLoop(); });
  RetryThread = std::thread([this] { retryLoop(); });
  if (MetricsAcceptor.listening())
    MetricsThread = std::thread([this] { metricsHttpLoop(); });
  return Status::success();
}

void RouterServer::requestStop() {
  {
    std::lock_guard<std::mutex> Lock(StopMu);
    StopRequested = true;
  }
  StopCv.notify_all();
}

void RouterServer::wait(const std::function<bool()> &ExternalStop) {
  if (!Started)
    return;
  {
    std::unique_lock<std::mutex> Lock(StopMu);
    while (!StopRequested) {
      if (ExternalStop && ExternalStop())
        break;
      StopCv.wait_for(Lock, std::chrono::milliseconds(200));
    }
  }
  teardown();
}

void RouterServer::stop() {
  requestStop();
  wait();
}

void RouterServer::teardown() {
  std::lock_guard<std::mutex> TeardownLock(TeardownMu);
  if (TornDown)
    return;
  TornDown = true;
  Stopping.store(true);

  Acceptor.close();
  if (AcceptThread.joinable())
    AcceptThread.join();
  MetricsAcceptor.close();
  if (MetricsThread.joinable())
    MetricsThread.join();

  RetryCv.notify_all();
  if (RetryThread.joinable())
    RetryThread.join();
  if (HealthThread.joinable())
    HealthThread.join();

  // Sever the client sockets to unblock the readers; each reader then
  // tears down its own upstreams and forwarders on the way out.
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::shared_ptr<Connection> &Conn : Conns)
      if (Conn)
        ::shutdown(Conn->Fd, SHUT_RDWR);
  }
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    ToJoin.swap(ConnThreads);
  }
  for (std::thread &T : ToJoin)
    if (T.joinable())
      T.join();
}

std::string RouterServer::metricsBoundAddress() const {
  return MetricsAcceptor.listening() ? MetricsAcceptor.endpoint().str()
                                     : std::string();
}

std::vector<char> RouterServer::shardHealth() const {
  std::lock_guard<std::mutex> Lock(HealthMu);
  return Alive;
}

void RouterServer::markShardDown(size_t Shard) {
  std::lock_guard<std::mutex> Lock(HealthMu);
  if (Shard < Alive.size())
    Alive[Shard] = 0;
}

//===----------------------------------------------------------------------===//
// Accept + client connection loops
//===----------------------------------------------------------------------===//

void RouterServer::acceptLoop() {
  while (!Stopping.load()) {
    int Fd = Acceptor.acceptConnection();
    if (Fd < 0)
      return;
    if (Stopping.load()) {
      ::close(Fd);
      return;
    }
    timeval SendTimeout{};
    SendTimeout.tv_sec = 10;
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout,
                 sizeof(SendTimeout));
    auto Conn = std::make_shared<Connection>(Fd, Options.Shards.size());
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (size_t Finished : FinishedSlots) {
      if (ConnThreads[Finished].joinable())
        ConnThreads[Finished].join();
      FreeSlots.push_back(Finished);
    }
    FinishedSlots.clear();

    size_t Slot;
    if (!FreeSlots.empty()) {
      Slot = FreeSlots.back();
      FreeSlots.pop_back();
      Conns[Slot] = Conn;
      ConnThreads[Slot] =
          std::thread([this, Conn, Slot] { connectionLoop(Conn, Slot); });
    } else {
      Slot = Conns.size();
      Conns.push_back(Conn);
      ConnThreads.emplace_back(
          [this, Conn, Slot] { connectionLoop(Conn, Slot); });
    }
    {
      std::lock_guard<std::mutex> CounterLock(CounterMu);
      ++Counters.Connections;
    }
  }
}

void RouterServer::connectionLoop(std::shared_ptr<Connection> Conn,
                                  size_t Slot) {
  std::string Pending;
  char Buffer[65536];
  bool Reading = true;
  while (Reading) {
    ssize_t N = recvSome(Conn->Fd, Buffer, sizeof(Buffer));
    if (N <= 0)
      break;
    Pending.append(Buffer, static_cast<size_t>(N));
    std::string Line;
    while (Reading && popLine(Pending, Line)) {
      if (Line.empty())
        continue;
      bool StopAfterSend = false;
      handleLine(Conn, Line, StopAfterSend);
      if (StopAfterSend)
        requestStop();
      if (!Conn->alive())
        Reading = false;
    }
  }
  Conn->markClosed();
  Conn->TearingDown.store(true);

  // Sever the upstreams; their forwarders observe EOF, see TearingDown,
  // and exit without re-dispatching into a closed client.
  std::vector<std::thread> Forwarders;
  {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    for (Connection::Upstream &Up : Conn->Upstreams) {
      if (Up.Fd >= 0)
        ::shutdown(Up.Fd, SHUT_RDWR);
      if (Up.Forwarder.joinable())
        Forwarders.push_back(std::move(Up.Forwarder));
    }
    Forwarders.insert(Forwarders.end(),
                      std::make_move_iterator(Conn->DeadForwarders.begin()),
                      std::make_move_iterator(Conn->DeadForwarders.end()));
    Conn->DeadForwarders.clear();
  }
  for (std::thread &T : Forwarders)
    T.join();

  // Drop this connection's parked retries.
  {
    std::lock_guard<std::mutex> Lock(RetryMu);
    RetryQueue.erase(std::remove_if(RetryQueue.begin(), RetryQueue.end(),
                                    [&](const PendingRetry &R) {
                                      auto Owner = R.Conn.lock();
                                      return !Owner || Owner == Conn;
                                    }),
                     RetryQueue.end());
  }

  std::lock_guard<std::mutex> Lock(ConnMu);
  Conns[Slot] = nullptr;
  FinishedSlots.push_back(Slot);
}

//===----------------------------------------------------------------------===//
// Upstream management
//===----------------------------------------------------------------------===//

void RouterServer::spawnForwarder(const std::shared_ptr<Connection> &Conn,
                                  size_t Shard, int Fd) {
  // Caller holds Conn->Mu; the previous forwarder (if any) has already
  // been retired to DeadForwarders.
  Conn->Upstreams[Shard].Forwarder = std::thread([this, Conn, Shard, Fd] {
    std::string Pending;
    char Buffer[65536];
    while (true) {
      ssize_t N = recvSome(Fd, Buffer, sizeof(Buffer));
      if (N <= 0)
        break;
      Pending.append(Buffer, static_cast<size_t>(N));
      std::string Frame;
      while (popLine(Pending, Frame)) {
        if (Frame.empty())
          continue;
        if (isEventFrame(Frame))
          Conn->send(Frame); // progress/batch_item pass-through.
        else
          onShardFinal(Conn, Shard, Frame);
      }
    }
    onUpstreamDown(Conn, Shard);
  });
}

bool RouterServer::sendToShard(const std::shared_ptr<Connection> &Conn,
                               size_t Shard, const std::string &Line) {
  Connection::Upstream &Up = Conn->Upstreams[Shard];
  {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    // Teardown sets TearingDown *before* taking Mu to collect the
    // forwarder handles, so under Mu this check is authoritative: no new
    // forwarder can be spawned after the collection, which is what keeps
    // every thread joined at destruction.
    if (Conn->TearingDown.load())
      return false;
    if (!Up.Up) {
      Endpoint ShardEp;
      parseEndpoint(Options.Shards[Shard], ShardEp); // Validated in start().
      int NewFd = -1;
      if (!connectEndpoint(ShardEp, NewFd).ok())
        return false;
      // The previous forwarder (its upstream died — Up only goes false
      // in onUpstreamDown) has left its read loop; retire its handle
      // and swap the socket under both locks so no concurrent writer
      // can see a closed descriptor.
      if (Up.Forwarder.joinable())
        Conn->DeadForwarders.push_back(std::move(Up.Forwarder));
      {
        std::lock_guard<std::mutex> SendLock(Up.SendMu);
        if (Up.Fd >= 0)
          ::close(Up.Fd);
        Up.Fd = NewFd;
      }
      Up.Up = true;
      spawnForwarder(Conn, Shard, NewFd);
    }
  }
  std::lock_guard<std::mutex> SendLock(Up.SendMu);
  if (Up.Fd < 0)
    return false;
  return sendAll(Up.Fd, Line + "\n", /*MaxSeconds=*/30.0);
}

void RouterServer::onShardFinal(const std::shared_ptr<Connection> &Conn,
                                size_t Shard, const std::string &Line) {
  // Correlation needs the real members, not the prefix heuristic.
  json::ParseResult Parsed = json::parse(Line);
  std::string Id, OpName;
  bool Ok = true;
  std::string ErrorCode;
  if (Parsed.Ok && Parsed.V.isObject()) {
    if (const json::Value *IdV = Parsed.V.get("id"); IdV && IdV->isString())
      Id = IdV->asString();
    if (const json::Value *OpV = Parsed.V.get("op"); OpV && OpV->isString())
      OpName = OpV->asString();
    if (const json::Value *OkV = Parsed.V.get("ok"); OkV && OkV->isBool())
      Ok = OkV->asBool();
    if (const json::Value *ErrV = Parsed.V.get("error");
        ErrV && ErrV->isObject())
      if (const json::Value *CodeV = ErrV->get("code");
          CodeV && CodeV->isString())
        ErrorCode = CodeV->asString();
  }

  if (Id.empty()) {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    Connection::Upstream &Up = Conn->Upstreams[Shard];
    if (!Up.AnonOps.empty())
      Up.AnonOps.pop_front();
  } else {
    bool ScheduleRetry = false;
    bool Finished = false;
    Connection::Tracked Entry;
    uint64_t Key = 0;
    std::string ReqLine;
    unsigned Attempts = 0;
    {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      auto It = Conn->InFlight.find(Id);
      if (It != Conn->InFlight.end() && It->second.OpName == OpName) {
        if (!Ok && ErrorCode == errc::QueueFull &&
            It->second.Attempts < Options.MaxRetries && !Stopping.load()) {
          // Backpressure: park the request and try again later instead
          // of bouncing the rejection to the client.
          It->second.Shard = Connection::ParkedShard;
          ++It->second.Attempts;
          It->second.ParkedAt = std::chrono::steady_clock::now();
          ScheduleRetry = true;
          Key = It->second.Key;
          ReqLine = It->second.Line;
          Attempts = It->second.Attempts;
        } else {
          Finished = true;
          Entry = std::move(It->second);
          Conn->InFlight.erase(It);
        }
      }
      // Finals with an op mismatch (e.g. a cancel ack correlated by the
      // target's id) forward without touching the table.
    }
    if (ScheduleRetry) {
      {
        std::lock_guard<std::mutex> Lock(CounterMu);
        ++Counters.Retries;
      }
      BackoffPolicy Backoff;
      double DelayMs = Backoff.delayMs(
          Attempts - 1, hashCombine(Key, fingerprintString(Id)));
      {
        std::lock_guard<std::mutex> Lock(RetryMu);
        PendingRetry R;
        R.Due = std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<int64_t>(DelayMs * 1000.0));
        R.Conn = Conn;
        R.Key = Key;
        R.OpName = OpName;
        R.Id = Id;
        R.Line = std::move(ReqLine);
        R.Attempts = Attempts;
        RetryQueue.push_back(std::move(R));
      }
      RetryCv.notify_all();
      return; // Swallowed; the client never sees the queue_full.
    }
    if (Finished && Entry.Arrival.time_since_epoch().count()) {
      const auto Now = std::chrono::steady_clock::now();
      int64_t TotalNs = nsBetween(Entry.Arrival, Now);
      ForwardLatency.recordNs(TotalNs);
      json::Value MergedTrace;
      bool HaveTrace = false;
      if (!Entry.TraceId.empty() && Parsed.Ok && Parsed.V.isObject()) {
        // Rebuild the client-visible trace: the router's own spans at
        // depth 0, with the daemon's spans (offsets relative to *its*
        // epoch, which begins when the shard read our forward) shifted
        // to nest inside upstream_wait one level deeper. The clocks are
        // the same host family but unsynchronized processes; anchoring
        // the daemon's epoch at our handoff time keeps every offset
        // consistent to within the socket handoff latency.
        MergedTrace = json::Value::object();
        MergedTrace.set("trace_id", Entry.TraceId);
        json::Value Spans = json::Value::array();
        pushSpan(Spans, "ring_lookup", 0, Entry.DispatchNs, 0);
        if (Entry.ParkedNs > 0)
          pushSpan(Spans, "parked_retry", Entry.DispatchNs, Entry.ParkedNs,
                   0);
        int64_t WaitStart =
            Entry.SentAt.time_since_epoch().count()
                ? nsBetween(Entry.Arrival, Entry.SentAt)
                : 0;
        pushSpan(Spans, "upstream_wait", WaitStart,
                 TotalNs - WaitStart, 0);
        if (const json::Value *ShardTrace = Parsed.V.get("trace"))
          if (const json::Value *ShardSpans = ShardTrace->get("spans");
              ShardSpans && ShardSpans->isArray())
            for (const json::Value &S : ShardSpans->items()) {
              if (!S.isObject())
                continue;
              json::Value Shifted = S;
              if (const json::Value *StartV = S.get("start_us");
                  StartV && StartV->isNumber())
                Shifted.set("start_us",
                            StartV->asNumber() + WaitStart / 1000);
              if (const json::Value *DepthV = S.get("depth");
                  DepthV && DepthV->isNumber())
                Shifted.set("depth", DepthV->asNumber() + 1);
              Spans.push(std::move(Shifted));
            }
        MergedTrace.set("spans", std::move(Spans));
        HaveTrace = true;
      }
      if (Options.SlowRequestMs > 0 &&
          TotalNs / 1e6 >= Options.SlowRequestMs &&
          log::enabled(log::Level::Warn)) {
        log::Event E(log::Level::Warn, "slow_request");
        E.str("op", OpName);
        E.str("id", Id);
        E.num("total_ms", TotalNs / 1e6);
        E.num("threshold_ms", Options.SlowRequestMs);
        E.num("shard", static_cast<double>(Shard));
        if (HaveTrace) {
          E.str("trace_id", Entry.TraceId);
          E.json("trace", MergedTrace);
        }
      }
      if (HaveTrace) {
        Parsed.V.set("trace", std::move(MergedTrace));
        Conn->send(Parsed.V.dump());
        return;
      }
    }
  }
  Conn->send(Line);
}

void RouterServer::onUpstreamDown(const std::shared_ptr<Connection> &Conn,
                                  size_t Shard) {
  std::vector<std::string> AnonOps;
  std::vector<std::pair<std::string, Connection::Tracked>> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    Connection::Upstream &Up = Conn->Upstreams[Shard];
    Up.Up = false;
    AnonOps.assign(Up.AnonOps.begin(), Up.AnonOps.end());
    Up.AnonOps.clear();
    for (auto It = Conn->InFlight.begin(); It != Conn->InFlight.end();) {
      if (It->second.Shard == Shard) {
        Orphans.emplace_back(It->first, std::move(It->second));
        It = Conn->InFlight.erase(It);
      } else {
        ++It;
      }
    }
  }
  if (Conn->TearingDown.load() || Stopping.load())
    return; // Teardown severed the upstream; nothing to save.

  markShardDown(Shard);
  for (const std::string &OpName : AnonOps) {
    {
      std::lock_guard<std::mutex> Lock(CounterMu);
      ++Counters.Unavailable;
    }
    Conn->send(formatErrorResponse(OpName.c_str(), "", errc::Unavailable,
                                   "shard connection lost mid-request"));
  }
  for (auto &[Id, Entry] : Orphans) {
    {
      std::lock_guard<std::mutex> Lock(CounterMu);
      ++Counters.Redispatched;
    }
    // Safe to re-run elsewhere: routing is deterministic and
    // side-effect-free, and the dead shard can no longer answer.
    dispatch(Conn, Entry.Key, Entry.OpName, Id, Entry.Line, Entry.Attempts);
  }
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

void RouterServer::dispatch(const std::shared_ptr<Connection> &Conn,
                            uint64_t Key, const std::string &OpName,
                            const std::string &Id, const std::string &Line,
                            unsigned Attempts) {
  if (Conn->TearingDown.load() || !Conn->alive())
    return; // The client left; don't touch shard health on its behalf.
  const auto DispatchStart = std::chrono::steady_clock::now();
  // Trace/latency state survives spills (the entry is erased and
  // re-registered per attempt) and re-dispatches (the entry carries it
  // from the previous attempt): read it once up front. A parked request
  // being re-dispatched banks its park time here.
  std::string TraceId;
  std::chrono::steady_clock::time_point Arrival = DispatchStart;
  int64_t ParkedNs = 0;
  int64_t DispatchNs = 0;
  if (!Id.empty()) {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    auto It = Conn->InFlight.find(Id);
    if (It != Conn->InFlight.end()) {
      TraceId = It->second.TraceId;
      if (It->second.Arrival.time_since_epoch().count())
        Arrival = It->second.Arrival;
      ParkedNs = It->second.ParkedNs;
      DispatchNs = It->second.DispatchNs;
      if (It->second.ParkedAt.time_since_epoch().count()) {
        ParkedNs += nsBetween(It->second.ParkedAt, DispatchStart);
        It->second.ParkedAt = {};
        It->second.ParkedNs = ParkedNs;
      }
    }
  }
  std::vector<char> Health = shardHealth();
  for (size_t Spill = 0; Spill <= Options.Shards.size(); ++Spill) {
    int Picked = Ring.pick(Key, Health);
    if (Picked < 0)
      break;
    size_t Shard = static_cast<size_t>(Picked);
    // Register (or re-point) the tracked entry *before* the bytes go
    // out, so the final response can never race an absent entry.
    if (!Id.empty()) {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      Connection::Tracked &Entry = Conn->InFlight[Id];
      Entry.Shard = Shard;
      Entry.OpName = OpName;
      Entry.Line = Line;
      Entry.Key = Key;
      Entry.Attempts = Attempts;
      Entry.TraceId = TraceId;
      Entry.Arrival = Arrival;
      Entry.ParkedNs = ParkedNs;
      Entry.DispatchNs = DispatchNs;
    }
    if (sendToShard(Conn, Shard, Line)) {
      if (Id.empty()) {
        std::lock_guard<std::mutex> Lock(Conn->Mu);
        Conn->Upstreams[Shard].AnonOps.push_back(OpName);
      } else {
        const auto Sent = std::chrono::steady_clock::now();
        std::lock_guard<std::mutex> Lock(Conn->Mu);
        auto It = Conn->InFlight.find(Id);
        if (It != Conn->InFlight.end() && It->second.Shard == Shard) {
          It->second.SentAt = Sent;
          It->second.DispatchNs =
              DispatchNs + nsBetween(DispatchStart, Sent);
        }
      }
      std::lock_guard<std::mutex> Lock(CounterMu);
      ++Counters.Forwarded;
      return;
    }
    // Could not reach the shard: unregister, mark it down, and spill to
    // the ring successor.
    if (!Id.empty()) {
      std::lock_guard<std::mutex> Lock(Conn->Mu);
      auto It = Conn->InFlight.find(Id);
      if (It != Conn->InFlight.end() && It->second.Shard == Shard)
        Conn->InFlight.erase(It);
    }
    markShardDown(Shard);
    Health[Shard] = 0;
  }
  // The unavailable frame is this request's final: make sure no stale
  // entry outlives it (handleLine pre-registers traced requests).
  if (!Id.empty()) {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    Conn->InFlight.erase(Id);
  }
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Unavailable;
    ++Counters.Errors;
  }
  Conn->send(formatErrorResponse(OpName.c_str(), Id, errc::Unavailable,
                                 "no live shard can serve the request"));
}

void RouterServer::handleCancel(const std::shared_ptr<Connection> &Conn,
                                const Request &Req) {
  size_t Shard = Connection::ParkedShard;
  std::string OpName;
  bool Known = false;
  {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    auto It = Conn->InFlight.find(Req.Id);
    if (It != Conn->InFlight.end()) {
      Known = true;
      Shard = It->second.Shard;
      OpName = It->second.OpName;
      if (Shard == Connection::ParkedShard)
        Conn->InFlight.erase(It); // Cancelled straight out of the park.
    }
  }
  if (!Known) {
    // Unknown or already finished: idempotent no-op ack, mirroring the
    // daemon's own behavior.
    Conn->send(formatCancelResponse(Req.Id, false));
    return;
  }
  if (Shard == Connection::ParkedShard) {
    // The request was waiting out a queue_full backoff: it never
    // reached a shard, so the router owns both frames.
    {
      std::lock_guard<std::mutex> Lock(RetryMu);
      RetryQueue.erase(
          std::remove_if(RetryQueue.begin(), RetryQueue.end(),
                         [&](const PendingRetry &R) {
                           auto Owner = R.Conn.lock();
                           return Owner == Conn && R.Id == Req.Id;
                         }),
          RetryQueue.end());
    }
    Conn->send(formatCancelResponse(Req.Id, true));
    Conn->send(formatErrorResponse(OpName.c_str(), Req.Id, errc::Cancelled,
                                   "request cancelled while awaiting retry"));
    return;
  }
  // Owned by a live shard: forward; both the ack and the target's final
  // flow back through the normal forwarding path.
  json::Value CancelObj = json::Value::object();
  CancelObj.set("op", "cancel");
  CancelObj.set("id", Req.Id);
  if (!sendToShard(Conn, Shard, CancelObj.dump()))
    Conn->send(formatCancelResponse(Req.Id, false));
}

void RouterServer::handleLine(const std::shared_ptr<Connection> &Conn,
                              const std::string &Line, bool &StopAfterSend) {
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    ++Counters.Requests;
  }
  RequestParse Parsed = parseRequest(Line);
  if (!Parsed.Ok) {
    {
      std::lock_guard<std::mutex> Lock(CounterMu);
      ++Counters.Errors;
    }
    Conn->send(formatErrorResponse(
        Parsed.OpName.empty() ? "unknown" : Parsed.OpName.c_str(),
        Parsed.Req.Id, Parsed.ErrorCode, Parsed.ErrorMessage));
    return;
  }
  const Request &Req = Parsed.Req;
  switch (Req.TheOp) {
  case Op::Ping:
    Conn->send(formatPingResponse(Req.Id));
    return;
  case Op::Stats:
    Conn->send(formatStatsResponse(Req.Id, statsJson()));
    return;
  case Op::Metrics:
    Conn->send(formatMetricsResponse(Req.Id, metricsText()));
    return;
  case Op::Shutdown:
    // Stops the router alone: the shards are independent daemons with
    // their own operators.
    StopAfterSend = true;
    Conn->send(formatShutdownResponse(Req.Id));
    return;
  case Op::Cancel:
    handleCancel(Conn, Req);
    return;
  case Op::Route:
  case Op::Batch:
    break;
  }

  if (Stopping.load()) {
    {
      std::lock_guard<std::mutex> Lock(CounterMu);
      ++Counters.Errors;
    }
    Conn->send(formatErrorResponse(Parsed.OpName.c_str(), Req.Id,
                                   errc::ShuttingDown,
                                   "router is shutting down"));
    return;
  }
  if (!Req.Id.empty()) {
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    if (Conn->InFlight.count(Req.Id)) {
      Conn->send(formatErrorResponse(
          Parsed.OpName.c_str(), Req.Id, errc::BadRequest,
          formatString("id \"%s\" is already in flight on this connection",
                       Req.Id.c_str())));
      return;
    }
  }

  // A traced forward needs a trace id the shard will echo back: adopt
  // the client's, or mint one and inject it into the forwarded line (a
  // parse/set/dump round-trip preserves unknown members, so the shard
  // sees an otherwise-identical request). The InFlight entry is
  // pre-registered here — before dispatch — to pin Arrival at true
  // request arrival; dispatch preserves it across spill re-registration.
  std::string SendLine = Line;
  if (Req.Route.Trace && !Req.Id.empty()) {
    std::string TraceId = Req.Route.TraceId;
    if (TraceId.empty()) {
      TraceId = generateTraceId();
      if (json::ParseResult Raw = json::parse(Line);
          Raw.Ok && Raw.V.isObject()) {
        Raw.V.set("trace_id", TraceId);
        SendLine = Raw.V.dump();
      }
    }
    std::lock_guard<std::mutex> Lock(Conn->Mu);
    Connection::Tracked &Entry = Conn->InFlight[Req.Id];
    Entry.TraceId = TraceId;
    Entry.Arrival = std::chrono::steady_clock::now();
  }
  dispatch(Conn, shardKeyForRequest(Req), Parsed.OpName, Req.Id, SendLine,
           /*Attempts=*/0);
}

//===----------------------------------------------------------------------===//
// Health, retries
//===----------------------------------------------------------------------===//

void RouterServer::healthLoop() {
  const size_t N = Options.Shards.size();
  std::vector<unsigned> Failures(N, 0);
  std::vector<std::chrono::steady_clock::time_point> NextCheck(
      N, std::chrono::steady_clock::now());
  BackoffPolicy Backoff;
  Backoff.InitialMs = Options.HealthIntervalMs;
  Backoff.MaxMs = std::max<double>(Options.HealthIntervalMs * 8.0, 2000.0);

  while (!Stopping.load()) {
    auto Now = std::chrono::steady_clock::now();
    for (size_t S = 0; S < N && !Stopping.load(); ++S) {
      if (Now < NextCheck[S])
        continue;
      bool Healthy = false;
      {
        Client Probe;
        if (Probe.connect(Options.Shards[S]).ok()) {
          Probe.setIoTimeout(Options.ShardTimeoutSeconds);
          std::string Response;
          if (Probe.request("{\"op\":\"ping\"}", Response).ok())
            Healthy = Response.rfind("{\"ok\":true", 0) == 0;
        }
      }
      {
        std::lock_guard<std::mutex> Lock(HealthMu);
        Alive[S] = Healthy ? 1 : 0;
      }
      if (Healthy) {
        Failures[S] = 0;
        NextCheck[S] =
            Now + std::chrono::milliseconds(Options.HealthIntervalMs);
      } else {
        // Down shards recheck on the shared backoff policy: a daemon
        // flapping at startup is not hammered, but a recovered one is
        // noticed within the policy's MaxMs.
        ++Failures[S];
        NextCheck[S] =
            Now + std::chrono::microseconds(static_cast<int64_t>(
                      Backoff.delayMs(Failures[S],
                                      fingerprintString(Options.Shards[S])) *
                      1000.0));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::max(1u, std::min(50u, Options.HealthIntervalMs / 4))));
  }
}

void RouterServer::retryLoop() {
  std::unique_lock<std::mutex> Lock(RetryMu);
  while (!Stopping.load()) {
    if (RetryQueue.empty()) {
      RetryCv.wait_for(Lock, std::chrono::milliseconds(200));
      continue;
    }
    auto Soonest = std::min_element(
        RetryQueue.begin(), RetryQueue.end(),
        [](const PendingRetry &A, const PendingRetry &B) {
          return A.Due < B.Due;
        });
    auto Now = std::chrono::steady_clock::now();
    if (Soonest->Due > Now) {
      RetryCv.wait_until(Lock, Soonest->Due);
      continue;
    }
    PendingRetry R = std::move(*Soonest);
    RetryQueue.erase(Soonest);
    Lock.unlock();
    if (std::shared_ptr<Connection> Conn = R.Conn.lock();
        Conn && Conn->alive() && !Stopping.load()) {
      // Still parked? A cancel may have raced the timer.
      bool StillWanted = false;
      {
        std::lock_guard<std::mutex> CLock(Conn->Mu);
        auto It = Conn->InFlight.find(R.Id);
        StillWanted = It != Conn->InFlight.end() &&
                      It->second.Shard == Connection::ParkedShard;
      }
      if (StillWanted)
        dispatch(Conn, R.Key, R.OpName, R.Id, R.Line, R.Attempts);
    }
    Lock.lock();
  }
}

//===----------------------------------------------------------------------===//
// Stats + metrics surfaces
//===----------------------------------------------------------------------===//

std::vector<std::pair<bool, json::Value>> RouterServer::collectShardStats() {
  std::vector<std::pair<bool, json::Value>> Out(Options.Shards.size());
  std::vector<char> Health = shardHealth();
  for (size_t S = 0; S < Options.Shards.size(); ++S) {
    Out[S].first = false;
    if (!Health[S])
      continue;
    Client Probe;
    if (!Probe.connect(Options.Shards[S]).ok()) {
      markShardDown(S);
      continue;
    }
    Probe.setIoTimeout(Options.ShardTimeoutSeconds);
    std::string Response;
    if (!Probe.request("{\"op\":\"stats\"}", Response).ok()) {
      markShardDown(S);
      continue;
    }
    json::ParseResult Parsed = json::parse(Response);
    if (!Parsed.Ok || !Parsed.V.isObject())
      continue;
    // Strip the response envelope; keep the stats payload members.
    json::Value Doc = json::Value::object();
    for (const auto &Member : Parsed.V.members())
      if (Member.first != "ok" && Member.first != "op" &&
          Member.first != "id")
        Doc.set(Member.first, Member.second);
    Out[S] = {true, std::move(Doc)};
  }
  return Out;
}

json::Value RouterServer::statsJson() {
  std::vector<std::pair<bool, json::Value>> PerShard = collectShardStats();
  std::vector<char> Health = shardHealth();

  json::Value Doc = json::Value::object();
  json::Value RouterObj = json::Value::object();
  {
    std::lock_guard<std::mutex> Lock(CounterMu);
    RouterObj.set("connections", Counters.Connections);
    RouterObj.set("requests", Counters.Requests);
    RouterObj.set("forwarded", Counters.Forwarded);
    RouterObj.set("retries", Counters.Retries);
    RouterObj.set("redispatched", Counters.Redispatched);
    RouterObj.set("unavailable", Counters.Unavailable);
    RouterObj.set("errors", Counters.Errors);
  }
  json::Value Latency = json::Value::object();
  Latency.set("forward", ForwardLatency.toJson());
  RouterObj.set("latency", std::move(Latency));
  size_t UpCount = 0;
  for (char A : Health)
    UpCount += A ? 1 : 0;
  RouterObj.set("shards_total", Options.Shards.size());
  RouterObj.set("shards_up", UpCount);
  RouterObj.set("uptime_seconds", Uptime.elapsedSeconds());
  RouterObj.set("endpoint", boundAddress());
  RouterObj.set("protocol", ProtocolVersion);
  Doc.set("router", std::move(RouterObj));

  std::vector<json::Value> LiveDocs;
  for (const auto &[Fetched, ShardDoc] : PerShard)
    if (Fetched)
      LiveDocs.push_back(ShardDoc);
  json::Value Aggregate = mergeStatsDocs(LiveDocs);
  // Numeric merging sums everything, including the per-daemon protocol
  // constant; restore the members that identify rather than count.
  if (const json::Value *ServerObj = Aggregate.get("server")) {
    json::Value Fixed = *ServerObj;
    Fixed.set("protocol", ProtocolVersion);
    Fixed.set("endpoint", boundAddress());
    Aggregate.set("server", std::move(Fixed));
  }
  Doc.set("aggregate", std::move(Aggregate));

  json::Value Shards = json::Value::array();
  for (size_t S = 0; S < Options.Shards.size(); ++S) {
    json::Value Entry = json::Value::object();
    Entry.set("index", S);
    Entry.set("address", Options.Shards[S]);
    Entry.set("up", PerShard[S].first);
    if (PerShard[S].first)
      Entry.set("stats", PerShard[S].second);
    Shards.push(std::move(Entry));
  }
  Doc.set("shards", std::move(Shards));
  return Doc;
}

std::string RouterServer::metricsText() {
  json::Value Doc = statsJson();
  std::string Out;
  // The "shards" array is skipped by the walker (arrays identify, not
  // measure); router_* and aggregate_* cover every numeric counter.
  appendPrometheusText(Out, Doc, "qlosure");
  if (const json::Value *Shards = Doc.get("shards"))
    for (const json::Value &Entry : Shards->items()) {
      const json::Value *Index = Entry.get("index");
      const json::Value *Address = Entry.get("address");
      const json::Value *UpV = Entry.get("up");
      if (!Index || !Address || !UpV)
        continue;
      std::string EscapedAddr = prometheusLabelValue(Address->asString());
      appendPrometheusText(
          Out, json::Value(UpV->asBool()), "qlosure_shard_up",
          formatString("shard=\"%lld\",address=\"%s\"",
                       static_cast<long long>(Index->asNumber()),
                       EscapedAddr.c_str()));
    }
  return Out;
}

//===----------------------------------------------------------------------===//
// Plain-HTTP /metrics responder
//===----------------------------------------------------------------------===//

void RouterServer::metricsHttpLoop() {
  while (!Stopping.load()) {
    int Fd = MetricsAcceptor.acceptConnection();
    if (Fd < 0)
      return;
    // Scrapes are tiny and rare; serve them serially with bounded I/O.
    timeval Timeout{};
    Timeout.tv_sec = 5;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
    // Read the complete request head: scrapers send several header
    // lines (possibly across segments), and bytes left unread at close
    // time would turn the close into an RST, truncating the body on the
    // scraper's side.
    std::string Head;
    char Buffer[4096];
    while (Head.find("\r\n\r\n") == std::string::npos && Head.size() < 65536) {
      ssize_t N = recvSome(Fd, Buffer, sizeof(Buffer));
      if (N <= 0)
        break;
      Head.append(Buffer, static_cast<size_t>(N));
    }
    size_t LineEnd = Head.find("\r\n");
    std::string RequestLine =
        LineEnd == std::string::npos ? Head : Head.substr(0, LineEnd);
    std::string Response;
    if (RequestLine.rfind("GET /metrics", 0) == 0 ||
        RequestLine.rfind("GET / ", 0) == 0) {
      std::string Body = metricsText();
      Response = formatString("HTTP/1.0 200 OK\r\n"
                              "Content-Type: text/plain; version=0.0.4\r\n"
                              "Content-Length: %zu\r\n"
                              "Connection: close\r\n\r\n",
                              Body.size());
      Response += Body;
    } else {
      Response = "HTTP/1.0 404 Not Found\r\n"
                 "Content-Length: 0\r\nConnection: close\r\n\r\n";
    }
    sendAll(Fd, Response, /*MaxSeconds=*/10.0);
    // Lingering close: announce EOF, then wait (bounded by SO_RCVTIMEO)
    // for the peer's own EOF before closing, so the kernel never turns
    // our close into an RST that races the in-flight body.
    ::shutdown(Fd, SHUT_WR);
    while (recvSome(Fd, Buffer, sizeof(Buffer)) > 0)
      ;
    ::close(Fd);
  }
}
