//===- service/ContextCache.cpp - Sharded routing-state caches -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ContextCache.h"

#include "circuit/Dag.h"
#include "support/Trace.h"

using namespace qlosure;
using namespace qlosure::service;

namespace {

/// Rough memory footprint of one cached bundle: the gate list, the
/// adjacency lists, the distance matrices, and the per-gate weight/DAG
/// arrays. Close enough for byte-budget eviction; exactness is not the
/// point.
size_t estimateBytes(const Circuit &Circ, const CouplingGraph &Hw,
                     bool HasWeights) {
  size_t N = Hw.numQubits();
  size_t Bytes = sizeof(CachedContext);
  Bytes += Circ.size() * sizeof(Gate);
  Bytes += Hw.numEdges() * 2 * sizeof(unsigned) + N * 32;
  Bytes += N * N * sizeof(uint32_t); // Unweighted distances.
  if (Hw.hasWeightedDistances())
    Bytes += N * N * sizeof(double);
  // DAG: per-gate successor/predecessor edges (<= 2 each way for 2-qubit
  // gates) plus node bookkeeping.
  Bytes += Circ.size() * 48;
  if (HasWeights)
    Bytes += Circ.size() * sizeof(uint64_t);
  return Bytes;
}

} // namespace

std::shared_ptr<const CachedContext>
CachedContext::build(const Circuit &Circ, const CouplingGraph &Hw,
                     const RoutingContextOptions &Options, bool WarmWeights,
                     Trace *T) {
  // The bundle owns copies; the context is built against those copies'
  // stable heap addresses (shared_ptr control block pins them).
  auto Bundle = std::shared_ptr<CachedContext>(new CachedContext());
  Bundle->Circ = Circ;
  Bundle->Hw = Hw;
  Bundle->Ctx.emplace(
      RoutingContext::build(Bundle->Circ, Bundle->Hw, Options, T));
  bool Warmed = false;
  if (WarmWeights && Bundle->Ctx->valid()) {
    ScopedSpan Span(T, "ctx_weights");
    Bundle->Ctx->dependenceWeights();
    Warmed = true;
  }
  Bundle->Bytes = estimateBytes(Bundle->Circ, Bundle->Hw, Warmed);
  return Bundle;
}
