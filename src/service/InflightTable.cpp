//===- service/InflightTable.cpp - Request coalescing --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/InflightTable.h"

#include <algorithm>

using namespace qlosure;
using namespace qlosure::service;

InflightTable::InflightTable() {
  Reaper = std::thread([this] { reaperLoop(); });
}

InflightTable::~InflightTable() {
  // Whatever survives here gets the shutdown error — the table must
  // never strand a follower without its one final response.
  Outcome Shutdown;
  Shutdown.ErrorCode = errc::ShuttingDown;
  Shutdown.ErrorMessage = "server is shutting down";
  drain(Shutdown);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  ReaperCv.notify_all();
  if (Reaper.joinable())
    Reaper.join();
}

bool InflightTable::leadOrFollow(const CacheKey &Key,
                                 const std::shared_ptr<JobTicket> &LeaderTicket,
                                 Follower F) {
  bool Armed = F.Deadline != std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Flights.find(Key);
    if (It == Flights.end()) {
      Flights[Key].Leader = LeaderTicket;
      return true;
    }
    It->second.Followers.push_back(std::move(F));
  }
  if (Armed)
    ReaperCv.notify_all();
  return false;
}

bool InflightTable::tryAttach(const CacheKey &Key, Follower F) {
  bool Armed = F.Deadline != std::chrono::steady_clock::time_point::max();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Flights.find(Key);
    if (It == Flights.end())
      return false;
    It->second.Followers.push_back(std::move(F));
  }
  if (Armed)
    ReaperCv.notify_all();
  return true;
}

bool InflightTable::lead(const CacheKey &Key,
                         const std::shared_ptr<JobTicket> &LeaderTicket) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto [It, Created] = Flights.try_emplace(Key);
  if (Created)
    It->second.Leader = LeaderTicket;
  return Created;
}

bool InflightTable::hasFlight(const CacheKey &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Flights.count(Key) != 0;
}

void InflightTable::deliverAll(std::vector<Follower> Followers,
                               const Outcome &O) {
  for (Follower &F : Followers) {
    // The Queued -> CancelledWhileQueued CAS is the one-winner claim: a
    // follower already cancelled by its client or expired by the reaper
    // answered through that path and must not be answered again.
    if (F.Ticket && F.Ticket->cancel() == JobTicket::State::Queued)
      F.Deliver(O);
  }
}

void InflightTable::complete(const CacheKey &Key, const Outcome &O) {
  std::vector<Follower> Claimed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Flights.find(Key);
    if (It == Flights.end())
      return;
    Claimed = std::move(It->second.Followers);
    Flights.erase(It);
  }
  deliverAll(std::move(Claimed), O);
}

void InflightTable::completeByLeader(const std::shared_ptr<JobTicket> &Ticket,
                                     const Outcome &O) {
  std::vector<Follower> Claimed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = std::find_if(Flights.begin(), Flights.end(),
                           [&](const auto &Entry) {
                             return Entry.second.Leader == Ticket;
                           });
    if (It == Flights.end())
      return;
    Claimed = std::move(It->second.Followers);
    Flights.erase(It);
  }
  deliverAll(std::move(Claimed), O);
}

void InflightTable::drain(const Outcome &O) {
  std::vector<Follower> Claimed;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    for (auto &Entry : Flights)
      for (Follower &F : Entry.second.Followers)
        Claimed.push_back(std::move(F));
    Flights.clear();
  }
  deliverAll(std::move(Claimed), O);
}

size_t InflightTable::flightCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Flights.size();
}

void InflightTable::reaperLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (!Stopping) {
    // Sleep until the earliest armed follower deadline (or a new armed
    // follower arrives, or teardown).
    auto Earliest = std::chrono::steady_clock::time_point::max();
    for (const auto &Entry : Flights)
      for (const Follower &F : Entry.second.Followers)
        Earliest = std::min(Earliest, F.Deadline);
    if (Earliest == std::chrono::steady_clock::time_point::max())
      ReaperCv.wait(Lock);
    else
      ReaperCv.wait_until(Lock, Earliest);
    if (Stopping)
      break;
    // Pull every expired follower out of its flight; claim and answer
    // outside the lock. The flight itself (and its leader) stays live.
    auto Now = std::chrono::steady_clock::now();
    std::vector<Follower> Expired;
    for (auto &Entry : Flights) {
      auto &Followers = Entry.second.Followers;
      for (size_t I = 0; I < Followers.size();) {
        if (Followers[I].Deadline <= Now) {
          Expired.push_back(std::move(Followers[I]));
          Followers[I] = std::move(Followers.back());
          Followers.pop_back();
        } else {
          ++I;
        }
      }
    }
    if (Expired.empty())
      continue;
    Lock.unlock();
    Outcome Deadline;
    Deadline.ErrorCode = errc::DeadlineExceeded;
    Deadline.ErrorMessage =
        "deadline expired while coalesced with an identical in-flight "
        "request";
    deliverAll(std::move(Expired), Deadline);
    Lock.lock();
  }
}
