//===- service/ResultStore.h - Durable routed-result store -------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable tier behind the in-memory result cache: an append-only
/// on-disk log mapping a CacheKey (circuit x backend x mapper-config
/// fingerprints) to the routed QASM text plus its statistics record.
/// Routed results are deterministic and content-keyed, so a record never
/// goes stale — warm results survive daemon restarts, and a second daemon
/// can share the file read-only.
///
/// On-disk format (host byte order; the file is machine-local state, not
/// an interchange format):
///
///   [file header, 16 bytes]  magic u32 'QSTR' | version u32 | reserved u64
///   [frame]*                 magic u32 'QREC' | payload_len u32
///                            | checksum u64 (FNV-1a over the payload)
///                            | payload (payload_len bytes)
///
/// Each frame's payload is the fixed-width record head (the CacheKey and
/// every CachedResult scalar) followed by the routed QASM bytes. A frame
/// is appended with a single write(2), so a torn append — the daemon
/// SIGKILLed or the machine lost mid-write — is always a *prefix* of a
/// valid frame at end of file.
///
/// Recovery contract (the crash/corruption property ResultStoreTest and
/// store_crash.sh enforce):
///
///  * A tail shorter than one frame header, or a frame whose declared
///    payload extends past end of file, is a torn append: it is truncated
///    (writer) or ignored (reader) and counted in truncated_bytes. Every
///    fully written frame before it is recovered byte-identically.
///  * An in-bounds frame whose checksum does not match had its bytes
///    flipped at rest: the frame is skipped and counted in
///    corrupt_skipped — never a crash, never a wrong result (the caller
///    simply re-routes and re-appends).
///  * A mid-file region without a frame magic (an overwritten stretch) is
///    resynchronized by scanning for the next frame magic; bytes skipped
///    count as corrupt.
///
/// Writes batch their fsyncs: the file is fsynced once at least
/// FsyncBytes have been appended since the last sync (and on flush() /
/// close). Between syncs a record survives process death (the page cache
/// holds it) but not power loss — the usual append-log durability trade.
///
/// Compaction: duplicate-key appends and skipped corrupt regions are
/// garbage. When the garbage fraction of a sufficiently large file
/// exceeds CompactGarbageRatio, put() rewrites the live records to
/// "<path>.compact", fsyncs, and atomically rename(2)s it over the store
/// — readers either see the old inode (their index stays valid for it)
/// or the new one (refresh() detects the inode change and rescans).
///
/// Threading: every public member is safe from any thread; one mutex
/// guards the index, the fd, and the counters (lookups pread under it —
/// plain and ThreadSanitizer-clean; the store sits behind the in-memory
/// cache, so contention is not the hot path).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_RESULTSTORE_H
#define QLOSURE_SERVICE_RESULTSTORE_H

#include "service/ContextCache.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace qlosure {
namespace service {

/// Store sizing and policy knobs.
struct ResultStoreOptions {
  /// Backing file path (required). Created (with its header) when absent
  /// in read-write mode; must exist in read-only mode.
  std::string Path;
  /// Open without write access: get() serves whatever the file holds and
  /// refresh() picks up frames another daemon appends; put() is a no-op.
  bool ReadOnly = false;
  /// fsync once this many bytes have been appended since the last sync
  /// (0 = fsync every record).
  size_t FsyncBytes = 1 << 20;
  /// Compact when garbage (duplicate/corrupt bytes) exceeds this fraction
  /// of the file and the file is at least CompactMinBytes.
  double CompactGarbageRatio = 0.5;
  size_t CompactMinBytes = 1 << 20;
};

/// Aggregate counters, surfaced under "store" in the stats document.
struct StoreStats {
  uint64_t Records = 0;        ///< Live (indexed) records.
  uint64_t AppendedRecords = 0;///< put()s that reached the file.
  uint64_t Bytes = 0;          ///< Current file size.
  uint64_t LiveBytes = 0;      ///< Bytes owned by live frames.
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t CorruptSkipped = 0; ///< Frames dropped by checksum/resync.
  uint64_t TruncatedBytes = 0; ///< Torn-tail bytes truncated/ignored.
  uint64_t Compactions = 0;
  uint64_t WriteErrors = 0;
};

/// The durable result store. Construction runs the recovery scan; see the
/// file comment for the format and crash contract.
class ResultStore {
public:
  /// Opens (creating if needed, unless read-only) the store at
  /// \p Options.Path and recovers its index. Returns nullptr with \p Err
  /// set when the file cannot be opened or is not a result store.
  static std::unique_ptr<ResultStore> open(const ResultStoreOptions &Options,
                                           Status &Err);
  ~ResultStore();

  ResultStore(const ResultStore &) = delete;
  ResultStore &operator=(const ResultStore &) = delete;

  /// Looks \p Key up, re-verifying the frame checksum on read (a record
  /// that rotted since the recovery scan is dropped and counted, never
  /// returned). In read-only mode a miss first refresh()es once, so a
  /// record another daemon just appended is visible. Returns nullptr on
  /// miss.
  std::shared_ptr<const CachedResult> get(const CacheKey &Key);

  /// Appends \p Value under \p Key (single write(2); fsync per the
  /// batching policy) and indexes it. Duplicate keys are skipped —
  /// results are deterministic, so the incumbent is the same bytes.
  /// Returns false in read-only mode or on a write error (counted;
  /// the store stays consistent and serving).
  bool put(const CacheKey &Key, const CachedResult &Value);

  /// fsyncs any batched appends now.
  void flush();

  /// Read-only mode: scans frames appended (or a compaction performed)
  /// by the writing daemon since the last scan. Returns true when new
  /// records became visible. No-op in read-write mode.
  bool refresh();

  /// Forces a compaction pass regardless of the garbage ratio (test
  /// hook; production compaction triggers inside put()). Returns false
  /// in read-only mode or on I/O failure.
  bool compactNow();

  StoreStats stats() const;
  bool readOnly() const { return Options.ReadOnly; }
  const std::string &path() const { return Options.Path; }

  /// Serializes one frame (header + payload) for \p Key / \p Value —
  /// exactly the bytes put() appends. Exposed for the unit tests'
  /// torn-tail and bit-flip harnesses.
  static std::string encodeFrame(const CacheKey &Key,
                                 const CachedResult &Value);

  /// Decodes the frame at the start of \p Data. On success fills \p Key,
  /// \p Value and \p FrameSize (total bytes consumed) and returns true;
  /// returns false on a short / corrupt / checksum-failing frame.
  static bool decodeFrame(const void *Data, size_t Size, CacheKey &Key,
                          CachedResult &Value, size_t &FrameSize);

private:
  ResultStore() = default;

  struct IndexEntry {
    uint64_t Offset = 0; ///< Frame start (header included).
    uint64_t Size = 0;   ///< Total frame size.
  };

  /// Scans frames in [From, FileSize) into the index; updates ScanEnd to
  /// the first byte past the last whole frame (the torn-tail start).
  /// Caller holds Mu.
  void scanLocked(uint64_t From);
  /// Truncates the torn tail (read-write mode) after a scan. Caller
  /// holds Mu.
  void truncateTailLocked();
  /// Rewrites live records to <path>.compact and renames it into place.
  /// Caller holds Mu.
  bool compactLocked();
  /// Reads and re-verifies the frame behind \p Entry. Caller holds Mu.
  std::shared_ptr<const CachedResult> readFrameLocked(const CacheKey &Key,
                                                      const IndexEntry &Entry);

  ResultStoreOptions Options;
  mutable std::mutex Mu;
  int Fd = -1;
  uint64_t FileSize = 0;  ///< Bytes we know about (scan horizon).
  uint64_t ScanEnd = 0;   ///< First unparsed byte (torn tail starts here).
  uint64_t LiveBytes = 0;
  uint64_t PendingSyncBytes = 0;
  std::unordered_map<CacheKey, IndexEntry, CacheKeyHasher> Index;
  StoreStats Counters;
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_RESULTSTORE_H
