//===- service/InflightTable.h - Request coalescing --------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-flight coalescing for routed requests: routed results are
/// deterministic and content-keyed, so when an identical request (same
/// CacheKey — circuit x backend x mapper-config fingerprints) arrives
/// while one is already routing, running it again buys nothing. The
/// first request *leads*: it owns the scheduler job. Every later
/// identical request *follows*: it registers a delivery callback on the
/// leader's flight and is answered from the leader's outcome — one
/// route, N identical responses.
///
/// Followers keep their own identity. Each follower has its own
/// JobTicket (registered in its connection's in-flight table like any
/// route), its own deadline, and its own delivery callback. The ticket's
/// Queued -> CancelledWhileQueued CAS — which Scheduler::cancel performs
/// on a never-enqueued ticket without touching the queue — doubles as
/// the flight's one-winner claim: exactly one of {leader delivery,
/// client cancel, deadline reaper, teardown drain} claims each follower,
/// so every follower gets exactly one final response. A follower's
/// cancel or expiry never touches the leader; the leader's failure
/// (error, cancel, expiry) propagates to the remaining followers as a
/// structured error.
///
/// Lifecycle of a flight: created by the first leadOrFollow() for its
/// key; completed exactly once — by the leader's completion path
/// (complete()), by whoever claimed the leader's ticket away from the
/// queue (completeByLeader()), or by teardown (drain()). Completion
/// removes the flight under the table lock and invokes the follower
/// callbacks *outside* it (they write to sockets and may block for the
/// send-timeout bound; holding the lock across that would serialize the
/// service on one slow peer).
///
/// An internal reaper thread enforces follower deadlines: a follower
/// whose deadline passes while coalesced is claimed and delivered
/// deadline_exceeded, leaving the flight (and leader) running.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_INFLIGHTTABLE_H
#define QLOSURE_SERVICE_INFLIGHTTABLE_H

#include "service/ContextCache.h"
#include "service/Protocol.h"
#include "service/Scheduler.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qlosure {
namespace service {

/// The coalescing table.
class InflightTable {
public:
  /// A flight's terminal outcome, broadcast to every unclaimed follower.
  struct Outcome {
    bool Ok = false;
    /// Stable errc code when !Ok (points at a string literal).
    const char *ErrorCode = nullptr;
    std::string ErrorMessage;
    bool ContextHit = false;
    RouteStats Stats;
    std::shared_ptr<const CachedResult> Cached; ///< Set when Ok.
  };

  /// One coalesced request. Ticket must be fresh (never scheduled): it
  /// is the claim token. Deliver is invoked at most once, by whichever
  /// resolution path wins the claim — with the leader's outcome or a
  /// deadline_exceeded/shutting_down error.
  struct Follower {
    std::shared_ptr<JobTicket> Ticket;
    std::chrono::steady_clock::time_point Deadline =
        std::chrono::steady_clock::time_point::max();
    std::function<void(const Outcome &)> Deliver;
  };

  InflightTable();
  ~InflightTable();

  InflightTable(const InflightTable &) = delete;
  InflightTable &operator=(const InflightTable &) = delete;

  /// The arrival point: when no flight exists for \p Key, one is created
  /// with \p LeaderTicket as its leader and true is returned — the
  /// caller must schedule the route and later complete() the flight.
  /// Otherwise \p F joins the existing flight and false is returned —
  /// the caller is done; F.Deliver answers the request.
  bool leadOrFollow(const CacheKey &Key,
                    const std::shared_ptr<JobTicket> &LeaderTicket,
                    Follower F);

  /// Joins an existing flight only (never creates one). Used by batch
  /// triage, which must not commit to leading before its all-or-nothing
  /// submission decision. Returns false when no flight exists.
  bool tryAttach(const CacheKey &Key, Follower F);

  /// Creates a flight led by \p LeaderTicket only when none exists for
  /// \p Key (never attaches anything). Returns whether the flight was
  /// created. The batch path uses this: an item that loses the lead is
  /// re-triaged as a coalesce candidate and attached — or resolved —
  /// only after the batch's submission decision.
  bool lead(const CacheKey &Key, const std::shared_ptr<JobTicket> &LeaderTicket);

  /// True when a flight for \p Key is live right now (advisory: the
  /// answer can change before the caller acts on it).
  bool hasFlight(const CacheKey &Key) const;

  /// Completes \p Key's flight: removes it and delivers \p O to every
  /// follower not already claimed by cancel/expiry. No-op when no such
  /// flight exists. Called from the leader's completion path.
  void complete(const CacheKey &Key, const Outcome &O);

  /// Completes the flight led by \p Ticket, for resolution paths that
  /// hold only the ticket (a queued leader claimed away by cancel, or an
  /// orphaned connection's sweep). No-op when \p Ticket leads nothing.
  void completeByLeader(const std::shared_ptr<JobTicket> &Ticket,
                        const Outcome &O);

  /// Teardown: completes every remaining flight with \p O. The scheduler
  /// has already drained at this point, so normally there is nothing
  /// left; this is the safety net that keeps the exactly-one-response
  /// invariant across shutdown.
  void drain(const Outcome &O);

  /// Live flight count (tests).
  size_t flightCount() const;

private:
  struct Flight {
    std::shared_ptr<JobTicket> Leader;
    std::vector<Follower> Followers;
  };

  void reaperLoop();
  /// Extracts and delivers, claiming each follower. \p O by value: drain
  /// iterates while delivering.
  static void deliverAll(std::vector<Follower> Followers, const Outcome &O);

  mutable std::mutex Mu;
  std::condition_variable ReaperCv;
  std::unordered_map<CacheKey, Flight, CacheKeyHasher> Flights;
  bool Stopping = false;
  std::thread Reaper;
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_INFLIGHTTABLE_H
