//===- service/Transport.cpp - Transport-agnostic endpoints --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Transport.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

std::string Endpoint::str() const {
  if (Transport == Kind::Unix)
    return "unix:" + Path;
  return formatString("tcp:%s:%u", Host.c_str(), static_cast<unsigned>(Port));
}

Status service::parseEndpoint(const std::string &Spec, Endpoint &Out) {
  if (Spec.empty())
    return Status::error("empty endpoint address");
  if (Spec.rfind("unix:", 0) == 0) {
    std::string Path = Spec.substr(5);
    if (Path.empty())
      return Status::error("unix endpoint needs a socket path");
    Out.Transport = Endpoint::Kind::Unix;
    Out.Path = std::move(Path);
    Out.Host.clear();
    Out.Port = 0;
    return Status::success();
  }
  if (Spec.rfind("tcp:", 0) == 0) {
    std::string Rest = Spec.substr(4);
    size_t Colon = Rest.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Rest.size())
      return Status::error(
          formatString("tcp endpoint '%s' must be tcp:host:port",
                       Spec.c_str()));
    std::string Host = Rest.substr(0, Colon);
    std::string PortText = Rest.substr(Colon + 1);
    char *End = nullptr;
    unsigned long Port = std::strtoul(PortText.c_str(), &End, 10);
    if (End == PortText.c_str() || *End != '\0' || Port > 65535)
      return Status::error(
          formatString("bad tcp port '%s'", PortText.c_str()));
    Out.Transport = Endpoint::Kind::Tcp;
    Out.Path.clear();
    Out.Host = std::move(Host);
    Out.Port = static_cast<uint16_t>(Port);
    return Status::success();
  }
  // A scheme we don't know (a word followed by ':' with no '/' before
  // it) is an error; anything else is a bare unix socket path.
  size_t Colon = Spec.find(':');
  if (Colon != std::string::npos && Spec.find('/') > Colon)
    return Status::error(formatString(
        "unknown endpoint scheme in '%s' (want unix:/path or tcp:host:port)",
        Spec.c_str()));
  Out.Transport = Endpoint::Kind::Unix;
  Out.Path = Spec;
  Out.Host.clear();
  Out.Port = 0;
  return Status::success();
}

double BackoffPolicy::delayMs(unsigned Attempt, uint64_t JitterSeed) const {
  double Base = InitialMs;
  for (unsigned I = 0; I < Attempt && Base < MaxMs; ++I)
    Base *= Factor;
  Base = std::min(Base, MaxMs);
  if (JitterFraction <= 0)
    return Base;
  // splitmix64 of (seed, attempt) -> uniform point in [-J, +J].
  uint64_t Z = JitterSeed + 0x9e3779b97f4a7c15ULL * (Attempt + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  Z ^= Z >> 31;
  double Unit = static_cast<double>(Z >> 11) / 9007199254740992.0; // [0,1)
  double Jitter = (2.0 * Unit - 1.0) * JitterFraction;
  return std::max(0.0, Base * (1.0 + Jitter));
}

namespace {

Status makeUnixAddr(const std::string &Path, sockaddr_un &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error(
        formatString("socket path too long: %s", Path.c_str()));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status::success();
}

void setNoDelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

/// Resolves host:port for bind or connect. Returns the first usable
/// address via getaddrinfo (numeric or named, IPv4/IPv6).
Status resolveTcp(const std::string &Host, uint16_t Port, bool ForBind,
                  struct addrinfo **Out) {
  struct addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  if (ForBind)
    Hints.ai_flags = AI_PASSIVE;
  std::string PortText = std::to_string(Port);
  int Rc = ::getaddrinfo(Host.empty() ? nullptr : Host.c_str(),
                         PortText.c_str(), &Hints, Out);
  if (Rc != 0)
    return Status::error(formatString("resolve %s:%u: %s", Host.c_str(),
                                      static_cast<unsigned>(Port),
                                      ::gai_strerror(Rc)));
  return Status::success();
}

} // namespace

Status Listener::listen(const Endpoint &Ep, int Backlog) {
  close();
  if (Ep.Transport == Endpoint::Kind::Unix) {
    sockaddr_un Addr;
    if (Status S = makeUnixAddr(Ep.Path, Addr); !S.ok())
      return S;
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return Status::error(
          formatString("socket(): %s", std::strerror(errno)));
    ::unlink(Ep.Path.c_str()); // Replace a stale socket file.
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
      Status S = Status::error(formatString(
          "bind(%s): %s", Ep.Path.c_str(), std::strerror(errno)));
      ::close(Fd);
      Fd = -1;
      return S;
    }
    if (::listen(Fd, Backlog) != 0) {
      Status S = Status::error(
          formatString("listen(): %s", std::strerror(errno)));
      ::close(Fd);
      Fd = -1;
      ::unlink(Ep.Path.c_str());
      return S;
    }
    Bound = Ep;
    return Status::success();
  }

  struct addrinfo *Infos = nullptr;
  if (Status S = resolveTcp(Ep.Host, Ep.Port, /*ForBind=*/true, &Infos);
      !S.ok())
    return S;
  Status LastErr = Status::error("no usable address");
  for (struct addrinfo *AI = Infos; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0) {
      LastErr = Status::error(
          formatString("socket(): %s", std::strerror(errno)));
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, AI->ai_addr, AI->ai_addrlen) != 0 ||
        ::listen(Fd, Backlog) != 0) {
      LastErr = Status::error(formatString(
          "bind/listen(tcp:%s:%u): %s", Ep.Host.c_str(),
          static_cast<unsigned>(Ep.Port), std::strerror(errno)));
      ::close(Fd);
      Fd = -1;
      continue;
    }
    break;
  }
  ::freeaddrinfo(Infos);
  if (Fd < 0)
    return LastErr;

  Bound = Ep;
  if (Ep.Port == 0) {
    // Read back the kernel-assigned ephemeral port.
    sockaddr_storage SS;
    socklen_t Len = sizeof(SS);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &Len) == 0) {
      if (SS.ss_family == AF_INET)
        Bound.Port =
            ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
      else if (SS.ss_family == AF_INET6)
        Bound.Port =
            ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
    }
  }
  return Status::success();
}

int Listener::acceptConnection() {
  while (true) {
    int ListenFd = Fd;
    if (ListenFd < 0)
      return -1;
    int ClientFd = ::accept(ListenFd, nullptr, nullptr);
    if (ClientFd >= 0) {
      if (Bound.Transport == Endpoint::Kind::Tcp)
        setNoDelay(ClientFd);
      return ClientFd;
    }
    if (errno == EINTR)
      continue;
    return -1; // Listener closed under us, or a fatal accept error.
  }
}

void Listener::close() {
  if (Fd < 0)
    return;
  // shutdown() wakes a thread blocked in accept() on Linux; close()
  // alone does not.
  ::shutdown(Fd, SHUT_RDWR);
  ::close(Fd);
  Fd = -1;
  if (Bound.Transport == Endpoint::Kind::Unix && !Bound.Path.empty())
    ::unlink(Bound.Path.c_str());
}

Status service::connectEndpoint(const Endpoint &Ep, int &Fd) {
  Fd = -1;
  int Sock = -1;
  int ConnectRc = -1;
  int ConnectErrno = 0;
  if (Ep.Transport == Endpoint::Kind::Unix) {
    sockaddr_un Addr;
    if (Status S = makeUnixAddr(Ep.Path, Addr); !S.ok())
      return S;
    Sock = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Sock < 0)
      return Status::error(
          formatString("socket(): %s", std::strerror(errno)));
    ConnectRc =
        ::connect(Sock, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    ConnectErrno = errno;
  } else {
    struct addrinfo *Infos = nullptr;
    if (Status S = resolveTcp(Ep.Host, Ep.Port, /*ForBind=*/false, &Infos);
        !S.ok())
      return S;
    for (struct addrinfo *AI = Infos; AI; AI = AI->ai_next) {
      Sock = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
      if (Sock < 0) {
        ConnectErrno = errno;
        continue;
      }
      ConnectRc = ::connect(Sock, AI->ai_addr, AI->ai_addrlen);
      ConnectErrno = errno;
      if (ConnectRc == 0 || ConnectErrno == EINTR)
        break;
      ::close(Sock);
      Sock = -1;
    }
    ::freeaddrinfo(Infos);
    if (Sock < 0)
      return Status::error(formatString(
          "connect(%s): %s", Ep.str().c_str(),
          std::strerror(ConnectErrno ? ConnectErrno : ECONNREFUSED)));
  }

  if (ConnectRc != 0 && ConnectErrno == EINTR) {
    // A signal interrupted connect(); the connection continues
    // asynchronously (POSIX). Failing here was the "spurious connection
    // error" bug — instead wait for writability and read the real
    // outcome from SO_ERROR.
    struct pollfd Pfd;
    Pfd.fd = Sock;
    Pfd.events = POLLOUT;
    int PollRc;
    do {
      PollRc = ::poll(&Pfd, 1, -1);
    } while (PollRc < 0 && errno == EINTR);
    int SoErr = 0;
    socklen_t Len = sizeof(SoErr);
    if (PollRc < 0 ||
        ::getsockopt(Sock, SOL_SOCKET, SO_ERROR, &SoErr, &Len) != 0)
      SoErr = errno;
    if (SoErr != 0) {
      ::close(Sock);
      return Status::error(formatString("connect(%s): %s",
                                        Ep.str().c_str(),
                                        std::strerror(SoErr)));
    }
    ConnectRc = 0;
  }

  if (ConnectRc != 0) {
    ::close(Sock);
    return Status::error(formatString("connect(%s): %s", Ep.str().c_str(),
                                      std::strerror(ConnectErrno)));
  }
  if (Ep.Transport == Endpoint::Kind::Tcp)
    setNoDelay(Sock);
  Fd = Sock;
  return Status::success();
}
