//===- service/ResultStore.cpp - Durable routed-result store -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ResultStore.h"

#include "support/Fingerprint.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

constexpr uint32_t FileMagic = 0x52545351;  // "QSTR" little-endian.
constexpr uint32_t FileVersion = 1;
constexpr uint32_t FrameMagic = 0x43455251; // "QREC" little-endian.
constexpr size_t FileHeaderSize = 16;
constexpr size_t FrameHeaderSize = 16; // magic u32 + len u32 + checksum u64.
/// CacheKey (3 x u64) + five u64 counters + two double bit patterns +
/// one flags byte.
constexpr size_t PayloadHeadSize = 3 * 8 + 5 * 8 + 2 * 8 + 1;
/// A declared payload larger than this is treated as corruption, not as
/// a record (the daemon caps request lines at 64 MiB; a frame cannot
/// legitimately be bigger than a request).
constexpr uint64_t MaxPayload = 1ull << 30;

template <typename T> void putRaw(std::string &Out, T Value) {
  char Buf[sizeof(T)];
  std::memcpy(Buf, &Value, sizeof(T));
  Out.append(Buf, sizeof(T));
}

template <typename T> T getRaw(const uint8_t *Data) {
  T Value;
  std::memcpy(&Value, Data, sizeof(T));
  return Value;
}

uint64_t doubleBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

double bitsDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

/// Decodes a frame payload (the bytes after the frame header).
bool decodePayload(const uint8_t *Data, size_t Size, CacheKey &Key,
                   CachedResult &Value) {
  if (Size < PayloadHeadSize)
    return false;
  const uint8_t *P = Data;
  Key.CircuitFp = getRaw<uint64_t>(P); P += 8;
  Key.BackendFp = getRaw<uint64_t>(P); P += 8;
  Key.ConfigFp = getRaw<uint64_t>(P); P += 8;
  Value.LogicalGates = getRaw<uint64_t>(P); P += 8;
  Value.RoutedGates = getRaw<uint64_t>(P); P += 8;
  Value.Swaps = getRaw<uint64_t>(P); P += 8;
  Value.DepthBefore = getRaw<uint64_t>(P); P += 8;
  Value.DepthAfter = getRaw<uint64_t>(P); P += 8;
  Value.MappingSeconds = bitsDouble(getRaw<uint64_t>(P)); P += 8;
  Value.SuccessProbability = bitsDouble(getRaw<uint64_t>(P)); P += 8;
  uint8_t Flags = *P++;
  Value.TimedOut = (Flags & 1) != 0;
  Value.Verified = (Flags & 2) != 0;
  Value.RoutedQasm.assign(reinterpret_cast<const char *>(P),
                          Size - PayloadHeadSize);
  return true;
}

bool fullPread(int Fd, void *Buf, size_t Size, uint64_t Offset) {
  uint8_t *P = static_cast<uint8_t *>(Buf);
  while (Size) {
    ssize_t N = ::pread(Fd, P, Size, static_cast<off_t>(Offset));
    if (N <= 0)
      return false;
    P += N;
    Offset += static_cast<uint64_t>(N);
    Size -= static_cast<size_t>(N);
  }
  return true;
}

std::string fileHeaderBytes() {
  std::string Header;
  putRaw<uint32_t>(Header, FileMagic);
  putRaw<uint32_t>(Header, FileVersion);
  putRaw<uint64_t>(Header, 0);
  return Header;
}

/// fsyncs the directory containing \p Path so a rename/create survives a
/// crash. Best-effort: a store on a filesystem without dirsync still
/// works, it just re-routes a little after power loss.
void syncParentDir(const std::string &Path) {
  std::string Dir = ".";
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos)
    Dir = Slash == 0 ? "/" : Path.substr(0, Slash);
  int DirFd = ::open(Dir.c_str(), O_RDONLY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

std::string ResultStore::encodeFrame(const CacheKey &Key,
                                     const CachedResult &Value) {
  std::string Payload;
  Payload.reserve(PayloadHeadSize + Value.RoutedQasm.size());
  putRaw<uint64_t>(Payload, Key.CircuitFp);
  putRaw<uint64_t>(Payload, Key.BackendFp);
  putRaw<uint64_t>(Payload, Key.ConfigFp);
  putRaw<uint64_t>(Payload, Value.LogicalGates);
  putRaw<uint64_t>(Payload, Value.RoutedGates);
  putRaw<uint64_t>(Payload, Value.Swaps);
  putRaw<uint64_t>(Payload, Value.DepthBefore);
  putRaw<uint64_t>(Payload, Value.DepthAfter);
  putRaw<uint64_t>(Payload, doubleBits(Value.MappingSeconds));
  putRaw<uint64_t>(Payload, doubleBits(Value.SuccessProbability));
  Payload.push_back(static_cast<char>((Value.TimedOut ? 1 : 0) |
                                      (Value.Verified ? 2 : 0)));
  Payload.append(Value.RoutedQasm);

  std::string Frame;
  Frame.reserve(FrameHeaderSize + Payload.size());
  putRaw<uint32_t>(Frame, FrameMagic);
  putRaw<uint32_t>(Frame, static_cast<uint32_t>(Payload.size()));
  putRaw<uint64_t>(Frame, hashBytes(Payload.data(), Payload.size()));
  Frame.append(Payload);
  return Frame;
}

bool ResultStore::decodeFrame(const void *Data, size_t Size, CacheKey &Key,
                              CachedResult &Value, size_t &FrameSize) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  if (Size < FrameHeaderSize)
    return false;
  if (getRaw<uint32_t>(P) != FrameMagic)
    return false;
  uint64_t PayloadLen = getRaw<uint32_t>(P + 4);
  uint64_t Checksum = getRaw<uint64_t>(P + 8);
  if (PayloadLen > MaxPayload || FrameHeaderSize + PayloadLen > Size)
    return false;
  const uint8_t *Payload = P + FrameHeaderSize;
  if (hashBytes(Payload, PayloadLen) != Checksum)
    return false;
  if (!decodePayload(Payload, PayloadLen, Key, Value))
    return false;
  FrameSize = FrameHeaderSize + PayloadLen;
  return true;
}

//===----------------------------------------------------------------------===//
// Open + recovery
//===----------------------------------------------------------------------===//

std::unique_ptr<ResultStore> ResultStore::open(const ResultStoreOptions &Opts,
                                               Status &Err) {
  std::unique_ptr<ResultStore> Store(new ResultStore());
  Store->Options = Opts;
  int Flags = Opts.ReadOnly ? O_RDONLY : (O_RDWR | O_CREAT);
  Store->Fd = ::open(Opts.Path.c_str(), Flags, 0644);
  if (Store->Fd < 0) {
    Err = Status::error(formatString("cannot open result store %s: %s",
                                     Opts.Path.c_str(),
                                     std::strerror(errno)));
    return nullptr;
  }
  struct stat St;
  if (::fstat(Store->Fd, &St) != 0) {
    Err = Status::error(formatString("cannot stat result store %s: %s",
                                     Opts.Path.c_str(),
                                     std::strerror(errno)));
    return nullptr;
  }
  Store->FileSize = static_cast<uint64_t>(St.st_size);

  if (Store->FileSize < FileHeaderSize) {
    // Empty or torn mid-creation. A writer (re)initializes the header; a
    // reader cannot trust the file yet.
    if (Opts.ReadOnly) {
      Err = Status::error(formatString(
          "result store %s has no header (yet)", Opts.Path.c_str()));
      return nullptr;
    }
    std::string Header = fileHeaderBytes();
    if (::ftruncate(Store->Fd, 0) != 0 ||
        ::pwrite(Store->Fd, Header.data(), Header.size(), 0) !=
            static_cast<ssize_t>(Header.size()) ||
        ::fsync(Store->Fd) != 0) {
      Err = Status::error(formatString(
          "cannot initialize result store %s: %s", Opts.Path.c_str(),
          std::strerror(errno)));
      return nullptr;
    }
    syncParentDir(Opts.Path);
    Store->FileSize = FileHeaderSize;
    Store->ScanEnd = FileHeaderSize;
    Err = Status::success();
    return Store;
  }

  uint8_t Header[FileHeaderSize];
  if (!fullPread(Store->Fd, Header, FileHeaderSize, 0) ||
      getRaw<uint32_t>(Header) != FileMagic ||
      getRaw<uint32_t>(Header + 4) != FileVersion) {
    // Refuse to serve — or clobber — a file that is not ours.
    Err = Status::error(formatString(
        "%s is not a version-%u result store", Opts.Path.c_str(),
        FileVersion));
    return nullptr;
  }

  std::lock_guard<std::mutex> Lock(Store->Mu);
  Store->scanLocked(FileHeaderSize);
  if (!Opts.ReadOnly)
    Store->truncateTailLocked();
  Err = Status::success();
  return Store;
}

void ResultStore::scanLocked(uint64_t From) {
  uint64_t Offset = From;
  std::vector<uint8_t> Buf;
  while (Offset < FileSize) {
    uint64_t Remaining = FileSize - Offset;
    if (Remaining < FrameHeaderSize) {
      // Shorter than any frame: a torn append's prefix.
      Counters.TruncatedBytes += Remaining;
      break;
    }
    uint8_t Head[FrameHeaderSize];
    if (!fullPread(Fd, Head, FrameHeaderSize, Offset))
      break;
    if (getRaw<uint32_t>(Head) != FrameMagic) {
      // Not a frame boundary: an overwritten stretch. Resynchronize by
      // scanning forward for the next frame magic; everything skipped is
      // corruption, and a magic-less tail is indistinguishable from a
      // torn append (both are dropped).
      uint64_t Found = 0;
      bool HaveNext = false;
      std::vector<uint8_t> Window(64 * 1024 + 3);
      uint64_t Pos = Offset + 1;
      while (Pos + 4 <= FileSize && !HaveNext) {
        size_t N = static_cast<size_t>(
            std::min<uint64_t>(Window.size(), FileSize - Pos));
        if (!fullPread(Fd, Window.data(), N, Pos))
          break;
        for (size_t I = 0; I + 4 <= N; ++I) {
          if (getRaw<uint32_t>(Window.data() + I) == FrameMagic) {
            Found = Pos + I;
            HaveNext = true;
            break;
          }
        }
        // Overlap 3 bytes so a magic spanning two windows is seen.
        Pos += N >= 3 ? N - 3 : N;
      }
      if (!HaveNext) {
        Counters.TruncatedBytes += Remaining;
        break;
      }
      ++Counters.CorruptSkipped;
      Offset = Found;
      ScanEnd = Offset;
      continue;
    }
    uint64_t PayloadLen = getRaw<uint32_t>(Head + 4);
    uint64_t Checksum = getRaw<uint64_t>(Head + 8);
    if (PayloadLen > MaxPayload) {
      // A length that cannot be real: corrupt header. Resync from the
      // next byte on the following iteration.
      ++Counters.CorruptSkipped;
      ++Offset;
      ScanEnd = Offset;
      continue;
    }
    if (Offset + FrameHeaderSize + PayloadLen > FileSize) {
      // The frame extends past end of file: a torn append.
      Counters.TruncatedBytes += Remaining;
      break;
    }
    Buf.resize(static_cast<size_t>(PayloadLen));
    if (!fullPread(Fd, Buf.data(), Buf.size(), Offset + FrameHeaderSize))
      break;
    uint64_t FrameSize = FrameHeaderSize + PayloadLen;
    CacheKey Key;
    CachedResult Value;
    if (hashBytes(Buf.data(), Buf.size()) != Checksum ||
        !decodePayload(Buf.data(), Buf.size(), Key, Value)) {
      // Bit rot inside an intact frame envelope: skip the whole frame.
      ++Counters.CorruptSkipped;
      Offset += FrameSize;
      ScanEnd = Offset;
      continue;
    }
    auto It = Index.find(Key);
    if (It != Index.end())
      LiveBytes -= It->second.Size; // The duplicate supersedes it.
    Index[Key] = IndexEntry{Offset, FrameSize};
    LiveBytes += FrameSize;
    Offset += FrameSize;
    ScanEnd = Offset;
  }
  if (ScanEnd < From)
    ScanEnd = From;
}

void ResultStore::truncateTailLocked() {
  if (ScanEnd >= FileSize)
    return;
  if (::ftruncate(Fd, static_cast<off_t>(ScanEnd)) == 0)
    FileSize = ScanEnd;
  else
    ++Counters.WriteErrors;
}

//===----------------------------------------------------------------------===//
// Lookup / append
//===----------------------------------------------------------------------===//

std::shared_ptr<const CachedResult>
ResultStore::readFrameLocked(const CacheKey &Key, const IndexEntry &Entry) {
  std::vector<uint8_t> Buf(static_cast<size_t>(Entry.Size));
  CacheKey DecodedKey;
  auto Value = std::make_shared<CachedResult>();
  size_t FrameSize = 0;
  if (!fullPread(Fd, Buf.data(), Buf.size(), Entry.Offset) ||
      !decodeFrame(Buf.data(), Buf.size(), DecodedKey, *Value, FrameSize) ||
      !(DecodedKey == Key)) {
    // The record rotted (or the file changed) since it was indexed: drop
    // it — the caller re-routes, which is always a correct answer.
    ++Counters.CorruptSkipped;
    LiveBytes -= Entry.Size;
    Index.erase(Key);
    return nullptr;
  }
  return Value;
}

std::shared_ptr<const CachedResult> ResultStore::get(const CacheKey &Key) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Index.find(Key);
    if (It != Index.end()) {
      if (auto Value = readFrameLocked(Key, It->second)) {
        ++Counters.Hits;
        return Value;
      }
      ++Counters.Misses;
      return nullptr;
    }
    if (!Options.ReadOnly) {
      ++Counters.Misses;
      return nullptr;
    }
  }
  // Read-only miss: the writing daemon may have appended it since the
  // last scan. Refresh once, then settle the answer.
  refresh();
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    if (auto Value = readFrameLocked(Key, It->second)) {
      ++Counters.Hits;
      return Value;
    }
  }
  ++Counters.Misses;
  return nullptr;
}

bool ResultStore::put(const CacheKey &Key, const CachedResult &Value) {
  if (Options.ReadOnly)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Index.count(Key))
    return true; // Deterministic results: the incumbent is identical.
  std::string Frame = encodeFrame(Key, Value);
  ssize_t N = ::pwrite(Fd, Frame.data(), Frame.size(),
                       static_cast<off_t>(FileSize));
  if (N != static_cast<ssize_t>(Frame.size())) {
    // A partial append is a torn tail we created ourselves: cut it off
    // so the file stays parseable, and keep serving.
    ++Counters.WriteErrors;
    if (N > 0)
      ::ftruncate(Fd, static_cast<off_t>(FileSize));
    return false;
  }
  Index[Key] = IndexEntry{FileSize, Frame.size()};
  FileSize += Frame.size();
  ScanEnd = FileSize;
  LiveBytes += Frame.size();
  ++Counters.AppendedRecords;
  PendingSyncBytes += Frame.size();
  if (PendingSyncBytes >= std::max<size_t>(Options.FsyncBytes, 1)) {
    ::fsync(Fd);
    PendingSyncBytes = 0;
  }
  // Compact when enough of the file is duplicate/corrupt garbage.
  uint64_t DataBytes = FileSize - FileHeaderSize;
  uint64_t Garbage = DataBytes > LiveBytes ? DataBytes - LiveBytes : 0;
  if (FileSize >= Options.CompactMinBytes && DataBytes &&
      static_cast<double>(Garbage) >
          Options.CompactGarbageRatio * static_cast<double>(DataBytes))
    compactLocked();
  return true;
}

void ResultStore::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0 && !Options.ReadOnly && PendingSyncBytes) {
    ::fsync(Fd);
    PendingSyncBytes = 0;
  }
}

//===----------------------------------------------------------------------===//
// Refresh (read-only sharing) + compaction
//===----------------------------------------------------------------------===//

bool ResultStore::refresh() {
  if (!Options.ReadOnly)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  struct stat OnDisk, Ours;
  if (::stat(Options.Path.c_str(), &OnDisk) != 0 ||
      ::fstat(Fd, &Ours) != 0)
    return false;
  size_t Before = Index.size();
  if (OnDisk.st_ino != Ours.st_ino) {
    // The writer compacted: the path now names a fresh file. Reopen and
    // rescan from scratch (cumulative counters are kept).
    int NewFd = ::open(Options.Path.c_str(), O_RDONLY);
    if (NewFd < 0)
      return false;
    uint8_t Header[FileHeaderSize];
    struct stat St;
    if (::fstat(NewFd, &St) != 0 ||
        static_cast<uint64_t>(St.st_size) < FileHeaderSize ||
        !fullPread(NewFd, Header, FileHeaderSize, 0) ||
        getRaw<uint32_t>(Header) != FileMagic ||
        getRaw<uint32_t>(Header + 4) != FileVersion) {
      ::close(NewFd);
      return false;
    }
    ::close(Fd);
    Fd = NewFd;
    FileSize = static_cast<uint64_t>(St.st_size);
    ScanEnd = FileHeaderSize;
    LiveBytes = 0;
    Index.clear();
    scanLocked(FileHeaderSize);
    (void)Before;
    return true; // The whole view changed, not just new records.
  }
  uint64_t OnDiskSize = static_cast<uint64_t>(OnDisk.st_size);
  if (OnDiskSize <= FileSize && ScanEnd >= FileSize)
    return false;
  FileSize = OnDiskSize;
  scanLocked(ScanEnd);
  return Index.size() != Before;
}

bool ResultStore::compactNow() {
  if (Options.ReadOnly)
    return false;
  std::lock_guard<std::mutex> Lock(Mu);
  return compactLocked();
}

bool ResultStore::compactLocked() {
  std::string TmpPath = Options.Path + ".compact";
  int TmpFd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (TmpFd < 0) {
    ++Counters.WriteErrors;
    return false;
  }
  // Live frames are copied in their original append order so the
  // compacted file replays the same history, minus the garbage.
  std::vector<std::pair<const CacheKey *, const IndexEntry *>> Live;
  Live.reserve(Index.size());
  for (const auto &Entry : Index)
    Live.push_back({&Entry.first, &Entry.second});
  std::sort(Live.begin(), Live.end(), [](const auto &A, const auto &B) {
    return A.second->Offset < B.second->Offset;
  });

  std::string Header = fileHeaderBytes();
  bool Ok = ::pwrite(TmpFd, Header.data(), Header.size(), 0) ==
            static_cast<ssize_t>(Header.size());
  uint64_t Out = FileHeaderSize;
  std::vector<uint8_t> Buf;
  std::unordered_map<CacheKey, IndexEntry, CacheKeyHasher> NewIndex;
  for (const auto &[Key, Entry] : Live) {
    if (!Ok)
      break;
    Buf.resize(static_cast<size_t>(Entry->Size));
    if (!fullPread(Fd, Buf.data(), Buf.size(), Entry->Offset) ||
        ::pwrite(TmpFd, Buf.data(), Buf.size(), static_cast<off_t>(Out)) !=
            static_cast<ssize_t>(Buf.size())) {
      Ok = false;
      break;
    }
    NewIndex[*Key] = IndexEntry{Out, Entry->Size};
    Out += Entry->Size;
  }
  if (!Ok || ::fsync(TmpFd) != 0) {
    ::close(TmpFd);
    ::unlink(TmpPath.c_str());
    ++Counters.WriteErrors;
    return false;
  }
  ::close(TmpFd);
  if (::rename(TmpPath.c_str(), Options.Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    ++Counters.WriteErrors;
    return false;
  }
  syncParentDir(Options.Path);
  int NewFd = ::open(Options.Path.c_str(), O_RDWR);
  if (NewFd < 0) {
    // The rename landed but we cannot reopen: keep serving from the old
    // (now anonymous) inode; a restart recovers the compacted file.
    ++Counters.WriteErrors;
    return false;
  }
  ::close(Fd);
  Fd = NewFd;
  Index = std::move(NewIndex);
  FileSize = Out;
  ScanEnd = Out;
  LiveBytes = Out - FileHeaderSize;
  PendingSyncBytes = 0;
  ++Counters.Compactions;
  return true;
}

//===----------------------------------------------------------------------===//
// Stats + teardown
//===----------------------------------------------------------------------===//

StoreStats ResultStore::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  StoreStats S = Counters;
  S.Records = Index.size();
  S.Bytes = FileSize;
  S.LiveBytes = LiveBytes;
  return S;
}

ResultStore::~ResultStore() {
  flush();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Fd >= 0)
    ::close(Fd);
  Fd = -1;
}
