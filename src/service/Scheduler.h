//===- service/Scheduler.h - Bounded job queue + worker pool -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qlosured execution engine: a bounded FIFO job queue drained by a
/// fixed pool of worker threads, each owning exactly one RoutingScratch
/// for its whole lifetime — the same one-scratch-per-worker pooling
/// discipline BatchRunner uses, so every routing job runs on warm,
/// allocation-free kernel buffers.
///
/// Backpressure is explicit: trySubmit() never blocks; when the queue is
/// at capacity (or the scheduler is shutting down) it returns false and
/// the caller reports `queue_full` / `shutting_down` upstream instead of
/// wedging a connection. Each job carries an optional deadline; a job
/// whose deadline has passed by the time a worker picks it up is not run —
/// its OnExpired callback fires instead, so the waiting client still gets
/// a structured `deadline_exceeded` response rather than silence.
///
/// shutdown() is graceful: submissions stop, queued jobs drain, workers
/// join. It is idempotent and also runs from the destructor.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_SCHEDULER_H
#define QLOSURE_SERVICE_SCHEDULER_H

#include "route/RoutingScratch.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qlosure {
namespace service {

/// Scheduler sizing.
struct SchedulerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (at
  /// least 1).
  unsigned Workers = 0;
  /// Maximum queued (not yet running) jobs before trySubmit() rejects.
  size_t QueueCapacity = 256;
};

/// One unit of work. Run executes on a worker with that worker's scratch;
/// OnExpired (optional) executes instead when Deadline passed before the
/// job was picked up. Exactly one of the two callbacks runs per job.
struct SchedulerJob {
  std::function<void(RoutingScratch &)> Run;
  std::function<void()> OnExpired;
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Aggregate counters.
struct SchedulerStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Expired = 0;
  uint64_t Rejected = 0;
  uint64_t QueueDepth = 0;
  unsigned Workers = 0;
};

/// The worker pool.
class Scheduler {
public:
  explicit Scheduler(SchedulerOptions Options = {});
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Enqueues \p Job; returns false (without running any callback) when
  /// the queue is full or shutdown() has begun.
  bool trySubmit(SchedulerJob Job);

  /// Stops accepting jobs, drains the queue, joins all workers.
  void shutdown();

  SchedulerStats stats() const;
  unsigned workers() const { return stats().Workers; }

private:
  void workerLoop();

  mutable std::mutex Mu;
  std::condition_variable QueueCv;
  std::deque<SchedulerJob> Queue;
  std::vector<std::thread> Pool;
  bool ShuttingDown = false;
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Expired = 0;
  uint64_t Rejected = 0;
  size_t Capacity;
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_SCHEDULER_H
