//===- service/Scheduler.h - Bounded job queue + worker pool -----*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qlosured execution engine: a bounded FIFO job queue drained by a
/// fixed pool of worker threads, each owning exactly one RoutingScratch
/// for its whole lifetime — the same one-scratch-per-worker pooling
/// discipline BatchRunner uses, so every routing job runs on warm,
/// allocation-free kernel buffers.
///
/// Jobs are fire-and-forget: Run receives the worker's scratch plus the
/// job's CancellationToken and reports its outcome itself (in qlosured,
/// by writing a response frame through the owning connection's writer).
/// trySubmit() returns a shared JobTicket — the cancellation handle.
/// Scheduler::cancel(ticket) either (a) atomically claims a
/// not-yet-started job away from the workers and removes it from the
/// queue — it never runs, frees its capacity slot immediately, and the
/// canceller owns reporting — or (b) fires the token of a running job,
/// which the routing kernels poll once per front-layer step, so even a
/// deep in-flight route aborts within one step and reports through its
/// own completion path. The job's deadline
/// is armed on the token at submission, which is what enforces deadlines
/// *mid-route* rather than only at pickup.
///
/// Backpressure is explicit: trySubmit() never blocks; when the queue is
/// at capacity (or the scheduler is shutting down) it returns nullptr and
/// the caller reports `queue_full` / `shutting_down` upstream instead of
/// wedging a connection. A job whose deadline has already passed when a
/// worker picks it up is not run — its OnExpired callback fires instead.
/// Exactly one of {Run, OnExpired, silent cancelled discard} happens per
/// submitted job.
///
/// Threading/ownership: every public member is thread-safe. Callbacks run
/// on worker threads and must not call back into shutdown(). shutdown()
/// is graceful — submissions stop, queued jobs drain, workers join — and
/// is idempotent (the destructor runs it too).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_SCHEDULER_H
#define QLOSURE_SERVICE_SCHEDULER_H

#include "route/Cancellation.h"
#include "route/RoutingScratch.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qlosure {
namespace service {

/// Scheduler sizing.
struct SchedulerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency() (at
  /// least 1).
  unsigned Workers = 0;
  /// Maximum queued (not yet running) jobs before trySubmit() rejects.
  size_t QueueCapacity = 256;
};

/// One unit of work. Run executes on a worker with that worker's scratch
/// and this job's cancellation token (deadline pre-armed; Run may install
/// a progress sink before routing); OnExpired (optional) executes instead
/// when Deadline passed before the job was picked up; neither runs when
/// the job was cancelled while still queued.
struct SchedulerJob {
  std::function<void(RoutingScratch &, CancellationToken &)> Run;
  std::function<void()> OnExpired;
  std::chrono::steady_clock::time_point Deadline =
      std::chrono::steady_clock::time_point::max();
};

/// The shared per-job cancellation handle returned by trySubmit(). The
/// submitter keeps it to serve `cancel` requests; the queue keeps a
/// reference until the job leaves the scheduler.
class JobTicket {
public:
  enum class State : uint8_t {
    Queued,
    Running,
    CancelledWhileQueued,
    Done,
  };

  /// Requests cancellation and returns the state the job was in when the
  /// request took effect:
  ///  * Queued — the job is atomically claimed away from the workers and
  ///    will never run; the caller owns reporting its demise. Prefer
  ///    Scheduler::cancel(), which additionally removes the dead entry
  ///    from the queue so it stops occupying capacity.
  ///  * Running — the token is signalled; the job aborts at its next poll
  ///    and reports through its own completion path.
  ///  * Done / CancelledWhileQueued — too late / already cancelled;
  ///    nothing changed.
  State cancel() {
    Token.cancel();
    uint8_t Expected = static_cast<uint8_t>(State::Queued);
    if (St.compare_exchange_strong(
            Expected, static_cast<uint8_t>(State::CancelledWhileQueued)))
      return State::Queued;
    return static_cast<State>(Expected);
  }

  State state() const { return static_cast<State>(St.load()); }
  const CancellationToken &token() const { return Token; }

private:
  friend class Scheduler;
  CancellationToken Token;
  std::atomic<uint8_t> St{static_cast<uint8_t>(State::Queued)};
};

/// Aggregate counters.
struct SchedulerStats {
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Expired = 0;
  uint64_t Rejected = 0;
  /// Jobs cancelled while still queued (discarded unrun). Jobs cancelled
  /// mid-run count as Completed — they did run, just not to completion.
  uint64_t Cancelled = 0;
  uint64_t QueueDepth = 0;
  unsigned Workers = 0;
};

/// The worker pool.
class Scheduler {
public:
  explicit Scheduler(SchedulerOptions Options = {});
  ~Scheduler();

  Scheduler(const Scheduler &) = delete;
  Scheduler &operator=(const Scheduler &) = delete;

  /// Enqueues \p Job and returns its cancellation ticket, or nullptr
  /// (without running any callback) when the queue is full or shutdown()
  /// has begun. The job's Deadline is armed on the ticket's token here,
  /// before any worker can observe it. \p Ticket, when provided, must be
  /// fresh (state Queued, never submitted) — it lets a caller register
  /// the handle somewhere *before* the job can possibly complete; by
  /// default a new ticket is created.
  std::shared_ptr<JobTicket>
  trySubmit(SchedulerJob Job, std::shared_ptr<JobTicket> Ticket = nullptr);

  /// All-or-nothing batch enqueue: either every job in \p Jobs is
  /// appended to the queue **contiguously** — no unrelated submission can
  /// interleave, so the pool drains the batch back-to-back and the
  /// context/backend state the first items warm stays hot for the rest —
  /// or nothing is enqueued and an empty vector is returned (queue lacks
  /// capacity for the whole batch, or shutdown began). On success the
  /// returned tickets parallel \p Jobs; each job's deadline is armed on
  /// its own ticket. A batch larger than the whole queue capacity can
  /// never be accepted. \p Tickets, when non-empty, must parallel
  /// \p Jobs with fresh (never submitted) tickets — the same
  /// register-the-handle-first contract as trySubmit's Ticket parameter;
  /// by default new tickets are created.
  std::vector<std::shared_ptr<JobTicket>>
  trySubmitBatch(std::vector<SchedulerJob> Jobs,
                 std::vector<std::shared_ptr<JobTicket>> Tickets = {});

  /// Cancels \p Ticket's job: JobTicket::cancel() plus, when the job was
  /// still queued, removal of its entry from the queue — so a cancelled
  /// job frees its capacity slot (and drops its closure's captures)
  /// immediately instead of lingering as a tombstone until a worker pops
  /// it. Returns what JobTicket::cancel() returned.
  JobTicket::State cancel(const std::shared_ptr<JobTicket> &Ticket);

  /// Stops accepting jobs, drains the queue, joins all workers.
  void shutdown();

  SchedulerStats stats() const;
  unsigned workers() const { return stats().Workers; }

private:
  struct QueuedJob {
    SchedulerJob Job;
    std::shared_ptr<JobTicket> Ticket;
  };

  void workerLoop();

  mutable std::mutex Mu;
  std::condition_variable QueueCv;
  std::deque<QueuedJob> Queue;
  std::vector<std::thread> Pool;
  bool ShuttingDown = false;
  uint64_t Submitted = 0;
  uint64_t Completed = 0;
  uint64_t Expired = 0;
  uint64_t Rejected = 0;
  uint64_t Cancelled = 0;
  size_t Capacity;
};

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_SCHEDULER_H
