//===- service/Metrics.h - Prometheus text from stats JSON -------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The /metrics surface: turns the `stats` JSON document — the daemon's
/// single source of truth for counters — into Prometheus text
/// exposition, and merges several daemons' documents into one fleet
/// view. Deriving metrics from stats (instead of a parallel counter
/// registry) is what guarantees "aggregates every daemon counter named
/// in stats": a counter added to statsJson() shows up in /metrics with
/// no further wiring.
///
/// Mapping: each numeric leaf of the document becomes one metric named
/// `<prefix>_<path components joined by '_'>` (characters outside
/// [a-zA-Z0-9_] become '_'), booleans count as 0/1, strings and arrays
/// are skipped (they are labels' business, not samples'). Every sample
/// is exposed as an untyped gauge — the scraper cannot distinguish our
/// monotone counters from level gauges without a schema, and gauge is
/// the conservative claim. The one typed exception: an object tagged
/// `"type":"histogram"` (service/Histogram.h) renders as a classic
/// Prometheus histogram — cumulative `_bucket{le="<seconds>"}` series,
/// `_sum`, and `_count` — instead of being walked member-by-member.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_METRICS_H
#define QLOSURE_SERVICE_METRICS_H

#include "support/Json.h"

#include <string>
#include <vector>

namespace qlosure {
namespace service {

/// Appends the Prometheus rendering of every numeric leaf of \p Doc to
/// \p Out. \p Prefix heads each metric name (e.g. "qlosure");
/// \p Labels, when non-empty, is emitted verbatim inside `{...}` after
/// each name (e.g. "shard=\"0\"").
void appendPrometheusText(std::string &Out, const json::Value &Doc,
                          const std::string &Prefix,
                          const std::string &Labels = std::string());

/// Sums the numeric leaves of several stats documents member-by-member
/// into one: numbers add (booleans as 0/1), objects merge recursively
/// (histogram leaves merge bucket-wise via mergeHistogramJson),
/// strings/arrays keep the first document's value (they identify, not
/// count). Members present in only some documents survive. The fleet
/// aggregation the router's `stats` and `/metrics` serve.
json::Value mergeStatsDocs(const std::vector<json::Value> &Docs);

/// Escapes \p Raw for use inside a double-quoted Prometheus label value:
/// backslash, double quote, and newline become \\ \" \n per the text
/// exposition format. (Deliberately NOT JSON escaping — the exposition
/// format defines exactly these three escapes; other control characters
/// pass through.)
std::string prometheusLabelValue(const std::string &Raw);

/// One complete text exposition of \p Doc: appendPrometheusText plus a
/// trailing newline discipline scrapers expect. Convenience for the
/// `metrics` op.
std::string prometheusText(const json::Value &Doc,
                           const std::string &Prefix);

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_METRICS_H
