//===- service/ShardRouter.h - Consistent-hash fleet router ------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet tier: a front daemon that speaks protocol v2 to clients and
/// consistent-hash shards `route`/`batch` requests across N backend
/// qlosured daemons by circuit fingerprint. Sharding by circuit keeps
/// each daemon's context/result caches hot — the same circuit (on the
/// same backend) always lands on the same shard, so the fleet preserves
/// the single-daemon memoization wins instead of diluting them N ways.
///
/// Wire behavior, per op:
///
///   route/batch  forwarded to the owning shard (ring hash of the raw
///                QASM text + backend name); progress and batch_item
///                event frames pass through unmodified. A `queue_full`
///                rejection of an id-carrying request is retried against
///                the same shard with BackoffPolicy delays (the
///                backpressure-aware path) instead of surfacing to the
///                client, up to MaxRetries.
///   cancel       forwarded to the shard that owns the target id (a
///                request parked in the retry queue is cancelled right
///                there); unknown ids ack `cancelled: false` locally.
///   ping         answered locally.
///   stats        fetched from every live shard, numerically merged
///                (service/Metrics.h) under "aggregate", plus a "router"
///                section and a per-shard array.
///   metrics      the same aggregate as Prometheus text, plus one
///                `qlosure_shard_up` gauge per shard.
///   shutdown     stops the *router* (the shards are not owned by it).
///
/// Failure model: a shard whose connection drops (or whose health ping
/// fails) is marked down and skipped by the ring. In-flight id-tracked
/// requests of a dying upstream are re-dispatched to the next live
/// shard; untracked (id-less) ones — uncorrelatable by design — get an
/// `unavailable` error frame each. With no live shard at all, requests
/// answer `unavailable` immediately. A background monitor pings every
/// shard (BackoffPolicy-spaced when it stays down) and revives it on
/// the first successful ping.
///
/// The optional HTTP listener serves `GET /metrics` (plain HTTP/1.0,
/// Prometheus text exposition) so a scraper needs no protocol client.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_SERVICE_SHARDROUTER_H
#define QLOSURE_SERVICE_SHARDROUTER_H

#include "service/Histogram.h"
#include "service/Protocol.h"
#include "service/Transport.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qlosure {
namespace service {

/// A consistent-hash ring with virtual nodes: each shard owns VNodes
/// points on a 64-bit ring; a key is served by the first live shard at
/// or after its hash. Virtual nodes smooth the load split and bound the
/// keyspace churn when a shard dies to ~1/N.
class HashRing {
public:
  void build(const std::vector<std::string> &ShardAddresses,
             unsigned VNodes);

  /// The shard owning \p Key among those with Alive[shard] != 0, or -1
  /// when none is alive. Walks clockwise past dead shards, so each dead
  /// shard's keys spill to their ring successors instead of one victim.
  int pick(uint64_t Key, const std::vector<char> &Alive) const;

  size_t numShards() const { return NumShards; }

private:
  std::vector<std::pair<uint64_t, uint32_t>> Ring; ///< (point, shard), sorted.
  size_t NumShards = 0;
};

/// Router configuration.
struct RouterOptions {
  /// Client-facing listen address ("unix:/path" / "tcp:host:port").
  std::string Listen;
  /// Backend daemon addresses, one per shard (>= 1 required).
  std::vector<std::string> Shards;
  /// Optional plain-HTTP metrics address; empty disables the listener.
  std::string MetricsListen;
  unsigned VirtualNodes = 64;
  /// Health ping cadence for live shards; down shards are rechecked on
  /// BackoffPolicy delays instead (bounded by its MaxMs).
  unsigned HealthIntervalMs = 500;
  /// queue_full retries per request before the rejection surfaces.
  unsigned MaxRetries = 8;
  /// Per-shard fetch/ping I/O bound (connect + response) in seconds.
  double ShardTimeoutSeconds = 5.0;
  /// Slow-request threshold in milliseconds for the structured log
  /// (support/Log.h): an id-tracked forward whose arrival-to-final
  /// latency reaches it emits one warn-level "slow_request" line (with
  /// the merged trace when the request was traced). 0 disables it.
  double SlowRequestMs = 0;
};

/// Router counters, surfaced in the "router" stats section.
struct RouterCounters {
  uint64_t Connections = 0;
  uint64_t Requests = 0;
  uint64_t Forwarded = 0;
  uint64_t Retries = 0;
  uint64_t Redispatched = 0;
  uint64_t Unavailable = 0;
  uint64_t Errors = 0;
};

/// The front daemon. Lifecycle mirrors Server: start() binds and spawns
/// the accept/health/retry threads, wait() blocks until a shutdown op or
/// requestStop() and then tears everything down.
class RouterServer {
public:
  explicit RouterServer(RouterOptions Options);
  ~RouterServer();

  RouterServer(const RouterServer &) = delete;
  RouterServer &operator=(const RouterServer &) = delete;

  Status start();
  void wait(const std::function<bool()> &ExternalStop = nullptr);
  void requestStop();
  void stop();

  /// Canonical client-facing bound address (resolved tcp port).
  std::string boundAddress() const { return Acceptor.endpoint().str(); }
  /// Bound metrics address, empty when the listener is disabled.
  std::string metricsBoundAddress() const;

  /// Live view of shard health (index-aligned with Options.Shards).
  std::vector<char> shardHealth() const;

  /// The fleet stats document (router + aggregate + per-shard).
  json::Value statsJson();
  /// The fleet Prometheus text exposition.
  std::string metricsText();

private:
  struct Connection;

  void acceptLoop();
  void connectionLoop(std::shared_ptr<Connection> Conn, size_t Slot);
  void healthLoop();
  void retryLoop();
  void metricsHttpLoop();
  void teardown();

  void handleLine(const std::shared_ptr<Connection> &Conn,
                  const std::string &Line, bool &StopAfterSend);
  /// Dispatches \p Line (a route/batch request) to the shard owning
  /// \p Key, registering the id for retry/re-dispatch when non-empty.
  void dispatch(const std::shared_ptr<Connection> &Conn, uint64_t Key,
                const std::string &OpName, const std::string &Id,
                const std::string &Line, unsigned Attempts);
  void handleCancel(const std::shared_ptr<Connection> &Conn,
                    const Request &Req);
  /// Opens (or reuses) the upstream of (Conn, Shard) — spawning its
  /// forwarder thread on a fresh connect — and writes \p Line into it.
  /// Returns false when the shard is unreachable.
  bool sendToShard(const std::shared_ptr<Connection> &Conn, size_t Shard,
                   const std::string &Line);
  /// Starts the reader thread of one upstream connection: events pass
  /// through to the client, finals go through onShardFinal, EOF/error
  /// ends in onUpstreamDown.
  void spawnForwarder(const std::shared_ptr<Connection> &Conn, size_t Shard,
                      int Fd);
  /// Forwarder-thread upcall: one upstream died; re-dispatch its tracked
  /// requests, fail its untracked ones, and mark the shard down.
  void onUpstreamDown(const std::shared_ptr<Connection> &Conn, size_t Shard);
  /// Forwarder-thread upcall for each final frame read from a shard.
  void onShardFinal(const std::shared_ptr<Connection> &Conn, size_t Shard,
                    const std::string &Line);

  void markShardDown(size_t Shard);
  /// Fetches the stats document of every currently-live shard (short
  /// independent connections; a failed fetch marks the shard down).
  std::vector<std::pair<bool, json::Value>> collectShardStats();

  RouterOptions Options;
  HashRing Ring;
  Timer Uptime;

  Listener Acceptor;
  std::thread AcceptThread;
  Listener MetricsAcceptor;
  std::thread MetricsThread;

  mutable std::mutex HealthMu;
  std::vector<char> Alive;
  std::thread HealthThread;

  /// Delayed queue_full retries, shared across connections: a single
  /// timer thread re-dispatches each entry when due.
  struct PendingRetry {
    std::chrono::steady_clock::time_point Due;
    std::weak_ptr<Connection> Conn;
    uint64_t Key = 0;
    std::string OpName;
    std::string Id;
    std::string Line;
    unsigned Attempts = 0;
  };
  std::mutex RetryMu;
  std::condition_variable RetryCv;
  std::vector<PendingRetry> RetryQueue;
  std::thread RetryThread;

  mutable std::mutex ConnMu;
  std::vector<std::thread> ConnThreads;
  std::vector<std::shared_ptr<Connection>> Conns;
  std::vector<size_t> FinishedSlots;
  std::vector<size_t> FreeSlots;

  mutable std::mutex CounterMu;
  RouterCounters Counters;

  /// Arrival-to-final latency of id-tracked forwards (retries and
  /// re-dispatches included), surfaced under router.latency.forward and
  /// always on (recording is lock-free).
  LatencyHistogram ForwardLatency;

  std::mutex StopMu;
  std::condition_variable StopCv;
  bool StopRequested = false;
  std::atomic<bool> Stopping{false};
  bool Started = false;
  std::mutex TeardownMu;
  bool TornDown = false;
};

/// The sharding key: a stable fingerprint of the raw QASM text(s) and
/// the backend name — computed on the untouched request so the router
/// never needs to import the circuit. Exposed for tests.
uint64_t shardKeyForRequest(const Request &Req);

} // namespace service
} // namespace qlosure

#endif // QLOSURE_SERVICE_SHARDROUTER_H
