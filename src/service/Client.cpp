//===- service/Client.cpp - Blocking qlosured client ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "service/SocketIO.h"
#include "service/Transport.h"
#include "support/Fingerprint.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

Status Client::connect(const std::string &Address, double RetrySeconds) {
  close();
  Endpoint Ep;
  if (Status S = parseEndpoint(Address, Ep); !S.ok())
    return S;

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(RetrySeconds);
  BackoffPolicy Backoff;
  // Jitter-scatter concurrent clients racing for the same fresh daemon.
  uint64_t JitterSeed = hashCombine(fingerprintString(Address),
                                    static_cast<uint64_t>(::getpid()));
  unsigned Attempt = 0;
  while (true) {
    Status S = connectEndpoint(Ep, Fd);
    if (S.ok())
      return S;
    if (RetrySeconds <= 0 || std::chrono::steady_clock::now() >= Deadline)
      return S;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        Backoff.delayMs(Attempt++, JitterSeed)));
  }
}

Status Client::setIoTimeout(double Seconds) {
  if (Fd < 0)
    return Status::error("not connected");
  timeval Tv{};
  if (Seconds > 0) {
    Tv.tv_sec = static_cast<time_t>(Seconds);
    Tv.tv_usec = static_cast<suseconds_t>((Seconds - Tv.tv_sec) * 1e6);
  }
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) != 0 ||
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) != 0)
    return Status::error(
        formatString("setsockopt(SO_RCVTIMEO): %s", std::strerror(errno)));
  return Status::success();
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Pending.clear();
  Stash.clear();
}

Status Client::sendLine(const std::string &Line) {
  if (Fd < 0)
    return Status::error("not connected");
  if (!sendAll(Fd, Line + "\n"))
    return Status::error(formatString("send(): %s", std::strerror(errno)));
  return Status::success();
}

Status Client::recvLine(std::string &Line) {
  if (Fd < 0)
    return Status::error("not connected");
  char Buffer[65536];
  while (!popLine(Pending, Line)) {
    ssize_t N = recvSome(Fd, Buffer, sizeof(Buffer));
    if (N < 0)
      return Status::error(
          formatString("recv(): %s", std::strerror(errno)));
    if (N == 0)
      return Status::error("connection closed by server");
    Pending.append(Buffer, static_cast<size_t>(N));
  }
  return Status::success();
}

namespace {

/// Frame triage: fills \p Id / \p Op from the frame and reports whether
/// it is an event (carries "event") rather than a final response.
bool classifyFrame(const std::string &Line, std::string &Id,
                   std::string &Op, bool &IsEvent) {
  json::ParseResult Parsed = json::parse(Line);
  if (!Parsed.Ok || !Parsed.V.isObject())
    return false;
  IsEvent = Parsed.V.get("event") != nullptr;
  if (const json::Value *IdField = Parsed.V.get("id");
      IdField && IdField->isString())
    Id = IdField->asString();
  if (const json::Value *OpField = Parsed.V.get("op");
      OpField && OpField->isString())
    Op = OpField->asString();
  return true;
}

} // namespace

Status Client::recvResponseFor(const std::string &Id, std::string &Response,
                               const EventFn &OnEvent,
                               const std::string &OpFilter) {
  auto Matches = [&](const std::string &FrameId, const std::string &FrameOp) {
    if (!Id.empty() && FrameId != Id)
      return false;
    return OpFilter.empty() || FrameOp == OpFilter;
  };
  for (auto It = Stash.begin(); It != Stash.end(); ++It) {
    if (Matches(It->Id, It->Op)) {
      Response = std::move(It->Line);
      Stash.erase(It);
      return Status::success();
    }
  }
  while (true) {
    std::string Line;
    if (Status S = recvLine(Line); !S.ok())
      return S;
    std::string FrameId, FrameOp;
    bool IsEvent = false;
    if (!classifyFrame(Line, FrameId, FrameOp, IsEvent))
      return Status::error(
          formatString("malformed frame from server: %s", Line.c_str()));
    if (IsEvent) {
      if (OnEvent)
        OnEvent(Line);
      continue;
    }
    if (Matches(FrameId, FrameOp)) {
      Response = std::move(Line);
      return Status::success();
    }
    Stash.push_back(StashedFinal{std::move(FrameId), std::move(FrameOp),
                                 std::move(Line)});
  }
}

Status Client::request(const std::string &Line, std::string &Response) {
  if (Status S = sendLine(Line); !S.ok())
    return S;
  return recvResponseFor("", Response);
}
