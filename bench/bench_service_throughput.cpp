//===- bench/bench_service_throughput.cpp - qlosured loadgen -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Load generator and correctness harness for the qlosured service (PR 4):
/// boots an in-process Server on a temp Unix socket, precomputes the
/// expected routed program of every (circuit, mapper) pair with direct
/// library calls, then drives N concurrent client connections through two
/// passes over the QUEKO request mix —
///
///   cold: caches empty, every request pays context build + routing;
///   warm: the identical requests again, served from the service caches.
///
/// Every response (cold and warm) must carry routed QASM byte-identical
/// to the direct library call, every warm response must report a cache
/// hit, and warm throughput must be >= 2x cold (the PR 4 acceptance bar).
/// QMAP is excluded from the mix: its wall-clock search budget makes its
/// results load-dependent, which would turn byte-identity into a coin
/// flip (see BatchRunner.h); the four deterministic mappers cover the
/// protocol and cache paths identically.
///
/// Results are written to BENCH_service.json. Schema (one object):
///   {
///     "bench": "service_throughput",
///     "workload": "queko-54qbt",        // generation set
///     "backend": "sherbrooke",
///     "clients": <int>,                  // concurrent connections
///     "requests_per_pass": <int>,
///     "all_identical": <bool>,           // responses == direct calls
///     "all_warm_hits": <bool>,           // warm pass all cache_hit
///     "cold": { "seconds": <float>, "requests_per_sec": <float>,
///               "p50_ms": <float>, "p95_ms": <float> },
///     "warm": { ... same fields ... },
///     "warm_over_cold": <float>,         // rps ratio, must be >= 2
///     "tracing": {                       // per-request tracing cost
///       "reps": <int>,                   // best-of-N warm passes per side
///       "untraced_rps": <float>,
///       "traced_rps": <float>,
///       "overhead_pct": <float>,         // (untraced-traced)/untraced
///       "asserted_bound_pct": 10.0,      // noise guard; design target <1%
///       "all_identical": <bool>,         // traced bytes == direct calls
///       "trace_section_ok": <bool>       // trace present iff requested
///     },
///     "dedupe": {                        // in-flight coalescing
///       "clients": <int>,                // concurrent identical requests
///       "submitted": <int>,              // scheduler jobs — must be 1
///       "coalesced": <int>,              // followers attached in flight
///       "all_identical": <bool>,         // every payload byte-identical
///       "seconds": <float>
///     },
///     "batch": {                         // one batch op vs N route ops
///       "items": <int>,                  // circuits per side (disjoint,
///                                        //   equal-composition sets)
///       "mapper": <string>,
///       "individual_seconds": <float>,   // N sequential route requests
///       "individual_p50_ms": <float>,
///       "batch_seconds": <float>,        // send -> summary wall clock
///       "batch_per_item_ms": <float>,    // batch_seconds / items
///       "batch_over_individual": <float> // individual / batch wall ratio
///     }
///   }
///
/// The batch section compares one `batch` session against the same
/// number of sequential `route` requests on a fresh connection, using
/// two disjoint circuit sets of identical composition (so neither side
/// is served from the result cache the other warmed). The batch side
/// saves N-1 request round trips and enqueues its items contiguously;
/// its per-item cost must not exceed the individual p50.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "baselines/RouterRegistry.h"
#include "core/Qlosure.h"
#include "qasm/Printer.h"
#include "route/Verify.h"
#include "service/Client.h"
#include "service/Server.h"
#include "service/ShardRouter.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace qlosure;
using namespace qlosure::bench;
using namespace qlosure::service;

namespace {

struct RequestSpec {
  std::string Line;     ///< The protocol request.
  std::string Expected; ///< Routed QASM from the direct library call.
  std::string Name;     ///< circuit/mapper label for diagnostics.
};

struct PassResult {
  double Seconds = 0;
  std::vector<double> LatenciesMs;
  bool AllIdentical = true;
  bool AllCacheHits = true;
  uint64_t Errors = 0;

  double p(double Quantile) const {
    if (LatenciesMs.empty())
      return 0;
    std::vector<double> Sorted = LatenciesMs;
    std::sort(Sorted.begin(), Sorted.end());
    size_t Index = std::min(Sorted.size() - 1,
                            static_cast<size_t>(Quantile * Sorted.size()));
    return Sorted[Index];
  }
};

/// Drives all requests through \p NumClients concurrent connections (one
/// persistent connection per client, work-stealing over the request list).
PassResult runPass(const std::string &Address,
                   const std::vector<RequestSpec> &Requests,
                   unsigned NumClients, bool ExpectCacheHits) {
  PassResult Result;
  Result.LatenciesMs.resize(Requests.size(), 0);
  std::atomic<size_t> Next{0};
  std::atomic<uint64_t> Errors{0};
  std::mutex FlagMu;

  Timer Wall;
  auto ClientLoop = [&] {
    Client Conn;
    if (!Conn.connect(Address).ok()) {
      ++Errors;
      return;
    }
    for (size_t I = Next.fetch_add(1); I < Requests.size();
         I = Next.fetch_add(1)) {
      Timer Latency;
      std::string ResponseLine;
      if (!Conn.request(Requests[I].Line, ResponseLine).ok()) {
        ++Errors;
        return;
      }
      Result.LatenciesMs[I] = Latency.elapsedMilliseconds();

      json::ParseResult Parsed = json::parse(ResponseLine);
      const json::Value *Ok =
          Parsed.Ok ? Parsed.V.get("ok") : nullptr;
      if (!Ok || !Ok->asBool()) {
        ++Errors;
        continue;
      }
      const json::Value *Qasm = Parsed.V.get("qasm");
      if (!Qasm || !Qasm->isString() ||
          Qasm->asString() != Requests[I].Expected) {
        std::lock_guard<std::mutex> Lock(FlagMu);
        Result.AllIdentical = false;
        std::fprintf(stderr,
                     "error: %s: service response differs from the direct "
                     "library call\n",
                     Requests[I].Name.c_str());
      }
      const json::Value *Hit = Parsed.V.get("cache_hit");
      if (ExpectCacheHits && (!Hit || !Hit->asBool())) {
        std::lock_guard<std::mutex> Lock(FlagMu);
        Result.AllCacheHits = false;
        std::fprintf(stderr, "error: %s: warm request missed the cache\n",
                     Requests[I].Name.c_str());
      }
    }
  };

  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < NumClients; ++C)
    Clients.emplace_back(ClientLoop);
  for (std::thread &T : Clients)
    T.join();
  Result.Seconds = Wall.elapsedSeconds();
  Result.Errors = Errors.load();
  return Result;
}

json::Value passJson(const PassResult &Pass, size_t Requests) {
  json::Value Obj = json::Value::object();
  Obj.set("seconds", Pass.Seconds);
  Obj.set("requests_per_sec",
          Pass.Seconds > 0 ? Requests / Pass.Seconds : 0.0);
  Obj.set("p50_ms", Pass.p(0.50));
  Obj.set("p95_ms", Pass.p(0.95));
  return Obj;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Service throughput (qlosured cold vs warm cache)", Config);

  const unsigned NumInstances = Config.Full ? 8 : 4;
  const std::vector<unsigned> Depths =
      Config.Full ? std::vector<unsigned>{50, 100, 150}
                  : std::vector<unsigned>{40, 80};
  const char *BackendName = "sherbrooke";
  // QMAP excluded: wall-clock budget => load-dependent results (see
  // the file header).
  const std::vector<std::string> Mappers = {"qlosure", "sabre", "cirq",
                                            "tket"};

  CouplingGraph Gen = makeSycamore54();
  CouplingGraph Backend = makeBackendByName(BackendName);

  // Generate the circuit mix and precompute the expected routed bytes
  // with direct library calls (identity placement, default options —
  // exactly what the service runs).
  std::vector<RequestSpec> Requests;
  unsigned InstanceIndex = 0;
  for (unsigned Depth : Depths) {
    for (unsigned I = 0; I < NumInstances / Depths.size() + 1; ++I) {
      if (InstanceIndex >= NumInstances)
        break;
      QuekoSpec Spec;
      Spec.Depth = Depth;
      Spec.Seed = Config.Seed + InstanceIndex;
      QuekoInstance Inst = generateQueko(Gen, Spec);
      Inst.Circ.setName(
          formatString("queko-54qbt-d%u-i%u", Depth, InstanceIndex));
      ++InstanceIndex;

      std::string Qasm = qasm::printQasm(Inst.Circ);
      RoutingContext Ctx = RoutingContext::build(Inst.Circ, Backend);
      for (const std::string &MapperName : Mappers) {
        std::unique_ptr<Router> Mapper = makeRouterByName(MapperName);
        RoutingResult Direct = Mapper->routeWithIdentity(Ctx);
        if (Config.Verify) {
          VerifyResult Check = verifyRouting(Inst.Circ, Backend, Direct);
          if (!Check.Ok) {
            std::fprintf(stderr, "error: direct %s routing invalid: %s\n",
                         MapperName.c_str(), Check.Message.c_str());
            return 1;
          }
        }
        json::Value Req = json::Value::object();
        Req.set("op", "route");
        Req.set("qasm", Qasm);
        Req.set("mapper", MapperName);
        Req.set("backend", BackendName);
        RequestSpec SpecOut;
        SpecOut.Line = Req.dump();
        SpecOut.Expected = qasm::printQasm(Direct.Routed);
        SpecOut.Name = Inst.Circ.name() + "/" + MapperName;
        Requests.push_back(std::move(SpecOut));
      }
    }
  }

  ServerOptions Opts;
  Opts.Listen =
      formatString("/tmp/qlosured-bench-%d.sock", static_cast<int>(getpid()));
  Opts.Workers = Config.Threads;
  Server Daemon(Opts);
  if (Status S = Daemon.start(); !S.ok()) {
    std::fprintf(stderr, "error: cannot start server: %s\n",
                 S.message().c_str());
    return 1;
  }

  const unsigned NumClients = std::min<unsigned>(
      4, std::max(1u, std::thread::hardware_concurrency()));
  std::printf("%zu requests per pass, %u concurrent clients\n\n",
              Requests.size(), NumClients);

  PassResult Cold =
      runPass(Daemon.boundAddress(), Requests, NumClients, false);
  PassResult Warm = runPass(Daemon.boundAddress(), Requests, NumClients, true);

  // Tracing overhead: the identical warm mix with per-request tracing
  // on vs off, back to back, best-of-N each so a scheduler hiccup in a
  // single rep does not decide the result. The design claim is that the
  // disabled-tracing path costs well under 1% (every instrumentation
  // site is a single null-pointer test), and enabling it stays in the
  // low single digits; the asserted bound is 10% because on a shared CI
  // host run-to-run noise alone is several percent, and a flaky bench
  // is worse than a loose one. The measured figure lands in
  // BENCH_service.json ("tracing" section) for trend tracking.
  std::vector<RequestSpec> TracedRequests = Requests;
  for (RequestSpec &Spec : TracedRequests) {
    json::ParseResult Parsed = json::parse(Spec.Line);
    Parsed.V.set("trace", true);
    Spec.Line = Parsed.V.dump();
  }
  bool TraceIdentical = true;
  auto bestWarmRps = [&](const std::vector<RequestSpec> &Mix, unsigned Reps) {
    double Best = 0;
    for (unsigned R = 0; R < Reps; ++R) {
      PassResult P = runPass(Daemon.boundAddress(), Mix, NumClients, true);
      TraceIdentical = TraceIdentical && P.AllIdentical && P.Errors == 0;
      double Rps = P.Seconds > 0 ? Mix.size() / P.Seconds : 0;
      Best = std::max(Best, Rps);
    }
    return Best;
  };
  const unsigned TraceReps = Config.Full ? 10 : 5;
  double UntracedRps = bestWarmRps(Requests, TraceReps);
  double TracedRps = bestWarmRps(TracedRequests, TraceReps);
  double TracingOverheadPct =
      UntracedRps > 0 ? (UntracedRps - TracedRps) / UntracedRps * 100.0 : 0;

  // The trace section must appear exactly when asked for: a traced
  // request carries attributed spans, an untraced one carries no trace
  // member at all (the off path leaves the response byte-identical,
  // which the pass comparisons above already pin for the payload).
  bool TraceSectionOk = true;
  {
    Client Conn;
    if (!Conn.connect(Daemon.boundAddress()).ok()) {
      TraceSectionOk = false;
    } else {
      std::string Resp;
      if (!Conn.request(TracedRequests[0].Line, Resp).ok()) {
        TraceSectionOk = false;
      } else {
        json::ParseResult Parsed = json::parse(Resp);
        const json::Value *TraceObj =
            Parsed.Ok ? Parsed.V.get("trace") : nullptr;
        const json::Value *Spans =
            TraceObj ? TraceObj->get("spans") : nullptr;
        if (!Spans || !Spans->isArray() || Spans->items().empty())
          TraceSectionOk = false;
      }
      if (Conn.request(Requests[0].Line, Resp).ok()) {
        json::ParseResult Parsed = json::parse(Resp);
        if (Parsed.Ok && Parsed.V.get("trace"))
          TraceSectionOk = false;
      } else {
        TraceSectionOk = false;
      }
    }
  }

  // One `batch` op vs the same number of sequential `route` ops, on two
  // disjoint circuit sets of identical composition (fresh seeds — the
  // result cache the passes above warmed serves neither side).
  const unsigned NumBatchItems = Config.Full ? 16 : 8;
  const char *BatchMapper = "qlosure";
  auto makeFreshSet = [&](uint64_t SeedOffset) {
    std::vector<std::pair<std::string, std::string>> Set;
    for (unsigned I = 0; I < NumBatchItems; ++I) {
      QuekoSpec Spec;
      Spec.Depth = Depths[I % Depths.size()];
      Spec.Seed = Config.Seed + SeedOffset + I;
      QuekoInstance Inst = generateQueko(Gen, Spec);
      Inst.Circ.setName(formatString("queko-batch-s%llu-i%u",
                                     static_cast<unsigned long long>(SeedOffset),
                                     I));
      Set.emplace_back(Inst.Circ.name(), qasm::printQasm(Inst.Circ));
    }
    return Set;
  };
  auto IndividualSet = makeFreshSet(1000);
  auto BatchSet = makeFreshSet(2000);

  bool BatchOk = true;
  double IndividualSeconds = 0;
  std::vector<double> IndividualLatenciesMs;
  {
    Client Conn;
    if (!Conn.connect(Daemon.boundAddress()).ok()) {
      BatchOk = false;
    } else {
      Timer Wall;
      for (const auto &[Name, Qasm] : IndividualSet) {
        json::Value Req = json::Value::object();
        Req.set("op", "route");
        Req.set("qasm", Qasm);
        Req.set("mapper", BatchMapper);
        Req.set("backend", BackendName);
        Req.set("include_qasm", false);
        Timer Latency;
        std::string Resp;
        if (!Conn.request(Req.dump(), Resp).ok()) {
          BatchOk = false;
          break;
        }
        IndividualLatenciesMs.push_back(Latency.elapsedMilliseconds());
        json::ParseResult Parsed = json::parse(Resp);
        const json::Value *Ok = Parsed.Ok ? Parsed.V.get("ok") : nullptr;
        if (!Ok || !Ok->asBool()) {
          BatchOk = false;
          std::fprintf(stderr, "error: individual route %s failed\n",
                       Name.c_str());
        }
      }
      IndividualSeconds = Wall.elapsedSeconds();
    }
  }

  double BatchSeconds = 0;
  size_t BatchItemFrames = 0;
  {
    Client Conn;
    if (!Conn.connect(Daemon.boundAddress()).ok()) {
      BatchOk = false;
    } else {
      json::Value Req = json::Value::object();
      Req.set("op", "batch");
      Req.set("id", "bench-batch");
      Req.set("mapper", BatchMapper);
      Req.set("backend", BackendName);
      Req.set("include_qasm", false);
      json::Value Items = json::Value::array();
      for (const auto &[Name, Qasm] : BatchSet) {
        json::Value Item = json::Value::object();
        Item.set("name", Name);
        Item.set("qasm", Qasm);
        Items.push(std::move(Item));
      }
      Req.set("items", std::move(Items));

      Timer Wall;
      std::string Summary;
      if (!Conn.sendLine(Req.dump()).ok() ||
          !Conn.recvResponseFor(
                   "bench-batch", Summary,
                   [&](const std::string &) { ++BatchItemFrames; })
               .ok()) {
        BatchOk = false;
      } else {
        BatchSeconds = Wall.elapsedSeconds();
        json::ParseResult Parsed = json::parse(Summary);
        const json::Value *Ok = Parsed.Ok ? Parsed.V.get("ok") : nullptr;
        const json::Value *Succeeded =
            Parsed.Ok ? Parsed.V.get("succeeded") : nullptr;
        if (!Ok || !Ok->asBool() || !Succeeded ||
            static_cast<size_t>(Succeeded->asNumber()) != BatchSet.size() ||
            BatchItemFrames != BatchSet.size()) {
          BatchOk = false;
          std::fprintf(stderr,
                       "error: batch session failed (%zu item frames, "
                       "summary: %s)\n",
                       BatchItemFrames, Summary.c_str());
        }
      }
    }
  }

  auto p50 = [](std::vector<double> V) {
    if (V.empty())
      return 0.0;
    std::sort(V.begin(), V.end());
    return V[V.size() / 2];
  };
  double IndividualP50 = p50(IndividualLatenciesMs);
  double BatchPerItemMs =
      NumBatchItems > 0 ? BatchSeconds * 1000.0 / NumBatchItems : 0;
  double BatchRatio = BatchSeconds > 0 ? IndividualSeconds / BatchSeconds : 0;

  // --fleet N: the same request mix through a consistent-hash shard
  // router fronting N fresh daemons, against the single warm daemon at
  // equal client concurrency. Routed bytes must stay identical through
  // the router; the >= 1.7x aggregate-throughput bar only applies where
  // the host has cores for the daemons to actually run in parallel.
  bool FleetRan = false, FleetOk = true, FleetAsserted = false;
  bool FleetIdentical = true, FleetWarmHits = true;
  unsigned FleetN = 0, FleetClients = 0;
  double SingleRps = 0, FleetRps = 0, FleetSpeedup = 0;
  if (Config.Fleet >= 2) {
    FleetRan = true;
    FleetN = std::min(Config.Fleet, 4u);
    std::vector<std::unique_ptr<Server>> ShardDaemons;
    RouterOptions RouterOpts;
    RouterOpts.Listen = formatString("/tmp/qlosure-router-bench-%d.sock",
                                     static_cast<int>(getpid()));
    for (unsigned S = 0; S < FleetN; ++S) {
      ServerOptions ShardOpts;
      ShardOpts.Listen = formatString("/tmp/qlosured-bench-%d-s%u.sock",
                                      static_cast<int>(getpid()), S);
      ShardOpts.Workers = Config.Threads;
      auto Shard = std::make_unique<Server>(ShardOpts);
      if (Status St = Shard->start(); !St.ok()) {
        std::fprintf(stderr, "error: cannot start fleet shard %u: %s\n", S,
                     St.message().c_str());
        FleetOk = false;
        break;
      }
      RouterOpts.Shards.push_back(Shard->boundAddress());
      ShardDaemons.push_back(std::move(Shard));
    }
    RouterServer Router(RouterOpts);
    if (FleetOk) {
      if (Status St = Router.start(); !St.ok()) {
        std::fprintf(stderr, "error: cannot start fleet router: %s\n",
                     St.message().c_str());
        FleetOk = false;
      }
    }
    if (FleetOk) {
      FleetClients = std::max(NumClients, FleetN * 2);
      // The single-daemon reference at the same concurrency; its caches
      // are warm from the passes above.
      PassResult Single =
          runPass(Daemon.boundAddress(), Requests, FleetClients, true);
      // Warm each shard's caches through the router (stickiness means
      // one pass suffices), then measure the aggregate warm pass.
      PassResult Warmup =
          runPass(Router.boundAddress(), Requests, FleetClients, false);
      PassResult FleetWarm =
          runPass(Router.boundAddress(), Requests, FleetClients, true);

      FleetIdentical = Warmup.AllIdentical && FleetWarm.AllIdentical &&
                       Warmup.Errors == 0 && FleetWarm.Errors == 0;
      FleetWarmHits = FleetWarm.AllCacheHits;
      SingleRps =
          Single.Seconds > 0 ? Requests.size() / Single.Seconds : 0;
      FleetRps =
          FleetWarm.Seconds > 0 ? Requests.size() / FleetWarm.Seconds : 0;
      FleetSpeedup = SingleRps > 0 ? FleetRps / SingleRps : 0;
      FleetOk = FleetIdentical && FleetWarmHits;

      FleetAsserted =
          std::thread::hardware_concurrency() >= FleetN + 2;
      std::printf("\nfleet: %u daemons behind the router, %u clients\n",
                  FleetN, FleetClients);
      std::printf("  single warm: %8.1f req/s\n", SingleRps);
      std::printf("  fleet  warm: %8.1f req/s  (%.2fx aggregate)\n",
                  FleetRps, FleetSpeedup);
      std::printf("  routed bytes identical through the router: %s\n",
                  FleetIdentical ? "yes" : "NO (BUG)");
      std::printf("  fleet warm pass all cache hits: %s\n",
                  FleetWarmHits ? "yes" : "NO (BUG)");
      if (FleetAsserted) {
        if (FleetSpeedup < 1.7) {
          std::fprintf(stderr,
                       "error: fleet speedup %.2fx below the 1.7x "
                       "acceptance bar\n",
                       FleetSpeedup);
          FleetOk = false;
        }
      } else {
        std::printf("  (speedup bar not asserted: %u hardware threads < "
                    "%u needed for %u daemons + router)\n",
                    std::thread::hardware_concurrency(), FleetN + 2,
                    FleetN);
      }
      Router.stop();
    }
    for (auto &Shard : ShardDaemons)
      Shard->stop();
  }

  // Dedupe: K concurrent identical requests for one uncached deep
  // circuit against a fresh daemon. Single-flight coalescing must
  // collapse them onto one scheduler job (submitted == 1 — latecomers
  // that miss the flight hit the result cache instead, which is the
  // same dedupe guarantee), and every response must carry the same
  // routed bytes and stats.
  const unsigned DedupeClients = Config.Full ? 8 : 6;
  bool DedupeOk = true, DedupeIdentical = true;
  uint64_t DedupeSubmitted = 0, DedupeCoalesced = 0;
  double DedupeSeconds = 0;
  {
    ServerOptions DedupeOpts;
    DedupeOpts.Listen = formatString("/tmp/qlosured-bench-%d-dedupe.sock",
                                     static_cast<int>(getpid()));
    DedupeOpts.Workers = Config.Threads;
    Server DedupeDaemon(DedupeOpts);
    if (Status S = DedupeDaemon.start(); !S.ok()) {
      std::fprintf(stderr, "error: cannot start dedupe daemon: %s\n",
                   S.message().c_str());
      DedupeOk = false;
    } else {
      QuekoSpec Spec;
      Spec.Depth = Config.Full ? 300 : 200;
      Spec.Seed = Config.Seed + 3000;
      QuekoInstance Inst = generateQueko(Gen, Spec);
      json::Value Req = json::Value::object();
      Req.set("op", "route");
      Req.set("qasm", qasm::printQasm(Inst.Circ));
      Req.set("mapper", "qlosure");
      Req.set("backend", BackendName);
      const std::string ReqLine = Req.dump();

      std::vector<std::string> Payloads(DedupeClients);
      std::atomic<uint64_t> DedupeErrors{0};
      Timer Wall;
      std::vector<std::thread> Racers;
      for (unsigned C = 0; C < DedupeClients; ++C) {
        Racers.emplace_back([&, C] {
          Client Conn;
          json::ParseResult Mine = json::parse(ReqLine);
          Mine.V.set("id", formatString("dedupe-%u", C));
          std::string Resp;
          if (!Conn.connect(DedupeDaemon.boundAddress()).ok() ||
              !Conn.request(Mine.V.dump(), Resp).ok()) {
            ++DedupeErrors;
            return;
          }
          json::ParseResult Parsed = json::parse(Resp);
          const json::Value *Ok = Parsed.Ok ? Parsed.V.get("ok") : nullptr;
          const json::Value *Qasm = Parsed.Ok ? Parsed.V.get("qasm") : nullptr;
          const json::Value *St = Parsed.Ok ? Parsed.V.get("stats") : nullptr;
          if (!Ok || !Ok->asBool() || !Qasm || !St) {
            ++DedupeErrors;
            return;
          }
          Payloads[C] = St->dump() + "\n" + Qasm->asString();
        });
      }
      for (std::thread &T : Racers)
        T.join();
      DedupeSeconds = Wall.elapsedSeconds();
      for (unsigned C = 1; C < DedupeClients; ++C)
        DedupeIdentical = DedupeIdentical && Payloads[C] == Payloads[0];

      Client StatsConn;
      std::string StatsResp;
      if (StatsConn.connect(DedupeDaemon.boundAddress()).ok() &&
          StatsConn.request("{\"op\":\"stats\"}", StatsResp).ok()) {
        json::ParseResult Parsed = json::parse(StatsResp);
        const json::Value *Sched =
            Parsed.Ok ? Parsed.V.get("scheduler") : nullptr;
        const json::Value *Sub = Sched ? Sched->get("submitted") : nullptr;
        const json::Value *Srv = Parsed.Ok ? Parsed.V.get("server") : nullptr;
        const json::Value *Coal = Srv ? Srv->get("coalesced") : nullptr;
        DedupeSubmitted =
            Sub ? static_cast<uint64_t>(Sub->asNumber()) : ~0ull;
        DedupeCoalesced = Coal ? static_cast<uint64_t>(Coal->asNumber()) : 0;
      } else {
        ++DedupeErrors;
      }
      DedupeDaemon.stop();
      DedupeOk = DedupeErrors.load() == 0 && DedupeIdentical &&
                 DedupeSubmitted == 1;
      if (!DedupeOk)
        std::fprintf(stderr,
                     "error: dedupe acceptance FAILED (errors=%llu, "
                     "identical=%d, submitted=%llu, coalesced=%llu)\n",
                     static_cast<unsigned long long>(DedupeErrors.load()),
                     DedupeIdentical,
                     static_cast<unsigned long long>(DedupeSubmitted),
                     static_cast<unsigned long long>(DedupeCoalesced));
    }
  }

  CacheStats CtxStats = Daemon.contextCacheStats();
  CacheStats ResStats = Daemon.resultCacheStats();
  Daemon.stop();

  bool AllIdentical = Cold.AllIdentical && Warm.AllIdentical &&
                      Cold.Errors == 0 && Warm.Errors == 0;
  double ColdRps = Cold.Seconds > 0 ? Requests.size() / Cold.Seconds : 0;
  double WarmRps = Warm.Seconds > 0 ? Requests.size() / Warm.Seconds : 0;
  double Ratio = ColdRps > 0 ? WarmRps / ColdRps : 0;

  std::printf("pass   seconds     req/s    p50 ms    p95 ms\n");
  std::printf("cold  %8.3f  %8.1f  %8.2f  %8.2f\n", Cold.Seconds, ColdRps,
              Cold.p(0.50), Cold.p(0.95));
  std::printf("warm  %8.3f  %8.1f  %8.2f  %8.2f\n", Warm.Seconds, WarmRps,
              Warm.p(0.50), Warm.p(0.95));
  std::printf("\nwarm/cold throughput: %.2fx (acceptance bar: >= 2x)\n",
              Ratio);
  std::printf("\nbatch session: %u items in %.3fs (%.2f ms/item) vs %u "
              "individual routes in %.3fs (p50 %.2f ms) -> %.2fx; "
              "session ok: %s\n",
              NumBatchItems, BatchSeconds, BatchPerItemMs, NumBatchItems,
              IndividualSeconds, IndividualP50, BatchRatio,
              BatchOk ? "yes" : "NO (BUG)");
  std::printf("\ndedupe: %u concurrent identical cold requests -> %llu "
              "scheduler job(s), %llu coalesced, identical payloads: %s "
              "(%.3fs)\n",
              DedupeClients,
              static_cast<unsigned long long>(DedupeSubmitted),
              static_cast<unsigned long long>(DedupeCoalesced),
              DedupeIdentical ? "yes" : "NO (BUG)", DedupeSeconds);
  std::printf("\ntracing overhead (warm, best of %u): untraced %8.1f req/s, "
              "traced %8.1f req/s -> %+.2f%% (bound: <= 10%%, design "
              "target < 1%%)\n",
              TraceReps, UntracedRps, TracedRps, TracingOverheadPct);
  std::printf("trace section present iff requested: %s\n",
              TraceSectionOk ? "yes" : "NO (BUG)");
  std::printf("byte-identical to direct calls: %s\n",
              AllIdentical ? "yes" : "NO (BUG)");
  std::printf("warm pass all cache hits: %s\n",
              Warm.AllCacheHits ? "yes" : "NO (BUG)");
  std::printf("context cache: %llu hits / %llu misses; result cache: "
              "%llu hits / %llu misses\n",
              static_cast<unsigned long long>(CtxStats.Hits),
              static_cast<unsigned long long>(CtxStats.Misses),
              static_cast<unsigned long long>(ResStats.Hits),
              static_cast<unsigned long long>(ResStats.Misses));

  // See the file header for the JSON schema.
  {
    json::Value Doc = json::Value::object();
    Doc.set("bench", "service_throughput");
    Doc.set("workload", "queko-54qbt");
    Doc.set("backend", BackendName);
    Doc.set("clients", NumClients);
    Doc.set("requests_per_pass", Requests.size());
    Doc.set("all_identical", AllIdentical);
    Doc.set("all_warm_hits", Warm.AllCacheHits);
    Doc.set("cold", passJson(Cold, Requests.size()));
    Doc.set("warm", passJson(Warm, Requests.size()));
    Doc.set("warm_over_cold", Ratio);
    json::Value TracingObj = json::Value::object();
    TracingObj.set("reps", TraceReps);
    TracingObj.set("untraced_rps", UntracedRps);
    TracingObj.set("traced_rps", TracedRps);
    TracingObj.set("overhead_pct", TracingOverheadPct);
    TracingObj.set("asserted_bound_pct", 10.0);
    TracingObj.set("all_identical", TraceIdentical);
    TracingObj.set("trace_section_ok", TraceSectionOk);
    Doc.set("tracing", std::move(TracingObj));
    json::Value BatchObj = json::Value::object();
    BatchObj.set("items", NumBatchItems);
    BatchObj.set("mapper", BatchMapper);
    BatchObj.set("individual_seconds", IndividualSeconds);
    BatchObj.set("individual_p50_ms", IndividualP50);
    BatchObj.set("batch_seconds", BatchSeconds);
    BatchObj.set("batch_per_item_ms", BatchPerItemMs);
    BatchObj.set("batch_over_individual", BatchRatio);
    Doc.set("batch", std::move(BatchObj));
    json::Value DedupeObj = json::Value::object();
    DedupeObj.set("clients", DedupeClients);
    DedupeObj.set("submitted", DedupeSubmitted);
    DedupeObj.set("coalesced", DedupeCoalesced);
    DedupeObj.set("all_identical", DedupeIdentical);
    DedupeObj.set("seconds", DedupeSeconds);
    Doc.set("dedupe", std::move(DedupeObj));
    if (FleetRan) {
      json::Value FleetObj = json::Value::object();
      FleetObj.set("daemons", FleetN);
      FleetObj.set("clients", FleetClients);
      FleetObj.set("single_warm_rps", SingleRps);
      FleetObj.set("fleet_warm_rps", FleetRps);
      FleetObj.set("speedup", FleetSpeedup);
      FleetObj.set("all_identical", FleetIdentical);
      FleetObj.set("all_warm_hits", FleetWarmHits);
      FleetObj.set("speedup_asserted", FleetAsserted);
      Doc.set("fleet", std::move(FleetObj));
    }
    FILE *F = std::fopen("BENCH_service.json", "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write BENCH_service.json\n");
      return 1;
    }
    std::fprintf(F, "%s\n", Doc.dump().c_str());
    std::fclose(F);
    std::printf("wrote BENCH_service.json\n");
  }

  bool TracingOk =
      TraceIdentical && TraceSectionOk && TracingOverheadPct <= 10.0;
  if (!TracingOk)
    std::fprintf(stderr,
                 "error: tracing acceptance FAILED (identical=%d, "
                 "section=%d, overhead %.2f%% vs 10%% bound)\n",
                 TraceIdentical, TraceSectionOk, TracingOverheadPct);
  bool Pass = AllIdentical && Warm.AllCacheHits && Ratio >= 2.0 && BatchOk &&
              TracingOk && DedupeOk && (!FleetRan || FleetOk);
  if (!Pass)
    std::fprintf(stderr, "error: service throughput acceptance FAILED\n");
  return Pass ? 0 : 1;
}
