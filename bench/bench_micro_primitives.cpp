//===- bench/bench_micro_primitives.cpp - google-benchmark microbenches -----------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the library's primitives: APSP,
/// DAG construction, the two omega engines, affine lifting, the symbolic
/// transitive closure, and end-to-end routing of a mid-size circuit. These
/// back the performance claims in EXPERIMENTS.md with reproducible
/// numbers (run with --benchmark_filter=... as usual).
///
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "circuit/Dag.h"
#include "core/Qlosure.h"
#include "deps/TransitiveWeights.h"
#include "presburger/TransitiveClosure.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <benchmark/benchmark.h>

using namespace qlosure;
using namespace qlosure::presburger;

static Circuit mediumQueko() {
  QuekoSpec Spec;
  Spec.Depth = 100;
  Spec.Seed = 7;
  return generateQueko(makeSycamore54(), Spec).Circ;
}

static void BM_ApspSherbrooke(benchmark::State &State) {
  for (auto _ : State) {
    CouplingGraph G = makeSherbrooke();
    benchmark::DoNotOptimize(G.distance(0, 126));
  }
}
BENCHMARK(BM_ApspSherbrooke);

static void BM_DagBuild(benchmark::State &State) {
  Circuit C = mediumQueko();
  for (auto _ : State) {
    CircuitDag Dag(C);
    benchmark::DoNotOptimize(Dag.numGates());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(C.size()));
}
BENCHMARK(BM_DagBuild);

static void BM_OmegaExact(benchmark::State &State) {
  Circuit C = mediumQueko();
  WeightOptions Opts;
  Opts.Engine = WeightEngine::Exact;
  for (auto _ : State) {
    WeightResult R = computeDependenceWeights(C, Opts);
    benchmark::DoNotOptimize(R.Weights.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(C.size()));
}
BENCHMARK(BM_OmegaExact);

static void BM_OmegaAffine(benchmark::State &State) {
  Circuit C = mediumQueko();
  WeightOptions Opts;
  Opts.Engine = WeightEngine::Affine;
  for (auto _ : State) {
    WeightResult R = computeDependenceWeights(C, Opts);
    benchmark::DoNotOptimize(R.Weights.data());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(C.size()));
}
BENCHMARK(BM_OmegaAffine);

static void BM_AffineLift(benchmark::State &State) {
  Circuit C = mediumQueko();
  for (auto _ : State) {
    AffineCircuit AC = liftCircuit(C);
    benchmark::DoNotOptimize(AC.numStatements());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(C.size()));
}
BENCHMARK(BM_AffineLift);

static void BM_TranslationClosure(benchmark::State &State) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 9999);
  IntegerMap R(BasicMap::translation(Dom, {3}));
  ClosureOptions Opts;
  Opts.AllowFiniteFallback = false;
  for (auto _ : State) {
    ClosureResult C = transitiveClosure(R, Opts);
    benchmark::DoNotOptimize(C.IsExact);
  }
}
BENCHMARK(BM_TranslationClosure);

static void BM_RouteQlosureQft(benchmark::State &State) {
  Circuit C = makeQft(static_cast<unsigned>(State.range(0)));
  CouplingGraph Hw = makeSherbrooke();
  QlosureRouter Router;
  // Context built once outside the loop: iterations measure pure routing,
  // with DAG/distances/omega reused from the shared precomputation.
  RoutingContext Ctx = RoutingContext::build(C, Hw, Router.contextOptions());
  for (auto _ : State) {
    RoutingResult R = Router.routeWithIdentity(Ctx);
    benchmark::DoNotOptimize(R.NumSwaps);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(C.size()));
}
BENCHMARK(BM_RouteQlosureQft)->Arg(16)->Arg(32)->Arg(63);

BENCHMARK_MAIN();
