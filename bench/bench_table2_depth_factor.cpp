//===- bench/bench_table2_depth_factor.cpp - Table II reproduction ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table II of the paper: average QUEKO depth-factor
/// (post-mapping depth / provably-optimal depth) per mapper, split into
/// medium (< 550) and large (>= 550) initial depths, on the Sherbrooke,
/// Ankaa-3 and Sherbrooke-2X backends. Lower is better; the expected shape
/// is Qlosure lowest everywhere and QMAP timing out on Sherbrooke-2X.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Table II: QUEKO average depth-factor (lower is better)",
              Config);

  // Paper reference values (Table II).
  std::map<std::string,
           std::map<std::string, std::pair<double, double>>>
      Reference;
  Reference["sherbrooke"] = {{"SABRE", {7.68, 7.18}},
                             {"QMAP", {6.85, 6.31}},
                             {"Cirq", {7.64, 7.42}},
                             {"Pytket", {9.99, 9.03}},
                             {"Qlosure", {5.72, 5.45}}};
  Reference["ankaa3"] = {{"SABRE", {6.00, 5.46}},
                         {"QMAP", {5.15, 4.96}},
                         {"Cirq", {6.27, 6.12}},
                         {"Pytket", {6.47, 5.89}},
                         {"Qlosure", {4.41, 4.08}}};
  Reference["sherbrooke2x"] = {{"SABRE", {28.16, 24.42}},
                               {"QMAP", {0, 0}}, // timeout in the paper.
                               {"Cirq", {16.66, 14.85}},
                               {"Pytket", {37.21, 30.93}},
                               {"Qlosure", {14.94, 13.45}}};

  for (const QuekoGridSpec &Grid : paperQuekoGrids(Config)) {
    std::vector<RunRecord> Records = runQuekoGrid(Grid, Config);
    auto Summary = depthFactorSummary(Records);
    printMediumLargeTable("Backend: " + Grid.BackendName,
                          Summary, Reference[Grid.BackendName]);
  }

  std::printf("\nShape checks: Qlosure should have the lowest depth-factor "
              "in every column;\nQMAP should report timeouts on "
              "sherbrooke2x (as in the paper).\n");
  return 0;
}
