//===- bench/bench_fig6_sherbrooke.cpp - Fig. 6 reproduction ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 6 of the paper: SWAP counts (top row) and final
/// circuit depths (bottom row) per mapper on the Sherbrooke backend, as a
/// function of the initial QUEKO depth, for the narrow (16qbt), medium
/// (54qbt) and wide (81qbt) sets. Printed as one series table per set.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchFigureSeries.h"

int main(int Argc, char **Argv) {
  return qlosure::bench::runFigureSeries(
      Argc, Argv, "sherbrooke",
      "Fig. 6: QUEKO series on Sherbrooke (swaps and depth vs initial "
      "depth)");
}
