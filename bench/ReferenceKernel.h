//===- bench/ReferenceKernel.h - Frozen pre-scratch routing paths -*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Frozen copies of the routing implementations as they existed before the
/// RoutingScratch refactor (PR 3): a per-call-allocating front-layer
/// tracker, the greedy skeleton with fresh per-step vectors, the Qlosure
/// loop with O(numGates) window refills, and the node-copying QMAP A*.
/// They exist solely as the golden reference for
/// bench_kernel_throughput, which asserts that the allocation-free kernel
/// produces byte-identical routed circuits and measures its speedup.
/// Never use these outside the bench; they are deliberately not optimized
/// and must not be "improved" — any behavioural change breaks the
/// byte-identity guarantee they anchor.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BENCH_REFERENCEKERNEL_H
#define QLOSURE_BENCH_REFERENCEKERNEL_H

#include "baselines/CirqGreedy.h"
#include "baselines/QmapAstar.h"
#include "baselines/Sabre.h"
#include "baselines/TketBounded.h"
#include "core/Qlosure.h"
#include "route/Router.h"

#include <memory>
#include <string>

namespace qlosure {
namespace bench {

/// Creates the frozen reference implementation of the mapper named \p Name
/// ("qlosure", "sabre", "qmap", "cirq", "tket"), configured with default
/// options (the same defaults the registry mappers use) except that QMAP's
/// wall-clock budget is effectively unlimited so reference and kernel runs
/// take identical decisions. Aborts on unknown names.
std::unique_ptr<Router> makeReferenceRouter(const std::string &Name);

} // namespace bench
} // namespace qlosure

#endif // QLOSURE_BENCH_REFERENCEKERNEL_H
