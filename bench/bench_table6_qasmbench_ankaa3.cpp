//===- bench/bench_table6_qasmbench_ankaa3.cpp - Table VI -------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table VI of the paper: QASMBench circuits on Ankaa-3 —
/// per-circuit SWAPs/depth for all five mappers plus the suite-average
/// improvement row (run with --full for all 41 circuits).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchQasmBenchTable.h"

int main(int Argc, char **Argv) {
  return qlosure::bench::runQasmBenchTable(
      Argc, Argv, "ankaa3",
      "Table VI: QASMBench on Ankaa-3");
}
