//===- bench/BenchQasmBenchTable.cpp - Tables V/VI driver -------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchQasmBenchTable.h"

#include "bench/BenchCommon.h"
#include "eval/BatchRunner.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <cstdio>
#include <map>

using namespace qlosure;
using namespace qlosure::bench;

int qlosure::bench::runQasmBenchTable(int Argc, char **Argv,
                                      const std::string &BackendName,
                                      const std::string &Title) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner(Title, Config);

  CouplingGraph Hw = makeBackendByName(BackendName);
  // The paper's per-circuit rows come from the 7 spotlight circuits; its
  // average row covers all 41. The scaled-down default runs the spotlight
  // plus a sample of the suite; --full runs all 41.
  std::vector<NamedCircuit> Spotlight = spotlightQasmBenchCircuits();
  std::vector<NamedCircuit> Suite =
      Config.Full ? standardQasmBenchSuite() : Spotlight;

  const char *Order[] = {"SABRE", "QMAP", "Cirq", "Pytket", "Qlosure"};

  // Route every suite circuit with every mapper.
  struct CellValue {
    size_t Swaps = 0;
    size_t Depth = 0;
    bool Valid = false;
  };
  std::map<std::string, std::map<std::string, CellValue>> Results;
  auto Mappers = makePaperMappers(120.0);
  // One shared context per circuit, five mapper jobs each, fanned across
  // the batch engine.
  std::vector<RoutingContext> Contexts;
  Contexts.reserve(Suite.size());
  for (const NamedCircuit &NC : Suite)
    Contexts.push_back(RoutingContext::build(NC.Circ, Hw));
  std::vector<BatchJob> Jobs;
  for (size_t CI = 0; CI < Suite.size(); ++CI) {
    for (auto &Mapper : Mappers) {
      BatchJob Job;
      Job.Mapper = Mapper.get();
      Job.Ctx = &Contexts[CI];
      Job.BaselineDepth = Suite[CI].Circ.depth();
      Job.Eval.Verify = Config.Verify;
      Jobs.push_back(Job);
    }
  }
  std::vector<RunRecord> Records = runBatch(Jobs, Config.Threads);
  for (size_t CI = 0; CI < Suite.size(); ++CI) {
    for (size_t MI = 0; MI < Mappers.size(); ++MI) {
      const RunRecord &R = Records[CI * Mappers.size() + MI];
      CellValue V;
      V.Swaps = R.Swaps;
      V.Depth = R.RoutedDepth;
      V.Valid = !R.TimedOut && !R.Failed;
      Results[Suite[CI].Name][R.Mapper] = V;
    }
  }

  // Per-circuit table over the spotlight rows.
  std::vector<std::string> Header{"Circuit", "Qubits", "QOPs"};
  for (const char *M : Order) {
    Header.push_back(std::string(M) + " swaps");
    Header.push_back(std::string(M) + " depth");
  }
  Table T(Header);
  for (const NamedCircuit &NC : Spotlight) {
    std::vector<std::string> Row{
        NC.Name, formatString("%u", NC.Circ.numQubits()),
        formatString("%zu", NC.Circ.numQuantumOps())};
    for (const char *M : Order) {
      const CellValue &V = Results[NC.Name][M];
      Row.push_back(V.Valid ? formatString("%zu", V.Swaps) : "-");
      Row.push_back(V.Valid ? formatString("%zu", V.Depth) : "-");
    }
    T.addRow(std::move(Row));
  }
  std::printf("\nPer-circuit results on %s\n", BackendName.c_str());
  std::fputs(T.render().c_str(), stdout);

  // Average improvement of Qlosure over each baseline across the suite,
  // computed the paper's way: mean of (VAL_base - VAL_qlosure) / VAL_base.
  Table Avg({"Baseline", "Avg swap improvement", "Avg depth improvement"});
  for (const char *M : Order) {
    if (std::string(M) == "Qlosure")
      continue;
    std::vector<double> SwapGains, DepthGains;
    for (const NamedCircuit &NC : Suite) {
      const CellValue &Base = Results[NC.Name][M];
      const CellValue &Ours = Results[NC.Name]["Qlosure"];
      if (!Base.Valid || !Ours.Valid || Base.Swaps == 0 || Base.Depth == 0)
        continue;
      SwapGains.push_back(
          (static_cast<double>(Base.Swaps) - static_cast<double>(Ours.Swaps)) /
          static_cast<double>(Base.Swaps));
      DepthGains.push_back(
          (static_cast<double>(Base.Depth) - static_cast<double>(Ours.Depth)) /
          static_cast<double>(Base.Depth));
    }
    Avg.addRow({M, formatString("%.2f%%", 100 * mean(SwapGains)),
                formatString("%.2f%%", 100 * mean(DepthGains))});
  }
  std::printf("\nQlosure average improvement over baselines (%zu circuits)\n",
              Suite.size());
  std::fputs(Avg.render().c_str(), stdout);
  std::printf("\nPaper reference (41 circuits): Sherbrooke 7.4%%/3.96%% vs "
              "LightSABRE ... 14.28%%/10.25%% vs pytket;\nAnkaa-3 "
              "10.36%%/5.59%% vs LightSABRE ... 6.73%%/5.96%% vs pytket.\n");
  return 0;
}
