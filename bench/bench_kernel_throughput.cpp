//===- bench/bench_kernel_throughput.cpp - Scratch kernel vs reference ----------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-identity harness and speedup report for the allocation-free
/// routing kernel (RoutingScratch, PR 3): every QUEKO 54-qbt depth-500
/// instance is routed twice per mapper — once through the frozen
/// pre-scratch reference path (bench/ReferenceKernel) and once through the
/// live kernel with one reused RoutingScratch — and the two routed
/// circuits must match gate for gate (kinds, operands, params, swap flags,
/// final mapping). On top of the identity check the bench reports
/// swaps/sec and gates/sec of the kernel path and its speedup over the
/// reference; the PR 3 acceptance bar is >= 1.5x per mapper.
///
/// With --simd the bench additionally routes every instance twice more
/// per mapper — once with the vectorized swap-candidate scoring lanes
/// forced off (simd::setEnabled(false), the scalar fallback) and once
/// with them on — and appends a "simd" section to the JSON document.
/// The two paths must be gate-for-gate identical per mapper; the section
/// reports the per-mapper scalar/SIMD wall clocks and the active ISA
/// ("avx" / "sse2" / "scalar" for a -DQLOSURE_SIMD=OFF build, where both
/// passes run the same scalar loops and the speedup is ~1.0 by
/// construction).
///
/// With --affine the bench additionally routes a structured loop workload
/// (QFT-like kernel) twice through the qlosure mapper — scalar unweighted
/// profile vs. the affine replay fast path over a warmed plan cache — and
/// appends an "affine_replay" section (speedup ratio, identity flag,
/// replay coverage) to the JSON document. The default run is unchanged.
///
/// Results are also written to BENCH_kernel.json in the working directory.
/// JSON schema (one object):
///   {
///     "bench": "kernel_throughput",
///     "workload": "queko-54qbt-d500",   // generation set + pinned depth
///     "gen_device": "sycamore54",
///     "backend": "sherbrooke",
///     "instances": <int>,               // circuits routed per mapper
///     "all_identical": <bool>,          // AND over every mapper
///     "mappers": [
///       { "name": <string>,            // mapper display name
///         "identical": <bool>,          // kernel == reference, all runs
///         "swaps": <int>,               // total inserted swaps (kernel)
///         "routed_gates": <int>,        // total routed gates incl. swaps
///         "ref_seconds": <float>,       // reference path wall clock
///         "kernel_seconds": <float>,    // kernel path wall clock
///         "speedup": <float>,           // ref_seconds / kernel_seconds
///         "kernel_swaps_per_sec": <float>,
///         "kernel_gates_per_sec": <float> }, ... ],
///     "simd": {                           // only with --simd
///       "isa": <string>,                  // "avx" | "sse2" | "scalar"
///       "compiled": <bool>,               // QLOSURE_SIMD=ON at build
///       "all_identical": <bool>,          // SIMD == scalar, per mapper
///       "mappers": [
///         { "name": <string>, "identical": <bool>,
///           "scalar_seconds": <float>, "simd_seconds": <float>,
///           "speedup": <float> }, ... ] },
///     "affine_replay": {                  // only with --affine
///       "workload": <string>,
///       "backend": <string>,
///       "all_identical": <bool>,          // replay == scalar, gate for gate
///       "scalar_seconds": <float>,
///       "affine_seconds": <float>,        // warm plan cache
///       "speedup": <float>,               // scalar_seconds / affine_seconds
///       "replayed_periods": <int>,
///       "fallback_periods": <int> }
///   }
///
/// --threads is accepted for flag uniformity but ignored: the comparison
/// is inherently serial (one scratch, interleaved timing). Routing many
/// circuits in parallel is bench_batch_throughput's job; this bench
/// measures the single-thread kernel that each of those workers runs.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "bench/ReferenceKernel.h"
#include "baselines/CirqGreedy.h"
#include "baselines/QmapAstar.h"
#include "baselines/Sabre.h"
#include "baselines/TketBounded.h"
#include "core/Qlosure.h"
#include "core/SimdScore.h"
#include "route/Verify.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"
#include "workloads/Structured.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace qlosure;
using namespace qlosure::bench;

namespace {

/// Gate-for-gate equality of two routing results.
bool resultsIdentical(const RoutingResult &A, const RoutingResult &B,
                      std::string &Why) {
  if (A.NumSwaps != B.NumSwaps) {
    Why = formatString("swap counts differ (%zu vs %zu)", A.NumSwaps,
                       B.NumSwaps);
    return false;
  }
  if (A.Routed.size() != B.Routed.size()) {
    Why = formatString("routed sizes differ (%zu vs %zu)", A.Routed.size(),
                       B.Routed.size());
    return false;
  }
  for (size_t I = 0; I < A.Routed.size(); ++I) {
    const Gate &GA = A.Routed.gate(I);
    const Gate &GB = B.Routed.gate(I);
    if (GA.Kind != GB.Kind || GA.Qubits != GB.Qubits ||
        GA.Params != GB.Params) {
      Why = formatString("gate %zu differs (%s vs %s)", I,
                         GA.toString().c_str(), GB.toString().c_str());
      return false;
    }
  }
  if (A.InsertedSwapFlags != B.InsertedSwapFlags) {
    Why = "inserted-swap flags differ";
    return false;
  }
  if (!(A.FinalMapping == B.FinalMapping)) {
    Why = "final mappings differ";
    return false;
  }
  return true;
}

struct MapperRow {
  std::string Name;
  bool Identical = true;
  size_t Swaps = 0;
  size_t RoutedGates = 0;
  double RefSeconds = 0;
  double KernelSeconds = 0;
};

/// The five kernel mappers, configured exactly like their reference twins
/// (defaults everywhere; QMAP's wall-clock budget effectively unlimited so
/// both paths take identical decisions).
std::vector<std::pair<std::string, std::unique_ptr<Router>>>
makeKernelMappers() {
  std::vector<std::pair<std::string, std::unique_ptr<Router>>> Mappers;
  Mappers.emplace_back("qlosure", std::make_unique<QlosureRouter>());
  Mappers.emplace_back("sabre", std::make_unique<SabreRouter>());
  QmapOptions Qmap;
  Qmap.TimeBudgetSeconds = 1e9;
  Mappers.emplace_back("qmap", std::make_unique<QmapAstarRouter>(Qmap));
  Mappers.emplace_back("cirq", std::make_unique<CirqGreedyRouter>());
  Mappers.emplace_back("tket", std::make_unique<TketBoundedRouter>());
  return Mappers;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Kernel throughput (RoutingScratch vs frozen reference)",
              Config);

  const unsigned Depth = 500;
  const unsigned NumInstances = Config.Full ? 3 : 1;

  CouplingGraph Gen = makeSycamore54();
  CouplingGraph Backend = makeBackendByName("sherbrooke");

  std::vector<QuekoInstance> Instances;
  for (unsigned I = 0; I < NumInstances; ++I) {
    QuekoSpec Spec;
    Spec.Depth = Depth;
    Spec.Seed = Config.Seed + I;
    QuekoInstance Inst = generateQueko(Gen, Spec);
    Inst.Circ.setName(formatString("queko-54qbt-d%u-i%u", Depth, I));
    Instances.push_back(std::move(Inst));
  }

  std::vector<RoutingContext> Contexts;
  Contexts.reserve(Instances.size());
  for (const QuekoInstance &Inst : Instances)
    Contexts.push_back(RoutingContext::build(Inst.Circ, Backend));
  // Warm the lazily memoized omega weights so both timed paths measure
  // routing, not first-touch context effects.
  for (const RoutingContext &Ctx : Contexts)
    Ctx.dependenceWeights();

  auto Kernels = makeKernelMappers();
  std::vector<MapperRow> Rows;
  bool AllIdentical = true;

  // One scratch reused across every kernel run of every mapper — the
  // deployment shape (BatchRunner gives each worker thread exactly one).
  RoutingScratch Scratch;

  for (auto &[Key, Kernel] : Kernels) {
    std::unique_ptr<Router> Reference = makeReferenceRouter(Key);
    MapperRow Row;
    Row.Name = Kernel->name();
    for (size_t I = 0; I < Instances.size(); ++I) {
      const RoutingContext &Ctx = Contexts[I];

      Timer RefClock;
      RoutingResult RefResult = Reference->routeWithIdentity(Ctx);
      Row.RefSeconds += RefClock.elapsedSeconds();

      Timer KernelClock;
      RoutingResult KernelResult =
          Kernel->routeWithIdentity(Ctx, Scratch);
      Row.KernelSeconds += KernelClock.elapsedSeconds();

      std::string Why;
      if (!resultsIdentical(RefResult, KernelResult, Why)) {
        Row.Identical = false;
        AllIdentical = false;
        std::fprintf(stderr, "error: %s diverges on %s: %s\n",
                     Row.Name.c_str(), Instances[I].Circ.name().c_str(),
                     Why.c_str());
      }
      if (Config.Verify) {
        VerifyResult V =
            verifyRouting(Ctx.circuit(), Ctx.hardware(), KernelResult);
        if (!V.Ok) {
          Row.Identical = false;
          AllIdentical = false;
          std::fprintf(stderr, "error: %s kernel routing invalid: %s\n",
                       Row.Name.c_str(), V.Message.c_str());
        }
      }
      Row.Swaps += KernelResult.NumSwaps;
      Row.RoutedGates += KernelResult.Routed.size();
    }
    Rows.push_back(std::move(Row));
  }

  Table T({"Mapper", "Identical", "Swaps", "Ref s", "Kernel s", "Speedup",
           "Swaps/s", "Gates/s"});
  for (const MapperRow &Row : Rows) {
    double Speedup =
        Row.KernelSeconds > 0 ? Row.RefSeconds / Row.KernelSeconds : 0;
    T.addRow({Row.Name, Row.Identical ? "yes" : "NO (BUG)",
              formatString("%zu", Row.Swaps),
              formatString("%.3f", Row.RefSeconds),
              formatString("%.3f", Row.KernelSeconds),
              formatString("%.2fx", Speedup),
              formatString("%.0f",
                           static_cast<double>(Row.Swaps) /
                               Row.KernelSeconds),
              formatString("%.0f",
                           static_cast<double>(Row.RoutedGates) /
                               Row.KernelSeconds)});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nShape check: every row must say 'yes' and speedups "
              "should be >= 1.5x (PR 3 acceptance bar).\n");

  // --simd: scalar fallback vs. vectorized scoring lanes, same kernel,
  // same scratch, interleaved timing. Byte-identity is the bar — the
  // lanes must mirror the scalar formulas' exact operation order.
  struct SimdRow {
    std::string Name;
    bool Identical = true;
    double ScalarSeconds = 0;
    double SimdSeconds = 0;
  };
  std::vector<SimdRow> SimdRows;
  bool SimdIdentical = true;
  if (Config.Simd) {
    auto SimdMappers = makeKernelMappers();
    for (auto &[Key, Mapper] : SimdMappers) {
      (void)Key;
      SimdRow Row;
      Row.Name = Mapper->name();
      for (size_t I = 0; I < Instances.size(); ++I) {
        const RoutingContext &Ctx = Contexts[I];

        simd::setEnabled(false);
        Timer ScalarClock;
        RoutingResult ScalarResult = Mapper->routeWithIdentity(Ctx, Scratch);
        Row.ScalarSeconds += ScalarClock.elapsedSeconds();

        simd::setEnabled(true);
        Timer SimdClock;
        RoutingResult SimdResult = Mapper->routeWithIdentity(Ctx, Scratch);
        Row.SimdSeconds += SimdClock.elapsedSeconds();

        std::string Why;
        if (!resultsIdentical(ScalarResult, SimdResult, Why)) {
          Row.Identical = false;
          SimdIdentical = false;
          AllIdentical = false;
          std::fprintf(stderr, "error: %s SIMD diverges from scalar on %s: %s\n",
                       Row.Name.c_str(), Instances[I].Circ.name().c_str(),
                       Why.c_str());
        }
      }
      SimdRows.push_back(std::move(Row));
    }
    simd::setEnabled(true);

    Table S({"Mapper", "Identical", "Scalar s", "SIMD s", "Speedup"});
    for (const SimdRow &Row : SimdRows)
      S.addRow({Row.Name, Row.Identical ? "yes" : "NO (BUG)",
                formatString("%.3f", Row.ScalarSeconds),
                formatString("%.3f", Row.SimdSeconds),
                formatString("%.2fx", Row.SimdSeconds > 0
                                          ? Row.ScalarSeconds / Row.SimdSeconds
                                          : 0)});
    std::printf("\nSIMD scoring lanes (isa=%s, compiled=%s):\n",
                simd::isa(), simd::compiled() ? "yes" : "no");
    std::fputs(S.render().c_str(), stdout);
  }

  // --affine: scalar vs. replay on a structured loop workload, same
  // context, same scratch, warm plan cache. Byte-identity is the bar.
  bool AffineIdentical = true;
  double AffineScalarSeconds = 0;
  double AffineFastSeconds = 0;
  size_t AffineReplayed = 0;
  size_t AffineFallbacks = 0;
  Circuit AffineLoop = qftLikeKernel(16, Config.Full ? 200 : 60);
  CouplingGraph AffineBackend = makeBackendByName("aspen16");
  if (Config.Affine) {
    RoutingContext Ctx = RoutingContext::build(AffineLoop, AffineBackend);
    QlosureOptions ScalarOpts;
    ScalarOpts.UseDependencyWeights = false;
    ScalarOpts.Seed = Config.Seed;
    QlosureOptions FastOpts = ScalarOpts;
    FastOpts.AffineReplay = true;
    QlosureRouter ScalarRouter(ScalarOpts);
    QlosureRouter FastRouter(FastOpts);

    // Warm-up pass records the period's swap schedule into the context's
    // plan cache; the timed pass below replays it.
    FastRouter.routeWithIdentity(Ctx, Scratch);

    const unsigned Reps = 3;
    RoutingResult ScalarResult, FastResult;
    for (unsigned R = 0; R < Reps; ++R) {
      Timer ScalarClock;
      ScalarResult = ScalarRouter.routeWithIdentity(Ctx, Scratch);
      AffineScalarSeconds += ScalarClock.elapsedSeconds();
      Timer FastClock;
      FastResult = FastRouter.routeWithIdentity(Ctx, Scratch);
      AffineFastSeconds += FastClock.elapsedSeconds();
      AffineReplayed += FastResult.AffineReplayedPeriods;
      AffineFallbacks += FastResult.AffineFallbackPeriods;
      std::string Why;
      if (!resultsIdentical(ScalarResult, FastResult, Why)) {
        AffineIdentical = false;
        AllIdentical = false;
        std::fprintf(stderr, "error: affine replay diverges on %s: %s\n",
                     AffineLoop.name().c_str(), Why.c_str());
      }
    }
    double AffineSpeedup = AffineFastSeconds > 0
                               ? AffineScalarSeconds / AffineFastSeconds
                               : 0;
    std::printf("\nAffine replay (%s on aspen16): identical=%s "
                "scalar=%.3fs affine=%.3fs speedup=%.2fx "
                "replayed=%zu fallbacks=%zu\n",
                AffineLoop.name().c_str(), AffineIdentical ? "yes" : "NO",
                AffineScalarSeconds, AffineFastSeconds, AffineSpeedup,
                AffineReplayed, AffineFallbacks);
  }

  // See the file header for the JSON schema.
  {
    FILE *F = std::fopen("BENCH_kernel.json", "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write BENCH_kernel.json\n");
      return 1;
    }
    std::fprintf(F,
                 "{\n"
                 "  \"bench\": \"kernel_throughput\",\n"
                 "  \"workload\": \"queko-54qbt-d%u\",\n"
                 "  \"gen_device\": \"sycamore54\",\n"
                 "  \"backend\": \"sherbrooke\",\n"
                 "  \"instances\": %u,\n"
                 "  \"all_identical\": %s,\n"
                 "  \"mappers\": [\n",
                 Depth, NumInstances, AllIdentical ? "true" : "false");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const MapperRow &Row = Rows[I];
      double Speedup =
          Row.KernelSeconds > 0 ? Row.RefSeconds / Row.KernelSeconds : 0;
      std::fprintf(
          F,
          "    { \"name\": \"%s\", \"identical\": %s, \"swaps\": %zu,\n"
          "      \"routed_gates\": %zu, \"ref_seconds\": %.6f,\n"
          "      \"kernel_seconds\": %.6f, \"speedup\": %.3f,\n"
          "      \"kernel_swaps_per_sec\": %.1f,\n"
          "      \"kernel_gates_per_sec\": %.1f }%s\n",
          Row.Name.c_str(), Row.Identical ? "true" : "false", Row.Swaps,
          Row.RoutedGates, Row.RefSeconds, Row.KernelSeconds, Speedup,
          static_cast<double>(Row.Swaps) / Row.KernelSeconds,
          static_cast<double>(Row.RoutedGates) / Row.KernelSeconds,
          I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ]%s\n", Config.Simd || Config.Affine ? "," : "");
    if (Config.Simd) {
      std::fprintf(F,
                   "  \"simd\": {\n"
                   "    \"isa\": \"%s\",\n"
                   "    \"compiled\": %s,\n"
                   "    \"all_identical\": %s,\n"
                   "    \"mappers\": [\n",
                   simd::isa(), simd::compiled() ? "true" : "false",
                   SimdIdentical ? "true" : "false");
      for (size_t I = 0; I < SimdRows.size(); ++I) {
        const SimdRow &Row = SimdRows[I];
        std::fprintf(
            F,
            "      { \"name\": \"%s\", \"identical\": %s,\n"
            "        \"scalar_seconds\": %.6f, \"simd_seconds\": %.6f,\n"
            "        \"speedup\": %.3f }%s\n",
            Row.Name.c_str(), Row.Identical ? "true" : "false",
            Row.ScalarSeconds, Row.SimdSeconds,
            Row.SimdSeconds > 0 ? Row.ScalarSeconds / Row.SimdSeconds : 0,
            I + 1 < SimdRows.size() ? "," : "");
      }
      std::fprintf(F, "    ] }%s\n", Config.Affine ? "," : "");
    }
    if (Config.Affine) {
      std::fprintf(
          F,
          "  \"affine_replay\": {\n"
          "    \"workload\": \"%s\",\n"
          "    \"backend\": \"aspen16\",\n"
          "    \"all_identical\": %s,\n"
          "    \"scalar_seconds\": %.6f,\n"
          "    \"affine_seconds\": %.6f,\n"
          "    \"speedup\": %.3f,\n"
          "    \"replayed_periods\": %zu,\n"
          "    \"fallback_periods\": %zu }\n"
          "}\n",
          AffineLoop.name().c_str(), AffineIdentical ? "true" : "false",
          AffineScalarSeconds, AffineFastSeconds,
          AffineFastSeconds > 0 ? AffineScalarSeconds / AffineFastSeconds
                                : 0,
          AffineReplayed, AffineFallbacks);
    } else {
      std::fprintf(F, "}\n");
    }
    std::fclose(F);
    std::printf("wrote BENCH_kernel.json\n");
  }

  return AllIdentical ? 0 : 1;
}
