//===- bench/ReferenceKernel.cpp - Frozen pre-scratch routing paths --------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Verbatim copies (modulo renames) of FrontLayer.cpp, GreedyRouterBase.cpp,
// the Sabre/Cirq/Tket cost functions, Qlosure.cpp's RoutingLoop and
// QmapAstar.cpp as of the commit preceding the RoutingScratch refactor.
// See ReferenceKernel.h for why these must stay frozen.
//
//===----------------------------------------------------------------------===//

#include "bench/ReferenceKernel.h"

#include "circuit/Dag.h"
#include "support/Error.h"
#include "support/Random.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <unordered_set>

using namespace qlosure;
using namespace qlosure::bench;

namespace {

//===----------------------------------------------------------------------===//
// Frozen FrontLayerTracker (allocates Needed/Touched/deque per window call)
//===----------------------------------------------------------------------===//

class RefFrontTracker {
public:
  explicit RefFrontTracker(const CircuitDag &DagIn) : Dag(DagIn) {
    size_t N = Dag.numGates();
    PendingPreds.resize(N);
    Executed.assign(N, 0);
    InFront.assign(N, 0);
    for (size_t G = 0; G < N; ++G)
      PendingPreds[G] = Dag.inDegree(G);
    for (uint32_t Root : Dag.roots()) {
      Front.push_back(Root);
      InFront[Root] = 1;
    }
  }

  const std::vector<uint32_t> &front() const { return Front; }
  bool allExecuted() const { return NumExecuted == Dag.numGates(); }
  bool isInFront(uint32_t GateId) const { return InFront[GateId]; }

  void execute(uint32_t GateId) {
    assert(InFront[GateId] && "executing a gate that is not ready");
    assert(!Executed[GateId] && "double execution");
    Executed[GateId] = 1;
    InFront[GateId] = 0;
    ++NumExecuted;
    auto It = std::find(Front.begin(), Front.end(), GateId);
    assert(It != Front.end() && "front bookkeeping out of sync");
    *It = Front.back();
    Front.pop_back();
    for (uint32_t Succ : Dag.successors(GateId)) {
      assert(PendingPreds[Succ] > 0 && "predecessor count underflow");
      if (--PendingPreds[Succ] == 0) {
        Front.push_back(Succ);
        InFront[Succ] = 1;
      }
    }
  }

  std::vector<uint32_t> topologicalWindow(size_t MaxGates,
                                          bool CountTwoQubitOnly = false)
      const {
    std::vector<uint32_t> Window;
    if (MaxGates == 0)
      return Window;
    size_t TotalCap = CountTwoQubitOnly ? 8 * MaxGates : MaxGates;
    size_t Counted = 0;
    std::vector<uint32_t> Needed(Dag.numGates(), 0);
    std::vector<uint8_t> Touched(Dag.numGates(), 0);
    std::deque<uint32_t> Queue(Front.begin(), Front.end());
    std::sort(Queue.begin(), Queue.end());
    while (!Queue.empty() && Counted < MaxGates &&
           Window.size() < TotalCap) {
      uint32_t G = Queue.front();
      Queue.pop_front();
      Window.push_back(G);
      if (!CountTwoQubitOnly || Dag.isTwoQubitGate(G))
        ++Counted;
      for (uint32_t Succ : Dag.successors(G)) {
        if (!Touched[Succ]) {
          Touched[Succ] = 1;
          uint32_t Pending = 0;
          for (uint32_t Pred : Dag.predecessors(Succ))
            if (!Executed[Pred])
              ++Pending;
          Needed[Succ] = Pending;
        }
        assert(Needed[Succ] > 0 && "successor released twice");
        if (--Needed[Succ] == 0)
          Queue.push_back(Succ);
      }
    }
    return Window;
  }

private:
  const CircuitDag &Dag;
  std::vector<uint32_t> PendingPreds;
  std::vector<uint8_t> Executed;
  std::vector<uint8_t> InFront;
  std::vector<uint32_t> Front;
  size_t NumExecuted = 0;
};

//===----------------------------------------------------------------------===//
// Frozen GreedyRouterBase (fresh Ready/Candidates/dists vectors per step)
//===----------------------------------------------------------------------===//

class RefGreedyRouterBase : public Router {
public:
  using Router::route;
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &, const CancellationToken *) final {
    checkPreconditions(Ctx, Initial);
    const Circuit &Logical = Ctx.circuit();
    const CouplingGraph &Hw = Ctx.hardware();
    Timer Clock;

    const CircuitDag &Dag = Ctx.dag();
    RefFrontTracker Tracker(Dag);
    QubitMapping Phi = Initial;
    Rng TieBreaker(seed());
    std::vector<double> Decay(Logical.numQubits(), 1.0);

    RoutingResult Result;
    Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
    Result.InitialMapping = Initial;
    Result.RouterName = name();

    unsigned SwapsSinceProgress = 0;

    auto physOf = [&Phi](int32_t L) { return Phi.physOf(L); };

    auto isExecutable = [&](uint32_t GI) {
      const Gate &G = Logical.gate(GI);
      if (!G.isTwoQubit())
        return true;
      return Hw.areAdjacent(static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
                            static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
    };

    auto emitSwap = [&](unsigned P1, unsigned P2) {
      Result.Routed.addSwap(static_cast<int32_t>(P1),
                            static_cast<int32_t>(P2));
      Result.InsertedSwapFlags.push_back(1);
      ++Result.NumSwaps;
      int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
      int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
      Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
      if (usesDecay()) {
        if (L1 >= 0)
          Decay[static_cast<size_t>(L1)] += decayIncrement();
        if (L2 >= 0)
          Decay[static_cast<size_t>(L2)] += decayIncrement();
      }
    };

    while (!Tracker.allExecuted()) {
      bool Progress = false;
      bool Changed = true;
      while (Changed) {
        Changed = false;
        std::vector<uint32_t> Ready;
        for (uint32_t G : Tracker.front())
          if (isExecutable(G))
            Ready.push_back(G);
        std::sort(Ready.begin(), Ready.end());
        for (uint32_t G : Ready) {
          Result.Routed.addGate(Logical.gate(G).withMappedQubits(physOf));
          Result.InsertedSwapFlags.push_back(0);
          Tracker.execute(G);
          Progress = true;
          Changed = true;
        }
      }
      if (Progress) {
        if (usesDecay())
          std::fill(Decay.begin(), Decay.end(), 1.0);
        SwapsSinceProgress = 0;
        continue;
      }
      if (Tracker.allExecuted())
        break;

      if (SwapsSinceProgress >= maxSwapsWithoutProgress()) {
        uint32_t Oldest = UINT32_MAX;
        for (uint32_t G : Tracker.front())
          if (Logical.gate(G).isTwoQubit())
            Oldest = std::min(Oldest, G);
        assert(Oldest != UINT32_MAX && "stuck without a blocked 2Q gate");
        const Gate &G = Logical.gate(Oldest);
        std::vector<unsigned> Path = Hw.shortestPath(
            static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
            static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
        for (size_t I = 0; I + 2 < Path.size(); ++I)
          emitSwap(Path[I], Path[I + 1]);
        SwapsSinceProgress = 0;
        continue;
      }

      std::vector<uint32_t> FrontTwoQ;
      for (uint32_t G : Tracker.front())
        if (Logical.gate(G).isTwoQubit())
          FrontTwoQ.push_back(G);
      std::sort(FrontTwoQ.begin(), FrontTwoQ.end());

      size_t WantExtended = extendedWindowSize(FrontTwoQ.size());
      std::vector<uint32_t> Extended;
      if (WantExtended) {
        std::vector<uint32_t> Window =
            Tracker.topologicalWindow(FrontTwoQ.size() + 4 * WantExtended);
        for (uint32_t G : Window) {
          if (Tracker.isInFront(G) || !Logical.gate(G).isTwoQubit())
            continue;
          Extended.push_back(G);
          if (Extended.size() >= WantExtended)
            break;
        }
      }

      std::vector<std::pair<unsigned, unsigned>> Candidates;
      {
        std::vector<unsigned> PFront;
        std::vector<uint8_t> InFront(Hw.numQubits(), 0);
        for (uint32_t GI : FrontTwoQ)
          for (unsigned Q = 0; Q < 2; ++Q) {
            unsigned P = static_cast<unsigned>(
                Phi.physOf(Logical.gate(GI).Qubits[Q]));
            if (!InFront[P]) {
              InFront[P] = 1;
              PFront.push_back(P);
            }
          }
        std::sort(PFront.begin(), PFront.end());
        for (unsigned P1 : PFront)
          for (unsigned P2 : Hw.neighbors(P1)) {
            unsigned Lo = std::min(P1, P2), Hi = std::max(P1, P2);
            bool Dup = false;
            for (const auto &C : Candidates)
              if (C.first == Lo && C.second == Hi) {
                Dup = true;
                break;
              }
            if (!Dup)
              Candidates.push_back({Lo, Hi});
          }
      }
      assert(!Candidates.empty() && "no candidates on a connected graph");

      double BestScore = std::numeric_limits<double>::infinity();
      std::vector<size_t> BestIdx;
      std::vector<unsigned> FrontDists(FrontTwoQ.size());
      std::vector<unsigned> ExtDists(Extended.size());
      for (size_t CI = 0; CI < Candidates.size(); ++CI) {
        auto [P1, P2] = Candidates[CI];
        auto mapThroughSwap = [&](int32_t L) -> unsigned {
          unsigned P = static_cast<unsigned>(Phi.physOf(L));
          if (P == P1)
            return P2;
          if (P == P2)
            return P1;
          return P;
        };
        for (size_t I = 0; I < FrontTwoQ.size(); ++I) {
          const Gate &G = Logical.gate(FrontTwoQ[I]);
          FrontDists[I] = Hw.distance(mapThroughSwap(G.Qubits[0]),
                                      mapThroughSwap(G.Qubits[1]));
        }
        for (size_t I = 0; I < Extended.size(); ++I) {
          const Gate &G = Logical.gate(Extended[I]);
          ExtDists[I] = Hw.distance(mapThroughSwap(G.Qubits[0]),
                                    mapThroughSwap(G.Qubits[1]));
        }
        double MaxDecay = 1.0;
        if (usesDecay()) {
          int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
          int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
          double D1 = L1 >= 0 ? Decay[static_cast<size_t>(L1)] : 1.0;
          double D2 = L2 >= 0 ? Decay[static_cast<size_t>(L2)] : 1.0;
          MaxDecay = std::max(D1, D2);
        }
        double Score = scoreSwap(FrontDists, ExtDists, MaxDecay);
        if (Score < BestScore - 1e-12) {
          BestScore = Score;
          BestIdx.clear();
          BestIdx.push_back(CI);
        } else if (Score <= BestScore + 1e-12) {
          BestIdx.push_back(CI);
        }
      }
      size_t Pick = randomTieBreak()
                        ? BestIdx[static_cast<size_t>(
                              TieBreaker.nextBounded(BestIdx.size()))]
                        : BestIdx.front();
      emitSwap(Candidates[Pick].first, Candidates[Pick].second);
      ++SwapsSinceProgress;
    }

    Result.FinalMapping = Phi;
    Result.MappingSeconds = Clock.elapsedSeconds();
    return Result;
  }

protected:
  virtual size_t extendedWindowSize(size_t NumFrontGates) const = 0;
  virtual double scoreSwap(const std::vector<unsigned> &FrontDists,
                           const std::vector<unsigned> &ExtendedDists,
                           double MaxDecay) const = 0;
  virtual bool usesDecay() const { return false; }
  virtual double decayIncrement() const { return 0.001; }
  virtual bool randomTieBreak() const { return false; }
  virtual uint64_t seed() const { return 0xBA5EBA11ULL; }
  virtual unsigned maxSwapsWithoutProgress() const { return 64; }
};

class RefSabreRouter : public RefGreedyRouterBase {
public:
  explicit RefSabreRouter(SabreOptions OptionsIn = {}) : Options(OptionsIn) {}
  std::string name() const override { return "SABRE"; }

protected:
  size_t extendedWindowSize(size_t) const override {
    return Options.ExtendedSetSize;
  }
  double scoreSwap(const std::vector<unsigned> &FrontDists,
                   const std::vector<unsigned> &ExtendedDists,
                   double MaxDecay) const override {
    double FrontSum = 0;
    for (unsigned D : FrontDists)
      FrontSum += D;
    double Score = FrontDists.empty()
                       ? 0.0
                       : FrontSum / static_cast<double>(FrontDists.size());
    if (!ExtendedDists.empty()) {
      double ExtSum = 0;
      for (unsigned D : ExtendedDists)
        ExtSum += D;
      Score += Options.ExtendedWeight * ExtSum /
               static_cast<double>(ExtendedDists.size());
    }
    return MaxDecay * Score;
  }
  bool usesDecay() const override { return true; }
  double decayIncrement() const override { return Options.DecayIncrement; }
  bool randomTieBreak() const override { return true; }
  uint64_t seed() const override { return Options.Seed; }

private:
  SabreOptions Options;
};

class RefCirqRouter : public RefGreedyRouterBase {
public:
  explicit RefCirqRouter(CirqOptions OptionsIn = {}) : Options(OptionsIn) {}
  std::string name() const override { return "Cirq"; }

protected:
  size_t extendedWindowSize(size_t NumFrontGates) const override {
    return static_cast<size_t>(Options.SliceWindowFactor *
                               static_cast<double>(NumFrontGates)) +
           1;
  }
  double scoreSwap(const std::vector<unsigned> &FrontDists,
                   const std::vector<unsigned> &ExtendedDists,
                   double) const override {
    double Score = 0;
    for (unsigned D : FrontDists)
      Score += D;
    double Ext = 0;
    for (unsigned D : ExtendedDists)
      Ext += D;
    return Score + Options.NextSliceWeight * Ext;
  }

private:
  CirqOptions Options;
};

class RefTketRouter : public RefGreedyRouterBase {
public:
  explicit RefTketRouter(TketOptions OptionsIn = {}) : Options(OptionsIn) {}
  std::string name() const override { return "Pytket"; }

protected:
  size_t extendedWindowSize(size_t) const override {
    return Options.LookaheadGates;
  }
  double scoreSwap(const std::vector<unsigned> &FrontDists,
                   const std::vector<unsigned> &ExtendedDists,
                   double) const override {
    unsigned MaxDist = 0;
    double Sum = 0;
    for (unsigned D : FrontDists) {
      MaxDist = std::max(MaxDist, D);
      Sum += D;
    }
    double Ext = 0;
    for (unsigned D : ExtendedDists)
      Ext += D;
    return static_cast<double>(MaxDist) * 1e6 + Sum +
           Options.LookaheadWeight * Ext;
  }

private:
  TketOptions Options;
};

//===----------------------------------------------------------------------===//
// Frozen Qlosure RoutingLoop (GateLevel.assign + window refill per step)
//===----------------------------------------------------------------------===//

class RefQlosureLoop {
public:
  RefQlosureLoop(const QlosureOptions &OptionsIn, const RoutingContext &Ctx,
                 const QubitMapping &Initial)
      : Options(OptionsIn), Logical(Ctx.circuit()), Hw(Ctx.hardware()),
        Dag(Ctx.dag()), Tracker(Dag), Phi(Initial),
        TieBreaker(OptionsIn.Seed), Decay(Logical.numQubits(), 1.0) {
    LookaheadC = Options.LookaheadConstant ? Options.LookaheadConstant
                                           : Ctx.defaultLookahead();
    UseWeightedDistance = Options.ErrorAware && Hw.hasErrorModel();
    if (Options.UseDependencyWeights)
      Weights = &Ctx.dependenceWeights();
    Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
    Result.InitialMapping = Initial;
    Result.RouterName = "Qlosure";
  }

  RoutingResult run() {
    Timer Clock;
    while (!Tracker.allExecuted()) {
      if (executeReadyGates())
        continue;
      routeOneSwap();
    }
    Result.FinalMapping = Phi;
    Result.MappingSeconds = Clock.elapsedSeconds();
    return std::move(Result);
  }

private:
  bool executeReadyGates() {
    bool Progress = false;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      std::vector<uint32_t> Ready;
      for (uint32_t G : Tracker.front())
        if (isExecutable(G))
          Ready.push_back(G);
      std::sort(Ready.begin(), Ready.end());
      for (uint32_t G : Ready) {
        emitProgramGate(G);
        Tracker.execute(G);
        Changed = true;
        Progress = true;
      }
    }
    if (Progress) {
      std::fill(Decay.begin(), Decay.end(), 1.0);
      SwapsSinceProgress = 0;
    }
    return Progress;
  }

  bool isExecutable(uint32_t GateId) const {
    const Gate &G = Logical.gate(GateId);
    if (!G.isTwoQubit())
      return true;
    return Hw.areAdjacent(static_cast<unsigned>(Phi.physOf(G.Qubits[0])),
                          static_cast<unsigned>(Phi.physOf(G.Qubits[1])));
  }

  void emitProgramGate(uint32_t GateId) {
    const Gate &G = Logical.gate(GateId);
    Result.Routed.addGate(
        G.withMappedQubits([this](int32_t Q) { return Phi.physOf(Q); }));
    Result.InsertedSwapFlags.push_back(0);
  }

  void emitSwap(unsigned P1, unsigned P2) {
    Result.Routed.addSwap(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    Result.InsertedSwapFlags.push_back(1);
    ++Result.NumSwaps;
    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    if (L1 >= 0)
      Decay[static_cast<size_t>(L1)] += Options.DecayIncrement;
    if (L2 >= 0)
      Decay[static_cast<size_t>(L2)] += Options.DecayIncrement;
  }

  void routeOneSwap() {
    if (SwapsSinceProgress >= Options.MaxSwapsWithoutProgress) {
      forceResolveOldestGate();
      return;
    }

    buildWindowLayers();
    std::vector<std::pair<unsigned, unsigned>> Candidates =
        generateCandidates();
    assert(!Candidates.empty() && "no candidate SWAPs on a connected graph");

    std::vector<double> Scores(Candidates.size());
    double BestScore = std::numeric_limits<double>::infinity();
    for (size_t CI = 0; CI < Candidates.size(); ++CI) {
      Scores[CI] = scoreSwap(Candidates[CI].first, Candidates[CI].second);
      BestScore = std::min(BestScore, Scores[CI]);
    }

    double TieMargin = 0.0;
    std::vector<size_t> BestIndices;
    for (size_t CI = 0; CI < Candidates.size(); ++CI)
      if (Scores[CI] <= BestScore + TieMargin + 1e-12)
        BestIndices.push_back(CI);
    if (UseWeightedDistance && BestIndices.size() > 1) {
      double MinError = std::numeric_limits<double>::infinity();
      for (size_t CI : BestIndices)
        MinError = std::min(MinError, Hw.edgeError(Candidates[CI].first,
                                                   Candidates[CI].second));
      std::vector<size_t> Cleanest;
      for (size_t CI : BestIndices)
        if (Hw.edgeError(Candidates[CI].first, Candidates[CI].second) <=
            MinError + 1e-12)
          Cleanest.push_back(CI);
      BestIndices = std::move(Cleanest);
    }
    size_t Pick = BestIndices[static_cast<size_t>(
        TieBreaker.nextBounded(BestIndices.size()))];
    emitSwap(Candidates[Pick].first, Candidates[Pick].second);
    ++SwapsSinceProgress;
  }

  void forceResolveOldestGate() {
    uint32_t Oldest = UINT32_MAX;
    for (uint32_t G : Tracker.front())
      if (Logical.gate(G).isTwoQubit())
        Oldest = std::min(Oldest, G);
    assert(Oldest != UINT32_MAX && "stuck without a blocked 2Q gate");
    const Gate &G = Logical.gate(Oldest);
    unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
    unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
    std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
    for (size_t I = 0; I + 2 < Path.size(); ++I)
      emitSwap(Path[I], Path[I + 1]);
    SwapsSinceProgress = 0;
  }

  void buildWindowLayers() {
    std::vector<uint8_t> SeenPhys(Hw.numQubits(), 0);
    unsigned NumFrontQubits = 0;
    for (uint32_t GI : Tracker.front()) {
      const Gate &G = Logical.gate(GI);
      unsigned N = G.numQubits();
      for (unsigned Q = 0; Q < N; ++Q) {
        unsigned P = static_cast<unsigned>(Phi.physOf(G.Qubits[Q]));
        if (!SeenPhys[P]) {
          SeenPhys[P] = 1;
          ++NumFrontQubits;
        }
      }
    }
    size_t WindowSize = static_cast<size_t>(LookaheadC) * NumFrontQubits;
    WindowGates = Tracker.topologicalWindow(std::max<size_t>(WindowSize, 1),
                                            /*CountTwoQubitOnly=*/true);

    GateLevel.assign(Logical.size(), 0);
    unsigned MaxLevel = 0;
    if (!Options.UseLayerStructure) {
      WindowGates.clear();
      for (uint32_t G : Tracker.front())
        WindowGates.push_back(G);
      std::sort(WindowGates.begin(), WindowGates.end());
      for (uint32_t G : WindowGates)
        GateLevel[G] = 1;
      MaxLevel = 1;
    } else {
      for (uint32_t G : WindowGates) {
        unsigned Level = 0;
        for (uint32_t Pred : Dag.predecessors(G))
          Level = std::max(Level, GateLevel[Pred]);
        bool IsTwoQubit = Logical.gate(G).isTwoQubit();
        GateLevel[G] = Level + (IsTwoQubit ? 1 : 0);
        if (!IsTwoQubit && GateLevel[G] == 0)
          GateLevel[G] = 1;
        MaxLevel = std::max(MaxLevel, GateLevel[G]);
      }
    }

    LayerGateCount.assign(MaxLevel + 1, 0);
    LayerBaseSum.assign(MaxLevel + 1, 0.0);
    TouchingGates.clear();
    TouchingGates.resize(Hw.numQubits());
    for (uint32_t G : WindowGates) {
      const Gate &Gate2 = Logical.gate(G);
      if (!Gate2.isTwoQubit())
        continue;
      unsigned L = GateLevel[G];
      ++LayerGateCount[L];
      unsigned PA = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[0]));
      unsigned PB = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[1]));
      LayerBaseSum[L] += gateTerm(G, PA, PB);
      TouchingGates[PA].push_back(G);
      TouchingGates[PB].push_back(G);
    }
  }

  double gateTerm(uint32_t G, unsigned PA, unsigned PB) const {
    double Omega = Options.UseDependencyWeights
                       ? static_cast<double>((*Weights)[G]) + 1.0
                       : 1.0;
    return Omega * static_cast<double>(Hw.distance(PA, PB));
  }

  std::vector<std::pair<unsigned, unsigned>> generateCandidates() const {
    std::vector<uint8_t> InPFront(Hw.numQubits(), 0);
    std::vector<unsigned> PFront;
    for (uint32_t GI : Tracker.front()) {
      const Gate &G = Logical.gate(GI);
      if (!G.isTwoQubit())
        continue;
      for (unsigned Q = 0; Q < 2; ++Q) {
        unsigned P = static_cast<unsigned>(Phi.physOf(G.Qubits[Q]));
        if (!InPFront[P]) {
          InPFront[P] = 1;
          PFront.push_back(P);
        }
      }
    }
    std::sort(PFront.begin(), PFront.end());
    std::vector<std::pair<unsigned, unsigned>> Candidates;
    for (unsigned P1 : PFront) {
      for (unsigned P2 : Hw.neighbors(P1)) {
        unsigned Lo = std::min(P1, P2), Hi = std::max(P1, P2);
        bool Duplicate = false;
        for (const auto &C : Candidates)
          if (C.first == Lo && C.second == Hi) {
            Duplicate = true;
            break;
          }
        if (!Duplicate)
          Candidates.push_back({Lo, Hi});
      }
    }
    return Candidates;
  }

  double scoreSwap(unsigned P1, unsigned P2) {
    LayerAdjust.assign(LayerBaseSum.size(), 0.0);
    ++VisitEpoch;
    if (VisitStamp.size() < Logical.size())
      VisitStamp.assign(Logical.size(), 0);
    auto adjustGatesOn = [&](unsigned P) {
      for (uint32_t G : TouchingGates[P]) {
        if (VisitStamp[G] == VisitEpoch)
          continue;
        VisitStamp[G] = VisitEpoch;
        const Gate &Gate2 = Logical.gate(G);
        unsigned PA = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[0]));
        unsigned PB = static_cast<unsigned>(Phi.physOf(Gate2.Qubits[1]));
        unsigned NewPA = PA == P1 ? P2 : (PA == P2 ? P1 : PA);
        unsigned NewPB = PB == P1 ? P2 : (PB == P2 ? P1 : PB);
        unsigned L = GateLevel[G];
        LayerAdjust[L] += gateTerm(G, NewPA, NewPB) - gateTerm(G, PA, PB);
      }
    };
    adjustGatesOn(P1);
    adjustGatesOn(P2);

    double Sum = 0;
    for (size_t L = 1; L < LayerBaseSum.size(); ++L) {
      if (LayerGateCount[L] == 0)
        continue;
      double Gamma =
          (LayerBaseSum[L] + LayerAdjust[L]) / static_cast<double>(L);
      Sum += Gamma / static_cast<double>(LayerGateCount[L]);
    }

    int32_t L1 = Phi.logOf(static_cast<int32_t>(P1));
    int32_t L2 = Phi.logOf(static_cast<int32_t>(P2));
    double D1 = L1 >= 0 ? Decay[static_cast<size_t>(L1)] : 1.0;
    double D2 = L2 >= 0 ? Decay[static_cast<size_t>(L2)] : 1.0;
    return std::max(D1, D2) * Sum;
  }

  const QlosureOptions &Options;
  const Circuit &Logical;
  const CouplingGraph &Hw;
  const CircuitDag &Dag;
  RefFrontTracker Tracker;
  QubitMapping Phi;
  Rng TieBreaker;
  std::vector<double> Decay;
  const std::vector<uint64_t> *Weights = nullptr;
  unsigned LookaheadC = 0;
  unsigned SwapsSinceProgress = 0;
  bool UseWeightedDistance = false;

  std::vector<uint32_t> WindowGates;
  std::vector<unsigned> GateLevel;
  std::vector<uint32_t> LayerGateCount;
  std::vector<double> LayerBaseSum;
  std::vector<double> LayerAdjust;
  std::vector<std::vector<uint32_t>> TouchingGates;
  std::vector<uint64_t> VisitStamp;
  uint64_t VisitEpoch = 0;

  RoutingResult Result;
};

class RefQlosureRouter : public Router {
public:
  explicit RefQlosureRouter(QlosureOptions OptionsIn = {})
      : Options(OptionsIn) {}

  std::string name() const override { return "Qlosure"; }

  RoutingContextOptions contextOptions() const override {
    RoutingContextOptions CtxOptions;
    CtxOptions.Weights = Options.Weights;
    return CtxOptions;
  }

  using Router::route;
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &, const CancellationToken *) override {
    checkPreconditions(Ctx, Initial);
    RefQlosureLoop Loop(Options, Ctx, Initial);
    return Loop.run();
  }

private:
  QlosureOptions Options;
};

//===----------------------------------------------------------------------===//
// Frozen QMAP A* (SearchNode copies with per-node Positions/Swaps vectors)
//===----------------------------------------------------------------------===//

struct RefSearchNode {
  std::vector<unsigned> Positions;
  std::vector<std::pair<unsigned, unsigned>> Swaps;
  unsigned CostG = 0;
  unsigned CostH = 0;

  unsigned costF() const { return CostG + CostH; }
};

struct RefNodeCompare {
  bool operator()(const RefSearchNode &A, const RefSearchNode &B) const {
    if (A.costF() != B.costF())
      return A.costF() > B.costF();
    return A.CostG < B.CostG;
  }
};

uint64_t refHashPositions(const std::vector<unsigned> &Positions) {
  uint64_t H = 0xCBF29CE484222325ULL;
  for (unsigned P : Positions) {
    H ^= P;
    H *= 0x100000001B3ULL;
  }
  return H;
}

class RefQmapRouter : public Router {
public:
  explicit RefQmapRouter(QmapOptions OptionsIn = {}) : Options(OptionsIn) {}

  std::string name() const override { return "QMAP"; }

  using Router::route;
  RoutingResult route(const RoutingContext &Ctx, const QubitMapping &Initial,
                      RoutingScratch &, const CancellationToken *) override {
    checkPreconditions(Ctx, Initial);
    const Circuit &Logical = Ctx.circuit();
    const CouplingGraph &Hw = Ctx.hardware();
    Timer Clock;

    RoutingResult Result;
    Result.Routed = Circuit(Hw.numQubits(), Logical.name() + ".routed");
    Result.InitialMapping = Initial;
    Result.RouterName = name();
    QubitMapping Phi = Initial;

    std::vector<std::vector<uint32_t>> Layers;
    {
      std::vector<uint8_t> Busy(Logical.numQubits(), 0);
      std::vector<uint32_t> Current;
      for (uint32_t GI = 0; GI < Logical.size(); ++GI) {
        const Gate &G = Logical.gate(GI);
        unsigned N = G.numQubits();
        bool Conflict = false;
        for (unsigned Q = 0; Q < N; ++Q)
          Conflict |= Busy[static_cast<size_t>(G.Qubits[Q])] != 0;
        if (Conflict) {
          Layers.push_back(std::move(Current));
          Current.clear();
          std::fill(Busy.begin(), Busy.end(), 0);
        }
        Current.push_back(GI);
        for (unsigned Q = 0; Q < N; ++Q)
          Busy[static_cast<size_t>(G.Qubits[Q])] = 1;
      }
      if (!Current.empty())
        Layers.push_back(std::move(Current));
    }

    auto emitSwap = [&](unsigned P1, unsigned P2) {
      Result.Routed.addSwap(static_cast<int32_t>(P1),
                            static_cast<int32_t>(P2));
      Result.InsertedSwapFlags.push_back(1);
      ++Result.NumSwaps;
      Phi.swapPhysical(static_cast<int32_t>(P1), static_cast<int32_t>(P2));
    };

    auto emitProgramGate = [&](uint32_t GI) {
      Result.Routed.addGate(Logical.gate(GI).withMappedQubits(
          [&Phi](int32_t Q) { return Phi.physOf(Q); }));
      Result.InsertedSwapFlags.push_back(0);
    };

    auto routeChunk = [&](const std::vector<uint32_t> &Chunk) {
      std::vector<int32_t> Tracked;
      for (uint32_t GI : Chunk) {
        Tracked.push_back(Logical.gate(GI).Qubits[0]);
        Tracked.push_back(Logical.gate(GI).Qubits[1]);
      }
      std::sort(Tracked.begin(), Tracked.end());
      Tracked.erase(std::unique(Tracked.begin(), Tracked.end()),
                    Tracked.end());
      std::vector<std::pair<unsigned, unsigned>> GatePairs;
      for (uint32_t GI : Chunk) {
        const Gate &G = Logical.gate(GI);
        auto OrdinalOf = [&Tracked](int32_t Q) {
          return static_cast<unsigned>(
              std::lower_bound(Tracked.begin(), Tracked.end(), Q) -
              Tracked.begin());
        };
        GatePairs.push_back({OrdinalOf(G.Qubits[0]), OrdinalOf(G.Qubits[1])});
      }

      auto heuristic = [&](const std::vector<unsigned> &Pos) {
        unsigned H = 0;
        for (auto [A, B] : GatePairs)
          H += Hw.distance(Pos[A], Pos[B]) - 1;
        return H;
      };
      auto isGoal = [&](const std::vector<unsigned> &Pos) {
        for (auto [A, B] : GatePairs)
          if (!Hw.areAdjacent(Pos[A], Pos[B]))
            return false;
        return true;
      };

      RefSearchNode Root;
      Root.Positions.resize(Tracked.size());
      for (size_t I = 0; I < Tracked.size(); ++I)
        Root.Positions[I] = static_cast<unsigned>(Phi.physOf(Tracked[I]));
      Root.CostH = heuristic(Root.Positions);

      std::priority_queue<RefSearchNode, std::vector<RefSearchNode>,
                          RefNodeCompare>
          Open;
      std::unordered_set<uint64_t> Closed;
      Open.push(Root);
      size_t Expansions = 0;
      bool Solved = false;
      RefSearchNode Goal;

      while (!Open.empty() && Expansions < Options.NodeBudgetPerLayer) {
        RefSearchNode Node = Open.top();
        Open.pop();
        uint64_t Key = refHashPositions(Node.Positions);
        if (!Closed.insert(Key).second)
          continue;
        ++Expansions;
        if (isGoal(Node.Positions)) {
          Solved = true;
          Goal = std::move(Node);
          break;
        }
        for (size_t I = 0; I < Node.Positions.size(); ++I) {
          unsigned From = Node.Positions[I];
          for (unsigned To : Hw.neighbors(From)) {
            RefSearchNode Next = Node;
            Next.Positions[I] = To;
            for (size_t J = 0; J < Next.Positions.size(); ++J)
              if (J != I && Next.Positions[J] == To)
                Next.Positions[J] = From;
            Next.Swaps.push_back({From, To});
            Next.CostG = Node.CostG + 1;
            Next.CostH = heuristic(Next.Positions);
            if (!Closed.count(refHashPositions(Next.Positions)))
              Open.push(std::move(Next));
          }
        }
      }

      if (Solved) {
        for (auto [P1, P2] : Goal.Swaps)
          emitSwap(P1, P2);
        for (uint32_t GI : Chunk)
          emitProgramGate(GI);
        return;
      }
      for (uint32_t GI : Chunk) {
        const Gate &G = Logical.gate(GI);
        unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
        unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
        if (!Hw.areAdjacent(P1, P2)) {
          std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
          for (size_t I = 0; I + 2 < Path.size(); ++I)
            emitSwap(Path[I], Path[I + 1]);
        }
        emitProgramGate(GI);
      }
    };

    for (const std::vector<uint32_t> &Layer : Layers) {
      std::vector<uint32_t> TwoQ;
      for (uint32_t GI : Layer)
        if (Logical.gate(GI).isTwoQubit())
          TwoQ.push_back(GI);

      bool TimedOut = Clock.elapsedSeconds() > Options.TimeBudgetSeconds;
      if (TimedOut)
        Result.TimedOut = true;

      if (!TwoQ.empty()) {
        if (TimedOut) {
          for (uint32_t GI : TwoQ) {
            const Gate &G = Logical.gate(GI);
            unsigned P1 = static_cast<unsigned>(Phi.physOf(G.Qubits[0]));
            unsigned P2 = static_cast<unsigned>(Phi.physOf(G.Qubits[1]));
            if (!Hw.areAdjacent(P1, P2)) {
              std::vector<unsigned> Path = Hw.shortestPath(P1, P2);
              for (size_t I = 0; I + 2 < Path.size(); ++I)
                emitSwap(Path[I], Path[I + 1]);
            }
            emitProgramGate(GI);
          }
        } else {
          for (size_t Begin = 0; Begin < TwoQ.size();
               Begin += Options.MaxJointGates) {
            size_t End =
                std::min(TwoQ.size(), Begin + Options.MaxJointGates);
            std::vector<uint32_t> Chunk(TwoQ.begin() + Begin,
                                        TwoQ.begin() + End);
            routeChunk(Chunk);
          }
        }
      }
      for (uint32_t GI : Layer)
        if (!Logical.gate(GI).isTwoQubit())
          emitProgramGate(GI);
    }

    Result.FinalMapping = Phi;
    Result.MappingSeconds = Clock.elapsedSeconds();
    return Result;
  }

private:
  QmapOptions Options;
};

} // namespace

std::unique_ptr<Router>
qlosure::bench::makeReferenceRouter(const std::string &Name) {
  if (Name == "qlosure")
    return std::make_unique<RefQlosureRouter>();
  if (Name == "sabre")
    return std::make_unique<RefSabreRouter>();
  if (Name == "cirq")
    return std::make_unique<RefCirqRouter>();
  if (Name == "tket")
    return std::make_unique<RefTketRouter>();
  if (Name == "qmap") {
    QmapOptions Options;
    Options.TimeBudgetSeconds = 1e9; // Deterministic: the budget never trips.
    return std::make_unique<RefQmapRouter>(Options);
  }
  reportFatalError("unknown reference router '" + Name + "'");
}
