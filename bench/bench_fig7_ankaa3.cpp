//===- bench/bench_fig7_ankaa3.cpp - Fig. 7 reproduction --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 7 of the paper: the same QUEKO series as Fig. 6 on the
/// Rigetti Ankaa-3 backend.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchFigureSeries.h"

int main(int Argc, char **Argv) {
  return qlosure::bench::runFigureSeries(
      Argc, Argv, "ankaa3",
      "Fig. 7: QUEKO series on Ankaa-3 (swaps and depth vs initial depth)");
}
