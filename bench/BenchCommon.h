//===- bench/BenchCommon.h - Shared benchmark plumbing ------------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: command-line
/// scaling flags, the five-mapper lineup, and rendering of medium/large
/// summary tables with the paper's reference values alongside.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BENCH_BENCHCOMMON_H
#define QLOSURE_BENCH_BENCHCOMMON_H

#include "eval/Harness.h"
#include "route/Router.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qlosure {
namespace bench {

/// Scaling knobs common to all reproduction binaries.
struct BenchConfig {
  /// --full: paper-scale sweeps (slower); default is a scaled-down grid
  /// that preserves every axis of the experiment.
  bool Full = false;
  /// --seed N: base RNG seed for workload generation.
  uint64_t Seed = 2026;
  /// --no-verify: skip routing verification (it is cheap; on by default).
  bool Verify = true;
  /// --affine: exercise the affine replay fast path where the binary
  /// supports it (bench_kernel_throughput appends a replay-vs-scalar
  /// section; binaries without an affine mode accept and ignore it).
  bool Affine = false;
  /// --simd: compare the vectorized swap-candidate scoring lanes against
  /// the scalar fallback in the same binary (bench_kernel_throughput
  /// appends a per-mapper scalar-vs-SIMD section with a byte-identity
  /// check; binaries without a SIMD mode accept and ignore the flag).
  bool Simd = false;
  /// --fleet N: boot N daemons behind a consistent-hash shard router and
  /// append a fleet-throughput section (bench_service_throughput; other
  /// binaries accept and ignore the flag). 0 disables the fleet tier.
  unsigned Fleet = 0;
  /// --threads N: BatchRunner workers (0 = hardware concurrency).
  /// Results are identical for every thread count, except where QMAP's
  /// wall-clock budget trips under load (see BatchRunner.h). Benches
  /// whose inner loop is inherently serial (the ablation and error-aware
  /// studies) accept but ignore the flag.
  unsigned Threads = 0;
};

/// Parses argv (exits with a usage message on unknown flags).
BenchConfig parseArgs(int Argc, char **Argv);

/// The paper's five mappers in table order (SABRE, QMAP, Cirq, Pytket,
/// Qlosure). \p QmapBudgetSeconds bounds the QMAP A* wall clock so that
/// oversized inputs record a timeout, as in the paper.
std::vector<std::unique_ptr<Router>>
makePaperMappers(double QmapBudgetSeconds);

/// QUEKO depth grids: medium (< 550) and large (>= 550) per the paper's
/// grouping. Scaled-down by default; --full widens toward paper scale.
std::vector<unsigned> quekoDepths(const BenchConfig &Config);

/// Renders one medium/large summary table. \p Reference optionally maps
/// mapper name -> (medium, large) paper values printed alongside; pass an
/// empty map to omit. \p Fmt controls numeric formatting (e.g. "%.2f").
void printMediumLargeTable(
    const std::string &Title,
    const std::map<std::string, MediumLargeSummary> &Summary,
    const std::map<std::string, std::pair<double, double>> &Reference,
    const char *Fmt = "%.2f");

/// Prints a one-line banner with the binary name and configuration.
void printBanner(const std::string &Name, const BenchConfig &Config);

/// One backend column of the paper's QUEKO tables: QUEKO sets generated on
/// \p GenNames are routed onto \p BackendName by all five mappers.
struct QuekoGridSpec {
  std::string BackendName;
  std::vector<std::string> GenNames;
  std::vector<unsigned> Depths;
  unsigned CircuitsPerDepth = 1;
  double QmapBudgetSeconds = 60.0;
};

/// Runs one grid and returns all records.
std::vector<RunRecord> runQuekoGrid(const QuekoGridSpec &Spec,
                                    const BenchConfig &Config);

/// The paper's three backend columns (Sherbrooke / Ankaa-3 / Sherbrooke-2X
/// with their respective generation devices), sized per \p Config.
std::vector<QuekoGridSpec> paperQuekoGrids(const BenchConfig &Config);

} // namespace bench
} // namespace qlosure

#endif // QLOSURE_BENCH_BENCHCOMMON_H
