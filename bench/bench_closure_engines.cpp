//===- bench/bench_closure_engines.cpp - omega engine ablation --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extra ablation (DESIGN.md): compares the two omega engines — the exact
/// gate-level bitset closure and the paper's scalable affine
/// (statement-level) closure — on time, lifting compression, and weight
/// over-approximation. This quantifies what the affine abstraction buys:
/// near-linear scaling at a bounded loss of weight precision.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "deps/TransitiveWeights.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <algorithm>
#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Ablation: exact vs affine transitive-closure engines",
              Config);

  std::vector<std::pair<std::string, Circuit>> Cases;
  // Regular circuits: lifting compresses well, the statement-level
  // closure is tiny, and the affine engine wins outright at scale.
  Cases.push_back({"ghz_n64", makeGhz(64)});
  Cases.push_back({"qugan_n39_l13", makeQugan(39, 13)});
  Cases.push_back({"qugan_n80_l60", makeQugan(80, 60)});
  Cases.push_back({"ising_n80_l40", makeIsing(80, 40)});
  if (Config.Full)
    Cases.push_back({"ising_n80_l160", makeIsing(80, 160)});
  // Irregular circuits: lifting degenerates to singletons; below the
  // saturation threshold the statement-graph path still runs (slower than
  // the bitset at this scale), above it the engine saturates and returns
  // the cheap sound bound.
  Cases.push_back({"qft_n24", makeQft(24)});
  Cases.push_back({"adder_n32", makeAdder(32)});
  for (unsigned Depth : {50u, 150u, Config.Full ? 400u : 250u}) {
    QuekoSpec Spec;
    Spec.Depth = Depth;
    Spec.Seed = Config.Seed + Depth;
    Circuit C = generateQueko(makeSycamore54(), Spec).Circ;
    Cases.push_back({formatString("queko54_d%u", Depth), C});
  }

  Table T({"Circuit", "Gates", "Exact ms", "Affine ms", "Speedup",
           "Gates/stmt", "Mean over-approx"});
  for (auto &[Name, Circ] : Cases) {
    WeightOptions Exact;
    Exact.Engine = WeightEngine::Exact;
    Timer TE;
    WeightResult E = computeDependenceWeights(Circ, Exact);
    double ExactMs = TE.elapsedMilliseconds();

    WeightOptions Affine;
    Affine.Engine = WeightEngine::Affine;
    Timer TA;
    WeightResult A = computeDependenceWeights(Circ, Affine);
    double AffineMs = TA.elapsedMilliseconds();

    // Mean multiplicative over-approximation of the affine upper bound.
    double RatioSum = 0;
    size_t RatioCount = 0;
    for (size_t I = 0; I < E.Weights.size(); ++I) {
      if (E.Weights[I] == 0)
        continue;
      RatioSum += static_cast<double>(A.Weights[I]) /
                  static_cast<double>(E.Weights[I]);
      ++RatioCount;
    }
    double MeanRatio = RatioCount ? RatioSum / RatioCount : 1.0;

    T.addRow({Name, formatString("%zu", Circ.size()),
              formatString("%.2f", ExactMs), formatString("%.2f", AffineMs),
              formatString("%.1fx", ExactMs / std::max(AffineMs, 1e-6)),
              formatString("%.1f", A.CompressionRatio),
              formatString("%.2fx", MeanRatio)});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nThe affine engine's weights are a sound upper bound "
              "(over-approx >= 1.0x);\nits advantage grows with circuit "
              "size and regularity (gates/statement).\n");
  return 0;
}
