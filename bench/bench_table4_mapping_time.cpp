//===- bench/bench_table4_mapping_time.cpp - Table IV reproduction ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table IV of the paper: average mapping times on the QUEKO
/// 54-qubit set per backend, medium vs large, plus the medium->large
/// growth ratio the paper highlights (Qlosure grows ~1.5-1.7x; the other
/// mappers 2.2-2.6x). Absolute seconds differ from the paper's Python/
/// Xeon setup; the growth ratios and mapper ordering are the
/// reproduction target.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Table IV: average mapping time, QUEKO 54qbt", Config);

  // Paper reference (seconds) for context.
  std::map<std::string,
           std::map<std::string, std::pair<double, double>>>
      Reference;
  Reference["sherbrooke"] = {{"SABRE", {0.64, 1.57}},
                             {"QMAP", {10.36, 23.49}},
                             {"Cirq", {5.85, 13.14}},
                             {"Pytket", {14.54, 32.99}},
                             {"Qlosure", {6.07, 10.13}}};
  Reference["ankaa3"] = {{"SABRE", {0.66, 1.52}},
                         {"QMAP", {8.45, 19.59}},
                         {"Cirq", {4.56, 9.89}},
                         {"Pytket", {9.49, 20.90}},
                         {"Qlosure", {4.07, 6.09}}};
  Reference["sherbrooke2x"] = {{"SABRE", {0.67, 1.77}},
                               {"QMAP", {11.48, 26.10}},
                               {"Cirq", {6.07, 13.48}},
                               {"Pytket", {15.84, 37.95}},
                               {"Qlosure", {7.36, 12.77}}};

  for (const char *Backend : {"sherbrooke", "ankaa3", "sherbrooke2x"}) {
    QuekoGridSpec Grid;
    Grid.BackendName = Backend;
    Grid.GenNames = {"sycamore54"};
    Grid.Depths = quekoDepths(Config);
    Grid.CircuitsPerDepth = Config.Full ? 3 : 1;
    Grid.QmapBudgetSeconds = 300.0; // Let QMAP finish: this table is time.
    std::vector<RunRecord> Records = runQuekoGrid(Grid, Config);
    auto Summary = mappingTimeSummary(Records);
    printMediumLargeTable(
        std::string("Backend: ") + Backend + "  (seconds; paper columns "
        "shown for ordering context only)",
        Summary, Reference[Backend], "%.3f");

    Table Growth({"Mapper", "Large/Medium growth", "Paper growth"});
    const char *Order[] = {"SABRE", "QMAP", "Cirq", "Pytket", "Qlosure"};
    for (const char *Mapper : Order) {
      auto It = Summary.find(Mapper);
      if (It == Summary.end() || It->second.Medium <= 0)
        continue;
      double Ratio = It->second.Large / It->second.Medium;
      auto Ref = Reference[Backend][Mapper];
      double PaperRatio = Ref.first > 0 ? Ref.second / Ref.first : 0;
      Growth.addRow({Mapper, formatString("%.2fx", Ratio),
                     formatString("%.2fx", PaperRatio)});
    }
    std::fputs(Growth.render().c_str(), stdout);
  }

  std::printf("\nShape checks: SABRE fastest in absolute terms; Qlosure's "
              "medium->large growth\nis the smallest among the quality "
              "mappers (paper: 1.5-1.7x vs 2.2-2.6x).\n");
  return 0;
}
