//===- bench/bench_error_aware.cpp - Error-aware mapping extension -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates the error-aware mapping extension — the future work the
/// paper's conclusion sketches ("customized qubit-state and error-aware
/// mapping heuristics"). A synthetic calibration (log-uniform two-qubit
/// error rates) is installed on Sherbrooke and Ankaa-3; Qlosure routes
/// each workload with the hop-count metric and with the fidelity-weighted
/// metric, and we compare SWAPs, depth and expected success probability.
/// Expected shape: error-aware routing trades a few extra SWAPs for a
/// higher success probability.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/Qlosure.h"
#include "route/Fidelity.h"
#include "route/Verify.h"
#include "support/Error.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Extension: error-aware mapping (paper future work)",
              Config);

  for (const char *BackendName : {"sherbrooke", "ankaa3"}) {
    CouplingGraph Hw = makeBackendByName(BackendName);
    applySyntheticErrorModel(Hw, Config.Seed);

    std::vector<std::pair<std::string, Circuit>> Workloads;
    Workloads.push_back({"qft_n20", makeQft(20)});
    Workloads.push_back({"qugan_n39", makeQugan(39, 13)});
    {
      QuekoSpec Spec;
      Spec.Depth = Config.Full ? 300 : 100;
      Spec.Seed = Config.Seed;
      Workloads.push_back(
          {"queko54", generateQueko(makeSycamore54(), Spec).Circ});
    }

    std::printf("\nBackend %s (synthetic calibration, 2Q error in "
                "[0.2%%, 3%%])\n",
                BackendName);
    Table T({"Circuit", "Mode", "SWAPs", "Depth", "Success prob"});
    for (auto &[Name, Circ] : Workloads) {
      // Both modes share one context (the calibrated graph already
      // carries hop and fidelity-weighted distance matrices).
      RoutingContext Ctx = RoutingContext::build(Circ, Hw);
      for (bool ErrorAware : {false, true}) {
        QlosureOptions Opts;
        Opts.ErrorAware = ErrorAware;
        QlosureRouter Router(Opts);
        RoutingResult R = Router.routeWithIdentity(Ctx);
        if (Config.Verify) {
          VerifyResult V = verifyRouting(Circ, Hw, R);
          if (!V.Ok)
            reportFatalError("error-aware routing failed verification: " +
                             V.Message);
        }
        double Success = estimateSuccessProbability(R.Routed, Hw);
        T.addRow({Name, ErrorAware ? "error-aware" : "hop-count",
                  formatString("%zu", R.NumSwaps),
                  formatString("%zu", R.Routed.depth()),
                  formatString("%.4g", Success)});
      }
    }
    std::fputs(T.render().c_str(), stdout);
  }
  std::printf("\nShape check: the error-aware rows should post equal or "
              "higher success\nprobability, possibly at slightly higher "
              "SWAP counts.\n");
  return 0;
}
